// Shared helpers for the per-figure bench binaries.
//
// Every bench prints (a) the paper artifact it regenerates, (b) a CSV block
// with the exact series, (c) an ASCII semi-log plot shaped like the paper's
// figure, and (d) PASS/FAIL shape assertions from DESIGN.md section 4.
#ifndef RSMEM_BENCH_BENCH_COMMON_H
#define RSMEM_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/ascii_plot.h"
#include "analysis/experiment.h"
#include "analysis/table.h"

namespace rsmem::bench {

inline void print_header(const std::string& experiment,
                         const std::string& paper_artifact,
                         const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s  --  reproduces %s\n", experiment.c_str(),
              paper_artifact.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("==============================================================\n");
}

inline void print_series_csv(const std::vector<analysis::Series>& series,
                             const std::string& x_name) {
  analysis::Table table{[&] {
    std::vector<std::string> headers{x_name};
    for (const auto& s : series) headers.push_back(s.label);
    return headers;
  }()};
  if (!series.empty()) {
    for (std::size_t i = 0; i < series.front().x.size(); ++i) {
      std::vector<std::string> row{analysis::format_fixed(series.front().x[i], 2)};
      for (const auto& s : series) row.push_back(analysis::format_sci(s.y[i]));
      table.add_row(std::move(row));
    }
  }
  std::printf("%s", table.to_csv().c_str());
}

inline void print_plot(const std::vector<analysis::Series>& series,
                       const std::string& title, const std::string& x_label) {
  analysis::PlotOptions options;
  options.title = title;
  options.x_label = x_label;
  std::printf("%s", analysis::render_plot(series, options).c_str());
}

// Tracks shape assertions and the process exit code.
class ShapeChecks {
 public:
  void expect(bool condition, const std::string& what) {
    std::printf("[%s] %s\n", condition ? "PASS" : "FAIL", what.c_str());
    if (!condition) failed_ = true;
  }
  int exit_code() const { return failed_ ? 1 : 0; }

 private:
  bool failed_ = false;
};

// True if `v` is non-decreasing within floating tolerance.
inline bool non_decreasing(const std::vector<double>& v, double tol = 1e-15) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] + tol < v[i - 1]) return false;
  }
  return true;
}

// True if every element of `lo` is <= the matching element of `hi` (with a
// multiplicative slack for values near the solver floor).
inline bool dominated(const std::vector<double>& lo,
                      const std::vector<double>& hi, double floor = 1e-250) {
  for (std::size_t i = 0; i < lo.size() && i < hi.size(); ++i) {
    if (lo[i] <= floor && hi[i] <= floor) continue;
    if (lo[i] > hi[i] * (1.0 + 1e-9) + floor) return false;
  }
  return true;
}

}  // namespace rsmem::bench

#endif  // RSMEM_BENCH_BENCH_COMMON_H
