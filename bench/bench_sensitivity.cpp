// E20 -- extension: which knob should a mission buy down? Elasticities
// d ln BER / d ln x of each environment parameter, for the paper's three
// arrangements at their nominal operating points. The values are the
// chains' combinatorics made visible: 2 random errors / 3 erasures /
// 3 double-erasures (6 events) / 21 erasures to kill, ~1:1 with Tsc.
#include <cmath>

#include "bench_common.h"
#include "analysis/sensitivity.h"
#include "core/units.h"

using namespace rsmem;

namespace {

std::string fmt(double v) {
  return std::isnan(v) ? std::string("-") : analysis::format_fixed(v, 2);
}

}  // namespace

int main() {
  bench::print_header(
      "bench_sensitivity", "elasticity study (E20)",
      "d ln BER / d ln {lambda, lambda_e, Tsc} per arrangement");

  struct Case {
    const char* name;
    core::MemorySystemSpec spec;
    double t_hours;
  };
  std::vector<Case> cases;
  {
    core::MemorySystemSpec s;
    s.seu_rate_per_bit_day = 1.7e-5;
    s.erasure_rate_per_symbol_day = 1e-7;
    s.scrub_period_seconds = 3600.0;
    cases.push_back({"simplex RS(18,16), scrubbed, 48 h", s, 48.0});
    core::MemorySystemSpec d = s;
    d.arrangement = analysis::Arrangement::kDuplex;
    cases.push_back({"duplex RS(18,16), scrubbed, 48 h", d, 48.0});
    core::MemorySystemSpec perm;
    perm.erasure_rate_per_symbol_day = 1e-6;
    cases.push_back({"simplex RS(18,16), perm-only, 2 mo", perm,
                     core::months_to_hours(2.0)});
    core::MemorySystemSpec dperm = perm;
    dperm.arrangement = analysis::Arrangement::kDuplex;
    cases.push_back({"duplex RS(18,16), perm-only, 2 mo", dperm,
                     core::months_to_hours(2.0)});
    core::MemorySystemSpec wide;
    wide.code = {36, 16, 8, 1};
    wide.erasure_rate_per_symbol_day = 1e-4;
    cases.push_back({"simplex RS(36,16), perm-only, 1 mo", wide,
                     core::months_to_hours(1.0)});
  }

  analysis::Table table{{"operating point", "BER", "E[lambda]",
                         "E[lambda_e]", "E[Tsc]"}};
  bench::ShapeChecks checks;
  std::vector<analysis::SensitivityReport> reports;
  for (const Case& c : cases) {
    const analysis::SensitivityReport r =
        analysis::ber_sensitivity(c.spec, c.t_hours);
    reports.push_back(r);
    table.add_row({c.name, analysis::format_sci(r.ber),
                   fmt(r.seu_elasticity), fmt(r.erasure_elasticity),
                   fmt(r.scrub_period_elasticity)});
  }
  std::printf("%s", table.to_text().c_str());

  checks.expect(std::fabs(reports[0].seu_elasticity - 2.0) < 0.15,
                "simplex SEU elasticity ~ 2 (two errors kill)");
  checks.expect(std::fabs(reports[0].scrub_period_elasticity - 1.0) < 0.15,
                "scrub-period elasticity ~ 1 (hazard ~ Tsc)");
  checks.expect(std::fabs(reports[2].erasure_elasticity - 3.0) < 0.1,
                "simplex erasure elasticity ~ 3");
  checks.expect(std::fabs(reports[3].erasure_elasticity - 6.0) < 0.2,
                "duplex erasure elasticity ~ 6 (three pairs)");
  checks.expect(std::fabs(reports[4].erasure_elasticity - 21.0) < 1.0,
                "RS(36,16) erasure elasticity ~ 21");
  std::printf(
      "\nreading: a 10%% better SEU environment buys ~20%% BER on the\n"
      "scrubbed word, but a 10%% better permanent-fault rate buys ~60%% on\n"
      "the duplex and ~8.7x on RS(36,16) -- redundancy amplifies component\n"
      "improvements by its fault budget.\n");
  return checks.exit_code();
}
