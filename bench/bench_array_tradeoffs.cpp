// E13 -- extension: whole-memory figures. The paper tracks one codeword and
// notes the extension to the whole memory is straightforward; Section 2
// lists scrubbing's drawbacks (availability, power) without numbers. This
// bench produces both: array-level loss probability / MTTDL for a 1 Mi-word
// SSMM, and the scrub duty-cycle / availability / power price of each
// scrubbing period.
#include "bench_common.h"
#include "core/units.h"
#include "markov/uniformization.h"
#include "models/memory_array.h"
#include "models/metrics.h"
#include "reliability/scrub_overhead.h"

using namespace rsmem;

int main() {
  bench::print_header(
      "bench_array_tradeoffs", "whole-memory & scrub-cost study (E13)",
      "1 Mi-word array: loss probability, MTTDL, scrub availability/power");

  const std::size_t kWords = 1u << 20;
  const markov::UniformizationSolver solver;
  bench::ShapeChecks checks;

  // --- array-level loss over the mission, RS(18,16) simplex words. -------
  models::SimplexParams word;
  word.n = 18;
  word.k = 16;
  word.m = 8;
  word.erasure_rate_per_symbol_hour = core::per_day_to_per_hour(1e-7);
  const std::vector<double> times{core::months_to_hours(6.0),
                                  core::months_to_hours(12.0),
                                  core::months_to_hours(24.0)};
  const models::BerCurve curve =
      models::simplex_ber_curve(word, times, solver);
  analysis::Table array_table{
      {"months", "word P_fail", "E[failed words]", "P(array loss)"}};
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double p = curve.fail_probability[i];
    array_table.add_row(
        {analysis::format_fixed(core::hours_to_months(times[i]), 0),
         analysis::format_sci(p),
         analysis::format_fixed(models::expected_failed_words(p, kWords), 3),
         analysis::format_sci(models::array_loss_probability(p, kWords))});
  }
  std::printf("%s", array_table.to_text().c_str());

  const double word_p24 = curve.fail_probability.back();
  checks.expect(
      models::array_loss_probability(word_p24, kWords) >
          models::array_loss_probability(word_p24, kWords / 1024),
      "bigger arrays lose data more often");
  checks.expect(models::array_loss_probability(word_p24, kWords) < 1.0,
                "array loss probability below saturation at these rates");

  // --- MTTDL vs array size. ----------------------------------------------
  models::SimplexParams fast = word;
  fast.erasure_rate_per_symbol_hour = 1e-3;  // accelerated for integration
  analysis::Table mttdl_table{{"words", "MTTDL [h]"}};
  double prev_mttdl = 1e300;
  for (const std::size_t w : {std::size_t{1}, std::size_t{64},
                              std::size_t{4096}}) {
    const double mttdl = models::array_mttdl_hours(fast, w, 20000.0);
    mttdl_table.add_row({std::to_string(w), analysis::format_fixed(mttdl, 1)});
    checks.expect(mttdl < prev_mttdl,
                  "MTTDL decreases with array size (W=" + std::to_string(w) +
                      ")");
    prev_mttdl = mttdl;
  }
  std::printf("%s", mttdl_table.to_text().c_str());

  // --- scrub overhead: availability / power vs Tsc (Section 2 drawbacks).
  const reliability::DecoderCostModel cost_model;
  reliability::ScrubOverheadParams oh_params;
  oh_params.words = kWords;
  analysis::Table oh_table{{"code", "Tsc [s]", "pass [ms]", "duty",
                            "availability", "avg power [mW]"}};
  for (const unsigned n : {18u, 36u}) {
    for (const double tsc_s : {900.0, 3600.0}) {
      const reliability::ScrubOverhead oh =
          reliability::scrub_overhead(cost_model, n, 16, tsc_s, oh_params);
      char code[16];
      std::snprintf(code, sizeof code, "RS(%u,16)", n);
      oh_table.add_row({code, analysis::format_fixed(tsc_s, 0),
                        analysis::format_fixed(oh.pass_seconds * 1e3, 2),
                        analysis::format_sci(oh.duty_fraction, 2),
                        analysis::format_fixed(oh.availability, 6),
                        analysis::format_fixed(
                            oh.average_power_watts * 1e3, 3)});
    }
  }
  std::printf("%s", oh_table.to_text().c_str());
  const auto narrow =
      reliability::scrub_overhead(cost_model, 18, 16, 900.0, oh_params);
  const auto wide =
      reliability::scrub_overhead(cost_model, 36, 16, 900.0, oh_params);
  checks.expect(wide.duty_fraction > narrow.duty_fraction,
                "RS(36,16) scrub pass costs more availability than "
                "RS(18,16) (Td 308 vs 74)");
  checks.expect(narrow.availability > 0.99,
                "RS(18,16) hourly-class scrubbing keeps availability > 99%");
  return checks.exit_code();
}
