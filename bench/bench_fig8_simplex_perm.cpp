// E4 -- Fig. 8 of the paper: BER of simplex RS(18,16) under permanent-fault
// rates lambda_e in {1e-4 .. 1e-10} per symbol per day, 24 months, no
// scrubbing, no SEUs.
#include <cmath>

#include "bench_common.h"

using namespace rsmem;

int main() {
  bench::print_header(
      "bench_fig8_simplex_perm", "Figure 8",
      "BER(t) of simplex RS(18,16), permanent faults only, 24 months");

  const double rates[] = {1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10};
  const analysis::CodeSpec code{18, 16, 8};
  const std::vector<analysis::Series> series = analysis::permanent_rate_sweep(
      analysis::Arrangement::kSimplex, code, rates, 24.0, 25);

  bench::print_series_csv(series, "months");
  analysis::PlotOptions opt;
  opt.title = "BER of Simplex RS(18,16) varying permanent faults rate";
  opt.x_label = "months";
  std::printf("%s", analysis::render_plot(series, opt).c_str());

  bench::ShapeChecks checks;
  for (std::size_t i = 1; i < series.size(); ++i) {
    checks.expect(bench::dominated(series[i].y, series[i - 1].y, 0.0),
                  "BER ordered by lambda_e (" + series[i].label + ")");
  }
  for (const auto& s : series) {
    checks.expect(bench::non_decreasing(s.y), "monotone in t: " + s.label);
  }
  // Cubic small-rate scaling: fail needs 3 erasures, so each decade of
  // lambda_e is worth ~3 decades of BER (check between the two lowest).
  const double r = series[5].y.back() / series[6].y.back();
  checks.expect(r > 500.0 && r < 2000.0,
                "cubic scaling: BER(1e-9)/BER(1e-10) ~ 1e3, measured " +
                    analysis::format_sci(r, 2));
  // Paper Fig. 8 y-axis: top curve saturates near 1e0, the sweep spans
  // down past 1e-18 at 24 months.
  checks.expect(series[0].y.back() > 0.1, "lambda_e=1e-4 saturates (~1e0)");
  checks.expect(series[6].y.back() < 1e-15 && series[6].y.back() > 1e-30,
                "lambda_e=1e-10 lands in the far-tail decade range");
  return checks.exit_code();
}
