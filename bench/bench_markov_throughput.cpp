// Markov sweep-engine throughput: legacy serial path vs the cached /
// zero-alloc / parallel engine, on the paper's Fig. 7 workload (duplex
// RS(18,16), lambda = 1.7e-5 /bit/day, Tsc in {900, 1200, 1800, 3600} s,
// 25 time points over 48 h), plus the incremental periodic-scrub curve vs
// the old from-scratch-per-point evaluation.
//
// Writes a JSON snapshot when given --out <path> (tools/run_bench.sh
// records it as BENCH_markov.json).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/units.h"
#include "markov/periodic.h"
#include "markov/solver_workspace.h"
#include "markov/uniformization.h"
#include "models/chain_cache.h"
#include "models/duplex_model.h"
#include "models/metrics.h"

using namespace rsmem;

namespace {

template <typename F>
double best_of_seconds(int reps, F&& run) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    run();
    const double dt = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    if (dt < best) best = dt;
  }
  return best;
}

double max_rel_diff(const std::vector<analysis::Series>& a,
                    const std::vector<analysis::Series>& b,
                    double floor = 1e-300) {
  double worst = 0.0;
  for (std::size_t s = 0; s < a.size() && s < b.size(); ++s) {
    for (std::size_t i = 0; i < a[s].y.size() && i < b[s].y.size(); ++i) {
      const double scale = std::max({std::fabs(a[s].y[i]),
                                     std::fabs(b[s].y[i]), floor});
      worst = std::max(worst, std::fabs(a[s].y[i] - b[s].y[i]) / scale);
    }
  }
  return worst;
}

bool bitwise_equal(const std::vector<analysis::Series>& a,
                   const std::vector<analysis::Series>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t s = 0; s < a.size(); ++s) {
    if (a[s].y != b[s].y) return false;
  }
  return true;
}

struct JsonEntry {
  std::string name;
  double real_time_ms;
  double speedup_vs_legacy;
};

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }

  bench::print_header(
      "bench_markov_throughput", "Fig. 7 pipeline",
      "Markov sweep engine (chain cache + workspace + dense steps + "
      "thread pool) vs legacy serial per-point solving");

  const unsigned hw = std::thread::hardware_concurrency();
  bench::ShapeChecks checks;
  std::vector<JsonEntry> json;

  // ---- Section 1: Fig. 7 scrub-period sweep, end to end. ----
  const double periods[] = {900.0, 1200.0, 1800.0, 3600.0};
  const analysis::CodeSpec code{18, 16, 8};
  constexpr double kSeuPerBitDay = 1.7e-5;
  constexpr double kHorizonHours = 48.0;
  constexpr std::size_t kPoints = 25;

  const auto run_sweep = [&](const analysis::SweepOptions& options) {
    return analysis::scrub_period_sweep(analysis::Arrangement::kDuplex, code,
                                        kSeuPerBitDay, periods, kHorizonHours,
                                        kPoints, options);
  };
  const analysis::SweepOptions legacy_opts{1, false};
  const analysis::SweepOptions engine1_opts{1, true};
  const analysis::SweepOptions engine4_opts{4, true};

  const auto legacy = run_sweep(legacy_opts);
  models::global_chain_cache().clear();
  const auto engine1 = run_sweep(engine1_opts);
  models::global_chain_cache().clear();
  const auto engine4 = run_sweep(engine4_opts);

  const double rel = max_rel_diff(legacy, engine4);
  checks.expect(rel <= 1e-12,
                "engine agrees with legacy to <= 1e-12 relative (got " +
                    analysis::format_sci(rel) + ")");
  checks.expect(bitwise_equal(engine1, engine4),
                "engine series identical for 1 and 4 threads");

  // Timing: pick repetitions from one legacy run so the totals are large
  // enough to trust, then keep the best (least-noise) repetition. Each
  // engine repetition starts from a cold chain cache.
  const double once = best_of_seconds(1, [&] { run_sweep(legacy_opts); });
  const int reps =
      std::max(3, std::min(25, static_cast<int>(0.5 / std::max(once, 1e-4))));
  const double t_legacy = best_of_seconds(reps, [&] { run_sweep(legacy_opts); });
  const double t_engine1 = best_of_seconds(reps, [&] {
    models::global_chain_cache().clear();
    run_sweep(engine1_opts);
  });
  const double t_engine4 = best_of_seconds(reps, [&] {
    models::global_chain_cache().clear();
    run_sweep(engine4_opts);
  });

  const double speedup1 = t_legacy / t_engine1;
  const double speedup4 = t_legacy / t_engine4;
  analysis::Table perf{{"path", "threads", "best ms", "speedup"}};
  perf.add_row({"legacy serial", "1", analysis::format_fixed(t_legacy * 1e3, 3),
                "1.00"});
  perf.add_row({"engine", "1", analysis::format_fixed(t_engine1 * 1e3, 3),
                analysis::format_fixed(speedup1, 2)});
  perf.add_row({"engine", "4", analysis::format_fixed(t_engine4 * 1e3, 3),
                analysis::format_fixed(speedup4, 2)});
  std::printf("\nFig. 7 sweep (4 periods x %zu points), best of %d:\n%s\n",
              kPoints, reps, perf.to_text().c_str());
  json.push_back({"fig7_sweep_legacy_serial", t_legacy * 1e3, 1.0});
  json.push_back({"fig7_sweep_engine_1thread", t_engine1 * 1e3, speedup1});
  json.push_back({"fig7_sweep_engine_4threads", t_engine4 * 1e3, speedup4});

  if (hw >= 4) {
    checks.expect(speedup4 >= 3.0,
                  "engine at 4 threads >= 3x legacy serial (Fig. 7 sweep)");
  } else {
    std::printf(
        "note: %u hardware thread(s) available; the 4-thread >= 3x check "
        "needs 4+, gating on the single-thread engine instead\n",
        hw);
    checks.expect(speedup1 >= 1.5,
                  "engine at 1 thread >= 1.5x legacy serial (Fig. 7 sweep)");
  }

  // ---- Section 2: incremental periodic-scrub occupancy. ----
  // The library path now carries the distribution across scrub cycles;
  // the reference below recomputes every point from pi(0), which is what
  // occupancy_with_periodic_jump used to do (48 h at Tsc = 900 s is 192
  // cycles, so the old cost grew quadratically).
  models::DuplexParams params;
  params.n = 18;
  params.k = 16;
  params.m = 8;
  params.seu_rate_per_bit_hour = core::per_day_to_per_hour(kSeuPerBitDay);
  const double tsc_hours = core::seconds_to_hours(900.0);
  const std::vector<double> times =
      models::time_grid_hours(kHorizonHours, kPoints);

  const models::DuplexModel model{params};
  const markov::StateSpace space = model.build();
  const std::size_t fail_index =
      space.index_of(models::DuplexModel::fail_state());
  std::vector<std::size_t> jump_map(space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    const markov::PackedState s = space.states[i];
    if (models::DuplexModel::is_fail(s)) {
      jump_map[i] = i;
      continue;
    }
    const models::DuplexState d = models::DuplexModel::unpack(s);
    models::DuplexState scrubbed;
    scrubbed.x = d.x;
    scrubbed.y = d.y + d.b;
    jump_map[i] = space.index_of(models::DuplexModel::pack(scrubbed));
  }
  const markov::UniformizationSolver solver;

  const auto from_scratch = [&] {
    std::vector<double> out;
    out.reserve(times.size());
    for (const double t : times) {
      const std::vector<double> pi = markov::solve_with_periodic_jump(
          space.chain, space.chain.initial_distribution(), jump_map, tsc_hours,
          t, solver);
      out.push_back(pi[fail_index]);
    }
    return out;
  };
  const auto incremental = [&] {
    return markov::occupancy_with_periodic_jump(
        space.chain, fail_index, jump_map, tsc_hours, times, solver);
  };

  const std::vector<double> scratch_curve = from_scratch();
  const std::vector<double> incr_curve = incremental();
  checks.expect(scratch_curve == incr_curve,
                "incremental periodic curve bitwise equals from-scratch");

  const double t_scratch = best_of_seconds(3, from_scratch);
  const double t_incr = best_of_seconds(3, incremental);
  const double periodic_speedup = t_scratch / t_incr;

  markov::SolverWorkspace ws;
  const markov::StepPolicy dense_policy{256};
  const auto engine_periodic = [&] {
    return markov::occupancy_with_periodic_jump(space.chain, fail_index,
                                                jump_map, tsc_hours, times,
                                                solver, ws, dense_policy);
  };
  const std::vector<double> engine_curve = engine_periodic();
  double periodic_rel = 0.0;
  for (std::size_t i = 0; i < incr_curve.size(); ++i) {
    const double scale =
        std::max({std::fabs(incr_curve[i]), std::fabs(engine_curve[i]), 1e-300});
    periodic_rel = std::max(
        periodic_rel, std::fabs(incr_curve[i] - engine_curve[i]) / scale);
  }
  checks.expect(periodic_rel <= 1e-12,
                "dense-step periodic engine agrees to <= 1e-12 relative");
  const double t_engine_periodic = best_of_seconds(3, engine_periodic);

  analysis::Table periodic{{"path", "best ms", "speedup"}};
  periodic.add_row({"from-scratch per point",
                    analysis::format_fixed(t_scratch * 1e3, 3), "1.00"});
  periodic.add_row({"incremental (library)",
                    analysis::format_fixed(t_incr * 1e3, 3),
                    analysis::format_fixed(periodic_speedup, 2)});
  periodic.add_row({"incremental + workspace + dense steps",
                    analysis::format_fixed(t_engine_periodic * 1e3, 3),
                    analysis::format_fixed(t_scratch / t_engine_periodic, 2)});
  std::printf(
      "\nPeriodic scrub occupancy (Tsc=900 s, 192 cycles, %zu points):\n%s\n",
      kPoints, periodic.to_text().c_str());
  json.push_back(
      {"periodic_scrub_from_scratch", t_scratch * 1e3, 1.0});
  json.push_back(
      {"periodic_scrub_incremental", t_incr * 1e3, periodic_speedup});
  json.push_back({"periodic_scrub_engine", t_engine_periodic * 1e3,
                  t_scratch / t_engine_periodic});

  // O(cycles^2) -> O(cycles): architecturally ~10x here, so a 3x floor is
  // safe on any machine.
  checks.expect(periodic_speedup >= 3.0,
                "incremental periodic curve >= 3x from-scratch");

  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::printf("FAIL: cannot write %s\n", out_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"context\": {\"hardware_concurrency\": %u},\n", hw);
    std::fprintf(f, "  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < json.size(); ++i) {
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"real_time_ms\": %.3f, "
                   "\"speedup_vs_legacy\": %.2f}%s\n",
                   json[i].name.c_str(), json[i].real_time_ms,
                   json[i].speedup_vs_legacy,
                   i + 1 < json.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  }
  return checks.exit_code();
}
