// E6 -- Fig. 10 of the paper: BER of simplex RS(36,16) under permanent-fault
// rates lambda_e in {1e-4 .. 1e-10} per symbol per day, 24 months. The code
// needs 21 erased symbols to die, so curves fall off the bottom of even the
// paper's 1e-200 axis for small rates.
#include "bench_common.h"

using namespace rsmem;

int main() {
  bench::print_header(
      "bench_fig10_rs3616_perm", "Figure 10",
      "BER(t) of simplex RS(36,16), permanent faults only, 24 months");

  const double rates[] = {1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10};
  const analysis::CodeSpec wide{36, 16, 8};
  const analysis::CodeSpec narrow{18, 16, 8};
  const std::vector<analysis::Series> rs3616 = analysis::permanent_rate_sweep(
      analysis::Arrangement::kSimplex, wide, rates, 24.0, 25);

  bench::print_series_csv(rs3616, "months");
  analysis::PlotOptions opt;
  opt.title = "BER of Simplex RS(36,16) varying the permanent faults rate";
  opt.x_label = "months";
  std::printf("%s", analysis::render_plot(rs3616, opt).c_str());

  bench::ShapeChecks checks;
  for (std::size_t i = 1; i < rs3616.size(); ++i) {
    checks.expect(bench::dominated(rs3616[i].y, rs3616[i - 1].y, 0.0),
                  "BER ordered by lambda_e (" + rs3616[i].label + ")");
  }
  // Paper ordering across Figs. 8-10: RS(36,16) simplex beats the duplex
  // RS(18,16), which beats the simplex RS(18,16).
  const std::vector<analysis::Series> duplex1816 =
      analysis::permanent_rate_sweep(analysis::Arrangement::kDuplex, narrow,
                                     rates, 24.0, 25);
  bool beats_duplex = true;
  for (std::size_t r = 0; r < std::size(rates); ++r) {
    // Skip the saturated top rate where both approach their ceilings.
    if (r == 0) continue;
    beats_duplex = beats_duplex &&
                   bench::dominated(rs3616[r].y, duplex1816[r].y, 0.0);
  }
  checks.expect(beats_duplex,
                "RS(36,16) simplex BER <= duplex RS(18,16) BER (paper: "
                "'degradation in performance compared with RS(36,16)')");
  // The 1e-4 curve must still be far below 1 at small t but visible.
  checks.expect(rs3616[0].y.back() > 1e-30, "top curve inside the plot");
  return checks.exit_code();
}
