// E11 -- extension: the paper models scrubbing "executed at a prescribed
// frequency" as an EXPONENTIAL Markov transition of rate 1/Tsc; real
// hardware scrubs PERIODICALLY on the clock. This bench quantifies the
// approximation error on the paper's Fig. 7 setup (duplex RS(18,16),
// lambda = 1.7e-5/bit/day) plus the simplex equivalent, and additionally
// cross-checks the exponential policy against the functional Monte-Carlo.
#include "bench_common.h"
#include "core/api.h"
#include "core/units.h"
#include "markov/uniformization.h"
#include "models/metrics.h"

using namespace rsmem;

int main() {
  bench::print_header(
      "bench_periodic_vs_exponential", "scrubbing-policy ablation (E11)",
      "deterministic periodic scrubbing vs the paper's exponential rate");

  const markov::UniformizationSolver solver;
  const std::vector<double> times{48.0};
  const double periods_s[] = {900.0, 1800.0, 3600.0, 7200.0};

  analysis::Table table{{"arrangement", "Tsc [s]", "BER exp (paper)",
                         "BER periodic", "exp/periodic"}};
  bench::ShapeChecks checks;

  for (const bool duplex : {false, true}) {
    for (const double tsc_s : periods_s) {
      core::MemorySystemSpec spec;
      spec.arrangement = duplex ? analysis::Arrangement::kDuplex
                                : analysis::Arrangement::kSimplex;
      spec.seu_rate_per_bit_day = 1.7e-5;
      spec.scrub_period_seconds = tsc_s;
      const double exp_ber = analyze_ber(spec, times).ber[0];
      const double per_ber = analyze_ber_periodic_scrub(spec, times).ber[0];
      table.add_row({duplex ? "duplex" : "simplex",
                     analysis::format_fixed(tsc_s, 0),
                     analysis::format_sci(exp_ber),
                     analysis::format_sci(per_ber),
                     analysis::format_fixed(exp_ber / per_ber, 2)});
      checks.expect(exp_ber > per_ber,
                    "exponential approximation pessimistic at Tsc=" +
                        analysis::format_fixed(tsc_s, 0) + " (" +
                        (duplex ? "duplex" : "simplex") + ")");
      checks.expect(exp_ber < per_ber * 5.0,
                    "approximation within 5x at Tsc=" +
                        analysis::format_fixed(tsc_s, 0) + " (" +
                        (duplex ? "duplex" : "simplex") + ")");
    }
  }
  std::printf("%s", table.to_text().c_str());

  // Functional cross-check at an accelerated rate: the PERIODIC Monte-Carlo
  // must sit below the exponential chain and near the periodic chain.
  core::MemorySystemSpec accel;
  accel.seu_rate_per_bit_day = 1.2e-2;
  accel.scrub_period_seconds = 1800.0;
  analysis::MonteCarloConfig mc;
  mc.trials = 1500;
  mc.t_end_hours = 48.0;
  mc.seed = 4242;
  const analysis::MonteCarloResult sim =
      simulate(accel, mc, memory::ScrubPolicy::kPeriodic);
  const double exp_pred = fail_probability(accel, 48.0);
  const double per_pred =
      analyze_ber_periodic_scrub(accel, times).fail_probability[0];
  std::printf(
      "functional check (lambda=1.2e-2/bit/day, Tsc=1800 s, periodic "
      "hardware):\n  MC p_hat=%.4f  CI=[%.4f, %.4f]  exp-chain=%.4f  "
      "periodic-chain=%.4f\n",
      sim.failure.p_hat(), sim.failure.wilson_low(),
      sim.failure.wilson_high(), exp_pred, per_pred);
  const double band = 4.0 * sim.failure.std_error() + 1e-3;
  checks.expect(std::abs(sim.failure.p_hat() - per_pred) < band,
                "periodic Monte-Carlo matches the periodic chain");
  checks.expect(sim.failure.p_hat() < exp_pred,
                "periodic hardware beats the exponential approximation");
  return checks.exit_code();
}
