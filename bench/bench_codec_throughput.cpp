// E10 -- microbenchmarks (google-benchmark): RS codec encode/decode
// throughput for the paper's codes, chain construction, and transient
// solves. These are engineering numbers for library users, not paper
// artifacts.
//
// Every RS codec case is reported for BOTH implementations side by side:
//   *_legacy    -- the Poly-based reference path (encode_legacy/decode_legacy)
//   *_workspace -- the allocation-free DecoderWorkspace fast path
// and the batch-plane cases additionally A/B the SIMD kernel layer:
//   *_scalar    -- gf::simd forced to the scalar control (original loops)
//   *_simd      -- the backend the runtime dispatcher selected on this host
// tools/run_bench.sh snapshots this binary's JSON output into
// BENCH_codec.json at the repo root to track the perf trajectory. The JSON
// context carries `rsmem_build_type` (from this binary's NDEBUG state — the
// system libbenchmark's own library_build_type may say "debug" regardless)
// and `gf_backend` (the dispatcher's pick); run_bench.sh refuses to record
// a snapshot whose rsmem_build_type is not "release".
//
// `--plane-selfcheck`: instead of benchmarks, times encode_batch over a
// large plane under the forced-scalar control vs the selected backend and
// asserts the >= 2x speedup contract when a PSHUFB-or-better backend
// (ssse3/avx2/gfni) is selected (record-only on hosts without one). Exit
// code 0 iff the check passes, so CI and run_bench.sh can gate on it.
//
// `--backend-sweep`: additionally registers the RS(36,16) x4096
// encode/decode plane cases once per backend SUPPORTED on this host (not
// just the scalar/selected pair), so one JSON snapshot carries the whole
// backend ladder. The host's relevant CPU feature flags ride along in the
// JSON context (`cpu_flags`) so ladders from different machines compare
// honestly.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "gf/simd_mul.h"
#include "markov/uniformization.h"
#include "models/ber.h"
#include "models/duplex_model.h"
#include "models/simplex_model.h"
#include "rs/berlekamp.h"
#include "rs/reed_solomon.h"
#include "sim/rng.h"

namespace {

using namespace rsmem;

enum class Path { kLegacy, kWorkspace };

const rs::ReedSolomon& code1816() {
  static const rs::ReedSolomon code{18, 16, 8};
  return code;
}
const rs::ReedSolomon& code3616() {
  static const rs::ReedSolomon code{36, 16, 8};
  return code;
}
const rs::ReedSolomon& code255223() {
  static const rs::ReedSolomon code{255, 223, 8};
  return code;
}

std::vector<gf::Element> random_data(const rs::ReedSolomon& code,
                                     std::uint64_t seed) {
  sim::Rng rng{seed};
  std::vector<gf::Element> data(code.k());
  for (auto& d : data) {
    d = static_cast<gf::Element>(rng.uniform_int(code.field().size()));
  }
  return data;
}

void BM_Encode(benchmark::State& state, const rs::ReedSolomon& code,
               Path path) {
  const auto data = random_data(code, 1);
  std::vector<gf::Element> cw(code.n());
  rs::DecoderWorkspace ws;
  ws.reserve(code);
  for (auto _ : state) {
    if (path == Path::kWorkspace) {
      code.encode(ws, data, cw);
    } else {
      code.encode_legacy(data, cw);
    }
    benchmark::DoNotOptimize(cw.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          code.k() * code.m() / 8);
}

rs::DecodeOutcome run_decode(const rs::ReedSolomon& code,
                             rs::DecoderWorkspace& ws, Path path,
                             std::vector<gf::Element>& word,
                             std::span<const unsigned> erasures = {}) {
  return path == Path::kWorkspace ? code.decode(ws, word, erasures)
                                  : code.decode_legacy(word, erasures);
}

void BM_DecodeClean(benchmark::State& state, const rs::ReedSolomon& code,
                    Path path) {
  const auto cw = code.encode(random_data(code, 2));
  std::vector<gf::Element> word = cw;
  rs::DecoderWorkspace ws;
  ws.reserve(code);
  for (auto _ : state) {
    word = cw;
    const auto outcome = run_decode(code, ws, path, word);
    benchmark::DoNotOptimize(outcome);
  }
}

void BM_DecodeOneError(benchmark::State& state, const rs::ReedSolomon& code,
                       Path path) {
  const auto cw = code.encode(random_data(code, 3));
  std::vector<gf::Element> word;
  rs::DecoderWorkspace ws;
  ws.reserve(code);
  unsigned pos = 0;
  for (auto _ : state) {
    word = cw;
    word[pos % code.n()] ^= 0x2A;
    ++pos;
    const auto outcome = run_decode(code, ws, path, word);
    benchmark::DoNotOptimize(outcome);
  }
}

void BM_DecodeErasuresPlusError(benchmark::State& state,
                                const rs::ReedSolomon& code, Path path) {
  const auto cw = code.encode(random_data(code, 4));
  const unsigned budget = code.parity_symbols();
  const unsigned erasure_count = budget > 2 ? budget - 2 : 0;
  std::vector<unsigned> erasures;
  for (unsigned i = 0; i < erasure_count; ++i) erasures.push_back(i);
  std::vector<gf::Element> word;
  rs::DecoderWorkspace ws;
  ws.reserve(code);
  for (auto _ : state) {
    word = cw;
    for (const unsigned p : erasures) word[p] ^= 0x11;
    word[code.n() - 1] ^= 0x55;
    const auto outcome = run_decode(code, ws, path, word, erasures);
    benchmark::DoNotOptimize(outcome);
  }
}

// Erasure-heavy: the entire parity budget spent on erasures (er = n-k,
// re = 0), every erased symbol actually corrupted.
void BM_DecodeErasureOnlyFull(benchmark::State& state,
                              const rs::ReedSolomon& code, Path path) {
  const auto cw = code.encode(random_data(code, 6));
  std::vector<unsigned> erasures;
  for (unsigned i = 0; i < code.parity_symbols(); ++i) erasures.push_back(i);
  std::vector<gf::Element> word;
  rs::DecoderWorkspace ws;
  ws.reserve(code);
  for (auto _ : state) {
    word = cw;
    for (const unsigned p : erasures) word[p] ^= 0x11;
    const auto outcome = run_decode(code, ws, path, word, erasures);
    benchmark::DoNotOptimize(outcome);
  }
}

// At-capability: 2*re + er = n-k exactly, mixing both fault kinds (the
// decoder's worst case: longest locators, fullest Chien/Forney pass).
void BM_DecodeAtCapability(benchmark::State& state,
                           const rs::ReedSolomon& code, Path path) {
  const auto cw = code.encode(random_data(code, 7));
  const unsigned budget = code.parity_symbols();
  const unsigned re = budget >= 4 ? budget / 4 : budget / 2;
  const unsigned er = budget - 2 * re;
  std::vector<unsigned> erasures;
  for (unsigned i = 0; i < er; ++i) erasures.push_back(i);
  std::vector<gf::Element> word;
  rs::DecoderWorkspace ws;
  ws.reserve(code);
  for (auto _ : state) {
    word = cw;
    for (const unsigned p : erasures) word[p] ^= 0x11;
    for (unsigned i = 0; i < re; ++i) word[er + 2 * i] ^= 0x2A;
    const auto outcome = run_decode(code, ws, path, word, erasures);
    benchmark::DoNotOptimize(outcome);
  }
}

// ---- batch planes: scalar control vs the dispatcher's backend ----------
//
// force_backend() is sanctioned here by the one-backend-per-process rule's
// test/bench exemption: benchmarks run sequentially in this process, and
// main() restores the dispatcher's own selection afterwards.

void BM_EncodePlane(benchmark::State& state, const rs::ReedSolomon& code,
                    gf::simd::Backend backend, std::size_t count) {
  if (!gf::simd::force_backend(backend)) {
    state.SkipWithError("backend unsupported on this host");
    return;
  }
  sim::Rng rng{11};
  std::vector<gf::Element> data(count * code.k());
  for (auto& d : data) {
    d = static_cast<gf::Element>(rng.uniform_int(code.field().size()));
  }
  std::vector<gf::Element> plane(count * code.n());
  rs::DecoderWorkspace ws;
  ws.reserve(code);
  code.encode_batch(ws, data, plane);  // warm the SoA buffers
  for (auto _ : state) {
    code.encode_batch(ws, data, plane);
    benchmark::DoNotOptimize(plane.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * count *
                          code.k() * code.m() / 8);
}

void BM_DecodePlane(benchmark::State& state, const rs::ReedSolomon& code,
                    gf::simd::Backend backend, std::size_t count) {
  if (!gf::simd::force_backend(backend)) {
    state.SkipWithError("backend unsupported on this host");
    return;
  }
  sim::Rng rng{13};
  std::vector<gf::Element> data(count * code.k());
  for (auto& d : data) {
    d = static_cast<gf::Element>(rng.uniform_int(code.field().size()));
  }
  std::vector<gf::Element> clean(count * code.n());
  rs::DecoderWorkspace ws;
  ws.reserve(code);
  code.encode_batch(ws, data, clean);
  // Mostly-clean plane (1 in 16 words carries one error): the memory-array
  // steady state the batch syndrome screen is built for.
  std::vector<gf::Element> noisy = clean;
  for (std::size_t w = 0; w < count; w += 16) {
    noisy[w * code.n() + w % code.n()] ^= 0x2A;
  }
  std::vector<gf::Element> plane(noisy.size());
  std::vector<rs::DecodeOutcome> outcomes(count);
  for (auto _ : state) {
    std::copy(noisy.begin(), noisy.end(), plane.begin());
    code.decode_batch(ws, plane, outcomes);
    benchmark::DoNotOptimize(outcomes.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * count *
                          code.n() * code.m() / 8);
}

void BM_BerlekampDecodeOneError(benchmark::State& state,
                                const rs::ReedSolomon& code) {
  const rs::BerlekampDecoder decoder{code};
  const auto cw = code.encode(random_data(code, 5));
  std::vector<gf::Element> word;
  unsigned pos = 0;
  for (auto _ : state) {
    word = cw;
    word[pos % code.n()] ^= 0x2A;
    ++pos;
    const auto outcome = decoder.decode(word);
    benchmark::DoNotOptimize(outcome);
  }
}

void BM_BuildSimplexChain(benchmark::State& state) {
  models::SimplexParams p;
  p.n = 36;
  p.k = 16;
  p.m = 8;
  p.seu_rate_per_bit_hour = 1e-5;
  p.erasure_rate_per_symbol_hour = 1e-6;
  p.scrub_rate_per_hour = 1.0;
  for (auto _ : state) {
    const markov::StateSpace space = models::SimplexModel{p}.build();
    benchmark::DoNotOptimize(space.size());
  }
}

void BM_BuildDuplexChain(benchmark::State& state) {
  models::DuplexParams p;
  p.n = 18;
  p.k = 16;
  p.m = 8;
  p.seu_rate_per_bit_hour = 1e-5;
  p.erasure_rate_per_symbol_hour = 1e-6;
  p.scrub_rate_per_hour = 1.0;
  for (auto _ : state) {
    const markov::StateSpace space = models::DuplexModel{p}.build();
    benchmark::DoNotOptimize(space.size());
  }
}

void BM_SolveDuplex48hScrubbed(benchmark::State& state) {
  models::DuplexParams p;
  p.n = 18;
  p.k = 16;
  p.m = 8;
  p.seu_rate_per_bit_hour = 7e-7;
  p.scrub_rate_per_hour = 4.0;  // Tsc = 900 s: the stiffest paper case
  const markov::StateSpace space = models::DuplexModel{p}.build();
  const markov::UniformizationSolver solver;
  for (auto _ : state) {
    const auto pi = solver.solve(space.chain, 48.0);
    benchmark::DoNotOptimize(pi.data());
  }
}

}  // namespace

#define RSMEM_BENCH_BOTH_PATHS(fn, tag, code_fn)                     \
  BENCHMARK_CAPTURE(fn, tag##_legacy, code_fn(), Path::kLegacy);     \
  BENCHMARK_CAPTURE(fn, tag##_workspace, code_fn(), Path::kWorkspace)

RSMEM_BENCH_BOTH_PATHS(BM_Encode, rs1816, code1816);
RSMEM_BENCH_BOTH_PATHS(BM_Encode, rs3616, code3616);
RSMEM_BENCH_BOTH_PATHS(BM_Encode, rs255_223, code255223);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeClean, rs1816, code1816);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeClean, rs3616, code3616);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeClean, rs255_223, code255223);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeOneError, rs1816, code1816);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeOneError, rs3616, code3616);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeOneError, rs255_223, code255223);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeErasuresPlusError, rs3616, code3616);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeErasuresPlusError, rs255_223, code255223);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeErasureOnlyFull, rs1816, code1816);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeErasureOnlyFull, rs3616, code3616);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeErasureOnlyFull, rs255_223, code255223);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeAtCapability, rs1816, code1816);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeAtCapability, rs3616, code3616);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeAtCapability, rs255_223, code255223);
BENCHMARK_CAPTURE(BM_BerlekampDecodeOneError, rs1816, code1816());
BENCHMARK_CAPTURE(BM_BerlekampDecodeOneError, rs255_223, code255223());
BENCHMARK(BM_BuildSimplexChain);
BENCHMARK(BM_BuildDuplexChain);
BENCHMARK(BM_SolveDuplex48hScrubbed);

// Plane pairs: scalar control first, then whatever the dispatcher picks
// (on a nosimd build both rows run the scalar loops — the pair then
// documents that the control IS the product).
#define RSMEM_BENCH_PLANE_PAIR(fn, tag, code_fn, count)              \
  BENCHMARK_CAPTURE(fn, tag##_scalar, code_fn(),                     \
                    gf::simd::Backend::kScalar, count);              \
  BENCHMARK_CAPTURE(fn, tag##_simd, code_fn(), gf::simd::select_backend(), \
                    count)

RSMEM_BENCH_PLANE_PAIR(BM_EncodePlane, rs1816_x4096, code1816, 4096);
RSMEM_BENCH_PLANE_PAIR(BM_EncodePlane, rs3616_x4096, code3616, 4096);
RSMEM_BENCH_PLANE_PAIR(BM_EncodePlane, rs255_223_x512, code255223, 512);
RSMEM_BENCH_PLANE_PAIR(BM_DecodePlane, rs1816_x4096, code1816, 4096);
RSMEM_BENCH_PLANE_PAIR(BM_DecodePlane, rs3616_x4096, code3616, 4096);
RSMEM_BENCH_PLANE_PAIR(BM_DecodePlane, rs255_223_x512, code255223, 512);

namespace {

// --plane-selfcheck: assert the kernel layer actually pays for itself.
// Times encode_batch over a large RS(36,16) plane, forced-scalar vs the
// dispatcher's backend, best-of-N wall clock. On hosts where a PSHUFB
// backend (ssse3/avx2) is selected the >= 2x contract is enforced; with
// only swar/scalar available the ratio is recorded but not gated.
int run_plane_selfcheck() {
  using clock = std::chrono::steady_clock;
  const rs::ReedSolomon& code = code3616();
  constexpr std::size_t kCount = 1 << 14;
  constexpr int kReps = 7;
  sim::Rng rng{17};
  std::vector<gf::Element> data(kCount * code.k());
  for (auto& d : data) {
    d = static_cast<gf::Element>(rng.uniform_int(code.field().size()));
  }
  std::vector<gf::Element> plane(kCount * code.n());
  rs::DecoderWorkspace ws;
  ws.reserve(code);

  const gf::simd::Backend selected = gf::simd::select_backend();
  const auto time_backend = [&](gf::simd::Backend b) {
    gf::simd::force_backend(b);
    code.encode_batch(ws, data, plane);  // warm-up + buffer growth
    double best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = clock::now();
      code.encode_batch(ws, data, plane);
      const auto t1 = clock::now();
      best = std::min(best,
                      std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
  };

  const double scalar_s = time_backend(gf::simd::Backend::kScalar);
  const double simd_s = time_backend(selected);
  gf::simd::force_backend(selected);

  const double mb = static_cast<double>(kCount) * code.k() *
                    code.m() / 8.0 / 1e6;
  const double ratio = scalar_s / simd_s;
  // PSHUFB-or-better: the gfni affine backend replaces the two shuffles
  // with one instruction, so it inherits (at least) the PSHUFB contract.
  const bool pshufb = selected == gf::simd::Backend::kSsse3 ||
                      selected == gf::simd::Backend::kAvx2 ||
                      selected == gf::simd::Backend::kGfni;
  std::printf("plane-selfcheck: encode_batch RS(36,16) x %zu words\n",
              kCount);
  std::printf("  scalar  %8.3f ms  %8.1f MB/s\n", scalar_s * 1e3,
              mb / scalar_s);
  std::printf("  %-6s  %8.3f ms  %8.1f MB/s\n",
              gf::simd::to_string(selected), simd_s * 1e3, mb / simd_s);
  std::printf("  speedup %.2fx (threshold %s)\n", ratio,
              pshufb ? ">= 2x enforced" : "record-only");
  if (pshufb && ratio < 2.0) {
    std::printf("FAIL: PSHUFB backend below the 2x speedup contract\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

// The host CPU's SIMD-relevant feature flags, for the JSON context: a
// backend ladder only means something next to the silicon that ran it.
std::string cpu_flags_string() {
#if defined(__x86_64__) || defined(__i386__)
  std::string flags;
  const auto add = [&](bool have, const char* name) {
    if (!have) return;
    if (!flags.empty()) flags += ' ';
    flags += name;
  };
  add(__builtin_cpu_supports("ssse3") != 0, "ssse3");
  add(__builtin_cpu_supports("avx2") != 0, "avx2");
  add(__builtin_cpu_supports("gfni") != 0, "gfni");
  add(__builtin_cpu_supports("avx512f") != 0, "avx512f");
  add(__builtin_cpu_supports("avx512bw") != 0, "avx512bw");
  add(__builtin_cpu_supports("avx512vl") != 0, "avx512vl");
  return flags.empty() ? "none" : flags;
#else
  return "non-x86";
#endif
}

// --backend-sweep: one encode + one decode plane case per backend this host
// can run, named ..._sweep_<backend> so run_bench.sh's snapshot carries the
// full ladder alongside the static scalar/selected pairs.
void register_backend_sweep() {
  for (const gf::simd::Backend b : gf::simd::kAllBackends) {
    if (!gf::simd::backend_supported(b)) continue;
    const std::string suffix = std::string("rs3616_x4096_sweep_") +
                               gf::simd::to_string(b);
    benchmark::RegisterBenchmark(
        ("BM_EncodePlane/" + suffix).c_str(),
        [b](benchmark::State& s) { BM_EncodePlane(s, code3616(), b, 4096); });
    benchmark::RegisterBenchmark(
        ("BM_DecodePlane/" + suffix).c_str(),
        [b](benchmark::State& s) { BM_DecodePlane(s, code3616(), b, 4096); });
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool backend_sweep = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--plane-selfcheck") == 0) {
      return run_plane_selfcheck();
    }
    if (std::strcmp(argv[i], "--backend-sweep") == 0) {
      backend_sweep = true;
      continue;  // strip: google-benchmark would reject the flag
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
#if defined(NDEBUG)
  benchmark::AddCustomContext("rsmem_build_type", "release");
#else
  benchmark::AddCustomContext("rsmem_build_type", "debug");
#endif
  benchmark::AddCustomContext("gf_backend", gf::simd::active().name);
  benchmark::AddCustomContext("cpu_flags", cpu_flags_string());
  if (backend_sweep) register_backend_sweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
