// E10 -- microbenchmarks (google-benchmark): RS codec encode/decode
// throughput for the paper's codes, chain construction, and transient
// solves. These are engineering numbers for library users, not paper
// artifacts.
//
// Every RS codec case is reported for BOTH implementations side by side:
//   *_legacy    -- the Poly-based reference path (encode_legacy/decode_legacy)
//   *_workspace -- the allocation-free DecoderWorkspace fast path
// tools/run_bench.sh snapshots this binary's JSON output into
// BENCH_codec.json at the repo root to track the perf trajectory.
#include <benchmark/benchmark.h>

#include "markov/uniformization.h"
#include "models/ber.h"
#include "models/duplex_model.h"
#include "models/simplex_model.h"
#include "rs/berlekamp.h"
#include "rs/reed_solomon.h"
#include "sim/rng.h"

namespace {

using namespace rsmem;

enum class Path { kLegacy, kWorkspace };

const rs::ReedSolomon& code1816() {
  static const rs::ReedSolomon code{18, 16, 8};
  return code;
}
const rs::ReedSolomon& code3616() {
  static const rs::ReedSolomon code{36, 16, 8};
  return code;
}
const rs::ReedSolomon& code255223() {
  static const rs::ReedSolomon code{255, 223, 8};
  return code;
}

std::vector<gf::Element> random_data(const rs::ReedSolomon& code,
                                     std::uint64_t seed) {
  sim::Rng rng{seed};
  std::vector<gf::Element> data(code.k());
  for (auto& d : data) {
    d = static_cast<gf::Element>(rng.uniform_int(code.field().size()));
  }
  return data;
}

void BM_Encode(benchmark::State& state, const rs::ReedSolomon& code,
               Path path) {
  const auto data = random_data(code, 1);
  std::vector<gf::Element> cw(code.n());
  rs::DecoderWorkspace ws;
  ws.reserve(code);
  for (auto _ : state) {
    if (path == Path::kWorkspace) {
      code.encode(ws, data, cw);
    } else {
      code.encode_legacy(data, cw);
    }
    benchmark::DoNotOptimize(cw.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          code.k() * code.m() / 8);
}

rs::DecodeOutcome run_decode(const rs::ReedSolomon& code,
                             rs::DecoderWorkspace& ws, Path path,
                             std::vector<gf::Element>& word,
                             std::span<const unsigned> erasures = {}) {
  return path == Path::kWorkspace ? code.decode(ws, word, erasures)
                                  : code.decode_legacy(word, erasures);
}

void BM_DecodeClean(benchmark::State& state, const rs::ReedSolomon& code,
                    Path path) {
  const auto cw = code.encode(random_data(code, 2));
  std::vector<gf::Element> word = cw;
  rs::DecoderWorkspace ws;
  ws.reserve(code);
  for (auto _ : state) {
    word = cw;
    const auto outcome = run_decode(code, ws, path, word);
    benchmark::DoNotOptimize(outcome);
  }
}

void BM_DecodeOneError(benchmark::State& state, const rs::ReedSolomon& code,
                       Path path) {
  const auto cw = code.encode(random_data(code, 3));
  std::vector<gf::Element> word;
  rs::DecoderWorkspace ws;
  ws.reserve(code);
  unsigned pos = 0;
  for (auto _ : state) {
    word = cw;
    word[pos % code.n()] ^= 0x2A;
    ++pos;
    const auto outcome = run_decode(code, ws, path, word);
    benchmark::DoNotOptimize(outcome);
  }
}

void BM_DecodeErasuresPlusError(benchmark::State& state,
                                const rs::ReedSolomon& code, Path path) {
  const auto cw = code.encode(random_data(code, 4));
  const unsigned budget = code.parity_symbols();
  const unsigned erasure_count = budget > 2 ? budget - 2 : 0;
  std::vector<unsigned> erasures;
  for (unsigned i = 0; i < erasure_count; ++i) erasures.push_back(i);
  std::vector<gf::Element> word;
  rs::DecoderWorkspace ws;
  ws.reserve(code);
  for (auto _ : state) {
    word = cw;
    for (const unsigned p : erasures) word[p] ^= 0x11;
    word[code.n() - 1] ^= 0x55;
    const auto outcome = run_decode(code, ws, path, word, erasures);
    benchmark::DoNotOptimize(outcome);
  }
}

// Erasure-heavy: the entire parity budget spent on erasures (er = n-k,
// re = 0), every erased symbol actually corrupted.
void BM_DecodeErasureOnlyFull(benchmark::State& state,
                              const rs::ReedSolomon& code, Path path) {
  const auto cw = code.encode(random_data(code, 6));
  std::vector<unsigned> erasures;
  for (unsigned i = 0; i < code.parity_symbols(); ++i) erasures.push_back(i);
  std::vector<gf::Element> word;
  rs::DecoderWorkspace ws;
  ws.reserve(code);
  for (auto _ : state) {
    word = cw;
    for (const unsigned p : erasures) word[p] ^= 0x11;
    const auto outcome = run_decode(code, ws, path, word, erasures);
    benchmark::DoNotOptimize(outcome);
  }
}

// At-capability: 2*re + er = n-k exactly, mixing both fault kinds (the
// decoder's worst case: longest locators, fullest Chien/Forney pass).
void BM_DecodeAtCapability(benchmark::State& state,
                           const rs::ReedSolomon& code, Path path) {
  const auto cw = code.encode(random_data(code, 7));
  const unsigned budget = code.parity_symbols();
  const unsigned re = budget >= 4 ? budget / 4 : budget / 2;
  const unsigned er = budget - 2 * re;
  std::vector<unsigned> erasures;
  for (unsigned i = 0; i < er; ++i) erasures.push_back(i);
  std::vector<gf::Element> word;
  rs::DecoderWorkspace ws;
  ws.reserve(code);
  for (auto _ : state) {
    word = cw;
    for (const unsigned p : erasures) word[p] ^= 0x11;
    for (unsigned i = 0; i < re; ++i) word[er + 2 * i] ^= 0x2A;
    const auto outcome = run_decode(code, ws, path, word, erasures);
    benchmark::DoNotOptimize(outcome);
  }
}

void BM_BerlekampDecodeOneError(benchmark::State& state,
                                const rs::ReedSolomon& code) {
  const rs::BerlekampDecoder decoder{code};
  const auto cw = code.encode(random_data(code, 5));
  std::vector<gf::Element> word;
  unsigned pos = 0;
  for (auto _ : state) {
    word = cw;
    word[pos % code.n()] ^= 0x2A;
    ++pos;
    const auto outcome = decoder.decode(word);
    benchmark::DoNotOptimize(outcome);
  }
}

void BM_BuildSimplexChain(benchmark::State& state) {
  models::SimplexParams p;
  p.n = 36;
  p.k = 16;
  p.m = 8;
  p.seu_rate_per_bit_hour = 1e-5;
  p.erasure_rate_per_symbol_hour = 1e-6;
  p.scrub_rate_per_hour = 1.0;
  for (auto _ : state) {
    const markov::StateSpace space = models::SimplexModel{p}.build();
    benchmark::DoNotOptimize(space.size());
  }
}

void BM_BuildDuplexChain(benchmark::State& state) {
  models::DuplexParams p;
  p.n = 18;
  p.k = 16;
  p.m = 8;
  p.seu_rate_per_bit_hour = 1e-5;
  p.erasure_rate_per_symbol_hour = 1e-6;
  p.scrub_rate_per_hour = 1.0;
  for (auto _ : state) {
    const markov::StateSpace space = models::DuplexModel{p}.build();
    benchmark::DoNotOptimize(space.size());
  }
}

void BM_SolveDuplex48hScrubbed(benchmark::State& state) {
  models::DuplexParams p;
  p.n = 18;
  p.k = 16;
  p.m = 8;
  p.seu_rate_per_bit_hour = 7e-7;
  p.scrub_rate_per_hour = 4.0;  // Tsc = 900 s: the stiffest paper case
  const markov::StateSpace space = models::DuplexModel{p}.build();
  const markov::UniformizationSolver solver;
  for (auto _ : state) {
    const auto pi = solver.solve(space.chain, 48.0);
    benchmark::DoNotOptimize(pi.data());
  }
}

}  // namespace

#define RSMEM_BENCH_BOTH_PATHS(fn, tag, code_fn)                     \
  BENCHMARK_CAPTURE(fn, tag##_legacy, code_fn(), Path::kLegacy);     \
  BENCHMARK_CAPTURE(fn, tag##_workspace, code_fn(), Path::kWorkspace)

RSMEM_BENCH_BOTH_PATHS(BM_Encode, rs1816, code1816);
RSMEM_BENCH_BOTH_PATHS(BM_Encode, rs3616, code3616);
RSMEM_BENCH_BOTH_PATHS(BM_Encode, rs255_223, code255223);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeClean, rs1816, code1816);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeClean, rs3616, code3616);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeClean, rs255_223, code255223);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeOneError, rs1816, code1816);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeOneError, rs3616, code3616);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeOneError, rs255_223, code255223);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeErasuresPlusError, rs3616, code3616);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeErasuresPlusError, rs255_223, code255223);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeErasureOnlyFull, rs1816, code1816);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeErasureOnlyFull, rs3616, code3616);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeErasureOnlyFull, rs255_223, code255223);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeAtCapability, rs1816, code1816);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeAtCapability, rs3616, code3616);
RSMEM_BENCH_BOTH_PATHS(BM_DecodeAtCapability, rs255_223, code255223);
BENCHMARK_CAPTURE(BM_BerlekampDecodeOneError, rs1816, code1816());
BENCHMARK_CAPTURE(BM_BerlekampDecodeOneError, rs255_223, code255223());
BENCHMARK(BM_BuildSimplexChain);
BENCHMARK(BM_BuildDuplexChain);
BENCHMARK(BM_SolveDuplex48hScrubbed);

BENCHMARK_MAIN();
