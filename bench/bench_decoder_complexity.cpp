// E7 -- paper Section 6 decoder-complexity comparison:
//   Td ~= 3n + 10(n-k):  RS(36,16) -> 308 cycles, RS(18,16) -> 74 cycles
//   ("the decoding access time ... is more than four times higher"), and
//   one RS(36,16) decoder needs more area than two RS(18,16) decoders.
#include "bench_common.h"
#include "core/api.h"
#include "reliability/decoder_cost.h"

using namespace rsmem;

int main() {
  bench::print_header("bench_decoder_complexity", "Section 6 (Td/area table)",
                      "decoder latency and area of the three arrangements");

  const reliability::DecoderCostModel model;
  struct Row {
    const char* name;
    unsigned n, k;
    reliability::ArrangementCost cost;
  };
  const Row rows[] = {
      {"simplex RS(18,16)", 18, 16, reliability::simplex_cost(model, 18, 16, 8)},
      {"duplex  RS(18,16)", 18, 16, reliability::duplex_cost(model, 18, 16, 8)},
      {"simplex RS(36,16)", 36, 16, reliability::simplex_cost(model, 36, 16, 8)},
  };

  analysis::Table table{{"arrangement", "n", "k", "Td [cycles]",
                         "codec area [gates]"}};
  for (const Row& r : rows) {
    table.add_row({r.name, std::to_string(r.n), std::to_string(r.k),
                   analysis::format_fixed(r.cost.decode_cycles, 0),
                   analysis::format_fixed(r.cost.area_gates, 0)});
  }
  std::printf("%s", table.to_text().c_str());

  bench::ShapeChecks checks;
  checks.expect(rows[0].cost.decode_cycles == 74.0,
                "Td(RS(18,16)) = 3*18 + 10*2 = 74 cycles (paper value)");
  checks.expect(rows[2].cost.decode_cycles == 308.0,
                "Td(RS(36,16)) = 3*36 + 10*20 = 308 cycles (paper value)");
  checks.expect(
      rows[2].cost.decode_cycles / rows[1].cost.decode_cycles > 4.0,
      "RS(36,16) access time more than 4x the duplex RS(18,16)");
  checks.expect(rows[2].cost.area_gates > rows[1].cost.area_gates,
                "one RS(36,16) decoder larger than two RS(18,16) decoders");

  // Same comparison through the public facade.
  core::MemorySystemSpec duplex;
  duplex.arrangement = analysis::Arrangement::kDuplex;
  core::MemorySystemSpec wide;
  wide.code = {36, 16, 8, 1};
  checks.expect(codec_cost(wide).decode_cycles ==
                    rows[2].cost.decode_cycles &&
                codec_cost(duplex).area_gates == rows[1].cost.area_gates,
                "facade codec_cost matches the model");
  return checks.exit_code();
}
