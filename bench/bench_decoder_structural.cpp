// E16 -- extension of Section 6: derive decoder latency and area from a
// STRUCTURAL pipeline model (syndrome / RiBM key-equation / Chien-Forney,
// gate-level GF operator costs) instead of the paper's fitted
// Td ~= 3n + 10(n-k), and confirm the paper's two hardware claims emerge
// from structure: the >4x access-time gap and the area ordering.
#include "bench_common.h"
#include "hw/codec_hw_model.h"
#include "reliability/decoder_cost.h"

using namespace rsmem;

int main() {
  bench::print_header(
      "bench_decoder_structural", "Section 6 structural hardware study (E16)",
      "gate-level codec pipeline model vs the paper's fitted cost model");

  const reliability::DecoderCostModel fit;
  analysis::Table table{{"code", "Td fit [cyc]", "Td structural [cyc]",
                         "syn/keyeq/chien", "gates", "registers [bits]",
                         "multipliers"}};
  struct Code {
    unsigned n, k;
  };
  const Code codes[] = {{18, 16}, {20, 16}, {24, 16}, {36, 16}, {255, 223}};
  for (const Code& c : codes) {
    const hw::HwEstimate est = hw::decoder_estimate(c.n, c.k, 8);
    const hw::DecodeLatencyBreakdown b =
        hw::decode_latency_breakdown(c.n, c.k, 8);
    char name[16], split[32];
    std::snprintf(name, sizeof name, "RS(%u,%u)", c.n, c.k);
    std::snprintf(split, sizeof split, "%.0f/%.0f/%.0f", b.syndrome,
                  b.key_equation, b.chien_forney);
    table.add_row({name, analysis::format_fixed(fit.decode_cycles(c.n, c.k), 0),
                   analysis::format_fixed(est.latency_cycles, 0), split,
                   analysis::format_fixed(est.gate_count, 0),
                   analysis::format_fixed(est.register_bits, 0),
                   analysis::format_fixed(est.multiplier_count, 0)});
  }
  std::printf("%s", table.to_text().c_str());

  bench::ShapeChecks checks;
  const hw::HwEstimate d1816 = hw::decoder_estimate(18, 16, 8);
  const hw::HwEstimate d3616 = hw::decoder_estimate(36, 16, 8);
  // Both models have the affine a*n + b*(n-k) form; the structural b is
  // smaller (RiBM iterates once per check symbol) but the paper's ordering
  // claims must still emerge.
  checks.expect(
      d3616.latency_cycles / d1816.latency_cycles > 2.0,
      "structural access-time gap RS(36,16) vs RS(18,16) is large (>2x)");
  checks.expect(d3616.gate_count > 2.0 * d1816.gate_count,
                "structural area: one RS(36,16) > two RS(18,16) decoders");
  // Encoder is far cheaper than the decoder.
  const hw::HwEstimate enc = hw::encoder_estimate(18, 16, 8);
  checks.expect(enc.gate_count < d1816.gate_count / 5.0,
                "encoder is a small fraction of the decoder");
  // The fitted model's area ratio agrees with the structural one within 2x.
  const double fit_ratio =
      fit.area_gates(36, 16, 8) / fit.area_gates(18, 16, 8);
  const double struct_ratio = d3616.gate_count / d1816.gate_count;
  checks.expect(struct_ratio > fit_ratio / 2.0 &&
                    struct_ratio < fit_ratio * 2.0,
                "structural vs fitted area ratio agree within 2x (" +
                    analysis::format_fixed(struct_ratio, 2) + " vs " +
                    analysis::format_fixed(fit_ratio, 2) + ")");
  return checks.exit_code();
}
