// E21 -- extension: how wrong is the chains' constant-rate permanent-fault
// assumption when parts actually WEAR OUT (Weibull beta > 1)? The
// functional simulator runs the exact NHPP; the chain is calibrated to the
// same total expected fault count at mission end. Mid-mission the chain
// then OVER-predicts failures (wearout faults cluster late), while at the
// calibration horizon the two nearly agree (same Poisson counts, mild
// clustering correction).
#include <cmath>

#include "bench_common.h"
#include "analysis/monte_carlo.h"
#include "markov/uniformization.h"
#include "models/ber.h"

using namespace rsmem;

namespace {

double mc_fail(double rate, double shape, double t, std::uint64_t seed) {
  memory::SimplexSystemConfig cfg;
  cfg.rates.perm_rate_per_symbol_hour = rate;
  cfg.rates.perm_weibull_shape = shape;
  analysis::MonteCarloConfig mc;
  mc.trials = 3000;
  mc.t_end_hours = t;
  mc.seed = seed;
  return analysis::run_simplex_trials(cfg, mc).failure.p_hat();
}

double chain_fail(double rate, double t) {
  models::SimplexParams p;
  p.n = 18;
  p.k = 16;
  p.m = 8;
  p.erasure_rate_per_symbol_hour = rate;
  const markov::UniformizationSolver solver;
  const std::vector<double> times{t};
  return models::simplex_ber_curve(p, times, solver).fail_probability[0];
}

}  // namespace

int main() {
  bench::print_header(
      "bench_wearout", "wearout study (E21)",
      "constant-rate chain vs Weibull(beta=2) wearout, simplex RS(18,16)");

  // Characteristic rate: mission end T = characteristic life / 3 so the
  // counts stay in the interesting few-faults regime.
  const double rate = 2.5e-3;  // 1/rate = 400 h
  const double mission = 120.0;

  analysis::Table table{{"time [h]", "chain (constant)", "MC constant",
                         "MC wearout beta=2", "wearout/chain"}};
  bench::ShapeChecks checks;
  double early_ratio = 0.0, late_ratio = 0.0;
  for (const double t : {30.0, 60.0, 120.0}) {
    const double chain = chain_fail(rate, t);
    // Wearout calibrated to match the chain's cumulative hazard AT MISSION
    // END: (r_w * T)^2 = rate * T  ->  r_w = sqrt(rate / T).
    const double wear_rate = std::sqrt(rate / mission);
    const double mc_const = mc_fail(rate, 1.0, t, 42);
    const double mc_wear = mc_fail(wear_rate, 2.0, t, 43);
    const double ratio = mc_wear / std::max(chain, 1e-12);
    if (t == 30.0) early_ratio = ratio;
    if (t == mission) late_ratio = ratio;
    table.add_row({analysis::format_fixed(t, 0), analysis::format_sci(chain),
                   analysis::format_sci(mc_const),
                   analysis::format_sci(mc_wear),
                   analysis::format_fixed(ratio, 3)});
  }
  std::printf("%s", table.to_text().c_str());

  checks.expect(early_ratio < 0.3,
                "early mission: the constant-rate chain over-predicts "
                "wearout failures by >3x");
  checks.expect(late_ratio > 0.5 && late_ratio < 2.0,
                "at the calibration horizon the chain is the right order");
  std::printf(
      "\nreading: with end-of-life-calibrated rates the paper's constant-\n"
      "rate chains are CONSERVATIVE for most of the mission under wearout\n"
      "(failures cluster late); calibrate rates to the mission phase that\n"
      "matters, or use the functional NHPP stack for bathtub profiles.\n");
  return checks.exit_code();
}
