// E14 -- extension: multi-bit upsets. The paper assumes SEUs flip single
// bits; scaled technologies see bursts spanning adjacent cells. RS symbol
// organization absorbs any burst confined to one m-bit symbol, so only
// boundary-crossing bursts hurt: the BER penalty of going from 0% to 100%
// 2-bit bursts is the crossing fraction q = (n-1)/(n*m - 1) ~ 12%, not 2x.
// The mean-field chain is validated against the exact-geometry functional
// injector.
#include <cmath>

#include "bench_common.h"
#include "core/units.h"
#include "markov/uniformization.h"
#include "memory/ssmm.h"
#include "models/ber.h"

using namespace rsmem;

int main() {
  bench::print_header(
      "bench_mbu", "multi-bit-upset study (E14)",
      "simplex RS(18,16) under burst SEUs: chain vs functional injector");

  const markov::UniformizationSolver solver;
  const std::vector<double> times{48.0};
  const double lambda_hour = 1e-4;  // accelerated

  analysis::Table table{{"MBU fraction", "span [bits]", "chain P_fail(48h)",
                         "functional fraction", "4-sigma band"}};
  bench::ShapeChecks checks;
  double baseline = 0.0;
  double full_burst = 0.0;

  for (const double p_mbu : {0.0, 0.25, 0.5, 1.0}) {
    models::SimplexParams params;
    params.n = 18;
    params.k = 16;
    params.m = 8;
    params.seu_rate_per_bit_hour = lambda_hour;
    params.mbu_probability = p_mbu;
    params.mbu_span_bits = 2;
    const double chain =
        models::simplex_ber_curve(params, times, solver).fail_probability[0];
    if (p_mbu == 0.0) baseline = chain;
    if (p_mbu == 1.0) full_burst = chain;

    memory::SsmmConfig cfg;
    cfg.words = 800;
    cfg.rates.seu_rate_per_bit_hour = lambda_hour;
    cfg.rates.mbu_probability = p_mbu;
    cfg.rates.mbu_span_bits = 2;
    cfg.seed = 1234;
    const auto checkpoints = memory::run_ssmm_mission(cfg, times);
    const double functional = checkpoints[0].word_fail_fraction();
    const double band =
        4.0 * std::sqrt(chain * (1.0 - chain) / 800.0) + 2e-3;

    table.add_row({analysis::format_fixed(p_mbu, 2), "2",
                   analysis::format_sci(chain),
                   analysis::format_sci(functional),
                   analysis::format_sci(band)});
    checks.expect(std::abs(functional - chain) < band,
                  "functional within band at MBU fraction " +
                      analysis::format_fixed(p_mbu, 2));
  }
  std::printf("%s", table.to_text().c_str());

  const double q = 17.0 / (18.0 * 8.0 - 1.0);
  std::printf(
      "\nboundary-crossing fraction q = (n-1)/(n*m-1) = %.4f: all-burst vs\n"
      "single-bit P_fail ratio measured %.3f (symbol organization absorbs\n"
      "in-symbol bursts; a bit-interleaved layout would pay the full 2x).\n",
      q, full_burst / baseline);
  checks.expect(full_burst > baseline,
                "boundary-crossing bursts raise P_fail");
  checks.expect(full_burst < baseline * 1.6,
                "RS symbols absorb in-symbol bursts (penalty well under 2x)");

  // Wider bursts cross more often: span 8 crosses with q = 7*(n-1)/(nm-7).
  models::SimplexParams wide;
  wide.n = 18;
  wide.k = 16;
  wide.m = 8;
  wide.seu_rate_per_bit_hour = lambda_hour;
  wide.mbu_probability = 1.0;
  wide.mbu_span_bits = 8;
  const double wide_ber =
      models::simplex_ber_curve(wide, times, solver).fail_probability[0];
  checks.expect(wide_ber > full_burst,
                "wider bursts (span 8) hurt more than span 2");
  return checks.exit_code();
}
