// E8 -- validation experiment (not in the paper): the functional memory
// system (real RS decoder, real arbiter, Poisson fault injection) versus the
// Markov chains, at accelerated rates where failures are observable.
//
// For each scenario the Monte-Carlo estimate and its 95% Wilson interval
// are printed against the chain prediction(s).
//
// The campaign-throughput sections (threads, codec path, batched planes)
// can additionally be recorded into the BENCH_codec.json snapshot:
// `--campaign-json <path>` parses the google-benchmark JSON at <path> and
// inserts a top-level `mc_campaign` object whose context names the rsmem
// build type and the SELECTED gf backend — campaign trials/s without the
// backend that produced them is not a comparable number. run_bench.sh
// passes BENCH_codec.json here after its release-build guard.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "bench_common.h"
#include "analysis/monte_carlo.h"
#include "core/api.h"
#include "gf/simd_mul.h"
#include "markov/uniformization.h"
#include "models/ber.h"
#include "service/json.h"

using namespace rsmem;

namespace {

struct Scenario {
  const char* name;
  analysis::Arrangement arrangement;
  double seu_per_bit_day;
  double erasure_per_symbol_day;
  double scrub_period_seconds;
};

// Campaign throughput numbers accumulated for the --campaign-json merge.
struct CampaignJson {
  double single_trials_per_second = 0.0;
  double parallel_trials_per_second = 0.0;
  double legacy_trials_per_second = 0.0;
  double workspace_trials_per_second = 0.0;
  double per_word_trials_per_second = 0.0;
  double batched_trials_per_second = 0.0;
};

// Inserts/overwrites `mc_campaign` in the benchmark JSON at `path` using
// the canonical service serializer (sorted keys, round-trip-exact doubles).
int merge_campaign_json(const char* path, const CampaignJson& numbers) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path);
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto parsed = service::Json::parse(text.str());
  if (!parsed.ok() || !parsed.value().is_object()) {
    std::fprintf(stderr, "error: %s is not a JSON object\n", path);
    return 1;
  }
  service::JsonObject root = parsed.value().as_object();
  root["mc_campaign"] = service::JsonObject{
      {"context",
       service::JsonObject{
#if defined(NDEBUG)
           {"rsmem_build_type", "release"},
#else
           {"rsmem_build_type", "debug"},
#endif
           {"gf_backend", gf::simd::active().name},
       }},
      {"threads",
       service::JsonObject{
           {"single_trials_per_second", numbers.single_trials_per_second},
           {"parallel_trials_per_second", numbers.parallel_trials_per_second},
       }},
      {"codec_path",
       service::JsonObject{
           {"gf_backend", gf::simd::active().name},
           {"legacy_trials_per_second", numbers.legacy_trials_per_second},
           {"workspace_trials_per_second",
            numbers.workspace_trials_per_second},
       }},
      {"batched_campaign",
       service::JsonObject{
           {"gf_backend", gf::simd::active().name},
           {"per_word_trials_per_second", numbers.per_word_trials_per_second},
           {"batched_trials_per_second", numbers.batched_trials_per_second},
       }},
  };
  std::ofstream out_file(path, std::ios::trunc);
  if (!out_file) {
    std::fprintf(stderr, "error: cannot write %s\n", path);
    return 1;
  }
  out_file << service::Json{std::move(root)}.serialize() << "\n";
  return out_file ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const char* campaign_json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--campaign-json") == 0 && i + 1 < argc) {
      campaign_json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_mc_vs_markov [--campaign-json <path>]\n");
      return 2;
    }
  }
  CampaignJson numbers;
  bench::print_header(
      "bench_mc_vs_markov", "model validation (DESIGN.md E8)",
      "functional Monte-Carlo vs Markov P_Fail(48h), accelerated rates");

  const Scenario scenarios[] = {
      {"simplex SEU", analysis::Arrangement::kSimplex, 2.4e-3, 0.0, 0.0},
      {"simplex permanent", analysis::Arrangement::kSimplex, 0.0, 4.8e-2,
       0.0},
      {"simplex SEU+scrub", analysis::Arrangement::kSimplex, 1.2e-2, 0.0,
       1800.0},
      {"duplex SEU", analysis::Arrangement::kDuplex, 2.9e-3, 0.0, 0.0},
      {"duplex permanent", analysis::Arrangement::kDuplex, 0.0, 0.192, 0.0},
      {"duplex mixed", analysis::Arrangement::kDuplex, 2.4e-3, 4.8e-2, 0.0},
  };

  analysis::Table table{{"scenario", "MC p_hat", "95% CI low", "95% CI high",
                         "Markov (paper)", "Markov (both-lost)", "covered"}};
  bench::ShapeChecks checks;
  const markov::UniformizationSolver solver;
  const std::vector<double> times{48.0};

  for (const Scenario& sc : scenarios) {
    core::MemorySystemSpec spec;
    spec.arrangement = sc.arrangement;
    spec.seu_rate_per_bit_day = sc.seu_per_bit_day;
    spec.erasure_rate_per_symbol_day = sc.erasure_per_symbol_day;
    spec.scrub_period_seconds = sc.scrub_period_seconds;

    analysis::MonteCarloConfig mc;
    mc.trials = 1500;
    mc.t_end_hours = 48.0;
    mc.seed = 20240707;
    const analysis::MonteCarloResult sim = simulate(spec, mc);

    double conservative = 0.0;
    double optimistic = 0.0;
    if (sc.arrangement == analysis::Arrangement::kSimplex) {
      conservative = optimistic = fail_probability(spec, 48.0);
    } else {
      // The functional duplex exposes each physical symbol, so compare
      // against the per-physical-symbol convention; bracket with the two
      // fail criteria (see DESIGN.md section 2).
      models::DuplexParams params = spec.to_duplex_params();
      params.convention = models::RateConvention::kPerPhysicalSymbol;
      conservative =
          models::duplex_ber_curve(params, times, solver).fail_probability[0];
      params.fail_criterion = models::FailCriterion::kBothWordsUnrecoverable;
      optimistic =
          models::duplex_ber_curve(params, times, solver).fail_probability[0];
    }
    const double band = 4.0 * sim.failure.std_error() + 1e-3;
    const bool covered = sim.failure.p_hat() <= conservative + band &&
                         sim.failure.p_hat() >= optimistic - band;
    table.add_row({sc.name, analysis::format_fixed(sim.failure.p_hat(), 4),
                   analysis::format_fixed(sim.failure.wilson_low(), 4),
                   analysis::format_fixed(sim.failure.wilson_high(), 4),
                   analysis::format_fixed(conservative, 4),
                   analysis::format_fixed(optimistic, 4),
                   covered ? "yes" : "NO"});
    checks.expect(covered, std::string("MC within the chain bracket: ") +
                               sc.name);
  }
  std::printf("%s", table.to_text().c_str());
  std::printf(
      "note: the paper's chain fails as soon as EITHER duplex word exceeds\n"
      "its budget; the real arbiter usually survives one lost word, so the\n"
      "functional system lands between the two criteria (see EXPERIMENTS.md).\n");

  // ---- Campaign throughput: single-threaded seed path vs parallel. ----
  const unsigned hw = std::thread::hardware_concurrency();
  core::MemorySystemSpec spec;
  spec.arrangement = analysis::Arrangement::kSimplex;
  spec.seu_rate_per_bit_day = 2.4e-3;

  analysis::MonteCarloConfig mc;
  mc.trials = 60000;
  mc.t_end_hours = 48.0;
  mc.seed = 20240707;

  analysis::CampaignReport single_report;
  mc.threads = 1;
  const analysis::MonteCarloResult single =
      simulate(spec, mc, memory::ScrubPolicy::kExponential, &single_report);

  analysis::CampaignReport parallel_report;
  mc.threads = 0;  // hardware concurrency
  const analysis::MonteCarloResult parallel =
      simulate(spec, mc, memory::ScrubPolicy::kExponential, &parallel_report);

  numbers.single_trials_per_second = single_report.trials_per_second;
  numbers.parallel_trials_per_second = parallel_report.trials_per_second;
  const double speedup =
      single_report.trials_per_second > 0.0
          ? parallel_report.trials_per_second / single_report.trials_per_second
          : 0.0;
  analysis::Table perf{{"threads", "shards", "trials/s", "speedup"}};
  perf.add_row({"1", std::to_string(single_report.chunks),
                analysis::format_sci(single_report.trials_per_second), "1.00"});
  perf.add_row({std::to_string(parallel_report.threads_used),
                std::to_string(parallel_report.chunks),
                analysis::format_sci(parallel_report.trials_per_second),
                analysis::format_fixed(speedup, 2)});
  std::printf("%s", perf.to_text().c_str());

  checks.expect(single.failure.failures == parallel.failure.failures &&
                    single.failure.trials == parallel.failure.trials &&
                    single.mean_seu_per_trial == parallel.mean_seu_per_trial &&
                    single.scrub_failures == parallel.scrub_failures,
                "campaign result bit-identical across thread counts");
  if (hw >= 4) {
    checks.expect(speedup >= 3.0,
                  "parallel campaign >= 3x trials/s on 4+ hardware threads");
  } else {
    std::printf(
        "note: %u hardware thread(s) available; >= 3x speedup check needs 4+\n",
        hw);
  }

  // ---- Codec fast path: legacy per-trial codec vs shared codec + workspace
  // (single-threaded, so only the codec path differs). Measured on a
  // SCRUBBED RS(36,16) campaign -- each scrub pass is a read + decode +
  // rewrite, and the SEU rate is tuned to ~1 flip per 30-minute scrub
  // interval, so the ~96 decodes per 48 h trial mostly run the full
  // locator/Chien/Forney pipeline (t = 10 keeps them correctable). That is
  // the decoder-bound regime the paper's scrubbing analysis exercises.
  core::MemorySystemSpec codec_spec = spec;
  codec_spec.code = rs::CodeParams{36, 16, 8, 1};
  codec_spec.seu_rate_per_bit_day = 0.167;  // ~1 SEU per scrub interval
  codec_spec.scrub_period_seconds = 1800.0;
  analysis::MonteCarloConfig codec_mc = mc;
  codec_mc.trials = 4000;
  codec_mc.threads = 1;

  // Best-of-3 paired reps, same estimator as the batched pair below: each
  // rep's arms run back-to-back so shared-host noise cancels within a
  // rep's ratio, and the best rep estimates the uncontended speedup.
  constexpr int kCodecReps = 3;
  analysis::MonteCarloResult legacy;
  analysis::MonteCarloResult fast;
  double legacy_best = 0.0;
  double fast_best = 0.0;
  double codec_speedup = 0.0;
  for (int rep = 0; rep < kCodecReps; ++rep) {
    analysis::CampaignReport legacy_report;
    codec_mc.legacy_codec = true;
    legacy = simulate(codec_spec, codec_mc, memory::ScrubPolicy::kExponential,
                      &legacy_report);
    legacy_best = std::max(legacy_best, legacy_report.trials_per_second);

    analysis::CampaignReport fast_report;
    codec_mc.legacy_codec = false;
    fast = simulate(codec_spec, codec_mc, memory::ScrubPolicy::kExponential,
                    &fast_report);
    fast_best = std::max(fast_best, fast_report.trials_per_second);

    if (legacy_report.trials_per_second > 0.0) {
      codec_speedup = std::max(codec_speedup,
                               fast_report.trials_per_second /
                                   legacy_report.trials_per_second);
    }
  }

  numbers.legacy_trials_per_second = legacy_best;
  numbers.workspace_trials_per_second = fast_best;
  std::printf("codec-path section gf backend: %s\n", gf::simd::active().name);
  analysis::Table codec{{"codec path (best of 3)", "trials/s", "speedup"}};
  codec.add_row({"legacy (per-trial codec)", analysis::format_sci(legacy_best),
                 "1.00"});
  codec.add_row({"workspace fast path", analysis::format_sci(fast_best),
                 analysis::format_fixed(codec_speedup, 2)});
  std::printf("%s", codec.to_text().c_str());

  checks.expect(
      legacy.failure.failures == fast.failure.failures &&
          legacy.failure.trials == fast.failure.trials &&
          legacy.mean_seu_per_trial == fast.mean_seu_per_trial &&
          legacy.mean_permanent_per_trial == fast.mean_permanent_per_trial &&
          legacy.scrub_failures == fast.scrub_failures &&
          legacy.scrub_miscorrections == fast.scrub_miscorrections &&
          legacy.no_output_failures == fast.no_output_failures &&
          legacy.wrong_data_failures == fast.wrong_data_failures,
      "campaign result bit-identical across codec paths");
  checks.expect(codec_speedup >= 1.5,
                "workspace codec >= 1.5x end-to-end trials/s");

  // ---- Batched trial planes: per-word control vs gather/decode/scatter.
  // Decode-dominated regime: unscrubbed RS(255,223) at a LOW fault rate, so
  // nearly every trial's read is a clean decode of a long word -- exactly
  // where the batch path's plane-wide SIMD syndrome screen replaces one
  // full per-word decode per trial. batch_trials is a pure execution-shape
  // knob (gather N trials' raw module reads into one word/flag plane, one
  // rs::decode_batch, scatter), so the two runs must be bit-identical.
  core::MemorySystemSpec plane_spec;
  plane_spec.arrangement = analysis::Arrangement::kSimplex;
  plane_spec.code = rs::CodeParams{255, 223, 8, 1};
  plane_spec.seu_rate_per_bit_day = 2e-5;

  analysis::MonteCarloConfig plane_mc;
  plane_mc.trials = 10000;
  plane_mc.t_end_hours = 48.0;
  plane_mc.seed = 20240707;
  plane_mc.threads = 1;

  // Best-of-7 PAIRED reps: each rep runs per-word then batched
  // back-to-back and contributes one speedup sample. The arms of a rep are
  // adjacent in time, so a shared-host interference window (CPU steal
  // lasting seconds -- longer than a rep) slows both arms of a rep alike
  // and mostly cancels in that rep's ratio, where a cross-rep
  // best-throughput ratio wanders whenever the noise lands on one arm's
  // quiet rep but not the other's. The gate takes the BEST paired rep --
  // the run_plane_selfcheck best-of-N idiom, estimating the uncontended
  // speedup (host contention is not the thing under test); the median is
  // printed alongside for transparency. Throughputs reported (and merged
  // into the campaign JSON) are likewise each arm's best rep.
  constexpr int kPairReps = 7;
  analysis::MonteCarloResult per_word;
  analysis::MonteCarloResult batched;
  double per_word_best = 0.0;
  double batched_best = 0.0;
  double rep_speedups[kPairReps] = {};
  for (int rep = 0; rep < kPairReps; ++rep) {
    analysis::CampaignReport per_word_report;
    plane_mc.batch_trials = 1;  // the historical per-trial read() path
    per_word = simulate(plane_spec, plane_mc,
                        memory::ScrubPolicy::kExponential, &per_word_report);
    per_word_best =
        std::max(per_word_best, per_word_report.trials_per_second);

    analysis::CampaignReport batched_report;
    plane_mc.batch_trials = 0;  // default plane width
    batched = simulate(plane_spec, plane_mc,
                       memory::ScrubPolicy::kExponential, &batched_report);
    batched_best = std::max(batched_best, batched_report.trials_per_second);

    rep_speedups[rep] = per_word_report.trials_per_second > 0.0
                            ? batched_report.trials_per_second /
                                  per_word_report.trials_per_second
                            : 0.0;
  }
  std::sort(rep_speedups, rep_speedups + kPairReps);

  numbers.per_word_trials_per_second = per_word_best;
  numbers.batched_trials_per_second = batched_best;
  const double batch_speedup = rep_speedups[kPairReps - 1];
  const double batch_speedup_median = rep_speedups[kPairReps / 2];
  const gf::simd::Backend selected = gf::simd::active().backend;
  const bool fast_backend = selected == gf::simd::Backend::kSsse3 ||
                            selected == gf::simd::Backend::kAvx2 ||
                            selected == gf::simd::Backend::kGfni;
  std::printf("batched campaign gf backend: %s\n",
              gf::simd::to_string(selected));
  analysis::Table plane{{"read path (best of 7)", "trials/s", "speedup"}};
  plane.add_row({"per-word (batch_trials=1)",
                 analysis::format_sci(per_word_best), "1.00"});
  plane.add_row({"batched planes (default)",
                 analysis::format_sci(batched_best),
                 analysis::format_fixed(batch_speedup, 2)});
  std::printf("(speedup = best of %d paired reps; median %.2f)\n", kPairReps,
              batch_speedup_median);
  std::printf("%s", plane.to_text().c_str());

  checks.expect(
      per_word.failure.failures == batched.failure.failures &&
          per_word.failure.trials == batched.failure.trials &&
          per_word.mean_seu_per_trial == batched.mean_seu_per_trial &&
          per_word.mean_permanent_per_trial ==
              batched.mean_permanent_per_trial &&
          per_word.scrub_failures == batched.scrub_failures &&
          per_word.no_output_failures == batched.no_output_failures &&
          per_word.wrong_data_failures == batched.wrong_data_failures,
      "campaign result bit-identical across batch widths");
  if (fast_backend) {
    checks.expect(batch_speedup >= 1.3,
                  "batched campaign >= 1.3x trials/s (PSHUFB-or-better "
                  "backend selected)");
  } else {
    std::printf(
        "note: gf backend '%s' has no PSHUFB-or-better kernels; the 1.3x\n"
        "batched-campaign contract is recorded, not asserted\n",
        gf::simd::to_string(selected));
  }

  if (checks.exit_code() == 0 && campaign_json_path != nullptr) {
    if (merge_campaign_json(campaign_json_path, numbers) != 0) return 1;
    std::printf("merged mc_campaign section into %s\n", campaign_json_path);
  }
  return checks.exit_code();
}
