// E8 -- validation experiment (not in the paper): the functional memory
// system (real RS decoder, real arbiter, Poisson fault injection) versus the
// Markov chains, at accelerated rates where failures are observable.
//
// For each scenario the Monte-Carlo estimate and its 95% Wilson interval
// are printed against the chain prediction(s).
#include "bench_common.h"
#include "analysis/monte_carlo.h"
#include "core/api.h"
#include "markov/uniformization.h"
#include "models/ber.h"

using namespace rsmem;

namespace {

struct Scenario {
  const char* name;
  analysis::Arrangement arrangement;
  double seu_per_bit_day;
  double erasure_per_symbol_day;
  double scrub_period_seconds;
};

}  // namespace

int main() {
  bench::print_header(
      "bench_mc_vs_markov", "model validation (DESIGN.md E8)",
      "functional Monte-Carlo vs Markov P_Fail(48h), accelerated rates");

  const Scenario scenarios[] = {
      {"simplex SEU", analysis::Arrangement::kSimplex, 2.4e-3, 0.0, 0.0},
      {"simplex permanent", analysis::Arrangement::kSimplex, 0.0, 4.8e-2,
       0.0},
      {"simplex SEU+scrub", analysis::Arrangement::kSimplex, 1.2e-2, 0.0,
       1800.0},
      {"duplex SEU", analysis::Arrangement::kDuplex, 2.9e-3, 0.0, 0.0},
      {"duplex permanent", analysis::Arrangement::kDuplex, 0.0, 0.192, 0.0},
      {"duplex mixed", analysis::Arrangement::kDuplex, 2.4e-3, 4.8e-2, 0.0},
  };

  analysis::Table table{{"scenario", "MC p_hat", "95% CI low", "95% CI high",
                         "Markov (paper)", "Markov (both-lost)", "covered"}};
  bench::ShapeChecks checks;
  const markov::UniformizationSolver solver;
  const std::vector<double> times{48.0};

  for (const Scenario& sc : scenarios) {
    core::MemorySystemSpec spec;
    spec.arrangement = sc.arrangement;
    spec.seu_rate_per_bit_day = sc.seu_per_bit_day;
    spec.erasure_rate_per_symbol_day = sc.erasure_per_symbol_day;
    spec.scrub_period_seconds = sc.scrub_period_seconds;

    analysis::MonteCarloConfig mc;
    mc.trials = 1500;
    mc.t_end_hours = 48.0;
    mc.seed = 20240707;
    const analysis::MonteCarloResult sim = simulate(spec, mc);

    double conservative = 0.0;
    double optimistic = 0.0;
    if (sc.arrangement == analysis::Arrangement::kSimplex) {
      conservative = optimistic = fail_probability(spec, 48.0);
    } else {
      // The functional duplex exposes each physical symbol, so compare
      // against the per-physical-symbol convention; bracket with the two
      // fail criteria (see DESIGN.md section 2).
      models::DuplexParams params = spec.to_duplex_params();
      params.convention = models::RateConvention::kPerPhysicalSymbol;
      conservative =
          models::duplex_ber_curve(params, times, solver).fail_probability[0];
      params.fail_criterion = models::FailCriterion::kBothWordsUnrecoverable;
      optimistic =
          models::duplex_ber_curve(params, times, solver).fail_probability[0];
    }
    const double band = 4.0 * sim.failure.std_error() + 1e-3;
    const bool covered = sim.failure.p_hat() <= conservative + band &&
                         sim.failure.p_hat() >= optimistic - band;
    table.add_row({sc.name, analysis::format_fixed(sim.failure.p_hat(), 4),
                   analysis::format_fixed(sim.failure.wilson_low(), 4),
                   analysis::format_fixed(sim.failure.wilson_high(), 4),
                   analysis::format_fixed(conservative, 4),
                   analysis::format_fixed(optimistic, 4),
                   covered ? "yes" : "NO"});
    checks.expect(covered, std::string("MC within the chain bracket: ") +
                               sc.name);
  }
  std::printf("%s", table.to_text().c_str());
  std::printf(
      "note: the paper's chain fails as soon as EITHER duplex word exceeds\n"
      "its budget; the real arbiter usually survives one lost word, so the\n"
      "functional system lands between the two criteria (see EXPERIMENTS.md).\n");
  return checks.exit_code();
}
