// E8 -- validation experiment (not in the paper): the functional memory
// system (real RS decoder, real arbiter, Poisson fault injection) versus the
// Markov chains, at accelerated rates where failures are observable.
//
// For each scenario the Monte-Carlo estimate and its 95% Wilson interval
// are printed against the chain prediction(s).
#include <thread>

#include "bench_common.h"
#include "analysis/monte_carlo.h"
#include "core/api.h"
#include "markov/uniformization.h"
#include "models/ber.h"

using namespace rsmem;

namespace {

struct Scenario {
  const char* name;
  analysis::Arrangement arrangement;
  double seu_per_bit_day;
  double erasure_per_symbol_day;
  double scrub_period_seconds;
};

}  // namespace

int main() {
  bench::print_header(
      "bench_mc_vs_markov", "model validation (DESIGN.md E8)",
      "functional Monte-Carlo vs Markov P_Fail(48h), accelerated rates");

  const Scenario scenarios[] = {
      {"simplex SEU", analysis::Arrangement::kSimplex, 2.4e-3, 0.0, 0.0},
      {"simplex permanent", analysis::Arrangement::kSimplex, 0.0, 4.8e-2,
       0.0},
      {"simplex SEU+scrub", analysis::Arrangement::kSimplex, 1.2e-2, 0.0,
       1800.0},
      {"duplex SEU", analysis::Arrangement::kDuplex, 2.9e-3, 0.0, 0.0},
      {"duplex permanent", analysis::Arrangement::kDuplex, 0.0, 0.192, 0.0},
      {"duplex mixed", analysis::Arrangement::kDuplex, 2.4e-3, 4.8e-2, 0.0},
  };

  analysis::Table table{{"scenario", "MC p_hat", "95% CI low", "95% CI high",
                         "Markov (paper)", "Markov (both-lost)", "covered"}};
  bench::ShapeChecks checks;
  const markov::UniformizationSolver solver;
  const std::vector<double> times{48.0};

  for (const Scenario& sc : scenarios) {
    core::MemorySystemSpec spec;
    spec.arrangement = sc.arrangement;
    spec.seu_rate_per_bit_day = sc.seu_per_bit_day;
    spec.erasure_rate_per_symbol_day = sc.erasure_per_symbol_day;
    spec.scrub_period_seconds = sc.scrub_period_seconds;

    analysis::MonteCarloConfig mc;
    mc.trials = 1500;
    mc.t_end_hours = 48.0;
    mc.seed = 20240707;
    const analysis::MonteCarloResult sim = simulate(spec, mc);

    double conservative = 0.0;
    double optimistic = 0.0;
    if (sc.arrangement == analysis::Arrangement::kSimplex) {
      conservative = optimistic = fail_probability(spec, 48.0);
    } else {
      // The functional duplex exposes each physical symbol, so compare
      // against the per-physical-symbol convention; bracket with the two
      // fail criteria (see DESIGN.md section 2).
      models::DuplexParams params = spec.to_duplex_params();
      params.convention = models::RateConvention::kPerPhysicalSymbol;
      conservative =
          models::duplex_ber_curve(params, times, solver).fail_probability[0];
      params.fail_criterion = models::FailCriterion::kBothWordsUnrecoverable;
      optimistic =
          models::duplex_ber_curve(params, times, solver).fail_probability[0];
    }
    const double band = 4.0 * sim.failure.std_error() + 1e-3;
    const bool covered = sim.failure.p_hat() <= conservative + band &&
                         sim.failure.p_hat() >= optimistic - band;
    table.add_row({sc.name, analysis::format_fixed(sim.failure.p_hat(), 4),
                   analysis::format_fixed(sim.failure.wilson_low(), 4),
                   analysis::format_fixed(sim.failure.wilson_high(), 4),
                   analysis::format_fixed(conservative, 4),
                   analysis::format_fixed(optimistic, 4),
                   covered ? "yes" : "NO"});
    checks.expect(covered, std::string("MC within the chain bracket: ") +
                               sc.name);
  }
  std::printf("%s", table.to_text().c_str());
  std::printf(
      "note: the paper's chain fails as soon as EITHER duplex word exceeds\n"
      "its budget; the real arbiter usually survives one lost word, so the\n"
      "functional system lands between the two criteria (see EXPERIMENTS.md).\n");

  // ---- Campaign throughput: single-threaded seed path vs parallel. ----
  const unsigned hw = std::thread::hardware_concurrency();
  core::MemorySystemSpec spec;
  spec.arrangement = analysis::Arrangement::kSimplex;
  spec.seu_rate_per_bit_day = 2.4e-3;

  analysis::MonteCarloConfig mc;
  mc.trials = 60000;
  mc.t_end_hours = 48.0;
  mc.seed = 20240707;

  analysis::CampaignReport single_report;
  mc.threads = 1;
  const analysis::MonteCarloResult single =
      simulate(spec, mc, memory::ScrubPolicy::kExponential, &single_report);

  analysis::CampaignReport parallel_report;
  mc.threads = 0;  // hardware concurrency
  const analysis::MonteCarloResult parallel =
      simulate(spec, mc, memory::ScrubPolicy::kExponential, &parallel_report);

  const double speedup =
      single_report.trials_per_second > 0.0
          ? parallel_report.trials_per_second / single_report.trials_per_second
          : 0.0;
  analysis::Table perf{{"threads", "shards", "trials/s", "speedup"}};
  perf.add_row({"1", std::to_string(single_report.chunks),
                analysis::format_sci(single_report.trials_per_second), "1.00"});
  perf.add_row({std::to_string(parallel_report.threads_used),
                std::to_string(parallel_report.chunks),
                analysis::format_sci(parallel_report.trials_per_second),
                analysis::format_fixed(speedup, 2)});
  std::printf("%s", perf.to_text().c_str());

  checks.expect(single.failure.failures == parallel.failure.failures &&
                    single.failure.trials == parallel.failure.trials &&
                    single.mean_seu_per_trial == parallel.mean_seu_per_trial &&
                    single.scrub_failures == parallel.scrub_failures,
                "campaign result bit-identical across thread counts");
  if (hw >= 4) {
    checks.expect(speedup >= 3.0,
                  "parallel campaign >= 3x trials/s on 4+ hardware threads");
  } else {
    std::printf(
        "note: %u hardware thread(s) available; >= 3x speedup check needs 4+\n",
        hw);
  }

  // ---- Codec fast path: legacy per-trial codec vs shared codec + workspace
  // (single-threaded, so only the codec path differs). Measured on a
  // SCRUBBED RS(36,16) campaign -- each scrub pass is a read + decode +
  // rewrite, and the SEU rate is tuned to ~1 flip per 30-minute scrub
  // interval, so the ~96 decodes per 48 h trial mostly run the full
  // locator/Chien/Forney pipeline (t = 10 keeps them correctable). That is
  // the decoder-bound regime the paper's scrubbing analysis exercises.
  core::MemorySystemSpec codec_spec = spec;
  codec_spec.code = rs::CodeParams{36, 16, 8, 1};
  codec_spec.seu_rate_per_bit_day = 0.167;  // ~1 SEU per scrub interval
  codec_spec.scrub_period_seconds = 1800.0;
  analysis::MonteCarloConfig codec_mc = mc;
  codec_mc.trials = 4000;
  codec_mc.threads = 1;

  analysis::CampaignReport legacy_report;
  codec_mc.legacy_codec = true;
  const analysis::MonteCarloResult legacy = simulate(
      codec_spec, codec_mc, memory::ScrubPolicy::kExponential, &legacy_report);

  analysis::CampaignReport fast_report;
  codec_mc.legacy_codec = false;
  const analysis::MonteCarloResult fast = simulate(
      codec_spec, codec_mc, memory::ScrubPolicy::kExponential, &fast_report);

  const double codec_speedup =
      legacy_report.trials_per_second > 0.0
          ? fast_report.trials_per_second / legacy_report.trials_per_second
          : 0.0;
  analysis::Table codec{{"codec path", "trials/s", "speedup"}};
  codec.add_row({"legacy (per-trial codec)",
                 analysis::format_sci(legacy_report.trials_per_second),
                 "1.00"});
  codec.add_row({"workspace fast path",
                 analysis::format_sci(fast_report.trials_per_second),
                 analysis::format_fixed(codec_speedup, 2)});
  std::printf("%s", codec.to_text().c_str());

  checks.expect(
      legacy.failure.failures == fast.failure.failures &&
          legacy.failure.trials == fast.failure.trials &&
          legacy.mean_seu_per_trial == fast.mean_seu_per_trial &&
          legacy.mean_permanent_per_trial == fast.mean_permanent_per_trial &&
          legacy.scrub_failures == fast.scrub_failures &&
          legacy.scrub_miscorrections == fast.scrub_miscorrections &&
          legacy.no_output_failures == fast.no_output_failures &&
          legacy.wrong_data_failures == fast.wrong_data_failures,
      "campaign result bit-identical across codec paths");
  checks.expect(codec_speedup >= 1.5,
                "workspace codec >= 1.5x end-to-end trials/s");
  return checks.exit_code();
}
