// E3 -- Fig. 7 of the paper: BER of duplex RS(18,16) at the worst-case SEU
// rate (1.7e-5 /bit/day) for scrubbing periods Tsc in {900, 1200, 1800,
// 3600} s over 48 h.
#include <cmath>

#include "bench_common.h"

using namespace rsmem;

int main() {
  bench::print_header(
      "bench_fig7_duplex_scrubbing", "Figure 7",
      "BER(t) of duplex RS(18,16), lambda=1.7e-5/bit/day, variable Tsc");

  const double periods[] = {900.0, 1200.0, 1800.0, 3600.0};
  const analysis::CodeSpec code{18, 16, 8};
  const std::vector<analysis::Series> series = analysis::scrub_period_sweep(
      analysis::Arrangement::kDuplex, code, 1.7e-5, periods, 48.0, 25);

  bench::print_series_csv(series, "hours");
  bench::print_plot(series, "BER of Duplex RS(18,16) with different Tsc",
                    "hours");

  bench::ShapeChecks checks;
  // Longer scrub period => higher BER, pointwise.
  for (std::size_t i = 1; i < series.size(); ++i) {
    checks.expect(bench::dominated(series[i - 1].y, series[i].y),
                  series[i - 1].label + " <= " + series[i].label);
  }
  // Paper: scrubbing at least hourly keeps BER below 1e-6 over 48 h.
  bool below = true;
  for (const auto& s : series) {
    for (const double y : s.y) below = below && (y < 1e-6);
  }
  checks.expect(below, "all Tsc <= 3600 s keep BER(48h) < 1e-6");
  // A scrubbed system reaches a quasi-steady hazard: after the initial
  // transient the BER grows LINEARLY (constant failure rate), so the growth
  // over the last quarter matches the growth over the previous quarter.
  const auto& worst = series[3].y;  // Tsc = 3600 s
  const double mid = worst[18] - worst[12];
  const double late = worst[24] - worst[18];
  checks.expect(std::abs(late / mid - 1.0) < 0.05,
                "scrubbed BER grows linearly (quasi-steady hazard)");
  return checks.exit_code();
}
