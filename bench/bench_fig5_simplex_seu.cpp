// E1 -- Fig. 5 of the paper: BER of simplex RS(18,16) under different SEU
// rates; lambda in {7.3e-7, 3.6e-6, 1.7e-5} errors/bit/day, no permanent
// faults, no scrubbing, data stored for Tst = 48 h.
#include "bench_common.h"

using namespace rsmem;

int main() {
  bench::print_header(
      "bench_fig5_simplex_seu", "Figure 5",
      "BER(t) of simplex RS(18,16), SEU-only, no scrubbing, 48 h");

  const double rates[] = {1.7e-5, 3.6e-6, 7.3e-7};
  const analysis::CodeSpec code{18, 16, 8};
  const std::vector<analysis::Series> series = analysis::seu_rate_sweep(
      analysis::Arrangement::kSimplex, code, rates, 48.0, 25);

  bench::print_series_csv(series, "hours");
  bench::print_plot(series, "BER of Simplex RS(18,16)", "hours");

  bench::ShapeChecks checks;
  for (const auto& s : series) {
    checks.expect(bench::non_decreasing(s.y),
                  "BER monotone in t for " + s.label);
  }
  // Higher SEU rate => higher BER at every t>0 (series are rate-descending).
  checks.expect(bench::dominated(series[1].y, series[0].y),
                "BER(3.6e-6) <= BER(1.7e-5)");
  checks.expect(bench::dominated(series[2].y, series[1].y),
                "BER(7.3e-7) <= BER(3.6e-6)");
  // Paper's Fig. 5 y-range: curves live between ~1e-12 and ~1e-4 at 48 h.
  checks.expect(series[0].y.back() < 1e-3 && series[0].y.back() > 1e-8,
                "worst-case 48h BER in the paper's decade range");
  return checks.exit_code();
}
