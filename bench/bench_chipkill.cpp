// E23 -- extension: correlated chip-granular faults vs the independent-word
// approximation. In the bit-sliced SSMM (one chip per symbol position,
// reference [6] of the paper) a chip failure erases the SAME symbol of
// every word, so the whole array shares one erasure budget and its loss
// probability equals ONE word's -- while the independent-word reading of
// "the extension to the whole memory is straightforward" over-predicts the
// loss by a factor ~W.
#include "bench_common.h"
#include "core/units.h"
#include "models/chipkill.h"

using namespace rsmem;

int main() {
  bench::print_header(
      "bench_chipkill", "chip-kill correlation study (E23)",
      "bit-sliced SSMM: correlated chip faults vs independent-word model");

  const double chip_rate = 2.4e-6 / 18.0;  // per chip per hour
  analysis::Table table{{"months", "P(loss) chip-kill",
                         "P(loss) indep (W=1Ki)", "indep/correlated"}};
  bench::ShapeChecks checks;
  const std::size_t words = 1024;
  for (const double months : {6.0, 12.0, 24.0}) {
    const double t = core::months_to_hours(months);
    const double correlated =
        1.0 - models::chipkill_array_survival(18, 16, chip_rate, t);
    const double independent =
        1.0 -
        models::independent_word_array_survival(18, 16, chip_rate, t, words);
    table.add_row({analysis::format_fixed(months, 0),
                   analysis::format_sci(correlated),
                   analysis::format_sci(independent),
                   analysis::format_fixed(independent / correlated, 1)});
    checks.expect(independent > correlated * (words / 2.0),
                  "independent-word model pessimistic by ~W at " +
                      analysis::format_fixed(months, 0) + " months");
  }
  std::printf("%s", table.to_text().c_str());

  // RS(36,16) chips: 36 chips at the same rate, budget 20 -> the wide code
  // makes chip-kill loss essentially unobservable.
  const double t24 = core::months_to_hours(24.0);
  const double wide =
      1.0 - models::chipkill_array_survival(36, 16, chip_rate, t24);
  const double narrow =
      1.0 - models::chipkill_array_survival(18, 16, chip_rate, t24);
  std::printf("24-month chip-kill loss: RS(18,16) %.3E vs RS(36,16) %.3E\n",
              narrow, wide);
  checks.expect(wide < narrow * 1e-6,
                "RS(36,16) absorbs chip deaths (20-chip budget)");
  std::printf(
      "\nreading: under the real bit-sliced organization the array's\n"
      "permanent-fault reliability does NOT degrade with capacity -- the\n"
      "i.i.d.-word extension is pessimistic by the word count. Transient\n"
      "(SEU) failures remain word-local and independent.\n");
  return checks.exit_code();
}
