// E2 -- Fig. 6 of the paper: BER of duplex RS(18,16) under different SEU
// rates; same sweep as Fig. 5, duplex arrangement.
#include "bench_common.h"

using namespace rsmem;

int main() {
  bench::print_header(
      "bench_fig6_duplex_seu", "Figure 6",
      "BER(t) of duplex RS(18,16), SEU-only, no scrubbing, 48 h");

  const double rates[] = {1.7e-5, 3.6e-6, 7.3e-7};
  const analysis::CodeSpec code{18, 16, 8};
  const std::vector<analysis::Series> duplex = analysis::seu_rate_sweep(
      analysis::Arrangement::kDuplex, code, rates, 48.0, 25);

  bench::print_series_csv(duplex, "hours");
  bench::print_plot(duplex, "BER of duplex RS(18,16)", "hours");

  bench::ShapeChecks checks;
  for (const auto& s : duplex) {
    checks.expect(bench::non_decreasing(s.y),
                  "BER monotone in t for " + s.label);
  }
  checks.expect(bench::dominated(duplex[1].y, duplex[0].y),
                "BER ordered by SEU rate (3.6e-6 vs 1.7e-5)");
  checks.expect(bench::dominated(duplex[2].y, duplex[1].y),
                "BER ordered by SEU rate (7.3e-7 vs 3.6e-6)");

  // Paper: "the values for the BER are in the same range" as the simplex.
  const std::vector<analysis::Series> simplex = analysis::seu_rate_sweep(
      analysis::Arrangement::kSimplex, code, rates, 48.0, 25);
  bool same_range = true;
  for (std::size_t r = 0; r < duplex.size(); ++r) {
    const double d = duplex[r].y.back();
    const double s = simplex[r].y.back();
    if (d < s / 10.0 || d > s * 10.0) same_range = false;
  }
  checks.expect(same_range,
                "duplex 48h BER within a decade of the simplex (paper: "
                "'same range')");
  return checks.exit_code();
}
