// E12 -- extension of paper Section 2: "Until the permanent fault is
// located, the error correction algorithm assumes the erroneous behavior to
// be caused by a random error, thus degrading the overall error correction
// capability." The base chains assume instant location; this bench sweeps
// the mean location latency 1/delta and shows how much of the erasure
// advantage survives, for the simplex RS(18,16) word under permanent
// faults.
#include "bench_common.h"
#include "core/units.h"
#include "markov/uniformization.h"
#include "models/ber.h"
#include "models/detection_model.h"

using namespace rsmem;

int main() {
  bench::print_header(
      "bench_detection_latency", "Section 2 detection-latency study (E12)",
      "simplex RS(18,16) under permanent faults, variable location latency");

  const markov::UniformizationSolver solver;
  const double le_hour = core::per_day_to_per_hour(5e-2);  // accelerated
  const std::vector<double> times = models::time_grid_hours(48.0, 25);

  // Base chain (instant location) for reference.
  models::SimplexParams base;
  base.n = 18;
  base.k = 16;
  base.m = 8;
  base.erasure_rate_per_symbol_hour = le_hour;
  const models::BerCurve ideal =
      models::simplex_ber_curve(base, times, solver);

  struct Sweep {
    const char* label;
    double delta;  // detections per hour; 0 = never located
  };
  const Sweep sweeps[] = {
      {"latency ~1 min", 60.0},
      {"latency 1 h", 1.0},
      {"latency 12 h", 1.0 / 12.0},
      {"never located", 0.0},
  };

  std::vector<analysis::Series> series;
  series.push_back({"instant (paper)", times, ideal.ber});
  analysis::Table table{{"location latency", "P_fail(48h)",
                         "vs instant location"}};
  table.add_row({"instant (paper model)",
                 analysis::format_sci(ideal.fail_probability.back()), "1.00"});

  bench::ShapeChecks checks;
  double prev = ideal.fail_probability.back();
  for (const Sweep& sweep : sweeps) {
    models::DetectionParams det;
    det.n = 18;
    det.k = 16;
    det.m = 8;
    det.erasure_rate_per_symbol_hour = le_hour;
    det.detection_rate_per_hour = sweep.delta;
    const models::DetectionModel model{det};
    const markov::StateSpace space = model.build();
    const std::vector<double> p_fail =
        model.fail_probability(space, times, solver);
    series.push_back({sweep.label, times, p_fail});
    table.add_row({sweep.label, analysis::format_sci(p_fail.back()),
                   analysis::format_fixed(
                       p_fail.back() / ideal.fail_probability.back(), 2)});
    checks.expect(p_fail.back() >= prev * 0.999,
                  std::string("slower location never helps: ") + sweep.label);
    prev = p_fail.back();
  }
  std::printf("%s", table.to_text().c_str());
  bench::print_plot(series, "P_fail(t), location latency sweep", "hours");

  // The un-located extreme behaves like a code with HALF the erasure
  // budget: for RS(18,16) the word dies at the 2nd fault instead of the
  // 3rd, so at small lambda_e*t the never-located curve exceeds the instant
  // one by ~P(2 faults)/P(3 faults) >> 1 (the ratio compresses near
  // saturation, so assert early in the run: t = 12 h).
  checks.expect(series.back().y[6] > 5.0 * ideal.fail_probability[6],
                "never-located faults cost at least 5x in P_fail at 12 h");
  checks.expect(series.back().y.back() > 1.5 * ideal.fail_probability.back(),
                "never-located faults still cost >1.5x at 48 h");
  return checks.exit_code();
}
