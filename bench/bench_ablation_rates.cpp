// E9 -- ablations of the duplex chain's documented modeling choices
// (DESIGN.md section 2):
//   (a) Fig. 4's rate lambda_e*b for transition B vs the text's lambda_e*Y,
//   (b) the paper's pair-as-one-exposure convention vs counting every
//       physical symbol (doubles transitions C and F),
//   (c) the fail criterion: EITHER word lost (paper) vs BOTH words lost
//       (arbiter-optimistic).
#include "bench_common.h"
#include "core/units.h"
#include "markov/uniformization.h"
#include "models/ber.h"

using namespace rsmem;

namespace {

double ber_at(const models::DuplexParams& params, double t_hours) {
  const markov::UniformizationSolver solver;
  const std::vector<double> times{t_hours};
  return models::duplex_ber_curve(params, times, solver).ber[0];
}

}  // namespace

int main() {
  bench::print_header("bench_ablation_rates", "modeling ablations (E9)",
                      "duplex chain variants under mixed fault loads");

  models::DuplexParams base;
  base.n = 18;
  base.k = 16;
  base.m = 8;
  base.seu_rate_per_bit_hour = core::per_day_to_per_hour(1.7e-5);
  base.erasure_rate_per_symbol_hour = core::per_day_to_per_hour(1e-4);

  struct Variant {
    const char* name;
    models::DuplexParams params;
  };
  std::vector<Variant> variants;
  variants.push_back({"paper (Fig.4 rates, either-word fail)", base});
  {
    models::DuplexParams v = base;
    v.use_text_rate_for_b = true;
    variants.push_back({"text erratum: B at lambda_e*Y", v});
  }
  {
    models::DuplexParams v = base;
    v.convention = models::RateConvention::kPerPhysicalSymbol;
    variants.push_back({"per-physical-symbol exposure (2x C, F)", v});
  }
  {
    models::DuplexParams v = base;
    v.fail_criterion = models::FailCriterion::kBothWordsUnrecoverable;
    variants.push_back({"both-words-lost fail criterion", v});
  }

  analysis::Table table{
      {"variant", "BER(24h)", "BER(48h)", "BER(6 months)"}};
  std::vector<std::array<double, 3>> values;
  for (const Variant& v : variants) {
    const std::array<double, 3> ber{
        ber_at(v.params, 24.0), ber_at(v.params, 48.0),
        ber_at(v.params, core::months_to_hours(6.0))};
    values.push_back(ber);
    table.add_row({v.name, analysis::format_sci(ber[0]),
                   analysis::format_sci(ber[1]), analysis::format_sci(ber[2])});
  }
  std::printf("%s", table.to_text().c_str());

  bench::ShapeChecks checks;
  // (a) The erratum variant misprices X-formation from b pairs; with these
  // loads the difference stays within a factor ~2 of the paper chain (the
  // B transition is a second-order path), but is measurably different at
  // long horizons.
  checks.expect(values[1][2] != values[0][2],
                "text-erratum variant measurably differs at 6 months");
  checks.expect(values[1][2] < values[0][2] * 3.0 &&
                    values[1][2] > values[0][2] / 3.0,
                "text-erratum variant stays within 3x (second-order path)");
  // (b) Doubling erasure exposure increases BER.
  checks.expect(values[2][1] > values[0][1] && values[2][2] > values[0][2],
                "per-physical-symbol exposure raises BER");
  // (c) The optimistic fail criterion lowers BER.
  checks.expect(values[3][1] < values[0][1] && values[3][2] < values[0][2],
                "both-words-lost criterion lowers BER");
  return checks.exit_code();
}
