// E18 -- extension: modular sparing (the paper's "dynamic redundancy").
// System reliability of an M-module SSMM bank vs spare count, coverage and
// spare policy, with the module failure rate derived from the
// MIL-HDBK-217-style chip model.
#include <cmath>

#include "bench_common.h"
#include "core/units.h"
#include "models/sparing_model.h"
#include "reliability/milhdbk217.h"

using namespace rsmem;

int main() {
  bench::print_header(
      "bench_sparing", "dynamic-redundancy study (E18)",
      "8-module bank reliability vs spares, coverage, spare policy, 5 y");

  // Space-certified parts at moderate temperature: module MTTF ~ decades,
  // so a 5-year mission shows real sparing dynamics (COTS-grade rates kill
  // an unspared bank within months and saturate every row at 0).
  reliability::MemoryChipSpec chip;
  chip.quality = reliability::Quality::kSpaceCertified;
  chip.environment = reliability::Environment::kSpaceFlight;
  chip.junction_temp_celsius = 40.0;
  const double module_rate =
      reliability::MilHdbk217Model::chip_failures_per_1e6_hours(chip) / 1e6 *
      18.0;
  const double t = core::months_to_hours(60.0);
  std::printf("module rate: %.3E /hour (18 chips, 217-style)\n", module_rate);

  analysis::Table table{{"spares", "policy", "coverage", "R(5y)",
                         "MTTF [years]"}};
  bench::ShapeChecks checks;
  double prev_r = 0.0;
  for (const unsigned spares : {0u, 1u, 2u, 3u}) {
    models::SparingParams p;
    p.active_modules = 8;
    p.spares = spares;
    p.module_fail_rate_per_hour = module_rate;
    p.coverage = 0.99;
    const models::SparingModel bank{p};
    const double r = bank.reliability_at(t);
    table.add_row({std::to_string(spares), "cold", "0.99",
                   analysis::format_fixed(r, 6),
                   analysis::format_fixed(
                       bank.mttf_hours() / core::months_to_hours(12.0), 1)});
    checks.expect(r > prev_r, "spare #" + std::to_string(spares) +
                                  " improves R(5y)");
    prev_r = r;
  }

  // Policy and coverage ablations at S = 2.
  models::SparingParams p;
  p.active_modules = 8;
  p.spares = 2;
  p.module_fail_rate_per_hour = module_rate;
  p.coverage = 0.99;
  const double cold = models::SparingModel{p}.reliability_at(t);
  p.spare_ageing_fraction = 1.0;
  const double hot = models::SparingModel{p}.reliability_at(t);
  table.add_row({"2", "hot", "0.99", analysis::format_fixed(hot, 6), "-"});
  p.spare_ageing_fraction = 0.0;
  p.coverage = 0.90;
  const double low_cov = models::SparingModel{p}.reliability_at(t);
  table.add_row({"2", "cold", "0.90", analysis::format_fixed(low_cov, 6),
                 "-"});
  std::printf("%s", table.to_text().c_str());

  checks.expect(cold > hot, "cold spares outlive hot spares");
  checks.expect(cold > low_cov, "coverage dominates at high spare counts");
  // Diminishing returns under imperfect coverage: the uncovered-failure
  // floor exp(-M*lambda*(1-c)*t) caps the achievable reliability.
  const double floor = std::exp(-8.0 * module_rate * 0.01 * t);
  checks.expect(prev_r < floor,
                "coverage floor respected (R < exp(-M lambda (1-c) t))");
  return checks.exit_code();
}
