// E15 -- baseline comparison: RS coding vs plain modular redundancy. The
// paper motivates coding+duplication against naive redundancy; this bench
// makes the comparison explicit at matched storage overheads:
//   unprotected word          1.00x overhead
//   simplex RS(18,16)         1.12x
//   duplex  RS(18,16)         2.25x
//   simplex RS(36,16)         2.25x
//   bitwise TMR (no code)     3.00x
// under a mixed SEU + permanent-fault environment (closed forms for the
// baselines, chains for the RS arrangements, functional Monte-Carlo spot
// checks for both).
#include "bench_common.h"
#include "core/api.h"
#include "core/units.h"
#include "memory/tmr_system.h"
#include "models/baselines.h"
#include "sim/rng.h"

using namespace rsmem;

int main() {
  bench::print_header(
      "bench_tmr_baseline", "coding-vs-redundancy baseline (E15)",
      "RS arrangements vs unprotected and bitwise-TMR words, 48 h");

  const double lambda_day = 2.4e-3;  // accelerated mixed environment
  const double le_day = 4.8e-3;
  const double t = 48.0;

  models::BaselineParams base;
  base.word_symbols = 16;
  base.m = 8;
  base.seu_rate_per_bit_hour = core::per_day_to_per_hour(lambda_day);
  base.erasure_rate_per_symbol_hour = core::per_day_to_per_hour(le_day);
  const double unprotected = models::unprotected_word_fail(base, t);
  const double tmr = models::tmr_word_fail(base, t);

  const auto rs_fail = [&](analysis::Arrangement arrangement, unsigned n) {
    core::MemorySystemSpec spec;
    spec.arrangement = arrangement;
    spec.code = {n, 16, 8, 1};
    spec.seu_rate_per_bit_day = lambda_day;
    spec.erasure_rate_per_symbol_day = le_day;
    return fail_probability(spec, t);
  };
  const double simplex1816 = rs_fail(analysis::Arrangement::kSimplex, 18);
  const double duplex1816 = rs_fail(analysis::Arrangement::kDuplex, 18);
  const double simplex3616 = rs_fail(analysis::Arrangement::kSimplex, 36);

  analysis::Table table{
      {"arrangement", "storage overhead", "P_fail(48h)", "vs unprotected"}};
  const auto row = [&](const char* name, double overhead, double p) {
    table.add_row({name, analysis::format_fixed(overhead, 2),
                   analysis::format_sci(p),
                   analysis::format_sci(p / unprotected, 1)});
  };
  row("unprotected", 1.00, unprotected);
  row("simplex RS(18,16)", 1.125, simplex1816);
  row("duplex RS(18,16)", 2.25, duplex1816);
  row("simplex RS(36,16)", 2.25, simplex3616);
  row("bitwise TMR", 3.00, tmr);
  std::printf("%s", table.to_text().c_str());

  bench::ShapeChecks checks;
  checks.expect(simplex1816 < unprotected,
                "even 2 parity symbols beat the unprotected word");
  // Under SEU-heavy loads the paper's conservative duplex chain ranks the
  // duplex slightly behind the simplex (see E8); the duplex's claim is
  // resilience to PERMANENT faults, so assert it there.
  const auto perm_only_fail = [&](analysis::Arrangement arrangement) {
    core::MemorySystemSpec spec;
    spec.arrangement = arrangement;
    spec.erasure_rate_per_symbol_day = le_day;
    return fail_probability(spec, t);
  };
  checks.expect(perm_only_fail(analysis::Arrangement::kDuplex) <
                    perm_only_fail(analysis::Arrangement::kSimplex),
                "duplex RS(18,16) beats simplex RS(18,16) under permanent "
                "faults (the paper's claim)");
  checks.expect(simplex3616 < tmr,
                "RS(36,16) at 2.25x overhead beats TMR at 3x overhead");
  checks.expect(simplex3616 < duplex1816,
                "parity-heavy RS beats duplication at equal overhead");

  // Functional spot check of the TMR closed form.
  memory::TmrSystemConfig cfg;
  cfg.rates.seu_rate_per_bit_hour = base.seu_rate_per_bit_hour;
  cfg.rates.perm_rate_per_symbol_hour = base.erasure_rate_per_symbol_hour;
  std::vector<gf::Element> data(16);
  for (unsigned i = 0; i < 16; ++i) data[i] = 0xA5 ^ i;
  sim::Rng root{8088};
  int failures = 0;
  const int kTrials = 1000;
  for (int trial = 0; trial < kTrials; ++trial) {
    cfg.seed = root.next_u64();
    memory::TmrSystem sys{cfg};
    sys.store(data);
    sys.advance_to(t);
    failures += !sys.read().data_correct;
  }
  const double p_hat = static_cast<double>(failures) / kTrials;
  const double se = std::sqrt(tmr * (1.0 - tmr) / kTrials);
  std::printf("functional TMR check: MC p_hat=%.4f vs closed form %.4f\n",
              p_hat, tmr);
  checks.expect(std::abs(p_hat - tmr) < 4.0 * se + 2e-3,
                "functional TMR matches the closed form (4-sigma)");
  return checks.exit_code();
}
