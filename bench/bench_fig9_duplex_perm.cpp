// E5 -- Fig. 9 of the paper: BER of duplex RS(18,16) under permanent-fault
// rates lambda_e in {1e-4 .. 1e-10} per symbol per day, 24 months, no
// scrubbing, no SEUs. The duplex needs THREE double-sided erasures to die,
// so its BER curves sit dramatically below Fig. 8's (1e-60 decade range).
#include "bench_common.h"

using namespace rsmem;

int main() {
  bench::print_header(
      "bench_fig9_duplex_perm", "Figure 9",
      "BER(t) of duplex RS(18,16), permanent faults only, 24 months");

  const double rates[] = {1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10};
  const analysis::CodeSpec code{18, 16, 8};
  const std::vector<analysis::Series> duplex = analysis::permanent_rate_sweep(
      analysis::Arrangement::kDuplex, code, rates, 24.0, 25);

  bench::print_series_csv(duplex, "months");
  analysis::PlotOptions opt;
  opt.title = "BER of Duplex RS(18,16) varying permanent faults rate";
  opt.x_label = "months";
  std::printf("%s", analysis::render_plot(duplex, opt).c_str());

  bench::ShapeChecks checks;
  for (std::size_t i = 1; i < duplex.size(); ++i) {
    checks.expect(bench::dominated(duplex[i].y, duplex[i - 1].y, 0.0),
                  "BER ordered by lambda_e (" + duplex[i].label + ")");
  }
  // Headline claim: the duplex dominates the simplex pointwise.
  const std::vector<analysis::Series> simplex =
      analysis::permanent_rate_sweep(analysis::Arrangement::kSimplex, code,
                                     rates, 24.0, 25);
  bool dominates = true;
  for (std::size_t r = 0; r < std::size(rates); ++r) {
    dominates = dominates && bench::dominated(duplex[r].y, simplex[r].y, 0.0);
  }
  checks.expect(dominates, "duplex BER <= simplex BER at every (rate, t)");
  // The paper's Fig. 9 spans down to ~1e-60: sextic scaling (6 erasure
  // events to reach X=3) vs the simplex's cubic.
  const double duplex_low = duplex[4].y.back();   // 1e-8 /sym/day
  const double simplex_low = simplex[4].y.back();
  checks.expect(duplex_low < simplex_low * 1e-10,
                "at 1e-8/sym/day the duplex gains >= 10 decades of BER");
  checks.expect(duplex[0].y.back() > 1e-6,
                "lambda_e=1e-4 still visible at the top of the plot");
  return checks.exit_code();
}
