// E19 -- baseline: bit-oriented SEC-DED vs the paper's symbol-oriented RS
// at IDENTICAL geometry. 128 data bits are protected either by one
// RS(18,16) word over GF(2^8) (144 coded bits) or by two SEC-DED(72,64)
// words (also 144 coded bits) -- the same 12.5% overhead. Both segments
// receive the same physical fault process (Poisson flips, optionally
// span-2/span-8 bursts over adjacent coded bits).
//
// Expected physics: under single-bit SEUs the SEC-DED pair is slightly
// stronger (two flips must land in the SAME 72-bit half to kill it, while
// RS dies whenever they hit two different symbols); under burst upsets the
// symbol organization dominates (a span-2 burst almost always kills a
// SEC-DED word but sits inside one RS symbol ~88% of the time).
#include <cmath>

#include "bench_common.h"
#include "codes/secded.h"
#include "rs/reed_solomon.h"
#include "sim/rng.h"

using namespace rsmem;

namespace {

struct SegmentResult {
  double rs_fail_fraction = 0.0;
  double secded_fail_fraction = 0.0;
};

// One trial: same flip pattern applied to an RS(18,16) word and to a
// 2x SEC-DED(72,64) pair occupying the same 144-bit footprint.
SegmentResult run_comparison(double lambda_bit_hour, double mbu_probability,
                             unsigned span, double t_hours, unsigned trials,
                             std::uint64_t seed) {
  const rs::ReedSolomon rs_code{18, 16, 8};
  const codes::SecDed secded{64};
  sim::Rng root{seed};
  unsigned rs_failures = 0;
  unsigned secded_failures = 0;

  for (unsigned trial = 0; trial < trials; ++trial) {
    sim::Rng rng = root.split(trial);
    // Shared physical flip pattern over 144 coded bits.
    std::vector<std::uint8_t> flipped(144, 0);
    const double mean =
        lambda_bit_hour * 144.0 * t_hours;  // arrival events
    const std::uint64_t arrivals = rng.poisson(mean);
    for (std::uint64_t a = 0; a < arrivals; ++a) {
      if (mbu_probability > 0.0 && rng.bernoulli(mbu_probability)) {
        const unsigned start =
            static_cast<unsigned>(rng.uniform_int(144 - span + 1));
        for (unsigned i = 0; i < span; ++i) flipped[start + i] ^= 1u;
      } else {
        flipped[rng.uniform_int(144)] ^= 1u;
      }
    }

    // RS view: bit j belongs to symbol j/8, bit j%8.
    std::vector<gf::Element> rs_data(16);
    for (auto& d : rs_data) {
      d = static_cast<gf::Element>(rng.uniform_int(256));
    }
    std::vector<gf::Element> rs_word = rs_code.encode(rs_data);
    const std::vector<gf::Element> rs_truth = rs_word;
    for (unsigned j = 0; j < 144; ++j) {
      if (flipped[j]) rs_word[j / 8] ^= (gf::Element{1} << (j % 8));
    }
    const rs::DecodeOutcome rs_outcome = rs_code.decode(rs_word);
    rs_failures += (!rs_outcome.ok() || rs_word != rs_truth);

    // SEC-DED view: bits 0..71 = word A, 72..143 = word B.
    bool secded_failed = false;
    for (unsigned half = 0; half < 2; ++half) {
      std::vector<std::uint8_t> data(64);
      for (auto& b : data) {
        b = static_cast<std::uint8_t>(rng.uniform_int(2));
      }
      std::vector<std::uint8_t> word = secded.encode(data);
      const std::vector<std::uint8_t> truth = word;
      for (unsigned j = 0; j < 72; ++j) {
        if (flipped[half * 72 + j]) word[j] ^= 1u;
      }
      const codes::SecDedOutcome outcome = secded.decode(word);
      if (!outcome.ok() || word != truth) secded_failed = true;
    }
    secded_failures += secded_failed;
  }
  return {static_cast<double>(rs_failures) / trials,
          static_cast<double>(secded_failures) / trials};
}

}  // namespace

int main() {
  bench::print_header(
      "bench_secded_vs_rs", "bit- vs symbol-oriented EDAC (E19)",
      "RS(18,16) vs 2x SEC-DED(72,64): same 144 coded bits, same faults");

  const double t = 48.0;
  analysis::Table table{{"fault process", "RS(18,16) fail", "2x SEC-DED fail",
                         "ratio RS/SECDED"}};
  bench::ShapeChecks checks;

  // Single-bit SEUs, accelerated.
  const SegmentResult single =
      run_comparison(2e-4, 0.0, 2, t, 30000, 111);
  table.add_row({"single-bit SEU", analysis::format_sci(single.rs_fail_fraction),
                 analysis::format_sci(single.secded_fail_fraction),
                 analysis::format_fixed(
                     single.rs_fail_fraction /
                         std::max(single.secded_fail_fraction, 1e-12),
                     2)});
  checks.expect(single.secded_fail_fraction < single.rs_fail_fraction,
                "single-bit SEUs: SEC-DED pair slightly stronger (two flips "
                "must share one 72-bit half)");

  // Span-2 bursts (all arrivals are bursts).
  const SegmentResult burst2 = run_comparison(2e-5, 1.0, 2, t, 30000, 222);
  table.add_row({"span-2 bursts", analysis::format_sci(burst2.rs_fail_fraction),
                 analysis::format_sci(burst2.secded_fail_fraction),
                 analysis::format_fixed(
                     burst2.rs_fail_fraction /
                         std::max(burst2.secded_fail_fraction, 1e-12),
                     2)});
  checks.expect(burst2.rs_fail_fraction < burst2.secded_fail_fraction / 3.0,
                "span-2 bursts: RS symbols absorb ~88% of bursts, SEC-DED "
                "dies on nearly all of them");

  // Span-8 bursts.
  const SegmentResult burst8 = run_comparison(1e-5, 1.0, 8, t, 30000, 333);
  table.add_row({"span-8 bursts", analysis::format_sci(burst8.rs_fail_fraction),
                 analysis::format_sci(burst8.secded_fail_fraction),
                 analysis::format_fixed(
                     burst8.rs_fail_fraction /
                         std::max(burst8.secded_fail_fraction, 1e-12),
                     2)});
  checks.expect(burst8.rs_fail_fraction < burst8.secded_fail_fraction,
                "span-8 bursts: symbol organization still ahead");
  std::printf("%s", table.to_text().c_str());
  std::printf(
      "\nsame overhead, same faults: the choice between bit- and symbol-\n"
      "oriented EDAC is a bet on the burst fraction of the environment --\n"
      "exactly why the paper's SSMM uses RS symbols per memory chip.\n");
  return checks.exit_code();
}
