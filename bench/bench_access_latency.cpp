// E22 -- extension of Section 6: the paper compares DECODE LATENCIES (74 vs
// 308 cycles); under real read traffic the queueing effect amplifies the
// gap. Single-codec M/D/1 simulation at a fixed read rate, plus the scrub
// contention the paper's Section 2 warns about.
#include "bench_common.h"
#include "memory/access_latency.h"

using namespace rsmem;

int main() {
  bench::print_header(
      "bench_access_latency", "access-latency queueing study (E22)",
      "M/D/1 codec queue: duplex RS(18,16) vs simplex RS(36,16), 50 MHz");

  const double clock_hz = 50e6;
  const double read_rate = 1.2e5;  // reads/second
  analysis::Table table{{"codec", "Td [cyc]", "rho", "mean latency [us]",
                         "p99 [us]", "vs raw Td ratio"}};
  bench::ShapeChecks checks;

  memory::AccessLatencyConfig narrow;
  narrow.decode_seconds = 74.0 / clock_hz;
  narrow.read_rate_per_second = read_rate;
  narrow.horizon_seconds = 4.0;
  const memory::AccessLatencyReport fast =
      memory::simulate_access_latency(narrow);

  memory::AccessLatencyConfig wide = narrow;
  wide.decode_seconds = 308.0 / clock_hz;
  const memory::AccessLatencyReport slow =
      memory::simulate_access_latency(wide);

  const double latency_ratio =
      slow.mean_latency_seconds / fast.mean_latency_seconds;
  table.add_row({"duplex RS(18,16)", "74",
                 analysis::format_fixed(fast.utilization, 3),
                 analysis::format_fixed(fast.mean_latency_seconds * 1e6, 3),
                 analysis::format_fixed(fast.p99_latency_seconds * 1e6, 3),
                 "1.00"});
  table.add_row({"simplex RS(36,16)", "308",
                 analysis::format_fixed(slow.utilization, 3),
                 analysis::format_fixed(slow.mean_latency_seconds * 1e6, 3),
                 analysis::format_fixed(slow.p99_latency_seconds * 1e6, 3),
                 analysis::format_fixed(latency_ratio / (308.0 / 74.0), 2)});
  std::printf("%s", table.to_text().c_str());

  checks.expect(latency_ratio > 308.0 / 74.0,
                "queueing amplifies the 4.16x decode-time gap (measured " +
                    analysis::format_fixed(latency_ratio, 1) + "x)");

  // Scrub contention on the RS(18,16) codec.
  memory::AccessLatencyConfig scrubbed = narrow;
  scrubbed.scrub_period_seconds = 0.5;
  scrubbed.words_per_scrub = 1u << 16;  // 64 Ki words back-to-back
  const memory::AccessLatencyReport with_scrub =
      memory::simulate_access_latency(scrubbed);
  std::printf(
      "with a 64Ki-word scrub batch every 0.5 s: mean %.3f us, p99 %.3f us,"
      " max %.3f ms\n",
      with_scrub.mean_latency_seconds * 1e6,
      with_scrub.p99_latency_seconds * 1e6,
      with_scrub.max_latency_seconds * 1e3);
  checks.expect(
      with_scrub.max_latency_seconds > 10.0 * fast.max_latency_seconds,
      "reads caught behind a scrub batch see order-of-magnitude tail "
      "latency");

  // The fix: spread the same scrub work evenly across the period.
  memory::AccessLatencyConfig spread = scrubbed;
  spread.spread_scrub = true;
  const memory::AccessLatencyReport with_spread =
      memory::simulate_access_latency(spread);
  std::printf(
      "same scrub duty, SPREAD one word at a time: mean %.3f us, p99 %.3f "
      "us, max %.3f ms\n",
      with_spread.mean_latency_seconds * 1e6,
      with_spread.p99_latency_seconds * 1e6,
      with_spread.max_latency_seconds * 1e3);
  checks.expect(
      with_spread.max_latency_seconds < with_scrub.max_latency_seconds / 100.0,
      "word-interleaved scrubbing removes the tail spike at equal duty");
  return checks.exit_code();
}
