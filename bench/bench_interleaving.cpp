// E17 -- extension: symbol interleaving as the MBU countermeasure. A burst
// of s adjacent physical bits deposits at most ceil(s/I) bits per codeword
// with depth-I interleaving, so in the RARE-BURST regime (bursts per word
// per mission << 1, the regime scrubbed space memories live in) the
// dominant failure mode -- one burst straddling a symbol boundary and
// killing a t=1 word outright -- is converted into single-symbol errors
// spread over many words, which each word absorbs. The price, visible at
// HIGH rates, is that every burst now touches every word, so unscrubbed
// damage accumulates faster: interleaving is a rare-burst optimization,
// and the bench demonstrates both sides.
#include "bench_common.h"
#include "memory/interleaved_array.h"

using namespace rsmem;

namespace {

double fail_at(double lambda, unsigned depth, unsigned trials,
               std::uint64_t seed) {
  memory::InterleavedArrayConfig cfg;
  cfg.rates.seu_rate_per_bit_hour = lambda;
  cfg.rates.mbu_probability = 1.0;
  cfg.rates.mbu_span_bits = 4;
  cfg.depth = depth;
  cfg.seed = seed;
  return memory::interleaved_fail_fraction(cfg, 48.0, trials);
}

}  // namespace

int main() {
  bench::print_header(
      "bench_interleaving", "interleaving study (E17)",
      "span-4 bursts vs interleaving depth, RS(18,16), two rate regimes");

  bench::ShapeChecks checks;

  // --- rare-burst regime: ~0.007 bursts/word over the mission. ----------
  const double lambda_rare = 1e-6;
  analysis::Table rare{{"depth", "fail fraction (rare bursts)"}};
  double rare_d1 = 0.0, rare_d4 = 0.0, prev = 1.0;
  for (const unsigned depth : {1u, 2u, 4u}) {
    const double frac =
        fail_at(lambda_rare, depth, 240000 / depth, 5150 + depth);
    rare.add_row({std::to_string(depth), analysis::format_sci(frac)});
    checks.expect(frac <= prev * 1.1,
                  "rare-burst regime: deeper interleaving helps (depth " +
                      std::to_string(depth) + ")");
    prev = frac;
    if (depth == 1) rare_d1 = frac;
    if (depth == 4) rare_d4 = frac;
  }
  std::printf("%s", rare.to_text().c_str());
  checks.expect(rare_d4 < rare_d1 / 2.5,
                "depth-4 interleaving buys >2.5x in the rare-burst regime");

  // --- accumulation regime: several bursts per array, no scrubbing. -----
  const double lambda_hot = 1e-4;
  analysis::Table hot{{"depth", "fail fraction (hot, unscrubbed)"}};
  double hot_d1 = 0.0, hot_d4 = 0.0;
  for (const unsigned depth : {1u, 4u}) {
    const double frac = fail_at(lambda_hot, depth, 8000 / depth, 99 + depth);
    hot.add_row({std::to_string(depth), analysis::format_sci(frac)});
    if (depth == 1) hot_d1 = frac;
    if (depth == 4) hot_d4 = frac;
  }
  std::printf("%s", hot.to_text().c_str());
  checks.expect(hot_d4 > hot_d1,
                "hot unscrubbed regime: interleaving spreads damage into "
                "every word and hurts (use scrubbing there)");
  return checks.exit_code();
}
