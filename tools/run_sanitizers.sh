#!/usr/bin/env sh
# Sanitizer sweep driver.
#
# Builds and runs the test suite under AddressSanitizer (asan preset, full
# tier-1 suite minus the mc_heavy label) and then under ThreadSanitizer
# (tsan preset, the mc_heavy differential suites that exercise the parallel
# campaign engine, plus the rsmem-serve `service` suite and a loadgen smoke
# run: server + concurrent clients + clean shutdown over real sockets).
# The service suite runs under TSan TWICE: once with the lock-free MPMC
# dispatch ring (tsan preset) and once with the mutex-queue fallback
# (tsan-mutexq preset, -DRSMEM_SERVICE_MUTEX_QUEUE=ON). The mutex build is
# the A/B control: if a race reproduces only in the lock-free build, the
# ring's atomics are the suspect; if it reproduces in both, the bug is
# above the queue.
# The ASan pass likewise runs the SIMD codec differential suite (`codec`
# label) TWICE: against the normal build, where the suite forces every
# compiled vector backend in turn, and against the asan-nosimd build
# (-DRSMEM_DISABLE_SIMD=ON), where only the original scalar loops exist.
# The chaos/resilience battery (`chaos` label plus the serve-churn chaos
# campaign CLI) runs under ASan and under BOTH TSan queue builds: fault
# injection, hedged lanes, brown-out, and warm-start concentrate the
# byte-slicing and cross-thread lifetime hazards.
# Either pass can be selected alone with `asan` / `tsan`
# as the first argument; the default runs both. Exits non-zero on the first
# failing pass, so this is CI-gate friendly.
#
# Usage: tools/run_sanitizers.sh [asan|tsan|all]
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
MODE="${1:-all}"
JOBS="$(nproc 2>/dev/null || echo 2)"

run_asan() {
    echo "== Address+UB sanitizers: tier-1 suite =="
    cmake --preset asan -S "$ROOT" >/dev/null
    cmake --build "$ROOT/build-asan" -j "$JOBS"
    # abort_on_error makes an ASan report fail the ctest run instead of
    # only printing; detect_leaks covers the workspace/arena paths.
    ASAN_OPTIONS="abort_on_error=1:detect_leaks=1" \
        ctest --test-dir "$ROOT/build-asan" -LE mc_heavy --output-on-failure
    # The adversarial campaign allocates/frees whole systems per scenario:
    # drive it end to end under ASan as well.
    ASAN_OPTIONS="abort_on_error=1:detect_leaks=1" \
        "$ROOT/build-asan/tools/rsmem_cli" inject --preset paper-duplex \
        > /dev/null
    # Chaos battery under ASan: the fault-injection shim slices/corrupts
    # frames at the syscall boundary and the snapshot reader parses
    # adversarial bytes -- both are exactly where a heap overrun would live.
    ASAN_OPTIONS="abort_on_error=1:detect_leaks=1" \
        ctest --test-dir "$ROOT/build-asan" -L chaos --output-on-failure
    ASAN_OPTIONS="abort_on_error=1:detect_leaks=1" \
        "$ROOT/build-asan/tools/rsmem_cli" chaos --preset serve-churn \
        --requests 8 --distinct 2 > /dev/null

    echo "== Address+UB sanitizers: SIMD codec kernels (vector backends) =="
    # The codec differential suite again, explicitly: the SIMD kernels do
    # unaligned vector loads and tail handling that ASan/UBSan must see
    # under every compiled backend (the suite forces each in turn), and then
    # ONCE PER SUPPORTED BACKEND with RSMEM_GF_BACKEND pinned, so the
    # process-wide dispatch path itself (env parse, CPUID gate, first-use
    # selection) runs under ASan for every backend this host can execute —
    # scalar and swar at minimum, the vector backends where the CPU allows.
    ASAN_OPTIONS="abort_on_error=1:detect_leaks=1" \
        ctest --test-dir "$ROOT/build-asan" -L codec --output-on-failure
    backends=$("$ROOT/build-asan/tools/rsmem_cli" version \
        | sed -n 's/^gf backends supported://p')
    echo "asan codec loop over backends:$backends"
    for b in $backends; do
        echo "== Address+UB sanitizers: codec suite, RSMEM_GF_BACKEND=$b =="
        RSMEM_GF_BACKEND="$b" \
            ASAN_OPTIONS="abort_on_error=1:detect_leaks=1" \
            ctest --test-dir "$ROOT/build-asan" -L codec --output-on-failure
    done

    echo "== Address+UB sanitizers: SIMD codec kernels (nosimd A/B build) =="
    # Same suite against the RSMEM_DISABLE_SIMD build, where the codec can
    # only run its original scalar loops: the A/B control. An error that
    # reproduces only in the build above indicts the kernel layer; one that
    # reproduces in both sits in the shared codec code. The nosimd build
    # compiles only the portable backends, so its own loop is short.
    cmake --preset asan-nosimd -S "$ROOT" >/dev/null
    cmake --build "$ROOT/build-asan-nosimd" -j "$JOBS" \
        --target rsmem_codec_tests rsmem_cli
    backends=$("$ROOT/build-asan-nosimd/tools/rsmem_cli" version \
        | sed -n 's/^gf backends supported://p')
    echo "asan-nosimd codec loop over backends:$backends"
    for b in $backends; do
        echo "== Address+UB sanitizers: nosimd codec, RSMEM_GF_BACKEND=$b =="
        RSMEM_GF_BACKEND="$b" \
            ASAN_OPTIONS="abort_on_error=1:detect_leaks=1" \
            ctest --test-dir "$ROOT/build-asan-nosimd" -L codec \
            --output-on-failure
    done
}

run_tsan() {
    echo "== ThreadSanitizer: parallel campaign suites =="
    cmake --preset tsan -S "$ROOT" >/dev/null
    cmake --build "$ROOT/build-tsan" -j "$JOBS"
    TSAN_OPTIONS="halt_on_error=1" \
        ctest --test-dir "$ROOT/build-tsan" -L mc_heavy --output-on-failure
    # Multi-threaded campaign run: scenario shards on 4 workers.
    TSAN_OPTIONS="halt_on_error=1" \
        "$ROOT/build-tsan/tools/rsmem_cli" inject --preset paper-duplex \
        --threads 4 > /dev/null

    echo "== ThreadSanitizer: rsmem-serve suites (lock-free queue) =="
    # The service e2e suite: real sockets, concurrent clients, sharded
    # dispatch through the lock-free MPMC ring, scheduler drain/overload
    # paths -- exactly the code where a data race would hide.
    TSAN_OPTIONS="halt_on_error=1" \
        ctest --test-dir "$ROOT/build-tsan" -L service --output-on-failure
    # Service smoke: self-hosted sharded server + concurrent open-loop
    # clients + clean shutdown, end to end over the wire under TSan.
    TSAN_OPTIONS="halt_on_error=1" \
        "$ROOT/build-tsan/tools/rsmem_cli" loadgen --clients 4 \
        --requests 10 --distinct 2 --threads 2 --shards 2 --open-loop \
        > /dev/null
    # Chaos battery under TSan: hedged attempts race two lanes on separate
    # threads, the idle reaper and watchdog poke connections from the
    # acceptor thread, and the campaign drives server churn -- the exact
    # surfaces where a lock-ordering or lifetime race would hide.
    TSAN_OPTIONS="halt_on_error=1" \
        ctest --test-dir "$ROOT/build-tsan" -L chaos --output-on-failure
    TSAN_OPTIONS="halt_on_error=1" \
        "$ROOT/build-tsan/tools/rsmem_cli" chaos --preset serve-churn \
        --requests 8 --distinct 2 > /dev/null

    echo "== ThreadSanitizer: rsmem-serve suites (mutex-queue A/B build) =="
    # Same service battery against the mutex-queue fallback so a race in the
    # ring's sequence/atomic protocol cannot hide behind the lock-based
    # control (and vice versa).
    cmake --preset tsan-mutexq -S "$ROOT" >/dev/null
    cmake --build "$ROOT/build-tsan-mutexq" -j "$JOBS" \
        --target rsmem_service_tests rsmem_chaos_tests rsmem_cli
    TSAN_OPTIONS="halt_on_error=1" \
        ctest --test-dir "$ROOT/build-tsan-mutexq" -L service \
        --output-on-failure
    TSAN_OPTIONS="halt_on_error=1" \
        "$ROOT/build-tsan-mutexq/tools/rsmem_cli" loadgen --clients 4 \
        --requests 10 --distinct 2 --threads 2 --shards 2 --open-loop \
        > /dev/null
    TSAN_OPTIONS="halt_on_error=1" \
        ctest --test-dir "$ROOT/build-tsan-mutexq" -L chaos \
        --output-on-failure
    TSAN_OPTIONS="halt_on_error=1" \
        "$ROOT/build-tsan-mutexq/tools/rsmem_cli" chaos --preset serve-churn \
        --requests 8 --distinct 2 > /dev/null
}

case "$MODE" in
    asan) run_asan ;;
    tsan) run_tsan ;;
    all)  run_asan; run_tsan ;;
    *) echo "usage: tools/run_sanitizers.sh [asan|tsan|all]" >&2; exit 2 ;;
esac

echo "sanitizer sweep ($MODE): PASS"
