#!/usr/bin/env sh
# Benchmark snapshot driver.
#
# Configures/builds the `bench` preset, runs the codec microbenchmarks with
# google-benchmark's JSON reporter, and records the result as
# BENCH_codec.json at the repo root so the codec perf trajectory is tracked
# in-tree. Also runs bench_mc_vs_markov for the end-to-end Monte-Carlo
# throughput numbers (its PASS/FAIL lines gate the >= 1.5x codec speedup).
#
# Usage: tools/run_bench.sh [extra google-benchmark args...]
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD="$ROOT/build-bench"

cmake --preset bench -S "$ROOT" >/dev/null
cmake --build "$BUILD" --target bench_codec_throughput bench_mc_vs_markov \
    -j "$(nproc)"

"$BUILD/bench/bench_codec_throughput" \
    --benchmark_format=json \
    --benchmark_out="$ROOT/BENCH_codec.json" \
    --benchmark_out_format=json \
    "$@"

"$BUILD/bench/bench_mc_vs_markov"

echo "wrote $ROOT/BENCH_codec.json"
