#!/usr/bin/env sh
# Benchmark snapshot driver.
#
# Configures/builds the `bench` preset, runs the codec microbenchmarks with
# google-benchmark's JSON reporter, and records the result as
# BENCH_codec.json at the repo root so the codec perf trajectory is tracked
# in-tree. Also runs bench_mc_vs_markov for the end-to-end Monte-Carlo
# throughput numbers (its PASS/FAIL lines gate the >= 1.5x codec speedup)
# and bench_markov_throughput, which snapshots the Markov sweep-engine
# numbers as BENCH_markov.json. Finally replays the paper-figure benches
# under the bench preset so the snapshot reflects a green figure suite.
#
# Usage: tools/run_bench.sh [extra google-benchmark args...]
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD="$ROOT/build-bench"

cmake --preset bench -S "$ROOT" >/dev/null
cmake --build "$BUILD" \
    --target bench_codec_throughput bench_mc_vs_markov \
             bench_markov_throughput \
             bench_fig5_simplex_seu bench_fig6_duplex_seu \
             bench_fig7_duplex_scrubbing bench_fig8_simplex_perm \
             bench_fig9_duplex_perm bench_fig10_rs3616_perm \
    -j "$(nproc)"

"$BUILD/bench/bench_codec_throughput" \
    --benchmark_format=json \
    --benchmark_out="$ROOT/BENCH_codec.json" \
    --benchmark_out_format=json \
    "$@"

"$BUILD/bench/bench_mc_vs_markov"

"$BUILD/bench/bench_markov_throughput" --out "$ROOT/BENCH_markov.json"

ctest --test-dir "$BUILD" -R 'shape\.bench_fig' --output-on-failure \
    -j "$(nproc)"

echo "wrote $ROOT/BENCH_codec.json"
echo "wrote $ROOT/BENCH_markov.json"
