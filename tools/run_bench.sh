#!/usr/bin/env sh
# Benchmark snapshot driver.
#
# Configures/builds the `bench` preset, runs the codec microbenchmarks with
# google-benchmark's JSON reporter, and records the result as
# BENCH_codec.json at the repo root so the codec perf trajectory is tracked
# in-tree. Also runs bench_mc_vs_markov for the end-to-end Monte-Carlo
# throughput numbers (its PASS/FAIL lines gate the >= 1.5x codec speedup),
# bench_markov_throughput, which snapshots the Markov sweep-engine numbers
# as BENCH_markov.json, and `rsmem_cli loadgen --self-host`, which snapshots
# the rsmem-serve latency/cache numbers as BENCH_serve.json. Finally replays
# the paper-figure benches under the bench preset so the snapshot reflects a
# green figure suite.
#
# Every required binary is checked for existence up front: a missing bench
# binary fails the whole run loudly (non-zero exit, nothing written) rather
# than leaving a partial BENCH_*.json snapshot behind.
#
# Release-build guard: the run refuses to start from a non-Release build
# tree and deletes any BENCH_codec.json whose embedded rsmem_build_type is
# not "release", so debug numbers can never be recorded as the trajectory.
# The SIMD plane selfcheck (>= 2x encode-plane speedup where a PSHUFB
# backend is selected) gates the snapshot as well.
#
# Usage: tools/run_bench.sh [--backend-sweep] [extra google-benchmark args...]
#
# Extra arguments are forwarded to bench_codec_throughput verbatim.
# `--backend-sweep` makes it register the RS(36,16) x4096 encode/decode
# plane cases once per backend the host CPU supports (scalar/swar at
# minimum, ssse3/avx2/gfni where available), so the BENCH_codec.json
# snapshot records the whole backend ladder next to the host's cpu_flags
# context. After the snapshot passes the release guard, bench_mc_vs_markov
# merges its campaign-throughput numbers (thread scaling, codec path,
# batched-vs-per-word planes, each tagged with the selected gf backend)
# into BENCH_codec.json as a top-level `mc_campaign` object.
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD="$ROOT/build-bench"

cmake --preset bench -S "$ROOT" >/dev/null
cmake --build "$BUILD" \
    --target bench_codec_throughput bench_mc_vs_markov \
             bench_markov_throughput rsmem_cli \
             bench_fig5_simplex_seu bench_fig6_duplex_seu \
             bench_fig7_duplex_scrubbing bench_fig8_simplex_perm \
             bench_fig9_duplex_perm bench_fig10_rs3616_perm \
    -j "$(nproc)"

# Verify ALL required binaries before running ANY of them, so a botched
# build cannot write a partial benchmark snapshot.
MISSING=0
for bin in \
    "$BUILD/bench/bench_codec_throughput" \
    "$BUILD/bench/bench_mc_vs_markov" \
    "$BUILD/bench/bench_markov_throughput" \
    "$BUILD/tools/rsmem_cli"; do
    if [ ! -x "$bin" ]; then
        echo "error: required bench binary missing: $bin" >&2
        MISSING=1
    fi
done
if [ "$MISSING" -ne 0 ]; then
    echo "error: bench binaries missing after build; refusing to write a" \
         "partial BENCH_*.json snapshot" >&2
    exit 1
fi

# Guard against recording debug-build numbers: the bench preset pins
# CMAKE_BUILD_TYPE=Release, but a stale or hand-edited build tree could
# differ, and google-benchmark's own library_build_type reflects how the
# SYSTEM libbenchmark was compiled (often debug on distro packages), not
# how rsmem was. Check the cache before running anything, and re-check the
# binary's self-reported rsmem_build_type after writing the snapshot.
if ! grep -q '^CMAKE_BUILD_TYPE:[^=]*=Release$' "$BUILD/CMakeCache.txt"; then
    echo "error: $BUILD is not a Release build; refusing to record" \
         "benchmark numbers from it" >&2
    exit 1
fi

# The >= 2x SIMD encode-plane contract (enforced only where a PSHUFB
# backend is selected; record-only otherwise). Runs before the snapshot so
# a kernel-layer regression fails the run without touching BENCH_codec.json.
"$BUILD/bench/bench_codec_throughput" --plane-selfcheck

"$BUILD/bench/bench_codec_throughput" \
    --benchmark_format=json \
    --benchmark_out="$ROOT/BENCH_codec.json" \
    --benchmark_out_format=json \
    "$@"

if ! grep -q '"rsmem_build_type": "release"' "$ROOT/BENCH_codec.json"; then
    echo "error: BENCH_codec.json reports a non-release rsmem build;" \
         "removing the snapshot" >&2
    rm -f "$ROOT/BENCH_codec.json"
    exit 1
fi

# Runs AFTER the release guard above: the merge rewrites BENCH_codec.json
# through the canonical service serializer, and must only ever extend a
# snapshot that already passed the build-type check.
"$BUILD/bench/bench_mc_vs_markov" --campaign-json "$ROOT/BENCH_codec.json"

"$BUILD/bench/bench_markov_throughput" --out "$ROOT/BENCH_markov.json"

# rsmem-serve snapshot: self-hosted loadgen over the real wire protocol --
# 8 concurrent clients replaying the paper's duplex scrubbing sweep (4
# distinct cache keys), recording latency percentiles, cache hit rate, and
# the hot-query speedup. --shard-sweep appends an open-loop shard-scaling
# section (1/2/4 shards, same mix) to the JSON snapshot; the speedup column
# is only meaningful on hosts with >= 4 cores, so it is recorded, not
# asserted. See docs/SERVICE.md.
"$BUILD/tools/rsmem_cli" loadgen --clients 8 --requests 40 --distinct 4 \
    --shard-sweep 1,2,4 \
    --json "$ROOT/BENCH_serve.json"

ctest --test-dir "$BUILD" -R 'shape\.bench_fig' --output-on-failure \
    -j "$(nproc)"

echo "wrote $ROOT/BENCH_codec.json"
echo "wrote $ROOT/BENCH_markov.json"
echo "wrote $ROOT/BENCH_serve.json"
