// rsmem_figures: regenerate all six of the paper's figures as CSV files,
// ready for external plotting tools.
//
// usage: rsmem_figures [output_directory]   (default: ./figures)
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "analysis/experiment.h"
#include "analysis/table.h"

using namespace rsmem;

namespace {

void write_csv(const std::filesystem::path& path,
               const std::vector<analysis::Series>& series,
               const std::string& x_name) {
  std::vector<std::string> headers{x_name};
  for (const auto& s : series) headers.push_back(s.label);
  analysis::Table table{headers};
  if (!series.empty()) {
    for (std::size_t i = 0; i < series.front().x.size(); ++i) {
      std::vector<std::string> row{
          analysis::format_fixed(series.front().x[i], 4)};
      for (const auto& s : series) {
        row.push_back(analysis::format_sci(s.y[i], 6));
      }
      table.add_row(std::move(row));
    }
  }
  std::ofstream out{path};
  out << table.to_csv();
  std::printf("wrote %s (%zu series, %zu points)\n", path.c_str(),
              series.size(), series.empty() ? 0 : series.front().x.size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : "figures";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  const analysis::CodeSpec rs1816{18, 16, 8};
  const analysis::CodeSpec rs3616{36, 16, 8};
  const double seu_rates[] = {1.7e-5, 3.6e-6, 7.3e-7};
  const double scrub_periods[] = {900.0, 1200.0, 1800.0, 3600.0};
  const double perm_rates[] = {1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10};

  write_csv(dir / "fig5_simplex_seu.csv",
            analysis::seu_rate_sweep(analysis::Arrangement::kSimplex, rs1816,
                                     seu_rates, 48.0, 49),
            "hours");
  write_csv(dir / "fig6_duplex_seu.csv",
            analysis::seu_rate_sweep(analysis::Arrangement::kDuplex, rs1816,
                                     seu_rates, 48.0, 49),
            "hours");
  write_csv(dir / "fig7_duplex_scrubbing.csv",
            analysis::scrub_period_sweep(analysis::Arrangement::kDuplex,
                                         rs1816, 1.7e-5, scrub_periods, 48.0,
                                         49),
            "hours");
  write_csv(dir / "fig8_simplex_perm.csv",
            analysis::permanent_rate_sweep(analysis::Arrangement::kSimplex,
                                           rs1816, perm_rates, 24.0, 49),
            "months");
  write_csv(dir / "fig9_duplex_perm.csv",
            analysis::permanent_rate_sweep(analysis::Arrangement::kDuplex,
                                           rs1816, perm_rates, 24.0, 49),
            "months");
  write_csv(dir / "fig10_rs3616_perm.csv",
            analysis::permanent_rate_sweep(analysis::Arrangement::kSimplex,
                                           rs3616, perm_rates, 24.0, 49),
            "months");
  std::printf("all six paper figures regenerated under %s\n", dir.c_str());
  return 0;
}
