// rsmem_cli: command-line front end for the rsmem library.
#include <iostream>

#include "cli/commands.h"

int main(int argc, char** argv) {
  return rsmem::cli::run_cli(argc, argv, std::cout, std::cerr);
}
