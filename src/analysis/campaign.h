// Sharded Monte-Carlo campaign runner.
//
// Partitions a campaign of `trials` independent trials into fixed-size
// chunks, runs the chunks on a sim::ThreadPool, and folds the per-chunk
// accumulators IN CHUNK-INDEX ORDER. Together with per-trial RNG streams
// keyed by the GLOBAL trial index (not by shard or thread), this makes the
// campaign result bit-identical for every thread count, including 1:
//
//  * which trials exist, and each trial's random stream, depend only on the
//    campaign seed and the global trial index;
//  * chunk boundaries depend only on `chunk_trials`, never on `threads`;
//  * the merge fold visits chunks in ascending index order, so even
//    non-associative accumulator arithmetic (floating-point sums) combines
//    in one fixed order.
//
// The scheduler is free to run chunks in any order on any worker; only the
// fold order is pinned.
#ifndef RSMEM_ANALYSIS_CAMPAIGN_H
#define RSMEM_ANALYSIS_CAMPAIGN_H

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

namespace rsmem::analysis {

struct CampaignConfig {
  std::size_t trials = 0;
  // Shard granularity. Results do not depend on it (see fold-order note
  // above), but it trades scheduling slack against task overhead.
  std::size_t chunk_trials = 1024;
  // Worker threads; 0 selects the hardware concurrency. Never more threads
  // than chunks are spawned.
  unsigned threads = 0;
};

// Live per-shard progress, safe to read from other threads while the
// campaign runs (e.g. for a bench progress line).
struct CampaignProgress {
  std::atomic<std::uint64_t> trials_completed{0};
  std::atomic<std::uint64_t> chunks_completed{0};
};

// Filled in after the campaign finishes.
struct CampaignReport {
  std::size_t trials = 0;
  std::size_t chunks = 0;
  unsigned threads_used = 0;
  double elapsed_seconds = 0.0;
  double trials_per_second = 0.0;
};

// Number of chunks the config partitions into (ceil division).
std::size_t campaign_chunk_count(const CampaignConfig& config);

// Type-erased core: calls `run_chunk(chunk_index, first_trial, last_trial)`
// for every chunk (half-open trial range), using `config.threads` workers.
// The single-thread path runs inline with no pool. Exceptions thrown by a
// chunk are captured and the FIRST one (by chunk index) is rethrown after
// all other chunks finish. Throws std::invalid_argument for an empty
// campaign or zero chunk size.
using ChunkRunner = std::function<void(
    std::size_t chunk_index, std::size_t first_trial, std::size_t last_trial)>;
void run_chunked(const CampaignConfig& config, const ChunkRunner& run_chunk,
                 CampaignReport* report = nullptr,
                 CampaignProgress* progress = nullptr);

// Splits a chunk's half-open trial range into fixed-width sub-batches and
// calls `fn(first, last)` for each, in ascending order. The batched
// Monte-Carlo gather/decode/scatter path uses this to bound how many live
// systems one worker holds; because the batch boundaries depend only on
// `width` (never on threads or chunk layout) and every trial's work is
// independent, the batch width cannot change campaign results.
template <typename Fn>
void for_each_batch(std::size_t first, std::size_t last, std::size_t width,
                    Fn&& fn) {
  for (std::size_t base = first; base < last;) {
    const std::size_t stop = std::min(last, base + width);
    fn(base, stop);
    base = stop;
  }
}

// Index-parallel helper (used by the Markov sweep engine): runs fn(i) for
// every i in [0, count) on `threads` workers (0 = hardware concurrency;
// never more workers than indices; 1 runs inline). Deterministic whenever
// fn(i) writes only its own slot i. Exceptions are captured and the first
// one by index is rethrown; count == 0 is a no-op.
void parallel_for_indexed(std::size_t count, unsigned threads,
                          const std::function<void(std::size_t)>& fn);

// Accumulator-typed front end. `chunk_fn(first, last, shard)` fills a
// default-constructed shard accumulator for its trial range; `merge(total,
// shard)` folds shards into the running total in chunk order.
template <typename Accumulator, typename ChunkFn, typename MergeFn>
Accumulator run_sharded(const CampaignConfig& config, ChunkFn&& chunk_fn,
                        MergeFn&& merge, CampaignReport* report = nullptr,
                        CampaignProgress* progress = nullptr) {
  std::vector<Accumulator> shards(campaign_chunk_count(config));
  run_chunked(
      config,
      [&](std::size_t chunk, std::size_t first, std::size_t last) {
        chunk_fn(first, last, shards[chunk]);
      },
      report, progress);
  Accumulator total{};
  for (const Accumulator& shard : shards) merge(total, shard);
  return total;
}

}  // namespace rsmem::analysis

#endif  // RSMEM_ANALYSIS_CAMPAIGN_H
