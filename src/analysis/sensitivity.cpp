#include "analysis/sensitivity.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/api.h"

namespace rsmem::analysis {

namespace {

double ber_at(core::MemorySystemSpec spec, double t_hours) {
  const double times[] = {t_hours};
  return rsmem::analyze_ber(spec, times).ber[0];
}

// d ln BER / d ln x by central difference around the nominal spec, with
// `apply` writing a scaled knob value into a copy of the spec.
template <typename Apply>
double elasticity(const core::MemorySystemSpec& spec, double t_hours,
                  double nominal, double rel_step, const Apply& apply) {
  if (nominal <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  core::MemorySystemSpec up = spec;
  apply(up, nominal * (1.0 + rel_step));
  core::MemorySystemSpec down = spec;
  apply(down, nominal * (1.0 - rel_step));
  const double ber_up = ber_at(up, t_hours);
  const double ber_down = ber_at(down, t_hours);
  if (ber_up <= 0.0 || ber_down <= 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return (std::log(ber_up) - std::log(ber_down)) /
         (std::log1p(rel_step) - std::log1p(-rel_step));
}

}  // namespace

SensitivityReport ber_sensitivity(const core::MemorySystemSpec& spec,
                                  double t_hours, double rel_step) {
  if (t_hours <= 0.0) {
    throw std::invalid_argument("ber_sensitivity: t must be > 0");
  }
  if (rel_step <= 0.0 || rel_step > 0.5) {
    throw std::invalid_argument(
        "ber_sensitivity: rel_step must be in (0, 0.5]");
  }
  SensitivityReport report;
  report.ber = ber_at(spec, t_hours);
  report.seu_elasticity = elasticity(
      spec, t_hours, spec.seu_rate_per_bit_day, rel_step,
      [](core::MemorySystemSpec& s, double v) { s.seu_rate_per_bit_day = v; });
  report.erasure_elasticity =
      elasticity(spec, t_hours, spec.erasure_rate_per_symbol_day, rel_step,
                 [](core::MemorySystemSpec& s, double v) {
                   s.erasure_rate_per_symbol_day = v;
                 });
  report.scrub_period_elasticity =
      elasticity(spec, t_hours, spec.scrub_period_seconds, rel_step,
                 [](core::MemorySystemSpec& s, double v) {
                   s.scrub_period_seconds = v;
                 });
  return report;
}

}  // namespace rsmem::analysis
