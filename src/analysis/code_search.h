// Code/arrangement design-space search.
//
// Generalizes the paper's Section 6 trade-off (duplex RS(18,16) vs simplex
// RS(36,16)) into a tool: enumerate candidate (arrangement, n) points for a
// fixed dataword, evaluate BER at the mission horizon together with the
// three engineering costs (storage overhead, decode latency, codec area),
// and return the Pareto-efficient set. A candidate is dominated if another
// candidate is no worse in ALL four metrics and strictly better in one.
#ifndef RSMEM_ANALYSIS_CODE_SEARCH_H
#define RSMEM_ANALYSIS_CODE_SEARCH_H

#include <vector>

#include "core/config.h"
#include "reliability/decoder_cost.h"

namespace rsmem::analysis {

struct CodeCandidate {
  Arrangement arrangement = Arrangement::kSimplex;
  unsigned n = 18;  // k and m come from the environment spec
};

struct CandidateEvaluation {
  CodeCandidate candidate;
  double ber = 0.0;               // at the horizon
  double storage_overhead = 0.0;  // coded bits (x copies) per data bit
  double decode_cycles = 0.0;
  double area_gates = 0.0;
  bool pareto_efficient = false;
};

struct CodeSearchSpec {
  // Environment and dataword; `code.n` and `arrangement` are overridden
  // per candidate.
  core::MemorySystemSpec base;
  double t_hours = 48.0;
  reliability::DecoderCostModel cost_model{};
  // Workers for the per-candidate Markov evaluations (0 = hardware
  // concurrency). Candidates are independent and each writes only its own
  // result slot, so the output is identical for every thread count.
  unsigned threads = 0;
};

// Evaluates every candidate and marks the Pareto set (minimizing all four
// metrics). Throws std::invalid_argument on an empty candidate list, a
// non-positive horizon, or a candidate with n <= k.
std::vector<CandidateEvaluation> evaluate_candidates(
    const CodeSearchSpec& spec, const std::vector<CodeCandidate>& candidates);

// Convenience: the default candidate family around the paper's codes --
// simplex and duplex for n in {k+2, k+4, k+8, k+12, k+20}.
std::vector<CodeCandidate> default_candidates(unsigned k);

}  // namespace rsmem::analysis

#endif  // RSMEM_ANALYSIS_CODE_SEARCH_H
