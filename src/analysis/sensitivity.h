// Sensitivity (elasticity) analysis of the BER with respect to the
// environment knobs.
//
// The elasticity E_x = d ln BER / d ln x says how many percent the BER
// moves per percent change in x -- the number a mission planner needs to
// decide which knob to buy down. The chains make the expected values
// physical: a simplex RS(18,16) needs 2 random errors to die, so
// E_lambda ~ 2 in the small-rate regime; 3 erasures, so E_lambda_e ~ 3;
// the duplex needs 3 double-erasures (6 events), so E_lambda_e ~ 6; a
// scrubbed word's quasi-steady hazard is ~ linear in Tsc, so E_Tsc ~ +1.
// Computed by central finite differences in log space on the Markov BER.
#ifndef RSMEM_ANALYSIS_SENSITIVITY_H
#define RSMEM_ANALYSIS_SENSITIVITY_H

#include "core/config.h"

namespace rsmem::analysis {

struct SensitivityReport {
  double ber = 0.0;  // at the nominal operating point
  // Elasticities; NaN when the corresponding knob is zero (no defined
  // log-derivative) or the BER vanishes.
  double seu_elasticity = 0.0;
  double erasure_elasticity = 0.0;
  double scrub_period_elasticity = 0.0;
};

// Central log-space finite differences with multiplicative step
// (1 +/- rel_step). Throws std::invalid_argument for t <= 0 or
// rel_step outside (0, 0.5].
SensitivityReport ber_sensitivity(const core::MemorySystemSpec& spec,
                                  double t_hours, double rel_step = 0.05);

}  // namespace rsmem::analysis

#endif  // RSMEM_ANALYSIS_SENSITIVITY_H
