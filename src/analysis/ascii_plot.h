// ASCII rendering of BER curves, mimicking the paper's semi-log figures so
// bench output can be eyeballed against the originals.
#ifndef RSMEM_ANALYSIS_ASCII_PLOT_H
#define RSMEM_ANALYSIS_ASCII_PLOT_H

#include <string>
#include <vector>

#include "analysis/experiment.h"

namespace rsmem::analysis {

struct PlotOptions {
  std::size_t width = 72;   // plot area columns
  std::size_t height = 20;  // plot area rows
  bool log_y = true;        // semi-log like the paper's figures
  // Values below this floor are clamped (log scale cannot show zero).
  double y_floor = 1e-300;
  std::string x_label = "t";
  std::string y_label = "BER";
  std::string title;
};

// Renders all series into one semi-log plot; each series is drawn with its
// own glyph and listed in the legend.
std::string render_plot(const std::vector<Series>& series,
                        const PlotOptions& options);

}  // namespace rsmem::analysis

#endif  // RSMEM_ANALYSIS_ASCII_PLOT_H
