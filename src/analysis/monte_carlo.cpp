#include "analysis/monte_carlo.h"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "gf/aligned.h"
#include "sim/rng.h"

namespace rsmem::analysis {

namespace {
constexpr double kZ95 = 1.959963984540054;  // two-sided 95% normal quantile

// Default gather/decode/scatter width (MonteCarloConfig::batch_trials == 0):
// wide enough that the plane-wide syndrome screen amortizes per-word call
// overhead into full vector registers, small enough that one worker's live
// systems stay cache-resident.
constexpr std::size_t kDefaultBatchTrials = 64;

// The batched path requires the workspace fast path (decode_batch) and an
// inert degradation policy (the rungs re-read the module mid-decode, which
// cannot be lifted into a plane). Width 1 is the per-trial read() control.
std::size_t resolve_batch_width(const MonteCarloConfig& config,
                                const memory::DegradationPolicy& degradation) {
  if (config.legacy_codec || degradation.any_enabled()) return 1;
  return config.batch_trials == 0 ? kDefaultBatchTrials : config.batch_trials;
}

void fill_random_data(sim::Rng& rng, std::span<gf::Element> data, unsigned m) {
  for (auto& d : data) {
    d = static_cast<gf::Element>(rng.uniform_int(1u << m));
  }
}

std::vector<gf::Element> random_data(sim::Rng& rng, unsigned k, unsigned m) {
  std::vector<gf::Element> data(k);
  fill_random_data(rng, data, m);
  return data;
}

void count_outcome(MonteCarloAccumulator& acc, const MonteCarloConfig& config,
                   bool success, bool data_correct,
                   const memory::SystemStats& stats) {
  ++acc.trials;
  if (!success) {
    ++acc.failures;
    ++acc.no_output_failures;
  } else if (config.wrong_data_is_failure && !data_correct) {
    ++acc.failures;
    ++acc.wrong_data_failures;
  }
  acc.seu_sum += stats.seu_injected;
  acc.permanent_sum += stats.permanent_injected;
  acc.scrub_failures += stats.scrub_failures;
  acc.scrub_miscorrections += stats.scrub_miscorrections;
}

void fill_word(WordObservation& word, const rs::DecodeOutcome& outcome,
               unsigned erasures_supplied,
               const memory::DamageSummary& damage) {
  word.decode_ok = outcome.ok();
  word.errors_corrected = outcome.errors_corrected;
  word.erasures_corrected = outcome.erasures_corrected;
  word.erasures_supplied = erasures_supplied;
  word.erased_symbols = damage.erased;
  word.corrupted_symbols = damage.corrupted;
}

// One trial's RNG streams are keyed by the GLOBAL trial index, never by the
// shard, so shard layout cannot change any trial's fault history.
sim::Rng trial_data_rng(const sim::Rng& root, std::size_t trial) {
  return root.split(2 * trial);
}
std::uint64_t trial_system_seed(const sim::Rng& root, std::size_t trial) {
  return root.split(2 * trial + 1).next_u64();
}

MonteCarloResult run_campaign(const MonteCarloConfig& config,
                              const ChunkRunner& chunk_with_acc,
                              CampaignReport* report,
                              CampaignProgress* progress,
                              std::vector<MonteCarloAccumulator>& shards) {
  CampaignConfig campaign;
  campaign.trials = config.trials;
  campaign.chunk_trials = config.chunk_trials;
  campaign.threads = config.threads;
  shards.assign(campaign_chunk_count(campaign), MonteCarloAccumulator{});
  run_chunked(campaign, chunk_with_acc, report, progress);
  MonteCarloAccumulator total;
  for (const MonteCarloAccumulator& shard : shards) total.merge_from(shard);
  return total.finalize();
}

}  // namespace

double BinomialEstimate::p_hat() const {
  return trials == 0 ? 0.0
                     : static_cast<double>(failures) /
                           static_cast<double>(trials);
}

double BinomialEstimate::std_error() const {
  if (trials == 0) return 0.0;
  const double p = p_hat();
  return std::sqrt(p * (1.0 - p) / static_cast<double>(trials));
}

double BinomialEstimate::wilson_low() const {
  if (trials == 0 || failures == 0) return 0.0;
  const double n = static_cast<double>(trials);
  const double p = p_hat();
  const double z2 = kZ95 * kZ95;
  const double denom = 1.0 + z2 / n;
  const double center = p + z2 / (2.0 * n);
  const double margin =
      kZ95 * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return std::max(0.0, (center - margin) / denom);
}

double BinomialEstimate::wilson_high() const {
  if (trials == 0 || failures == trials) return 1.0;
  const double n = static_cast<double>(trials);
  const double p = p_hat();
  const double z2 = kZ95 * kZ95;
  const double denom = 1.0 + z2 / n;
  const double center = p + z2 / (2.0 * n);
  const double margin =
      kZ95 * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return std::min(1.0, (center + margin) / denom);
}

bool BinomialEstimate::covers(double p) const {
  return p >= wilson_low() && p <= wilson_high();
}

void MonteCarloAccumulator::merge_from(const MonteCarloAccumulator& other) {
  trials += other.trials;
  failures += other.failures;
  seu_sum += other.seu_sum;
  permanent_sum += other.permanent_sum;
  scrub_failures += other.scrub_failures;
  scrub_miscorrections += other.scrub_miscorrections;
  no_output_failures += other.no_output_failures;
  wrong_data_failures += other.wrong_data_failures;
}

MonteCarloResult MonteCarloAccumulator::finalize() const {
  MonteCarloResult result;
  result.failure.trials = trials;
  result.failure.failures = failures;
  if (trials > 0) {
    result.mean_seu_per_trial = seu_sum / static_cast<double>(trials);
    result.mean_permanent_per_trial =
        permanent_sum / static_cast<double>(trials);
  }
  result.scrub_failures = scrub_failures;
  result.scrub_miscorrections = scrub_miscorrections;
  result.no_output_failures = no_output_failures;
  result.wrong_data_failures = wrong_data_failures;
  return result;
}

MonteCarloResult run_simplex_trials(const memory::SimplexSystemConfig& system,
                                    const MonteCarloConfig& config,
                                    CampaignReport* report,
                                    CampaignProgress* progress) {
  if (config.trials == 0) {
    throw std::invalid_argument("run_simplex_trials: need at least 1 trial");
  }
  const sim::Rng root{config.seed};
  // One codec for the whole campaign (unless the legacy baseline was
  // requested): building GF tables + generator per trial is pure overhead,
  // and the codec is immutable so sharing across workers is safe. Warm the
  // dense mul table here, before the pool threads race for it.
  std::shared_ptr<const rs::ReedSolomon> shared_code;
  if (!config.legacy_codec) {
    shared_code = system.shared_code
                      ? system.shared_code
                      : std::make_shared<const rs::ReedSolomon>(system.code);
    rs::DecoderWorkspace warm;
    warm.reserve(*shared_code);
  }
  std::vector<MonteCarloAccumulator> shards;
  const std::size_t batch = resolve_batch_width(config, system.degradation);
  const unsigned n = system.code.n;
  const unsigned k = system.code.k;
  const auto chunk = [&](std::size_t chunk_index, std::size_t first,
                         std::size_t last) {
    // One workspace per pool thread (the thread-safety rule of the fast
    // path); it persists across chunks so steady-state trials allocate no
    // codec scratch at all.
    thread_local rs::DecoderWorkspace ws;
    MonteCarloAccumulator& acc = shards[chunk_index];
    // Constructs one trial's system (no data stored yet).
    const auto build_system = [&](std::size_t trial) {
      memory::SimplexSystemConfig cfg = system;
      cfg.seed = trial_system_seed(root, trial);
      if (!config.legacy_codec) {
        cfg.shared_code = shared_code;
        cfg.workspace = &ws;
      }
      return std::make_unique<memory::SimplexSystem>(cfg);
    };
    // Runs one trial's life up to the stopping time; the final read is the
    // caller's (per-trial or batched).
    const auto make_system = [&](std::size_t trial) {
      sim::Rng data_rng = trial_data_rng(root, trial);
      auto sys = build_system(trial);
      sys->store(random_data(data_rng, k, system.code.m));
      sys->advance_to(config.t_end_hours);
      return sys;
    };
    const auto finish_trial = [&](std::size_t trial,
                                  const memory::SimplexSystem& sys,
                                  const memory::ReadResult& read) {
      count_outcome(acc, config, read.success, read.data_correct,
                    sys.stats());
      if (config.observer) {
        TrialRecord record;
        record.trial_index = trial;
        record.success = read.success;
        record.data_correct = read.data_correct;
        record.word_count = 1;
        const memory::DamageSummary damage = sys.damage();
        fill_word(record.words[0], read.outcome, damage.erased, damage);
        record.seu_injected = sys.stats().seu_injected;
        record.permanent_injected = sys.stats().permanent_injected;
        config.observer(record);
      }
    };
    if (batch <= 1) {
      for (std::size_t trial = first; trial < last; ++trial) {
        const std::unique_ptr<memory::SimplexSystem> sys = make_system(trial);
        finish_trial(trial, *sys, sys->read());
      }
      return;
    }
    // Batched gather/encode/decode/scatter: generate the batch's datawords
    // into one plane and encode them with a single encode_batch call
    // (bit-identical per word to the per-trial encode), store each trial's
    // slot, run every trial to its stopping time, gather the raw module
    // reads into one word/flag plane, decode the plane with a single
    // decode_batch call (clean unflagged words exit via the plane-wide
    // syndrome screen), then scatter the per-word outcomes through each
    // system's bookkeeping tail. Systems are built in ascending trial order
    // (RNG keying is by global index) and outcomes are counted in the same
    // order as the per-trial loop above.
    std::vector<std::unique_ptr<memory::SimplexSystem>> systems;
    gf::AlignedVector<gf::Element> data_plane;
    gf::AlignedVector<gf::Element> plane;
    gf::AlignedVector<std::uint8_t> flags;
    std::vector<rs::DecodeOutcome> outcomes;
    for_each_batch(first, last, batch, [&](std::size_t base,
                                           std::size_t stop) {
      const std::size_t count = stop - base;
      systems.clear();
      systems.reserve(count);
      data_plane.resize(count * k);
      plane.resize(count * n);
      flags.resize(count * n);
      outcomes.assign(count, rs::DecodeOutcome{});
      const std::span<gf::Element> data_span{data_plane};
      const std::span<gf::Element> plane_span{plane};
      const std::span<std::uint8_t> flag_span{flags};
      for (std::size_t i = 0; i < count; ++i) {
        sim::Rng data_rng = trial_data_rng(root, base + i);
        fill_random_data(data_rng, data_span.subspan(i * k, k),
                         system.code.m);
        systems.push_back(build_system(base + i));
      }
      // The codeword plane reuses the read-gather plane: store_encoded
      // copies each slot before any fault arrives, and the gather below
      // overwrites the plane wholesale.
      shared_code->encode_batch(ws, data_span, plane_span);
      for (std::size_t i = 0; i < count; ++i) {
        systems[i]->store_encoded(data_span.subspan(i * k, k),
                                  plane_span.subspan(i * n, n));
        systems[i]->advance_to(config.t_end_hours);
      }
      for (std::size_t i = 0; i < count; ++i) {
        systems[i]->read_into_plane(plane_span.subspan(i * n, n),
                                    flag_span.subspan(i * n, n));
      }
      shared_code->decode_batch(ws, plane_span, outcomes, flag_span);
      for (std::size_t i = 0; i < count; ++i) {
        finish_trial(base + i, *systems[i],
                     systems[i]->finish_batched_read(
                         plane_span.subspan(i * n, n), outcomes[i]));
      }
    });
  };
  return run_campaign(config, chunk, report, progress, shards);
}

MonteCarloResult run_duplex_trials(const memory::DuplexSystemConfig& system,
                                   const MonteCarloConfig& config,
                                   CampaignReport* report,
                                   CampaignProgress* progress) {
  if (config.trials == 0) {
    throw std::invalid_argument("run_duplex_trials: need at least 1 trial");
  }
  const sim::Rng root{config.seed};
  std::shared_ptr<const rs::ReedSolomon> shared_code;
  if (!config.legacy_codec) {
    shared_code = system.shared_code
                      ? system.shared_code
                      : std::make_shared<const rs::ReedSolomon>(system.code);
    rs::DecoderWorkspace warm;
    warm.reserve(*shared_code);
  }
  std::vector<MonteCarloAccumulator> shards;
  const std::size_t batch = resolve_batch_width(config, system.degradation);
  const unsigned n = system.code.n;
  const unsigned k = system.code.k;
  const auto chunk = [&](std::size_t chunk_index, std::size_t first,
                         std::size_t last) {
    thread_local rs::DecoderWorkspace ws;
    MonteCarloAccumulator& acc = shards[chunk_index];
    const auto build_system = [&](std::size_t trial) {
      memory::DuplexSystemConfig cfg = system;
      cfg.seed = trial_system_seed(root, trial);
      if (!config.legacy_codec) {
        cfg.shared_code = shared_code;
        cfg.workspace = &ws;
      }
      return std::make_unique<memory::DuplexSystem>(cfg);
    };
    const auto make_system = [&](std::size_t trial) {
      sim::Rng data_rng = trial_data_rng(root, trial);
      auto sys = build_system(trial);
      sys->store(random_data(data_rng, k, system.code.m));
      sys->advance_to(config.t_end_hours);
      return sys;
    };
    const auto finish_trial = [&](std::size_t trial,
                                  const memory::DuplexSystem& sys,
                                  const memory::DuplexReadResult& read) {
      count_outcome(acc, config, read.read.success, read.read.data_correct,
                    sys.stats());
      if (config.observer) {
        TrialRecord record;
        record.trial_index = trial;
        record.success = read.read.success;
        record.data_correct = read.read.data_correct;
        record.word_count = 2;
        const unsigned common = static_cast<unsigned>(
            read.arbitration.common_erasures.size());
        fill_word(record.words[0], read.arbitration.outcome1, common,
                  sys.damage(0));
        fill_word(record.words[1], read.arbitration.outcome2, common,
                  sys.damage(1));
        record.seu_injected = sys.stats().seu_injected;
        record.permanent_injected = sys.stats().permanent_injected;
        config.observer(record);
      }
    };
    if (batch <= 1) {
      for (std::size_t trial = first; trial < last; ++trial) {
        const std::unique_ptr<memory::DuplexSystem> sys = make_system(trial);
        finish_trial(trial, *sys, sys->read());
      }
      return;
    }
    // Batched gather/decode/scatter, duplex flavour: each trial contributes
    // its erasure-masked word PAIR to the plane (slots 2i and 2i+1, both
    // flagged with the pair's common erasures — arbiter step 1 runs at
    // gather time, step 2 is the shared decode_batch call, step 3 runs at
    // scatter time inside finish_batched_read).
    std::vector<std::unique_ptr<memory::DuplexSystem>> systems;
    std::vector<memory::ArbiterResult> partials;
    gf::AlignedVector<gf::Element> data_plane;
    gf::AlignedVector<gf::Element> plane;
    gf::AlignedVector<std::uint8_t> flags;
    std::vector<rs::DecodeOutcome> outcomes;
    for_each_batch(first, last, batch, [&](std::size_t base,
                                           std::size_t stop) {
      const std::size_t count = stop - base;
      systems.clear();
      systems.reserve(count);
      partials.assign(count, memory::ArbiterResult{});
      data_plane.resize(count * k);
      plane.resize(2 * count * n);
      flags.resize(2 * count * n);
      outcomes.assign(2 * count, rs::DecodeOutcome{});
      const std::span<gf::Element> data_span{data_plane};
      const std::span<gf::Element> plane_span{plane};
      const std::span<std::uint8_t> flag_span{flags};
      for (std::size_t i = 0; i < count; ++i) {
        sim::Rng data_rng = trial_data_rng(root, base + i);
        fill_random_data(data_rng, data_span.subspan(i * k, k),
                         system.code.m);
        systems.push_back(build_system(base + i));
      }
      // Codewords borrow the first count*n slots of the read plane (each
      // store_encoded copies its slot; the masked-pair gather below then
      // overwrites the whole plane).
      shared_code->encode_batch(ws, data_span,
                                plane_span.subspan(0, count * n));
      for (std::size_t i = 0; i < count; ++i) {
        systems[i]->store_encoded(data_span.subspan(i * k, k),
                                  plane_span.subspan(i * n, n));
        systems[i]->advance_to(config.t_end_hours);
      }
      for (std::size_t i = 0; i < count; ++i) {
        systems[i]->read_into_masked_pair(
            plane_span.subspan((2 * i) * n, n),
            plane_span.subspan((2 * i + 1) * n, n),
            flag_span.subspan((2 * i) * n, n),
            flag_span.subspan((2 * i + 1) * n, n), partials[i]);
      }
      shared_code->decode_batch(ws, plane_span, outcomes, flag_span);
      for (std::size_t i = 0; i < count; ++i) {
        finish_trial(base + i, *systems[i],
                     systems[i]->finish_batched_read(
                         plane_span.subspan((2 * i) * n, n),
                         plane_span.subspan((2 * i + 1) * n, n),
                         outcomes[2 * i], outcomes[2 * i + 1],
                         std::move(partials[i])));
      }
    });
  };
  return run_campaign(config, chunk, report, progress, shards);
}

}  // namespace rsmem::analysis
