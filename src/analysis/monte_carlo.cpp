#include "analysis/monte_carlo.h"

#include <cmath>
#include <stdexcept>

#include "sim/rng.h"

namespace rsmem::analysis {

namespace {
constexpr double kZ95 = 1.959963984540054;  // two-sided 95% normal quantile

std::vector<gf::Element> random_data(sim::Rng& rng, unsigned k, unsigned m) {
  std::vector<gf::Element> data(k);
  for (auto& d : data) {
    d = static_cast<gf::Element>(rng.uniform_int(1u << m));
  }
  return data;
}

}  // namespace

double BinomialEstimate::p_hat() const {
  return trials == 0 ? 0.0
                     : static_cast<double>(failures) /
                           static_cast<double>(trials);
}

double BinomialEstimate::std_error() const {
  if (trials == 0) return 0.0;
  const double p = p_hat();
  return std::sqrt(p * (1.0 - p) / static_cast<double>(trials));
}

double BinomialEstimate::wilson_low() const {
  if (trials == 0 || failures == 0) return 0.0;
  const double n = static_cast<double>(trials);
  const double p = p_hat();
  const double z2 = kZ95 * kZ95;
  const double denom = 1.0 + z2 / n;
  const double center = p + z2 / (2.0 * n);
  const double margin =
      kZ95 * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return std::max(0.0, (center - margin) / denom);
}

double BinomialEstimate::wilson_high() const {
  if (trials == 0 || failures == trials) return 1.0;
  const double n = static_cast<double>(trials);
  const double p = p_hat();
  const double z2 = kZ95 * kZ95;
  const double denom = 1.0 + z2 / n;
  const double center = p + z2 / (2.0 * n);
  const double margin =
      kZ95 * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return std::min(1.0, (center + margin) / denom);
}

bool BinomialEstimate::covers(double p) const {
  return p >= wilson_low() && p <= wilson_high();
}

MonteCarloResult run_simplex_trials(const memory::SimplexSystemConfig& system,
                                    const MonteCarloConfig& config) {
  if (config.trials == 0) {
    throw std::invalid_argument("run_simplex_trials: need at least 1 trial");
  }
  MonteCarloResult result;
  result.failure.trials = config.trials;
  const sim::Rng root{config.seed};
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    sim::Rng data_rng = root.split(2 * trial);
    memory::SimplexSystemConfig cfg = system;
    cfg.seed = root.split(2 * trial + 1).next_u64();
    memory::SimplexSystem sys{cfg};
    sys.store(random_data(data_rng, cfg.code.k, cfg.code.m));
    sys.advance_to(config.t_end_hours);
    const memory::ReadResult read = sys.read();
    if (!read.success) {
      ++result.failure.failures;
      ++result.no_output_failures;
    } else if (config.wrong_data_is_failure && !read.data_correct) {
      ++result.failure.failures;
      ++result.wrong_data_failures;
    }
    result.mean_seu_per_trial += sys.stats().seu_injected;
    result.mean_permanent_per_trial += sys.stats().permanent_injected;
    result.scrub_failures += sys.stats().scrub_failures;
    result.scrub_miscorrections += sys.stats().scrub_miscorrections;
  }
  result.mean_seu_per_trial /= static_cast<double>(config.trials);
  result.mean_permanent_per_trial /= static_cast<double>(config.trials);
  return result;
}

MonteCarloResult run_duplex_trials(const memory::DuplexSystemConfig& system,
                                   const MonteCarloConfig& config) {
  if (config.trials == 0) {
    throw std::invalid_argument("run_duplex_trials: need at least 1 trial");
  }
  MonteCarloResult result;
  result.failure.trials = config.trials;
  const sim::Rng root{config.seed};
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    sim::Rng data_rng = root.split(2 * trial);
    memory::DuplexSystemConfig cfg = system;
    cfg.seed = root.split(2 * trial + 1).next_u64();
    memory::DuplexSystem sys{cfg};
    sys.store(random_data(data_rng, cfg.code.k, cfg.code.m));
    sys.advance_to(config.t_end_hours);
    const memory::DuplexReadResult read = sys.read();
    if (!read.read.success) {
      ++result.failure.failures;
      ++result.no_output_failures;
    } else if (config.wrong_data_is_failure && !read.read.data_correct) {
      ++result.failure.failures;
      ++result.wrong_data_failures;
    }
    result.mean_seu_per_trial += sys.stats().seu_injected;
    result.mean_permanent_per_trial += sys.stats().permanent_injected;
    result.scrub_failures += sys.stats().scrub_failures;
    result.scrub_miscorrections += sys.stats().scrub_miscorrections;
  }
  result.mean_seu_per_trial /= static_cast<double>(config.trials);
  result.mean_permanent_per_trial /= static_cast<double>(config.trials);
  return result;
}

}  // namespace rsmem::analysis
