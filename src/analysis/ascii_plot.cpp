#include "analysis/ascii_plot.h"

#include "analysis/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace rsmem::analysis {

namespace {
constexpr char kGlyphs[] = "*o+x#@%&";
}

std::string render_plot(const std::vector<Series>& series,
                        const PlotOptions& options) {
  if (series.empty()) return "(no series)\n";
  if (options.width < 8 || options.height < 4) {
    throw std::invalid_argument("render_plot: plot area too small");
  }

  double x_min = 0.0, x_max = 0.0, y_min = 0.0, y_max = 0.0;
  bool first = true;
  for (const Series& s : series) {
    if (s.x.size() != s.y.size()) {
      throw std::invalid_argument("render_plot: x/y size mismatch");
    }
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      double y = s.y[i];
      if (options.log_y) {
        if (y < options.y_floor) continue;  // not representable on log axis
        y = std::log10(y);
      }
      if (first) {
        x_min = x_max = s.x[i];
        y_min = y_max = y;
        first = false;
      } else {
        x_min = std::min(x_min, s.x[i]);
        x_max = std::max(x_max, s.x[i]);
        y_min = std::min(y_min, y);
        y_max = std::max(y_max, y);
      }
    }
  }
  if (first) {
    return "(all points below plot floor of " +
           format_sci(options.y_floor, 0) + ")\n";
  }
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) y_max = y_min + 1.0;

  std::vector<std::string> grid(options.height,
                                std::string(options.width, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % (sizeof kGlyphs - 1)];
    const Series& s = series[si];
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      double y = s.y[i];
      if (options.log_y) {
        if (y < options.y_floor) continue;
        y = std::log10(y);
      }
      const double fx = (s.x[i] - x_min) / (x_max - x_min);
      const double fy = (y - y_min) / (y_max - y_min);
      const std::size_t col = static_cast<std::size_t>(
          std::lround(fx * static_cast<double>(options.width - 1)));
      const std::size_t row = options.height - 1 -
                              static_cast<std::size_t>(std::lround(
                                  fy * static_cast<double>(options.height - 1)));
      grid[row][col] = glyph;
    }
  }

  std::ostringstream out;
  if (!options.title.empty()) out << options.title << '\n';
  const auto y_tick = [&](std::size_t row) -> std::string {
    const double fy = 1.0 - static_cast<double>(row) /
                                static_cast<double>(options.height - 1);
    const double y = y_min + fy * (y_max - y_min);
    char buf[24];
    if (options.log_y) {
      std::snprintf(buf, sizeof buf, "1E%+04d", static_cast<int>(std::round(y)));
    } else {
      std::snprintf(buf, sizeof buf, "%9.3g", y);
    }
    return buf;
  };
  for (std::size_t row = 0; row < options.height; ++row) {
    const bool labeled = row % 4 == 0 || row == options.height - 1;
    out << (labeled ? y_tick(row) : std::string(y_tick(row).size(), ' '))
        << " |" << grid[row] << '\n';
  }
  out << std::string(y_tick(0).size(), ' ') << " +"
      << std::string(options.width, '-') << '\n';
  {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%-10.4g", x_min);
    std::string axis(options.width + 2, ' ');
    const std::string right = format_fixed(x_max, 1);
    axis.replace(2, std::min(axis.size() - 2, std::string(buf).size()), buf);
    if (right.size() < axis.size()) {
      axis.replace(axis.size() - right.size(), right.size(), right);
    }
    out << std::string(y_tick(0).size(), ' ') << axis << "  [" << options.x_label
        << "]\n";
  }
  out << "  legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    out << "  " << kGlyphs[si % (sizeof kGlyphs - 1)] << " = "
        << series[si].label;
  }
  out << "  (y: " << options.y_label << (options.log_y ? ", log scale" : "")
      << ")\n";
  return out.str();
}

}  // namespace rsmem::analysis
