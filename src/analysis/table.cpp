#include "analysis/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace rsmem::analysis {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: wrong number of cells");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c];
      out << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << '\n';
  };
  const auto emit_rule = [&] {
    out << '+';
    for (const std::size_t w : widths) {
      out << std::string(w + 2, '-') << '+';
    }
    out << '\n';
  };
  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

std::string Table::to_csv() const {
  const auto quote = [](const std::string& s) -> std::string {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (const char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    q += '"';
    return q;
  };
  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << quote(row[c]);
    }
    out << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string format_sci(double v, int digits) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*E", digits, v);
  return buf;
}

std::string format_fixed(double v, int digits) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

}  // namespace rsmem::analysis
