#include "analysis/code_search.h"

#include <stdexcept>

#include "analysis/campaign.h"
#include "core/api.h"

namespace rsmem::analysis {

std::vector<CodeCandidate> default_candidates(unsigned k) {
  std::vector<CodeCandidate> out;
  for (const unsigned extra : {2u, 4u, 8u, 12u, 20u}) {
    out.push_back({Arrangement::kSimplex, k + extra});
    out.push_back({Arrangement::kDuplex, k + extra});
  }
  return out;
}

std::vector<CandidateEvaluation> evaluate_candidates(
    const CodeSearchSpec& spec,
    const std::vector<CodeCandidate>& candidates) {
  if (candidates.empty()) {
    throw std::invalid_argument("evaluate_candidates: no candidates");
  }
  if (spec.t_hours <= 0.0) {
    throw std::invalid_argument("evaluate_candidates: t_hours must be > 0");
  }

  // Candidates are independent: evaluate them in parallel, each filling
  // its own slot. A validation failure surfaces as the first-by-index
  // exception, matching the serial loop's error for the same input.
  std::vector<CandidateEvaluation> results(candidates.size());
  parallel_for_indexed(
      candidates.size(), spec.threads, [&](std::size_t i) {
        const CodeCandidate& c = candidates[i];
        core::MemorySystemSpec s = spec.base;
        s.arrangement = c.arrangement;
        s.code.n = c.n;
        s.validate();  // throws for n <= k or n > 2^m - 1

        CandidateEvaluation eval;
        eval.candidate = c;
        eval.ber = rsmem::analyze_ber(s, std::vector<double>{spec.t_hours})
                       .ber.front();
        const bool duplex = c.arrangement == Arrangement::kDuplex;
        eval.storage_overhead = (duplex ? 2.0 : 1.0) *
                                static_cast<double>(c.n) /
                                static_cast<double>(s.code.k);
        const reliability::ArrangementCost cost =
            rsmem::codec_cost(s, spec.cost_model);
        eval.decode_cycles = cost.decode_cycles;
        eval.area_gates = cost.area_gates;
        results[i] = eval;
      });

  // Pareto marking: minimize (ber, overhead, cycles, area).
  for (std::size_t i = 0; i < results.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < results.size() && !dominated; ++j) {
      if (i == j) continue;
      const CandidateEvaluation& a = results[j];
      const CandidateEvaluation& b = results[i];
      const bool no_worse =
          a.ber <= b.ber && a.storage_overhead <= b.storage_overhead &&
          a.decode_cycles <= b.decode_cycles && a.area_gates <= b.area_gates;
      const bool strictly_better =
          a.ber < b.ber || a.storage_overhead < b.storage_overhead ||
          a.decode_cycles < b.decode_cycles || a.area_gates < b.area_gates;
      dominated = no_worse && strictly_better;
    }
    results[i].pareto_efficient = !dominated;
  }
  return results;
}

}  // namespace rsmem::analysis
