// Monte-Carlo estimation of the word-failure probability on the FUNCTIONAL
// memory systems (real bits, real decoder, real arbiter).
//
// Used to cross-validate the analytic Markov chains: at accelerated fault
// rates the binomial confidence interval of the simulated failure
// probability must cover the chain's P_Fail(t) (bench_mc_vs_markov, and the
// tests/test_differential_mc.cpp suite).
//
// Campaigns run on the sharded parallel engine (analysis/campaign.h). Every
// trial derives its random streams from the campaign seed and its GLOBAL
// trial index, and shard accumulators are folded in chunk order, so the
// result is bit-identical for every `threads` and `chunk_trials` setting --
// including the historical single-threaded path.
#ifndef RSMEM_ANALYSIS_MONTE_CARLO_H
#define RSMEM_ANALYSIS_MONTE_CARLO_H

#include <cstdint>
#include <functional>

#include "analysis/campaign.h"
#include "memory/duplex_system.h"
#include "memory/simplex_system.h"

namespace rsmem::analysis {

// Per-decoded-word observation of one trial, for property checks: the
// decoder's claimed corrections plus the ground-truth damage of the backing
// module at read time.
struct WordObservation {
  bool decode_ok = false;          // decoder produced a codeword
  unsigned errors_corrected = 0;   // claimed corrections outside erasures
  unsigned erasures_corrected = 0; // claimed corrections inside erasures
  unsigned erasures_supplied = 0;  // erasure positions given to the decoder
  unsigned erased_symbols = 0;     // module symbols reported as erasures
  unsigned corrupted_symbols = 0;  // non-erased symbols differing from truth
};

// Passed to MonteCarloConfig::observer once per finished trial. Simplex
// trials fill words[0]; duplex trials fill words[0] and words[1] (the two
// module decodes, post erasure-masking).
struct TrialRecord {
  std::size_t trial_index = 0;
  bool success = false;       // the system produced an output word
  bool data_correct = false;  // ... and it matched the stored data
  unsigned word_count = 1;
  WordObservation words[2];
  unsigned seu_injected = 0;
  unsigned permanent_injected = 0;
};

struct MonteCarloConfig {
  std::size_t trials = 1000;
  double t_end_hours = 48.0;
  std::uint64_t seed = 42;
  // A read that returns syntactically valid but WRONG data (undetected
  // mis-correction) counts as a failure when true. The Markov chains count
  // any unrecoverable pattern as Fail, so true is the faithful setting.
  bool wrong_data_is_failure = true;

  // Parallel campaign knobs (see analysis/campaign.h). Neither changes the
  // result: 0 threads = hardware concurrency.
  unsigned threads = 0;
  std::size_t chunk_trials = 1024;

  // Width of the gather/encode/decode/scatter batches inside each chunk:
  // that many trials' datawords are encoded by a single rs::encode_batch
  // call at store time, and their raw module reads are gathered into one
  // word/flag plane and decoded by a single rs::decode_batch call, so clean
  // words exit through the plane-wide SIMD syndrome screen. 0 selects the
  // default width; 1
  // forces the historical per-trial read() path (the A/B control — also
  // taken whenever legacy_codec is set or a degradation rung is enabled,
  // since those reads cannot be batched). Like threads/chunk_trials this
  // knob NEVER changes the result: every trial's RNG streams stay keyed by
  // its global index, and the batched decode is bit-identical per word.
  std::size_t batch_trials = 0;

  // When false (default) all trials share one pre-built codec and route
  // encode/decode through the allocation-free workspace fast path, one
  // workspace per pool thread. When true every trial builds its own codec
  // and uses the legacy reference path — the pre-PR-2 behaviour, kept for
  // differential tests and benchmark baselines. Estimates are bit-identical
  // either way (the codec paths produce identical outputs and neither
  // touches the trial RNG streams).
  bool legacy_codec = false;

  // Optional per-trial hook, invoked after each trial completes. Called
  // CONCURRENTLY from shard workers in no particular order (records carry
  // their trial_index); the callee must be thread-safe.
  std::function<void(const TrialRecord&)> observer;
};

// Binomial estimate with a Wilson 95% confidence interval (well-behaved at
// p near 0, where these experiments live).
struct BinomialEstimate {
  std::size_t trials = 0;
  std::size_t failures = 0;

  double p_hat() const;
  double std_error() const;
  double wilson_low() const;
  double wilson_high() const;
  // True if `p` lies inside the Wilson 95% interval.
  bool covers(double p) const;
};

struct MonteCarloResult {
  BinomialEstimate failure;
  double mean_seu_per_trial = 0.0;
  double mean_permanent_per_trial = 0.0;
  std::uint64_t scrub_failures = 0;
  std::uint64_t scrub_miscorrections = 0;
  std::uint64_t no_output_failures = 0;     // detected (no output produced)
  std::uint64_t wrong_data_failures = 0;    // undetected (wrong data out)
};

// Per-shard accumulator for campaign runs. All fields are exact under
// merging: the counters are integers, and the fault-count sums are sums of
// small integers held in doubles (exactly representable far below 2^53),
// so merging is associative and commutative bit-for-bit.
struct MonteCarloAccumulator {
  std::size_t trials = 0;
  std::size_t failures = 0;
  double seu_sum = 0.0;
  double permanent_sum = 0.0;
  std::uint64_t scrub_failures = 0;
  std::uint64_t scrub_miscorrections = 0;
  std::uint64_t no_output_failures = 0;
  std::uint64_t wrong_data_failures = 0;

  void merge_from(const MonteCarloAccumulator& other);
  MonteCarloResult finalize() const;
};

// Runs `config.trials` independent lives of the system: store random data at
// t=0, advance to t_end, read once (the paper's "stopping time" semantics).
// Optionally reports campaign throughput / live progress.
MonteCarloResult run_simplex_trials(const memory::SimplexSystemConfig& system,
                                    const MonteCarloConfig& config,
                                    CampaignReport* report = nullptr,
                                    CampaignProgress* progress = nullptr);
MonteCarloResult run_duplex_trials(const memory::DuplexSystemConfig& system,
                                   const MonteCarloConfig& config,
                                   CampaignReport* report = nullptr,
                                   CampaignProgress* progress = nullptr);

}  // namespace rsmem::analysis

#endif  // RSMEM_ANALYSIS_MONTE_CARLO_H
