// Monte-Carlo estimation of the word-failure probability on the FUNCTIONAL
// memory systems (real bits, real decoder, real arbiter).
//
// Used to cross-validate the analytic Markov chains: at accelerated fault
// rates the binomial confidence interval of the simulated failure
// probability must cover the chain's P_Fail(t) (bench_mc_vs_markov, and the
// integration tests).
#ifndef RSMEM_ANALYSIS_MONTE_CARLO_H
#define RSMEM_ANALYSIS_MONTE_CARLO_H

#include <cstdint>

#include "memory/duplex_system.h"
#include "memory/simplex_system.h"

namespace rsmem::analysis {

struct MonteCarloConfig {
  std::size_t trials = 1000;
  double t_end_hours = 48.0;
  std::uint64_t seed = 42;
  // A read that returns syntactically valid but WRONG data (undetected
  // mis-correction) counts as a failure when true. The Markov chains count
  // any unrecoverable pattern as Fail, so true is the faithful setting.
  bool wrong_data_is_failure = true;
};

// Binomial estimate with a Wilson 95% confidence interval (well-behaved at
// p near 0, where these experiments live).
struct BinomialEstimate {
  std::size_t trials = 0;
  std::size_t failures = 0;

  double p_hat() const;
  double std_error() const;
  double wilson_low() const;
  double wilson_high() const;
  // True if `p` lies inside the Wilson 95% interval.
  bool covers(double p) const;
};

struct MonteCarloResult {
  BinomialEstimate failure;
  double mean_seu_per_trial = 0.0;
  double mean_permanent_per_trial = 0.0;
  std::uint64_t scrub_failures = 0;
  std::uint64_t scrub_miscorrections = 0;
  std::uint64_t no_output_failures = 0;     // detected (no output produced)
  std::uint64_t wrong_data_failures = 0;    // undetected (wrong data out)
};

// Runs `config.trials` independent lives of the system: store random data at
// t=0, advance to t_end, read once (the paper's "stopping time" semantics).
MonteCarloResult run_simplex_trials(const memory::SimplexSystemConfig& system,
                                    const MonteCarloConfig& config);
MonteCarloResult run_duplex_trials(const memory::DuplexSystemConfig& system,
                                   const MonteCarloConfig& config);

}  // namespace rsmem::analysis

#endif  // RSMEM_ANALYSIS_MONTE_CARLO_H
