#include "analysis/experiment.h"

#include <cstdio>
#include <stdexcept>

#include "core/units.h"
#include "markov/uniformization.h"

namespace rsmem::analysis {

namespace {

std::string format_rate(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1E", v);
  return buf;
}

models::BerCurve run_curve(Arrangement arrangement, const CodeSpec& code,
                           double seu_per_bit_hour,
                           double erasure_per_symbol_hour,
                           double scrub_rate_per_hour,
                           std::span<const double> times_hours) {
  const markov::UniformizationSolver solver;
  if (arrangement == Arrangement::kSimplex) {
    models::SimplexParams params;
    params.n = code.n;
    params.k = code.k;
    params.m = code.m;
    params.seu_rate_per_bit_hour = seu_per_bit_hour;
    params.erasure_rate_per_symbol_hour = erasure_per_symbol_hour;
    params.scrub_rate_per_hour = scrub_rate_per_hour;
    return models::simplex_ber_curve(params, times_hours, solver);
  }
  models::DuplexParams params;
  params.n = code.n;
  params.k = code.k;
  params.m = code.m;
  params.seu_rate_per_bit_hour = seu_per_bit_hour;
  params.erasure_rate_per_symbol_hour = erasure_per_symbol_hour;
  params.scrub_rate_per_hour = scrub_rate_per_hour;
  return models::duplex_ber_curve(params, times_hours, solver);
}

}  // namespace

const char* to_string(Arrangement a) {
  return a == Arrangement::kSimplex ? "simplex" : "duplex";
}

std::vector<Series> seu_rate_sweep(Arrangement arrangement, CodeSpec code,
                                   std::span<const double> seu_per_bit_day,
                                   double t_end_hours, std::size_t points) {
  const std::vector<double> times =
      models::time_grid_hours(t_end_hours, points);
  std::vector<Series> series;
  series.reserve(seu_per_bit_day.size());
  for (const double rate_day : seu_per_bit_day) {
    const models::BerCurve curve =
        run_curve(arrangement, code, core::per_day_to_per_hour(rate_day), 0.0,
                  0.0, times);
    series.push_back(
        {"lambda=" + format_rate(rate_day) + "/bit/day", times, curve.ber});
  }
  return series;
}

std::vector<Series> scrub_period_sweep(Arrangement arrangement, CodeSpec code,
                                       double seu_per_bit_day,
                                       std::span<const double> periods_seconds,
                                       double t_end_hours,
                                       std::size_t points) {
  const std::vector<double> times =
      models::time_grid_hours(t_end_hours, points);
  std::vector<Series> series;
  series.reserve(periods_seconds.size());
  for (const double period_s : periods_seconds) {
    const models::BerCurve curve = run_curve(
        arrangement, code, core::per_day_to_per_hour(seu_per_bit_day), 0.0,
        core::scrub_rate_per_hour(period_s), times);
    char label[32];
    std::snprintf(label, sizeof label, "Tsc=%.0f s", period_s);
    series.push_back({label, times, curve.ber});
  }
  return series;
}

std::vector<Series> permanent_rate_sweep(
    Arrangement arrangement, CodeSpec code,
    std::span<const double> erasure_per_symbol_day, double t_end_months,
    std::size_t points) {
  if (t_end_months <= 0.0) {
    throw std::invalid_argument("permanent_rate_sweep: t_end_months <= 0");
  }
  const std::vector<double> times_hours =
      models::time_grid_hours(core::months_to_hours(t_end_months), points);
  std::vector<double> times_months;
  times_months.reserve(times_hours.size());
  for (const double t : times_hours) {
    times_months.push_back(core::hours_to_months(t));
  }
  std::vector<Series> series;
  series.reserve(erasure_per_symbol_day.size());
  for (const double rate_day : erasure_per_symbol_day) {
    const models::BerCurve curve =
        run_curve(arrangement, code, 0.0, core::per_day_to_per_hour(rate_day),
                  0.0, times_hours);
    series.push_back({"lambda_e=" + format_rate(rate_day) + "/sym/day",
                      times_months, curve.ber});
  }
  return series;
}

}  // namespace rsmem::analysis
