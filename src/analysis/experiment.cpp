#include "analysis/experiment.h"

#include <cstdio>
#include <stdexcept>

#include "analysis/campaign.h"
#include "core/units.h"
#include "markov/solver_workspace.h"
#include "markov/uniformization.h"
#include "models/chain_cache.h"

namespace rsmem::analysis {

namespace {

// Dense step operators pay off for every chain the paper's figures touch
// (a few to a few dozen states); the bound only guards pathological
// models from an n^2 operator build.
constexpr std::size_t kEngineMaxDenseStates = 256;

std::string format_rate(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1E", v);
  return buf;
}

models::SimplexParams simplex_params(const CodeSpec& code,
                                     double seu_per_bit_hour,
                                     double erasure_per_symbol_hour,
                                     double scrub_rate_per_hour) {
  models::SimplexParams params;
  params.n = code.n;
  params.k = code.k;
  params.m = code.m;
  params.seu_rate_per_bit_hour = seu_per_bit_hour;
  params.erasure_rate_per_symbol_hour = erasure_per_symbol_hour;
  params.scrub_rate_per_hour = scrub_rate_per_hour;
  return params;
}

models::DuplexParams duplex_params(const CodeSpec& code,
                                   double seu_per_bit_hour,
                                   double erasure_per_symbol_hour,
                                   double scrub_rate_per_hour) {
  models::DuplexParams params;
  params.n = code.n;
  params.k = code.k;
  params.m = code.m;
  params.seu_rate_per_bit_hour = seu_per_bit_hour;
  params.erasure_rate_per_symbol_hour = erasure_per_symbol_hour;
  params.scrub_rate_per_hour = scrub_rate_per_hour;
  return params;
}

// Legacy reference path: build the chain and allocate solver state per
// point, exactly as the original serial sweeps did.
models::BerCurve run_curve_legacy(Arrangement arrangement,
                                  const CodeSpec& code,
                                  double seu_per_bit_hour,
                                  double erasure_per_symbol_hour,
                                  double scrub_rate_per_hour,
                                  std::span<const double> times_hours) {
  const markov::UniformizationSolver solver;
  if (arrangement == Arrangement::kSimplex) {
    return models::simplex_ber_curve(
        simplex_params(code, seu_per_bit_hour, erasure_per_symbol_hour,
                       scrub_rate_per_hour),
        times_hours, solver);
  }
  return models::duplex_ber_curve(
      duplex_params(code, seu_per_bit_hour, erasure_per_symbol_hour,
                    scrub_rate_per_hour),
      times_hours, solver);
}

// Engine path: chain from the process-wide cache, per-thread workspace,
// dense step operators on the repeated grid widths.
models::BerCurve run_curve_engine(Arrangement arrangement,
                                  const CodeSpec& code,
                                  double seu_per_bit_hour,
                                  double erasure_per_symbol_hour,
                                  double scrub_rate_per_hour,
                                  std::span<const double> times_hours) {
  static thread_local markov::SolverWorkspace workspace;
  const markov::UniformizationSolver solver;
  const markov::StepPolicy policy{kEngineMaxDenseStates};
  if (arrangement == Arrangement::kSimplex) {
    return models::simplex_ber_curve(
        simplex_params(code, seu_per_bit_hour, erasure_per_symbol_hour,
                       scrub_rate_per_hour),
        times_hours, solver, models::global_chain_cache(), workspace, policy);
  }
  return models::duplex_ber_curve(
      duplex_params(code, seu_per_bit_hour, erasure_per_symbol_hour,
                    scrub_rate_per_hour),
      times_hours, solver, models::global_chain_cache(), workspace, policy);
}

// Runs fill_point(i) for every sweep point. The engine path distributes
// the independent points over the thread pool (each writes only slot i, so
// the result is identical for every thread count); the legacy path stays
// strictly serial.
void run_sweep_points(std::size_t count, const SweepOptions& options,
                      const std::function<void(std::size_t)>& fill_point) {
  if (options.use_engine) {
    parallel_for_indexed(count, options.threads, fill_point);
  } else {
    for (std::size_t i = 0; i < count; ++i) fill_point(i);
  }
}

}  // namespace

const char* to_string(Arrangement a) {
  return a == Arrangement::kSimplex ? "simplex" : "duplex";
}

std::vector<Series> seu_rate_sweep(Arrangement arrangement, CodeSpec code,
                                   std::span<const double> seu_per_bit_day,
                                   double t_end_hours, std::size_t points,
                                   const SweepOptions& options) {
  const std::vector<double> times =
      models::time_grid_hours(t_end_hours, points);
  std::vector<Series> series(seu_per_bit_day.size());
  run_sweep_points(
      seu_per_bit_day.size(), options, [&](std::size_t i) {
        const double rate_day = seu_per_bit_day[i];
        const double rate_hour = core::per_day_to_per_hour(rate_day);
        const models::BerCurve curve =
            options.use_engine
                ? run_curve_engine(arrangement, code, rate_hour, 0.0, 0.0,
                                   times)
                : run_curve_legacy(arrangement, code, rate_hour, 0.0, 0.0,
                                   times);
        series[i] = {"lambda=" + format_rate(rate_day) + "/bit/day", times,
                     curve.ber};
      });
  return series;
}

std::vector<Series> scrub_period_sweep(Arrangement arrangement, CodeSpec code,
                                       double seu_per_bit_day,
                                       std::span<const double> periods_seconds,
                                       double t_end_hours, std::size_t points,
                                       const SweepOptions& options) {
  const std::vector<double> times =
      models::time_grid_hours(t_end_hours, points);
  std::vector<Series> series(periods_seconds.size());
  run_sweep_points(
      periods_seconds.size(), options, [&](std::size_t i) {
        const double period_s = periods_seconds[i];
        const double seu_hour = core::per_day_to_per_hour(seu_per_bit_day);
        const double scrub_hour = core::scrub_rate_per_hour(period_s);
        const models::BerCurve curve =
            options.use_engine
                ? run_curve_engine(arrangement, code, seu_hour, 0.0,
                                   scrub_hour, times)
                : run_curve_legacy(arrangement, code, seu_hour, 0.0,
                                   scrub_hour, times);
        char label[32];
        std::snprintf(label, sizeof label, "Tsc=%.0f s", period_s);
        series[i] = {label, times, curve.ber};
      });
  return series;
}

std::vector<Series> permanent_rate_sweep(
    Arrangement arrangement, CodeSpec code,
    std::span<const double> erasure_per_symbol_day, double t_end_months,
    std::size_t points, const SweepOptions& options) {
  if (t_end_months <= 0.0) {
    throw std::invalid_argument("permanent_rate_sweep: t_end_months <= 0");
  }
  const std::vector<double> times_hours =
      models::time_grid_hours(core::months_to_hours(t_end_months), points);
  std::vector<double> times_months;
  times_months.reserve(times_hours.size());
  for (const double t : times_hours) {
    times_months.push_back(core::hours_to_months(t));
  }
  std::vector<Series> series(erasure_per_symbol_day.size());
  run_sweep_points(
      erasure_per_symbol_day.size(), options, [&](std::size_t i) {
        const double rate_day = erasure_per_symbol_day[i];
        const double rate_hour = core::per_day_to_per_hour(rate_day);
        const models::BerCurve curve =
            options.use_engine
                ? run_curve_engine(arrangement, code, 0.0, rate_hour, 0.0,
                                   times_hours)
                : run_curve_legacy(arrangement, code, 0.0, rate_hour, 0.0,
                                   times_hours);
        series[i] = {"lambda_e=" + format_rate(rate_day) + "/sym/day",
                     times_months, curve.ber};
      });
  return series;
}

}  // namespace rsmem::analysis
