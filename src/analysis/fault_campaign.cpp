#include "analysis/fault_campaign.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "analysis/campaign.h"
#include "core/status.h"
#include "linalg/csr_matrix.h"
#include "markov/ctmc.h"
#include "markov/solver_guard.h"
#include "markov/uniformization.h"
#include "memory/duplex_system.h"
#include "memory/simplex_system.h"
#include "memory/tmr_system.h"
#include "sim/rng.h"

namespace rsmem::analysis {

using gf::Element;

const char* to_string(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kMbuBurst: return "mbu-burst";
    case ScenarioKind::kStuckBankGrowth: return "stuck-bank";
    case ScenarioKind::kScrubStall: return "scrub-stall";
    case ScenarioKind::kMiscorrectionTrap: return "miscorrect";
    case ScenarioKind::kArbiterDisagreement: return "disagreement";
    case ScenarioKind::kDeadModuleDemotion: return "demotion";
    case ScenarioKind::kRetirement: return "retirement";
    case ScenarioKind::kSolverDivergence: return "solver-div";
  }
  return "?";
}

const char* to_string(TargetSystem target) {
  switch (target) {
    case TargetSystem::kSimplex: return "simplex";
    case TargetSystem::kDuplex: return "duplex";
    case TargetSystem::kTmr: return "tmr";
    case TargetSystem::kSolver: return "solver";
  }
  return "?";
}

namespace {

std::vector<Element> make_data(const rs::CodeParams& code, sim::Rng& rng) {
  std::vector<Element> data(code.k);
  const std::uint64_t bound = 1ull << code.m;
  for (Element& d : data) d = static_cast<Element>(rng.uniform_int(bound));
  return data;
}

// A scripted symbol-level error pattern: positions[i] gets XORed by diffs[i].
struct ErrorPattern {
  std::vector<unsigned> positions;
  std::vector<Element> diffs;
};

std::vector<Element> apply_pattern(const std::vector<Element>& codeword,
                                   const ErrorPattern& pattern) {
  std::vector<Element> word = codeword;
  for (std::size_t i = 0; i < pattern.positions.size(); ++i) {
    word[pattern.positions[i]] ^= pattern.diffs[i];
  }
  return word;
}

std::vector<unsigned> pick_distinct(unsigned count, unsigned bound,
                                    sim::Rng& rng) {
  std::vector<unsigned> out;
  while (out.size() < count) {
    const unsigned p = static_cast<unsigned>(rng.uniform_int(bound));
    if (std::find(out.begin(), out.end(), p) == out.end()) out.push_back(p);
  }
  return out;
}

Element random_diff(const rs::CodeParams& code, sim::Rng& rng) {
  return static_cast<Element>(1 + rng.uniform_int((1ull << code.m) - 1));
}

// Seeded search for a `count`-symbol pattern whose decode is a
// mis-correction (want_miscorrection) or a detected failure (otherwise).
// On success fills `out` (and `decoded`, the wrong codeword, when asked).
bool find_pattern(const rs::ReedSolomon& code,
                  const std::vector<Element>& codeword, unsigned count,
                  bool want_miscorrection, sim::Rng& rng, ErrorPattern& out,
                  std::vector<Element>* decoded = nullptr) {
  const rs::CodeParams params{code.n(), code.k(), code.m(), code.fcr()};
  for (unsigned attempt = 0; attempt < 20000; ++attempt) {
    ErrorPattern pattern;
    pattern.positions = pick_distinct(count, code.n(), rng);
    for (unsigned i = 0; i < count; ++i) {
      pattern.diffs.push_back(random_diff(params, rng));
    }
    std::vector<Element> word = apply_pattern(codeword, pattern);
    const rs::DecodeOutcome outcome = code.decode_legacy(word, {});
    if (want_miscorrection) {
      if (outcome.status == rs::DecodeStatus::kCorrected && word != codeword) {
        out = std::move(pattern);
        if (decoded != nullptr) *decoded = std::move(word);
        return true;
      }
    } else if (outcome.status == rs::DecodeStatus::kFailure) {
      out = std::move(pattern);
      return true;
    }
  }
  return false;
}

// Applies a symbol XOR diff to a system module as individual bit flips.
template <typename InjectBit>
unsigned inject_diff(Element diff, unsigned m, const InjectBit& inject) {
  unsigned flipped = 0;
  for (unsigned bit = 0; bit < m; ++bit) {
    if ((diff >> bit) & 1u) {
      inject(bit);
      ++flipped;
    }
  }
  return flipped;
}

void finish(ScenarioOutcome& outcome) {
  outcome.silent_corruption = outcome.produced_output && !outcome.data_correct;
  outcome.survived = !outcome.silent_corruption;
  outcome.as_expected = outcome.ran &&
                        outcome.survived == outcome.scenario.expect_survival;
  outcome.degradation_engaged = outcome.counters.any_engaged();
}

// ---------------------------------------------------------------------------
// Scenario runners. Each derives every random choice from `rng` (keyed by
// campaign seed + scenario index) and fills the outcome completely.
// ---------------------------------------------------------------------------

void run_mbu_burst(const FaultCampaignConfig& config,
                   const FaultScenario& scenario, sim::Rng& rng,
                   ScenarioOutcome& outcome) {
  const unsigned m = config.code.m;
  std::ostringstream detail;
  if (scenario.target == TargetSystem::kSimplex) {
    memory::SimplexSystemConfig cfg;
    cfg.code = config.code;
    cfg.seed = config.seed + 1;
    cfg.degradation = config.degradation;
    memory::SimplexSystem sys(cfg);
    sim::Rng data_rng = rng.split(1);
    sys.store(make_data(config.code, data_rng));
    // Burst confined to one symbol: the organization the code absorbs.
    const unsigned symbol = static_cast<unsigned>(rng.uniform_int(config.code.n));
    const unsigned bits = std::min(scenario.intensity, m);
    for (const unsigned bit : pick_distinct(bits, m, rng)) {
      sys.inject_bit_flip(symbol, bit);
      ++outcome.faults_injected;
    }
    const memory::ReadResult read = sys.read();
    outcome.ran = true;
    outcome.produced_output = read.success;
    outcome.data_correct = read.success && read.data_correct;
    outcome.counters = sys.degradation();
    outcome.counters_consistent = outcome.counters.unrecovered_failures == 0;
    detail << bits << "-bit burst in symbol " << symbol << " -> "
           << (outcome.data_correct ? "corrected" : "NOT corrected");
  } else if (scenario.target == TargetSystem::kDuplex) {
    memory::DuplexSystemConfig cfg;
    cfg.code = config.code;
    cfg.seed = config.seed + 1;
    cfg.degradation = config.degradation;
    memory::DuplexSystem sys(cfg);
    sim::Rng data_rng = rng.split(1);
    sys.store(make_data(config.code, data_rng));
    // Burst spanning `intensity` symbols of ONE module: beyond the code
    // alone, maskable by the pair.
    const std::vector<unsigned> symbols =
        pick_distinct(scenario.intensity, config.code.n, rng);
    for (const unsigned symbol : symbols) {
      sys.inject_bit_flip(scenario.module_index, symbol,
                          static_cast<unsigned>(rng.uniform_int(m)));
      ++outcome.faults_injected;
    }
    const memory::DuplexReadResult read = sys.read();
    outcome.ran = true;
    outcome.produced_output = read.read.success;
    outcome.data_correct = read.read.success && read.read.data_correct;
    outcome.counters = sys.degradation();
    outcome.counters_consistent = outcome.counters.unrecovered_failures == 0;
    detail << scenario.intensity << "-symbol burst in module "
           << scenario.module_index << " -> arbiter "
           << (outcome.data_correct ? "recovered via clean copy"
                                    : "DID NOT recover");
  } else {  // TMR
    memory::TmrSystemConfig cfg;
    cfg.word_symbols = config.code.k;
    cfg.m = m;
    cfg.seed = config.seed + 1;
    memory::TmrSystem sys(cfg);
    sim::Rng data_rng = rng.split(1);
    std::vector<Element> data(config.code.k);
    const std::uint64_t bound = 1ull << m;
    for (Element& d : data) d = static_cast<Element>(data_rng.uniform_int(bound));
    sys.store(data);
    for (const unsigned symbol :
         pick_distinct(scenario.intensity, config.code.k, rng)) {
      sys.inject_bit_flip(scenario.module_index, symbol,
                          static_cast<unsigned>(rng.uniform_int(m)));
      ++outcome.faults_injected;
    }
    const memory::ReadResult read = sys.read();
    outcome.ran = true;
    outcome.produced_output = read.success;
    outcome.data_correct = read.success && read.data_correct;
    outcome.counters_consistent = true;
    detail << scenario.intensity << "-symbol burst in copy "
           << scenario.module_index << " -> voter "
           << (outcome.data_correct ? "outvoted it" : "was overwhelmed");
  }
  outcome.detail = detail.str();
}

void run_stuck_bank_growth(const FaultCampaignConfig& config,
                           const FaultScenario& scenario, sim::Rng& rng,
                           ScenarioOutcome& outcome) {
  memory::DuplexSystemConfig cfg;
  cfg.code = config.code;
  cfg.seed = config.seed + 1;
  cfg.degradation = config.degradation;
  memory::DuplexSystem sys(cfg);
  const rs::ReedSolomon code(config.code);
  sim::Rng data_rng = rng.split(1);
  const std::vector<Element> data = make_data(config.code, data_rng);
  std::vector<Element> codeword(config.code.n, 0);
  code.encode_legacy(data, codeword);
  sys.store(data);

  // Grow DETECTED stuck-at faults symbol by symbol over the scripted bank,
  // each stuck level chosen to corrupt the stored bit; after every growth
  // step the read must still deliver the stored data (erasure masking).
  const unsigned last =
      std::min(scenario.bank_start + scenario.bank_symbols, config.code.n);
  bool all_correct = true;
  unsigned steps = 0;
  for (unsigned symbol = scenario.bank_start; symbol < last; ++symbol) {
    const unsigned bit = static_cast<unsigned>(rng.uniform_int(config.code.m));
    const bool stored_bit = ((codeword[symbol] >> bit) & 1u) != 0;
    sys.inject_stuck_bit(scenario.module_index, symbol, bit, !stored_bit,
                         /*detected=*/true);
    ++outcome.faults_injected;
    ++steps;
    const memory::DuplexReadResult read = sys.read();
    all_correct = all_correct && read.read.success && read.read.data_correct;
  }
  const memory::DuplexReadResult final_read = sys.read();
  outcome.ran = steps > 0;
  outcome.produced_output = final_read.read.success;
  outcome.data_correct = all_correct && final_read.read.data_correct;
  outcome.counters = sys.degradation();
  // The arbiter alone must mask a single-module bank: every stuck symbol
  // shows up as a masked erasure and no degradation rung is needed.
  outcome.counters_consistent =
      final_read.arbitration.masked_erasures == steps &&
      final_read.arbitration.common_erasures.empty() &&
      !outcome.counters.any_engaged();
  std::ostringstream detail;
  detail << steps << " stuck symbols in module " << scenario.module_index
         << " bank [" << scenario.bank_start << "," << last << ") -> "
         << final_read.arbitration.masked_erasures << " masked";
  outcome.detail = detail.str();
}

void run_scrub_stall(const FaultCampaignConfig& config,
                     const FaultScenario& scenario, sim::Rng& rng,
                     ScenarioOutcome& outcome) {
  memory::DuplexSystemConfig cfg;
  cfg.code = config.code;
  cfg.seed = config.seed + 1;
  cfg.degradation = config.degradation;
  cfg.scrub_policy = memory::ScrubPolicy::kPeriodic;
  cfg.scrub_period_hours = config.scrub_period_hours;
  memory::DuplexSystem sys(cfg);
  sim::Rng data_rng = rng.split(1);
  sys.store(make_data(config.code, data_rng));

  const double period = config.scrub_period_hours;
  const unsigned stalled = std::max(1u, scenario.intensity);
  sys.advance_to(0.5 * period);
  sys.suspend_scrubbing();
  // Transient damage lands during the stall window and cannot be purged
  // until the scrubber comes back.
  for (const unsigned symbol : pick_distinct(2, config.code.n, rng)) {
    sys.inject_bit_flip(scenario.module_index, symbol,
                        static_cast<unsigned>(rng.uniform_int(config.code.m)));
    ++outcome.faults_injected;
  }
  sys.advance_to((stalled + 0.5) * period);  // `stalled` scrub slots skipped
  sys.resume_scrubbing();
  sys.advance_to((stalled + 1.5) * period);  // first live scrub purges
  const memory::DuplexReadResult read = sys.read();
  const memory::DamageSummary damage = sys.damage(scenario.module_index);
  outcome.ran = true;
  outcome.produced_output = read.read.success;
  outcome.data_correct = read.read.success && read.read.data_correct;
  outcome.counters = sys.degradation();
  outcome.counters_consistent = sys.stats().scrubs_skipped == stalled &&
                                sys.stats().scrubs_attempted == 1 &&
                                damage.corrupted == 0;
  std::ostringstream detail;
  detail << stalled << " scrubs stalled with 2 flips pending; post-resume "
         << "scrub left " << damage.corrupted << " corrupted symbols";
  outcome.detail = detail.str();
}

void run_miscorrection_trap(const FaultCampaignConfig& config,
                            const FaultScenario& scenario, sim::Rng& rng,
                            ScenarioOutcome& outcome) {
  const rs::ReedSolomon code(config.code);
  sim::Rng data_rng = rng.split(1);
  const std::vector<Element> data = make_data(config.code, data_rng);
  std::vector<Element> codeword(config.code.n, 0);
  code.encode_legacy(data, codeword);
  const unsigned beyond = (config.code.n - config.code.k) / 2 + 1;
  ErrorPattern pattern;
  sim::Rng search_rng = rng.split(2);
  if (!find_pattern(code, codeword, beyond, /*want_miscorrection=*/true,
                    search_rng, pattern)) {
    outcome.detail = "no mis-correcting pattern found (search exhausted)";
    return;  // ran stays false -> reported as a campaign inconsistency
  }

  std::ostringstream detail;
  if (scenario.target == TargetSystem::kSimplex) {
    memory::SimplexSystemConfig cfg;
    cfg.code = config.code;
    cfg.seed = config.seed + 1;
    cfg.degradation = config.degradation;
    memory::SimplexSystem sys(cfg);
    sys.store(data);
    for (std::size_t i = 0; i < pattern.positions.size(); ++i) {
      const unsigned symbol = pattern.positions[i];
      outcome.faults_injected += inject_diff(
          pattern.diffs[i], config.code.m,
          [&](unsigned bit) { sys.inject_bit_flip(symbol, bit); });
    }
    const memory::ReadResult read = sys.read();
    outcome.ran = true;
    outcome.produced_output = read.success;
    outcome.data_correct = read.success && read.data_correct;
    outcome.counters = sys.degradation();
    // The scripted trap MUST mis-correct here: flagged as corrected yet
    // wrong. That is the simplex exposure the duplex arbiter removes.
    outcome.counters_consistent =
        read.outcome.status == rs::DecodeStatus::kCorrected &&
        !read.data_correct;
    detail << beyond << "-symbol trap: decoder reported kCorrected with "
           << "wrong data (the paper's mis-correction case)";
  } else {
    memory::DuplexSystemConfig cfg;
    cfg.code = config.code;
    cfg.seed = config.seed + 1;
    cfg.degradation = config.degradation;
    memory::DuplexSystem sys(cfg);
    sys.store(data);
    for (std::size_t i = 0; i < pattern.positions.size(); ++i) {
      const unsigned symbol = pattern.positions[i];
      outcome.faults_injected += inject_diff(
          pattern.diffs[i], config.code.m, [&](unsigned bit) {
            sys.inject_bit_flip(scenario.module_index, symbol, bit);
          });
    }
    const memory::DuplexReadResult read = sys.read();
    outcome.ran = true;
    outcome.produced_output = read.read.success;
    outcome.data_correct = read.read.success && read.read.data_correct;
    outcome.counters = sys.degradation();
    // The attacked word mis-corrects (flag set), the clean word does not:
    // the arbiter must select the UNFLAGGED side.
    const memory::ArbiterDecision expected =
        scenario.module_index == 0 ? memory::ArbiterDecision::kWord2
                                   : memory::ArbiterDecision::kWord1;
    outcome.counters_consistent =
        read.arbitration.decision == expected && read.read.data_correct;
    detail << "module " << scenario.module_index
           << " mis-corrects flagged; arbiter selected the unflagged copy";
  }
  outcome.detail = detail.str();
}

void run_arbiter_disagreement(const FaultCampaignConfig& config,
                              const FaultScenario& scenario, sim::Rng& rng,
                              ScenarioOutcome& outcome) {
  (void)scenario;
  const rs::ReedSolomon code(config.code);
  sim::Rng data_rng = rng.split(1);
  const std::vector<Element> data = make_data(config.code, data_rng);
  std::vector<Element> codeword(config.code.n, 0);
  code.encode_legacy(data, codeword);
  const unsigned beyond = (config.code.n - config.code.k) / 2 + 1;

  // Two patterns mis-correcting to DIFFERENT wrong codewords, one per
  // module: both decoders set their flag, outputs differ, and the arbiter
  // must refuse to output rather than guess.
  ErrorPattern pattern1, pattern2;
  std::vector<Element> wrong1, wrong2;
  sim::Rng search_rng = rng.split(2);
  if (!find_pattern(code, codeword, beyond, true, search_rng, pattern1,
                    &wrong1)) {
    outcome.detail = "no mis-correcting pattern found (search exhausted)";
    return;
  }
  bool found2 = false;
  for (unsigned attempt = 0; attempt < 64 && !found2; ++attempt) {
    if (!find_pattern(code, codeword, beyond, true, search_rng, pattern2,
                      &wrong2)) {
      break;
    }
    found2 = wrong2 != wrong1;
  }
  if (!found2) {
    outcome.detail = "no second distinct mis-correction found";
    return;
  }

  memory::DuplexSystemConfig cfg;
  cfg.code = config.code;
  cfg.seed = config.seed + 1;
  cfg.degradation = config.degradation;
  memory::DuplexSystem sys(cfg);
  sys.store(data);
  for (std::size_t i = 0; i < pattern1.positions.size(); ++i) {
    const unsigned symbol = pattern1.positions[i];
    outcome.faults_injected +=
        inject_diff(pattern1.diffs[i], config.code.m,
                    [&](unsigned bit) { sys.inject_bit_flip(0, symbol, bit); });
  }
  for (std::size_t i = 0; i < pattern2.positions.size(); ++i) {
    const unsigned symbol = pattern2.positions[i];
    outcome.faults_injected +=
        inject_diff(pattern2.diffs[i], config.code.m,
                    [&](unsigned bit) { sys.inject_bit_flip(1, symbol, bit); });
  }
  const memory::DuplexReadResult read = sys.read();
  outcome.ran = true;
  outcome.produced_output = read.read.success;
  outcome.data_correct = read.read.success && read.read.data_correct;
  outcome.counters = sys.degradation();
  // Fail-safe is the REQUIRED outcome: both flags up, no output.
  outcome.counters_consistent =
      read.arbitration.decision == memory::ArbiterDecision::kNoOutput &&
      read.arbitration.flag1 && read.arbitration.flag2;
  outcome.detail =
      "both copies mis-correct to different codewords; arbiter withheld "
      "output (fail-safe, not silent)";
}

void run_dead_module_demotion(const FaultCampaignConfig& config,
                              const FaultScenario& scenario, sim::Rng& rng,
                              ScenarioOutcome& outcome) {
  (void)scenario;
  const rs::ReedSolomon code(config.code);
  const unsigned n = config.code.n;
  const unsigned parity = config.code.n - config.code.k;
  if (parity < 2) {
    outcome.detail = "demotion scenario needs n-k >= 2";
    return;
  }
  sim::Rng data_rng = rng.split(1);
  const std::vector<Element> data = make_data(config.code, data_rng);
  std::vector<Element> codeword(n, 0);
  code.encode_legacy(data, codeword);

  // Module 1 (the survivor) carries `parity` DETECTED stuck symbols at
  // positions P -- alone it decodes fine as erasures. Module 0 carries
  // TRANSIENT flips at P (poisoning the erasure masking) plus two more:
  // unlocatable by the self-test, so only rung 3 can cut it away.
  sim::Rng place_rng = rng.split(2);
  const std::vector<unsigned> positions =
      pick_distinct(parity + 2, n, place_rng);
  const std::vector<unsigned> masked(positions.begin(),
                                     positions.begin() + parity);
  // Search flip diffs making both the masked sub-pattern and module 0's
  // full pattern DETECTED failures (no accidental mis-correction).
  std::vector<Element> diffs(positions.size(), 0);
  bool found = false;
  sim::Rng search_rng = rng.split(3);
  for (unsigned attempt = 0; attempt < 20000 && !found; ++attempt) {
    for (Element& d : diffs) d = random_diff(config.code, search_rng);
    std::vector<Element> sub = codeword;
    for (unsigned i = 0; i < parity; ++i) sub[positions[i]] ^= diffs[i];
    if (code.decode_legacy(sub, {}).status != rs::DecodeStatus::kFailure) {
      continue;
    }
    std::vector<Element> full = codeword;
    for (std::size_t i = 0; i < positions.size(); ++i) {
      full[positions[i]] ^= diffs[i];
    }
    found = code.decode_legacy(full, {}).status == rs::DecodeStatus::kFailure;
  }
  if (!found) {
    outcome.detail = "no doubly-failing flip pattern found";
    return;
  }

  memory::DuplexSystemConfig cfg;
  cfg.code = config.code;
  cfg.seed = config.seed + 1;
  cfg.degradation = config.degradation;
  cfg.degradation.retry_with_detection = true;
  cfg.degradation.max_retries = 1;
  cfg.degradation.erasure_only_fallback = false;  // isolate rung 3
  cfg.degradation.demote_on_dead_module = true;
  memory::DuplexSystem sys(cfg);
  sys.store(data);
  for (const unsigned symbol : masked) {
    const unsigned bit =
        static_cast<unsigned>(place_rng.uniform_int(config.code.m));
    const bool stored_bit = ((codeword[symbol] >> bit) & 1u) != 0;
    sys.inject_stuck_bit(1, symbol, bit, !stored_bit, /*detected=*/true);
    ++outcome.faults_injected;
  }
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const unsigned symbol = positions[i];
    outcome.faults_injected +=
        inject_diff(diffs[i], config.code.m,
                    [&](unsigned bit) { sys.inject_bit_flip(0, symbol, bit); });
  }
  const memory::DuplexReadResult read = sys.read();
  outcome.ran = true;
  outcome.produced_output = read.read.success;
  outcome.data_correct = read.read.success && read.read.data_correct;
  outcome.counters = sys.degradation();
  outcome.counters_consistent =
      sys.demoted() && sys.dead_module() == 0 &&
      outcome.counters.demotions == 1 &&
      outcome.counters.retries_attempted == 1 && read.degraded &&
      read.read.data_correct;
  std::ostringstream detail;
  detail << "pair arbitration poisoned by module 0 transients; rung 3 "
         << "demoted it and the survivor decoded "
         << (outcome.data_correct ? "correctly" : "WRONG");
  outcome.detail = detail.str();
}

void run_retirement(const FaultCampaignConfig& config,
                    const FaultScenario& scenario, sim::Rng& rng,
                    ScenarioOutcome& outcome) {
  const rs::ReedSolomon code(config.code);
  sim::Rng data_rng = rng.split(1);
  const std::vector<Element> data = make_data(config.code, data_rng);
  std::vector<Element> codeword(config.code.n, 0);
  code.encode_legacy(data, codeword);
  const unsigned beyond = (config.code.n - config.code.k) / 2 + 2;
  ErrorPattern pattern;
  sim::Rng search_rng = rng.split(2);
  if (!find_pattern(code, codeword, beyond, /*want_miscorrection=*/false,
                    search_rng, pattern)) {
    outcome.detail = "no detected-failure pattern found";
    return;
  }

  const unsigned retire_after = std::max(1u, scenario.intensity);
  memory::SimplexSystemConfig cfg;
  cfg.code = config.code;
  cfg.seed = config.seed + 1;
  cfg.degradation = config.degradation;
  cfg.degradation.retire_after_failures = retire_after;
  memory::SimplexSystem sys(cfg);
  sys.store(data);
  for (std::size_t i = 0; i < pattern.positions.size(); ++i) {
    const unsigned symbol = pattern.positions[i];
    outcome.faults_injected += inject_diff(
        pattern.diffs[i], config.code.m,
        [&](unsigned bit) { sys.inject_bit_flip(symbol, bit); });
  }
  // Persistent beyond-capability damage: every read fails detected until
  // the retirement threshold trips, then reads report DegradedMode.
  bool any_wrong_data = false;
  for (unsigned i = 0; i < retire_after; ++i) {
    const memory::ReadResult read = sys.read();
    any_wrong_data = any_wrong_data || (read.success && !read.data_correct);
  }
  const memory::ReadResult degraded_read = sys.read();
  outcome.ran = true;
  outcome.produced_output = degraded_read.success;
  outcome.data_correct = degraded_read.success && degraded_read.data_correct;
  if (any_wrong_data) outcome.produced_output = true;  // grade the worst read
  outcome.counters = sys.degradation();
  outcome.counters_consistent =
      !any_wrong_data && sys.retired() && outcome.counters.words_retired == 1 &&
      outcome.counters.unrecovered_failures == retire_after &&
      outcome.counters.reads_in_degraded_mode == 1;
  std::ostringstream detail;
  detail << retire_after << " consecutive detected failures -> word retired; "
         << "further reads report degraded mode";
  outcome.detail = detail.str();
}

void run_solver_divergence(const FaultCampaignConfig& config,
                           const FaultScenario& scenario, sim::Rng& rng,
                           ScenarioOutcome& outcome) {
  (void)rng;
  // A small representative chain: healthy -> degraded -> failed.
  const linalg::CsrMatrix q(3, 3,
                            {{0, 0, -2.0},
                             {0, 1, 2.0},
                             {1, 1, -1.0},
                             {1, 2, 1.0}});
  const markov::Ctmc chain(q, 0);
  const double t = 1.0;

  markov::SolverGuardConfig guard;
  const unsigned trips = std::max(1u, std::min(scenario.intensity, 3u));
  guard.force_uniformization_trip = trips >= 1;
  guard.force_rk45_trip = trips >= 2;
  guard.force_expm_trip = trips >= 3;
  outcome.faults_injected = trips;
  const markov::GuardedTransientSolver guarded(guard);

  const markov::UniformizationSolver reference;
  const std::vector<double> expected = reference.solve(chain, t);
  std::ostringstream detail;
  try {
    const std::vector<double> got = guarded.solve(chain, t);
    double max_diff = 0.0;
    for (std::size_t i = 0; i < got.size(); ++i) {
      max_diff = std::max(max_diff, std::abs(got[i] - expected[i]));
    }
    const markov::GuardedSolveReport& report = guarded.last_report();
    const markov::SolverStage want = trips == 1
                                         ? markov::SolverStage::kRk45
                                         : markov::SolverStage::kDenseExpm;
    outcome.ran = true;
    outcome.produced_output = true;
    outcome.data_correct = max_diff < 1e-6;
    outcome.counters_consistent = report.fallback_used &&
                                  report.answered_by == want &&
                                  report.attempts.size() == trips + 1;
    // The fallback chain is the solver's degradation machinery.
    outcome.counters.retries_attempted = guarded.fallbacks_taken();
    detail << trips << " stage(s) force-tripped; "
           << to_string(report.answered_by) << " answered within "
           << std::scientific << std::setprecision(1) << max_diff
           << " of uniformization";
  } catch (const core::StatusError& e) {
    // All three stages rejected: the REQUIRED outcome for trips == 3 is a
    // typed kSolverDivergence failure, never a silent wrong distribution.
    outcome.ran = true;
    outcome.produced_output = false;
    outcome.data_correct = false;
    outcome.counters_consistent =
        trips == 3 &&
        e.status().code() == core::StatusCode::kSolverDivergence;
    detail << "chain exhausted; typed failure: " << e.status().to_string();
  }
  outcome.detail = detail.str();
}

}  // namespace

ScenarioOutcome run_scenario(const FaultCampaignConfig& config,
                             const FaultScenario& scenario,
                             std::size_t scenario_index) {
  ScenarioOutcome outcome;
  outcome.scenario = scenario;
  sim::Rng rng = sim::Rng(config.seed).split(0x5C01u + scenario_index);
  switch (scenario.kind) {
    case ScenarioKind::kMbuBurst:
      run_mbu_burst(config, scenario, rng, outcome);
      break;
    case ScenarioKind::kStuckBankGrowth:
      run_stuck_bank_growth(config, scenario, rng, outcome);
      break;
    case ScenarioKind::kScrubStall:
      run_scrub_stall(config, scenario, rng, outcome);
      break;
    case ScenarioKind::kMiscorrectionTrap:
      run_miscorrection_trap(config, scenario, rng, outcome);
      break;
    case ScenarioKind::kArbiterDisagreement:
      run_arbiter_disagreement(config, scenario, rng, outcome);
      break;
    case ScenarioKind::kDeadModuleDemotion:
      run_dead_module_demotion(config, scenario, rng, outcome);
      break;
    case ScenarioKind::kRetirement:
      run_retirement(config, scenario, rng, outcome);
      break;
    case ScenarioKind::kSolverDivergence:
      run_solver_divergence(config, scenario, rng, outcome);
      break;
  }
  if (!outcome.ran) outcome.counters_consistent = false;
  finish(outcome);
  return outcome;
}

std::vector<FaultScenario> paper_duplex_scenarios(const rs::CodeParams& code) {
  std::vector<FaultScenario> scenarios;
  const auto add = [&](FaultScenario s) { scenarios.push_back(std::move(s)); };

  add({.name = "mbu-burst-simplex",
       .kind = ScenarioKind::kMbuBurst,
       .target = TargetSystem::kSimplex,
       .intensity = std::min(code.m, 3u)});
  add({.name = "mbu-burst-duplex-m0",
       .kind = ScenarioKind::kMbuBurst,
       .target = TargetSystem::kDuplex,
       .module_index = 0,
       .intensity = 2});
  add({.name = "mbu-burst-duplex-m1",
       .kind = ScenarioKind::kMbuBurst,
       .target = TargetSystem::kDuplex,
       .module_index = 1,
       .intensity = 2});
  add({.name = "mbu-burst-tmr",
       .kind = ScenarioKind::kMbuBurst,
       .target = TargetSystem::kTmr,
       .module_index = 1,
       .intensity = 2});

  // Every single-module permanent-bank scenario: each 3-symbol bank of
  // each module. The duplex arbiter must mask ALL of them.
  const unsigned bank = 3;
  for (unsigned module = 0; module < 2; ++module) {
    for (unsigned start = 0; start < code.n; start += bank) {
      FaultScenario s;
      std::ostringstream name;
      name << "stuck-bank-m" << module << "-s" << start;
      s.name = name.str();
      s.kind = ScenarioKind::kStuckBankGrowth;
      s.target = TargetSystem::kDuplex;
      s.module_index = module;
      s.bank_start = start;
      s.bank_symbols = bank;
      add(std::move(s));
    }
  }

  add({.name = "scrub-stall-duplex",
       .kind = ScenarioKind::kScrubStall,
       .target = TargetSystem::kDuplex,
       .module_index = 0,
       .intensity = 3});
  // The simplex baseline is EXPECTED to silently mis-correct: this is the
  // exposure (paper Section 4) the duplex arbiter exists to remove.
  add({.name = "miscorrect-simplex",
       .kind = ScenarioKind::kMiscorrectionTrap,
       .target = TargetSystem::kSimplex,
       .expect_survival = false});
  add({.name = "miscorrect-duplex-m0",
       .kind = ScenarioKind::kMiscorrectionTrap,
       .target = TargetSystem::kDuplex,
       .module_index = 0});
  add({.name = "miscorrect-duplex-m1",
       .kind = ScenarioKind::kMiscorrectionTrap,
       .target = TargetSystem::kDuplex,
       .module_index = 1});
  add({.name = "arbiter-disagreement",
       .kind = ScenarioKind::kArbiterDisagreement,
       .target = TargetSystem::kDuplex});
  add({.name = "demotion-recovery",
       .kind = ScenarioKind::kDeadModuleDemotion,
       .target = TargetSystem::kDuplex});
  add({.name = "retirement-simplex",
       .kind = ScenarioKind::kRetirement,
       .target = TargetSystem::kSimplex,
       .intensity = 3});
  add({.name = "solver-fallback-rk45",
       .kind = ScenarioKind::kSolverDivergence,
       .target = TargetSystem::kSolver,
       .intensity = 1});
  add({.name = "solver-fallback-expm",
       .kind = ScenarioKind::kSolverDivergence,
       .target = TargetSystem::kSolver,
       .intensity = 2});
  add({.name = "solver-exhausted",
       .kind = ScenarioKind::kSolverDivergence,
       .target = TargetSystem::kSolver,
       .intensity = 3});
  return scenarios;
}

FaultCampaignReport run_fault_campaign(
    const FaultCampaignConfig& config,
    std::span<const FaultScenario> scenarios) {
  FaultCampaignReport report;
  report.outcomes.resize(scenarios.size());
  parallel_for_indexed(scenarios.size(), config.threads, [&](std::size_t i) {
    report.outcomes[i] = run_scenario(config, scenarios[i], i);
  });
  report.scenarios = static_cast<unsigned>(report.outcomes.size());
  for (const ScenarioOutcome& outcome : report.outcomes) {
    if (outcome.survived) ++report.survived;
    if (outcome.silent_corruption) ++report.silent_corruptions;
    if (outcome.degradation_engaged) ++report.degraded;
    if (!outcome.as_expected) ++report.unexpected;
    if (!outcome.counters_consistent) ++report.inconsistent;
  }
  return report;
}

std::string format_campaign_report(const FaultCampaignReport& report) {
  std::ostringstream out;
  out << std::left << std::setw(24) << "scenario" << std::setw(9) << "target"
      << std::setw(11) << "verdict" << std::setw(7) << "degr" << std::setw(7)
      << "cntrs" << std::setw(8) << "faults"
      << "detail\n";
  for (const ScenarioOutcome& o : report.outcomes) {
    const char* verdict = !o.ran              ? "NOT-RUN"
                          : o.silent_corruption
                              ? (o.as_expected ? "silent*" : "SILENT!")
                              : o.produced_output ? "survived"
                                                  : "failsafe";
    out << std::left << std::setw(24) << o.scenario.name << std::setw(9)
        << to_string(o.scenario.target) << std::setw(11) << verdict
        << std::setw(7) << (o.degradation_engaged ? "yes" : "-")
        << std::setw(7) << (o.counters_consistent ? "ok" : "BAD")
        << std::setw(8) << o.faults_injected << o.detail << "\n";
  }
  out << "\ncampaign: " << report.scenarios << " scenarios, "
      << report.survived << " survived, " << report.silent_corruptions
      << " silent (expected-vulnerable baselines), " << report.degraded
      << " engaged degradation, " << report.unexpected << " unexpected, "
      << report.inconsistent << " counter mismatches -> "
      << (report.passed() ? "PASS" : "FAIL") << "\n";
  return out.str();
}

}  // namespace rsmem::analysis
