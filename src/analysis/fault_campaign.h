// Adversarial fault-injection campaigns over the functional memory systems.
//
// Where the Monte-Carlo simulator samples faults from the paper's Poisson
// processes, this engine SCRIPTS them: each FaultScenario deterministically
// places a worst-case fault pattern (seeded MBU bursts, growing stuck-at
// banks, scrubber stall windows, decoder mis-correction traps, arbiter
// disagreement, forced solver divergence) into a Simplex/Duplex/TMR system
// or the guarded Markov solver chain, then grades the outcome:
//
//   survived          the system never RETURNED WRONG DATA -- either the
//                     output was correct or the failure was detected
//                     (decode failure, arbiter no-output, DegradedMode);
//   silent_corruption wrong data delivered without any flag -- the one
//                     outcome a highly reliable memory must not produce;
//   degradation_engaged  the graceful-degradation chain (memory/
//                     degradation.h) did work during the scenario;
//   counters_consistent  the system's degradation/scrub counters match the
//                     scenario's scripted fault arithmetic.
//
// Scenarios carry an EXPECTED verdict (expect_survival): the campaign
// passes when every outcome matches its expectation, which lets the preset
// include known-vulnerable baselines (simplex mis-correction) next to the
// duplex scenarios that mask them. Campaigns are bit-deterministic for a
// fixed seed and any thread count: scenario i derives its random streams
// from (seed, i) alone and writes only outcome slot i.
#ifndef RSMEM_ANALYSIS_FAULT_CAMPAIGN_H
#define RSMEM_ANALYSIS_FAULT_CAMPAIGN_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "memory/degradation.h"
#include "rs/reed_solomon.h"

namespace rsmem::analysis {

enum class ScenarioKind : std::uint8_t {
  kMbuBurst,            // multi-bit upset burst in one module
  kStuckBankGrowth,     // detected stuck-at faults growing over one bank
  kScrubStall,          // scrubber stall window while transients accumulate
  kMiscorrectionTrap,   // beyond-capability pattern that decodes wrong
  kArbiterDisagreement, // both duplex modules mis-correct differently
  kDeadModuleDemotion,  // one poisoned copy; rung-3 demotion must recover
  kRetirement,          // persistent failure; rung-4 must retire the word
  kSolverDivergence,    // forced guard trips through the fallback chain
};
const char* to_string(ScenarioKind kind);

enum class TargetSystem : std::uint8_t { kSimplex, kDuplex, kTmr, kSolver };
const char* to_string(TargetSystem target);

struct FaultScenario {
  std::string name;
  ScenarioKind kind = ScenarioKind::kMbuBurst;
  TargetSystem target = TargetSystem::kDuplex;
  unsigned module_index = 0;  // attacked module (duplex: 0/1, TMR: 0..2)
  unsigned bank_start = 0;    // first symbol of the attacked bank
  unsigned bank_symbols = 3;  // bank width in symbols
  unsigned intensity = 1;     // kind-specific magnitude (see scenarios.cpp)
  bool expect_survival = true;
};

struct ScenarioOutcome {
  FaultScenario scenario;
  bool ran = false;              // executed (false: setup search failed)
  bool produced_output = false;  // the system delivered data (availability)
  bool data_correct = false;     // ... matching the stored data
  bool silent_corruption = false;
  bool survived = false;             // !silent_corruption
  bool as_expected = false;          // survived == scenario.expect_survival
  bool degradation_engaged = false;  // any degradation counter moved
  bool counters_consistent = true;   // scripted-fault cross-check
  unsigned faults_injected = 0;
  memory::DegradationCounters counters;
  std::string detail;  // one-line human-readable account
};

struct FaultCampaignConfig {
  rs::CodeParams code{18, 16, 8, 1};
  std::uint64_t seed = 2005;
  unsigned threads = 1;  // 0 = hardware concurrency
  // Policy under test for the degradation scenarios. Scenario kinds that
  // exercise a specific rung enable that rung themselves when it is off.
  memory::DegradationPolicy degradation;
  double scrub_period_hours = 1.0;  // for the scrub-stall scenarios
};

struct FaultCampaignReport {
  std::vector<ScenarioOutcome> outcomes;
  unsigned scenarios = 0;
  unsigned survived = 0;
  unsigned silent_corruptions = 0;
  unsigned degraded = 0;      // outcomes with degradation engaged
  unsigned unexpected = 0;    // outcomes not matching expect_survival
  unsigned inconsistent = 0;  // counter cross-checks that failed
  // The campaign verdict: every scenario ran, matched its expected
  // verdict, and kept its counters consistent.
  bool passed() const {
    return scenarios > 0 && unexpected == 0 && inconsistent == 0;
  }
};

// The paper-duplex preset: MBU bursts, every single-module permanent-bank
// growth (each bank x each module), scrub stalls, mis-correction traps
// (simplex baseline expected-vulnerable, duplex expected-masked), arbiter
// disagreement, dead-module demotion, retirement, and the forced
// solver-divergence chain.
std::vector<FaultScenario> paper_duplex_scenarios(const rs::CodeParams& code);

// Runs one scenario (deterministic given config.seed and scenario_index).
ScenarioOutcome run_scenario(const FaultCampaignConfig& config,
                             const FaultScenario& scenario,
                             std::size_t scenario_index);

// Runs every scenario on config.threads workers; outcome i is produced by
// scenario i alone, so the report is identical for any thread count.
FaultCampaignReport run_fault_campaign(
    const FaultCampaignConfig& config,
    std::span<const FaultScenario> scenarios);

// Scenario-by-scenario text report (fixed-width table plus verdict line).
std::string format_campaign_report(const FaultCampaignReport& report);

}  // namespace rsmem::analysis

#endif  // RSMEM_ANALYSIS_FAULT_CAMPAIGN_H
