#include "analysis/campaign.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>

#include "sim/thread_pool.h"

namespace rsmem::analysis {

std::size_t campaign_chunk_count(const CampaignConfig& config) {
  if (config.trials == 0) {
    throw std::invalid_argument("campaign: need at least 1 trial");
  }
  if (config.chunk_trials == 0) {
    throw std::invalid_argument("campaign: chunk_trials must be > 0");
  }
  return (config.trials + config.chunk_trials - 1) / config.chunk_trials;
}

void run_chunked(const CampaignConfig& config, const ChunkRunner& run_chunk,
                 CampaignReport* report, CampaignProgress* progress) {
  const std::size_t chunks = campaign_chunk_count(config);
  const unsigned threads = static_cast<unsigned>(
      std::min<std::size_t>(sim::ThreadPool::resolve(config.threads), chunks));

  // First failing chunk by INDEX, so the rethrown error is deterministic
  // even when several chunks fail on different workers.
  std::mutex error_mutex;
  std::size_t error_chunk = chunks;
  std::exception_ptr error;

  const auto guarded_chunk = [&](std::size_t chunk) {
    const std::size_t first = chunk * config.chunk_trials;
    const std::size_t last =
        std::min(config.trials, first + config.chunk_trials);
    try {
      run_chunk(chunk, first, last);
      if (progress != nullptr) {
        progress->trials_completed.fetch_add(last - first,
                                             std::memory_order_relaxed);
        progress->chunks_completed.fetch_add(1, std::memory_order_relaxed);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (chunk < error_chunk) {
        error_chunk = chunk;
        error = std::current_exception();
      }
    }
  };

  const auto start = std::chrono::steady_clock::now();
  if (threads <= 1) {
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) guarded_chunk(chunk);
  } else {
    sim::ThreadPool pool{threads};
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
      pool.submit([&guarded_chunk, chunk] { guarded_chunk(chunk); });
    }
    pool.wait_idle();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  if (error) std::rethrow_exception(error);

  if (report != nullptr) {
    report->trials = config.trials;
    report->chunks = chunks;
    report->threads_used = threads;
    report->elapsed_seconds = elapsed;
    report->trials_per_second =
        elapsed > 0.0 ? static_cast<double>(config.trials) / elapsed : 0.0;
  }
}

void parallel_for_indexed(std::size_t count, unsigned threads,
                          const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  CampaignConfig config;
  config.trials = count;
  config.chunk_trials = 1;  // one index per chunk
  config.threads = threads;
  run_chunked(config, [&fn](std::size_t chunk, std::size_t /*first*/,
                            std::size_t /*last*/) { fn(chunk); });
}

}  // namespace rsmem::analysis
