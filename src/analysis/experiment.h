// Experiment drivers for the paper's evaluation section.
//
// Each figure of the paper is a family of BER(t) curves produced by sweeping
// one parameter. These helpers run the Markov analysis for a sweep and
// return labeled series ready for the table/plot emitters; the bench
// binaries (bench/) are thin wrappers around them. Rates are accepted in
// the paper's units (per DAY, scrub periods in SECONDS).
#ifndef RSMEM_ANALYSIS_EXPERIMENT_H
#define RSMEM_ANALYSIS_EXPERIMENT_H

#include <span>
#include <string>
#include <vector>

#include "models/ber.h"

namespace rsmem::analysis {

enum class Arrangement : std::uint8_t { kSimplex, kDuplex };

const char* to_string(Arrangement a);

struct Series {
  std::string label;
  std::vector<double> x;  // time axis
  std::vector<double> y;  // BER
};

struct CodeSpec {
  unsigned n = 18;
  unsigned k = 16;
  unsigned m = 8;
};

// Sweep execution knobs. The default is the engine path: chains come from
// the process-wide ChainCache, each point solves through a per-thread
// SolverWorkspace with dense step operators on the evenly spaced grid, and
// points are distributed over a sim::ThreadPool. Engine results are
// deterministic -- identical for every thread count, since each point is
// computed independently and written to its own slot -- and agree with the
// legacy path to solver accuracy (<= 1e-12 relative). use_engine = false
// selects the legacy per-point build-and-solve, run serially (`threads` is
// ignored); it is kept as the reference for tests and benchmarks.
struct SweepOptions {
  unsigned threads = 0;    // 0 = hardware concurrency
  bool use_engine = true;  // false: legacy serial reference path
};

// Figs. 5 & 6: one curve per SEU rate (per bit per day); no permanent
// faults, no scrubbing; x axis in hours.
std::vector<Series> seu_rate_sweep(Arrangement arrangement, CodeSpec code,
                                   std::span<const double> seu_per_bit_day,
                                   double t_end_hours, std::size_t points,
                                   const SweepOptions& options = {});

// Fig. 7: one curve per scrubbing period (seconds) at a fixed SEU rate;
// x axis in hours.
std::vector<Series> scrub_period_sweep(Arrangement arrangement, CodeSpec code,
                                       double seu_per_bit_day,
                                       std::span<const double> periods_seconds,
                                       double t_end_hours, std::size_t points,
                                       const SweepOptions& options = {});

// Figs. 8-10: one curve per permanent-fault (erasure) rate (per symbol per
// day); no SEUs, no scrubbing; x axis in MONTHS.
std::vector<Series> permanent_rate_sweep(
    Arrangement arrangement, CodeSpec code,
    std::span<const double> erasure_per_symbol_day, double t_end_months,
    std::size_t points, const SweepOptions& options = {});

}  // namespace rsmem::analysis

#endif  // RSMEM_ANALYSIS_EXPERIMENT_H
