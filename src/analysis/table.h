// Fixed-width text tables and CSV emission for bench/example output.
#ifndef RSMEM_ANALYSIS_TABLE_H
#define RSMEM_ANALYSIS_TABLE_H

#include <string>
#include <vector>

namespace rsmem::analysis {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Throws std::invalid_argument if the row width differs from the header.
  void add_row(std::vector<std::string> cells);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return headers_.size(); }

  // Aligned, boxed rendering for terminals.
  std::string to_text() const;
  // RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Numeric formatting helpers shared by benches.
std::string format_sci(double v, int digits = 3);   // 1.234E-05
std::string format_fixed(double v, int digits = 3); // 1.234

}  // namespace rsmem::analysis

#endif  // RSMEM_ANALYSIS_TABLE_H
