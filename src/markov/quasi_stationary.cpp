#include "markov/quasi_stationary.h"

#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace rsmem::markov {

QuasiStationaryResult quasi_stationary(const Ctmc& chain, double tolerance,
                                       unsigned max_iterations) {
  const std::size_t n = chain.num_states();
  QuasiStationaryResult result;
  std::unordered_map<std::size_t, std::size_t> transient_pos;
  for (std::size_t s = 0; s < n; ++s) {
    if (!chain.is_absorbing(s)) {
      transient_pos.emplace(s, result.transient_states.size());
      result.transient_states.push_back(s);
    }
  }
  if (result.transient_states.size() == n) {
    throw std::invalid_argument(
        "quasi_stationary: chain has no absorbing state");
  }
  const std::size_t nt = result.transient_states.size();
  if (nt == 0) {
    throw std::invalid_argument(
        "quasi_stationary: chain has no transient state");
  }

  // Restrict Q to the transient block, in (row, col, rate) triplet form.
  struct Edge {
    std::size_t from, to;
    double rate;
  };
  std::vector<Edge> edges;
  const auto& gen = chain.generator();
  const auto row_ptr = gen.row_pointers();
  const auto col_idx = gen.col_indices();
  const auto values = gen.values();
  double q_max = 0.0;
  for (std::size_t i = 0; i < nt; ++i) {
    const std::size_t s = result.transient_states[i];
    for (std::size_t e = row_ptr[s]; e < row_ptr[s + 1]; ++e) {
      const auto it = transient_pos.find(col_idx[e]);
      if (col_idx[e] == s) q_max = std::max(q_max, -values[e]);
      if (it != transient_pos.end()) {
        edges.push_back({i, it->second, values[e]});
      }
    }
  }
  if (q_max == 0.0) {
    throw std::invalid_argument(
        "quasi_stationary: transient states have no outgoing rates");
  }
  // Strictly exceed the largest exit rate so P_TT keeps positive mass on
  // every state (otherwise a lone transient state maps exactly to zero).
  q_max *= 1.05;

  // Power iteration on v <- v * (I + Q_TT / q); the 1-norm shrink factor
  // converges to the dominant eigenvalue of P_TT, i.e. 1 - alpha/q.
  std::vector<double> v(nt, 1.0 / static_cast<double>(nt));
  std::vector<double> next(nt);
  double rho_prev = -1.0;
  for (unsigned iter = 0; iter < max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t i = 0; i < nt; ++i) next[i] = v[i];
    for (const Edge& e : edges) {
      next[e.to] += v[e.from] * e.rate / q_max;
    }
    double rho = 0.0;
    for (const double x : next) rho += x;
    if (rho <= 0.0) {
      throw std::runtime_error("quasi_stationary: distribution collapsed");
    }
    for (std::size_t i = 0; i < nt; ++i) v[i] = next[i] / rho;
    if (std::fabs(rho - rho_prev) <= tolerance * rho) {
      result.hazard = q_max * (1.0 - rho);
      result.distribution = v;
      result.iterations = iter + 1;
      return result;
    }
    rho_prev = rho;
  }
  throw std::runtime_error("quasi_stationary: power iteration not converged");
}

}  // namespace rsmem::markov
