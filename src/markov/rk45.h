// Transient CTMC solution by direct integration of the Kolmogorov forward
// equations  d pi / dt = pi Q  with an adaptive Dormand-Prince RK45 scheme.
//
// Slower than uniformization but derived from entirely different numerics;
// the test suite requires the two solvers to agree, which guards both
// implementations.
#ifndef RSMEM_MARKOV_RK45_H
#define RSMEM_MARKOV_RK45_H

#include "markov/ctmc.h"

namespace rsmem::markov {

class Rk45Solver final : public TransientSolver {
 public:
  explicit Rk45Solver(double rel_tol = 1e-10, double abs_tol = 1e-14);

  using TransientSolver::solve;
  std::vector<double> solve(const Ctmc& chain, std::span<const double> pi0,
                            double t) const override;

  // Zero-allocation path: the integration state (y, the seven stages, the
  // step candidate) lives in ws.v / ws.k1..k7 / ws.tmp / ws.y5. Bitwise
  // identical to solve() (which delegates here with a local workspace).
  void solve_into(const Ctmc& chain, std::span<const double> pi0, double t,
                  SolverWorkspace& ws, std::span<double> out) const override;

 private:
  double rel_tol_;
  double abs_tol_;
};

}  // namespace rsmem::markov

#endif  // RSMEM_MARKOV_RK45_H
