#include "markov/expm.h"

#include <cmath>
#include <stdexcept>

namespace rsmem::markov {

namespace {

using linalg::DenseMatrix;
using linalg::LuFactorization;

// One-norm (max column sum).
double norm1(const DenseMatrix& a) {
  double best = 0.0;
  for (std::size_t c = 0; c < a.cols(); ++c) {
    double sum = 0.0;
    for (std::size_t r = 0; r < a.rows(); ++r) sum += std::fabs(a.at(r, c));
    best = std::max(best, sum);
  }
  return best;
}

DenseMatrix add_scaled(const DenseMatrix& a, const DenseMatrix& b,
                       double sb) {
  DenseMatrix c(a.rows(), a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      c.at(r, k) = a.at(r, k) + sb * b.at(r, k);
    }
  }
  return c;
}

}  // namespace

DenseMatrix expm(const DenseMatrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("expm: matrix must be square");
  }
  const std::size_t n = a.rows();

  // Scale so |A/2^s| is comfortably inside the Pade radius.
  const double nrm = norm1(a);
  int s = 0;
  if (nrm > 0.5) {
    s = static_cast<int>(std::ceil(std::log2(nrm / 0.5)));
  }
  DenseMatrix x = a;
  const double scale = std::pow(2.0, -s);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) x.at(r, c) *= scale;
  }

  // [6/6] Pade: N = sum c_k X^k (even+odd split), D with alternating signs.
  constexpr double kC[] = {1.0,
                           0.5,
                           5.0 / 44.0,
                           1.0 / 66.0,
                           1.0 / 792.0,
                           1.0 / 15840.0,
                           1.0 / 665280.0};
  DenseMatrix power = DenseMatrix::identity(n);
  DenseMatrix num(n, n);
  DenseMatrix den(n, n);
  for (int k = 0; k <= 6; ++k) {
    if (k > 0) power = DenseMatrix::mul(power, x);
    num = add_scaled(num, power, kC[k]);
    den = add_scaled(den, power, (k % 2 == 0) ? kC[k] : -kC[k]);
  }

  // Solve den * R = num column-wise.
  const LuFactorization lu{den};
  DenseMatrix r(n, n);
  std::vector<double> col(n);
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t i = 0; i < n; ++i) col[i] = num.at(i, c);
    const std::vector<double> sol = lu.solve(col);
    for (std::size_t i = 0; i < n; ++i) r.at(i, c) = sol[i];
  }

  for (int i = 0; i < s; ++i) r = DenseMatrix::mul(r, r);
  return r;
}

std::vector<double> ExpmSolver::solve(const Ctmc& chain,
                                      std::span<const double> pi0,
                                      double t) const {
  if (pi0.size() != chain.num_states()) {
    throw std::invalid_argument("ExpmSolver: pi0 size mismatch");
  }
  if (t < 0.0) throw std::invalid_argument("ExpmSolver: negative time");
  std::vector<double> result(pi0.begin(), pi0.end());
  if (t == 0.0) return result;

  DenseMatrix qt = chain.generator().to_dense();
  for (std::size_t r = 0; r < qt.rows(); ++r) {
    for (std::size_t c = 0; c < qt.cols(); ++c) qt.at(r, c) *= t;
  }
  const DenseMatrix p = expm(qt);
  // pi(t) = pi0 * P  (row vector times matrix).
  result = p.apply_transpose(result);
  for (double& x : result) x = std::max(x, 0.0);
  return result;
}

}  // namespace rsmem::markov
