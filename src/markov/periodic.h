// Transient solution of a CTMC with a DETERMINISTIC periodic jump.
//
// Real scrubbing hardware runs every Tsc seconds on the clock; the paper
// approximates it with an exponential transition of rate 1/Tsc. This
// module evaluates the exact periodic policy: evolve the chain's fault
// transitions for one period, apply the scrub map (each state's probability
// mass moves to its post-scrub state), repeat. Comparing the two policies
// quantifies the modeling error of the paper's approximation
// (bench_periodic_vs_exponential).
#ifndef RSMEM_MARKOV_PERIODIC_H
#define RSMEM_MARKOV_PERIODIC_H

#include <span>
#include <vector>

#include "markov/ctmc.h"

namespace rsmem::markov {

// Applies jumps at times period, 2*period, ... If a query time coincides
// with a jump instant, the jump is applied first (the scrub completes at
// that instant). jump_map[s] gives the post-jump state of state s; fixed
// points (jump_map[s] == s) are allowed and typical for fault-free and
// absorbing states.
//
// Throws std::invalid_argument on a size mismatch, an out-of-range map
// entry, or a non-positive period.
std::vector<double> solve_with_periodic_jump(
    const Ctmc& chain, std::span<const double> pi0,
    std::span<const std::size_t> jump_map, double period, double t,
    const TransientSolver& solver);

// Occupancy of `state` at each (sorted, ascending) time in `times`.
// Solved incrementally: the distribution at the last completed scrub cycle
// is carried forward across query times (mid-cycle queries advance a
// scratch copy), so the whole curve costs O(total cycles + points) solves
// instead of the O(cycles^2) of restarting from pi(0) per point. Results
// are bitwise identical to the from-scratch evaluation.
std::vector<double> occupancy_with_periodic_jump(
    const Ctmc& chain, std::size_t state,
    std::span<const std::size_t> jump_map, double period,
    std::span<const double> times, const TransientSolver& solver);

// Engine variants: reuse workspace buffers via solve_into, and -- when the
// policy allows and the cycle count amortises it -- advance whole cycles
// through a dense exp(Q*period) StepOperator. With the default StepPolicy
// the results are bitwise identical to the overloads above; with dense
// stepping they agree to solver accuracy (~1e-13 relative).
std::vector<double> solve_with_periodic_jump(
    const Ctmc& chain, std::span<const double> pi0,
    std::span<const std::size_t> jump_map, double period, double t,
    const TransientSolver& solver, SolverWorkspace& ws,
    const StepPolicy& policy = {});

std::vector<double> occupancy_with_periodic_jump(
    const Ctmc& chain, std::size_t state,
    std::span<const std::size_t> jump_map, double period,
    std::span<const double> times, const TransientSolver& solver,
    SolverWorkspace& ws, const StepPolicy& policy = {});

}  // namespace rsmem::markov

#endif  // RSMEM_MARKOV_PERIODIC_H
