#include "markov/rk45.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "markov/solver_workspace.h"

namespace rsmem::markov {

namespace {

// Dormand-Prince RK5(4) coefficients.
constexpr double kA21 = 1.0 / 5.0;
constexpr double kA31 = 3.0 / 40.0, kA32 = 9.0 / 40.0;
constexpr double kA41 = 44.0 / 45.0, kA42 = -56.0 / 15.0, kA43 = 32.0 / 9.0;
constexpr double kA51 = 19372.0 / 6561.0, kA52 = -25360.0 / 2187.0,
                 kA53 = 64448.0 / 6561.0, kA54 = -212.0 / 729.0;
constexpr double kA61 = 9017.0 / 3168.0, kA62 = -355.0 / 33.0,
                 kA63 = 46732.0 / 5247.0, kA64 = 49.0 / 176.0,
                 kA65 = -5103.0 / 18656.0;
constexpr double kB1 = 35.0 / 384.0, kB3 = 500.0 / 1113.0,
                 kB4 = 125.0 / 192.0, kB5 = -2187.0 / 6784.0,
                 kB6 = 11.0 / 84.0;
// Embedded 4th-order weights.
constexpr double kE1 = 5179.0 / 57600.0, kE3 = 7571.0 / 16695.0,
                 kE4 = 393.0 / 640.0, kE5 = -92097.0 / 339200.0,
                 kE6 = 187.0 / 2100.0, kE7 = 1.0 / 40.0;

}  // namespace

Rk45Solver::Rk45Solver(double rel_tol, double abs_tol)
    : rel_tol_(rel_tol), abs_tol_(abs_tol) {
  if (rel_tol <= 0.0 || abs_tol <= 0.0) {
    throw std::invalid_argument("Rk45Solver: tolerances must be positive");
  }
}

std::vector<double> Rk45Solver::solve(const Ctmc& chain,
                                      std::span<const double> pi0,
                                      double t) const {
  SolverWorkspace ws;
  std::vector<double> out(pi0.size());
  solve_into(chain, pi0, t, ws, out);
  return out;
}

void Rk45Solver::solve_into(const Ctmc& chain, std::span<const double> pi0,
                            double t, SolverWorkspace& ws,
                            std::span<double> out) const {
  if (pi0.size() != chain.num_states()) {
    throw std::invalid_argument("Rk45Solver: pi0 size mismatch");
  }
  if (out.size() != chain.num_states()) {
    throw std::invalid_argument("Rk45Solver: output size mismatch");
  }
  if (t < 0.0) throw std::invalid_argument("Rk45Solver: negative time");

  const std::size_t n = pi0.size();
  std::vector<double>& y = ws.v;
  y.assign(pi0.begin(), pi0.end());
  if (t == 0.0) {
    std::copy(y.begin(), y.end(), out.begin());
    return;
  }

  const linalg::CsrMatrix& gen = chain.generator();
  const double q = chain.max_exit_rate();
  if (q == 0.0) {
    std::copy(y.begin(), y.end(), out.begin());
    return;
  }

  const auto deriv = [&](const std::vector<double>& x, std::vector<double>& dx) {
    gen.apply_transpose(x, dx);
  };

  std::vector<double>&k1 = ws.k1, &k2 = ws.k2, &k3 = ws.k3, &k4 = ws.k4,
                     &k5 = ws.k5, &k6 = ws.k6, &k7 = ws.k7;
  std::vector<double>&tmp = ws.tmp, &y5 = ws.y5;
  k1.resize(n);
  k2.resize(n);
  k3.resize(n);
  k4.resize(n);
  k5.resize(n);
  k6.resize(n);
  k7.resize(n);
  tmp.resize(n);
  y5.resize(n);

  double time = 0.0;
  double h = std::min(t, 0.1 / q);  // initial step ~ a tenth of a transition
  const double h_min = t * 1e-14;
  constexpr int kMaxSteps = 50'000'000;

  deriv(y, k1);
  for (int step = 0; step < kMaxSteps && time < t; ++step) {
    h = std::min(h, t - time);

    for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + h * kA21 * k1[i];
    deriv(tmp, k2);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = y[i] + h * (kA31 * k1[i] + kA32 * k2[i]);
    }
    deriv(tmp, k3);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = y[i] + h * (kA41 * k1[i] + kA42 * k2[i] + kA43 * k3[i]);
    }
    deriv(tmp, k4);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = y[i] + h * (kA51 * k1[i] + kA52 * k2[i] + kA53 * k3[i] +
                           kA54 * k4[i]);
    }
    deriv(tmp, k5);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = y[i] + h * (kA61 * k1[i] + kA62 * k2[i] + kA63 * k3[i] +
                           kA64 * k4[i] + kA65 * k5[i]);
    }
    deriv(tmp, k6);
    for (std::size_t i = 0; i < n; ++i) {
      y5[i] = y[i] + h * (kB1 * k1[i] + kB3 * k3[i] + kB4 * k4[i] +
                          kB5 * k5[i] + kB6 * k6[i]);
    }
    deriv(y5, k7);

    // Error estimate: |y5 - y4|.
    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double y4i = y[i] + h * (kE1 * k1[i] + kE3 * k3[i] + kE4 * k4[i] +
                                     kE5 * k5[i] + kE6 * k6[i] + kE7 * k7[i]);
      const double sc =
          abs_tol_ + rel_tol_ * std::max(std::fabs(y[i]), std::fabs(y5[i]));
      const double e = (y5[i] - y4i) / sc;
      err += e * e;
    }
    err = std::sqrt(err / static_cast<double>(n));

    if (err <= 1.0) {
      time += h;
      y.swap(y5);
      k1.swap(k7);  // FSAL: last stage is the next step's first stage
    }
    const double factor =
        err > 0.0 ? 0.9 * std::pow(err, -0.2) : 5.0;
    h *= std::clamp(factor, 0.2, 5.0);
    if (h < h_min && time < t) {
      throw std::runtime_error("Rk45Solver: step size underflow");
    }
  }
  if (time < t) {
    throw std::runtime_error("Rk45Solver: max step count exceeded");
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = std::max(y[i], 0.0);
}

}  // namespace rsmem::markov
