// Quasi-stationary analysis of an absorbing CTMC.
//
// A scrubbed memory settles into a regime where the damage distribution,
// conditioned on survival, stops changing; failures then occur at a
// constant hazard alpha and P_fail(t) ~ 1 - c*exp(-alpha*t). (This is the
// "flat" late region of the paper's Fig. 7.) The conditional distribution
// is the dominant left eigenvector of the transient block Q_TT and alpha is
// the negated dominant eigenvalue; both are computed by power iteration on
// the uniformized sub-stochastic matrix P_TT = I + Q_TT / q.
//
// The hazard extrapolates mission reliability beyond any solved horizon:
// P_fail(T) ~ 1 - exp(-alpha*(T - t0)) once quasi-stationarity is reached.
#ifndef RSMEM_MARKOV_QUASI_STATIONARY_H
#define RSMEM_MARKOV_QUASI_STATIONARY_H

#include <cstddef>
#include <vector>

#include "markov/ctmc.h"

namespace rsmem::markov {

struct QuasiStationaryResult {
  // Asymptotic failure hazard alpha (per unit time).
  double hazard = 0.0;
  // Conditional-on-survival distribution over `transient_states` (sums 1).
  std::vector<double> distribution;
  std::vector<std::size_t> transient_states;
  unsigned iterations = 0;
};

// Throws std::invalid_argument if the chain has no absorbing state and
// std::runtime_error if the power iteration fails to converge.
QuasiStationaryResult quasi_stationary(const Ctmc& chain,
                                       double tolerance = 1e-12,
                                       unsigned max_iterations = 2'000'000);

}  // namespace rsmem::markov

#endif  // RSMEM_MARKOV_QUASI_STATIONARY_H
