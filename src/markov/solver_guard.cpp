#include "markov/solver_guard.h"

#include <cmath>
#include <string>

#include "markov/expm.h"
#include "markov/rk45.h"
#include "markov/solver_workspace.h"
#include "markov/uniformization.h"

namespace rsmem::markov {

const char* to_string(GuardTrip trip) {
  switch (trip) {
    case GuardTrip::kNone:
      return "none";
    case GuardTrip::kNonFinite:
      return "non-finite";
    case GuardTrip::kNegativeMass:
      return "negative-mass";
    case GuardTrip::kMassDrift:
      return "mass-drift";
    case GuardTrip::kForced:
      return "forced";
  }
  return "unknown";
}

const char* to_string(SolverStage stage) {
  switch (stage) {
    case SolverStage::kUniformization:
      return "uniformization";
    case SolverStage::kRk45:
      return "rk45";
    case SolverStage::kDenseExpm:
      return "dense-expm";
  }
  return "unknown";
}

GuardTrip check_distribution(std::span<const double> out, double pi0_mass,
                             const SolverGuardConfig& config) {
  double sum = 0.0;
  for (const double p : out) {
    if (!std::isfinite(p)) return GuardTrip::kNonFinite;
    if (p < -config.negative_tolerance) return GuardTrip::kNegativeMass;
    sum += p;
  }
  if (std::abs(sum - pi0_mass) > config.mass_tolerance) {
    return GuardTrip::kMassDrift;
  }
  return GuardTrip::kNone;
}

namespace {

double mass_of(std::span<const double> pi0) {
  double sum = 0.0;
  for (const double p : pi0) sum += p;
  return sum;
}

bool stage_forced(const SolverGuardConfig& config, SolverStage stage) {
  switch (stage) {
    case SolverStage::kUniformization:
      return config.force_uniformization_trip;
    case SolverStage::kRk45:
      return config.force_rk45_trip;
    case SolverStage::kDenseExpm:
      return config.force_expm_trip;
  }
  return false;
}

std::string describe_attempts(const GuardedSolveReport& report) {
  std::string out;
  for (const SolverAttempt& attempt : report.attempts) {
    if (!out.empty()) out += ", ";
    out += to_string(attempt.stage);
    out += "=";
    out += to_string(attempt.trip);
  }
  return out;
}

}  // namespace

GuardedTransientSolver::GuardedTransientSolver(SolverGuardConfig config)
    : config_(config) {}

void GuardedTransientSolver::solve_into(const Ctmc& chain,
                                        std::span<const double> pi0, double t,
                                        SolverWorkspace& ws,
                                        std::span<double> out) const {
  const double pi0_mass = mass_of(pi0);
  ++solves_;
  last_report_ = GuardedSolveReport{};

  constexpr SolverStage kChain[] = {SolverStage::kUniformization,
                                    SolverStage::kRk45,
                                    SolverStage::kDenseExpm};
  for (const SolverStage stage : kChain) {
    switch (stage) {
      case SolverStage::kUniformization: {
        const UniformizationSolver solver;
        solver.solve_into(chain, pi0, t, ws, out);
        break;
      }
      case SolverStage::kRk45: {
        const Rk45Solver solver;
        solver.solve_into(chain, pi0, t, ws, out);
        break;
      }
      case SolverStage::kDenseExpm: {
        const ExpmSolver solver;
        const std::vector<double> result = solver.solve(chain, pi0, t);
        std::copy(result.begin(), result.end(), out.begin());
        break;
      }
    }
    GuardTrip trip = stage_forced(config_, stage)
                         ? GuardTrip::kForced
                         : check_distribution(out, pi0_mass, config_);
    last_report_.attempts.push_back({stage, trip});
    if (trip == GuardTrip::kNone) {
      last_report_.answered_by = stage;
      last_report_.fallback_used = stage != SolverStage::kUniformization;
      if (last_report_.fallback_used) ++fallbacks_taken_;
      return;
    }
    if (!config_.enable_fallback) break;
  }

  throw core::StatusError(core::Status::solver_divergence(
      "transient solve at t=" + std::to_string(t) +
      " h rejected by every stage of the fallback chain (" +
      describe_attempts(last_report_) + ")"));
}

std::vector<double> GuardedTransientSolver::solve(const Ctmc& chain,
                                                  std::span<const double> pi0,
                                                  double t) const {
  SolverWorkspace ws;
  std::vector<double> out(chain.num_states(), 0.0);
  solve_into(chain, pi0, t, ws, out);
  return out;
}

}  // namespace rsmem::markov
