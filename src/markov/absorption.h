// Absorption analysis of a CTMC with absorbing states.
//
// For the paper's chains the absorbing state is Fail, so the mean time to
// absorption IS the memory word's MTTF (mean time to data loss), and the
// per-absorbing-state probabilities tell how the word eventually dies.
// Computed exactly from the fundamental matrix: with Q partitioned into
// transient rows (T) and absorbing rows,
//     tau = -Q_TT^{-1} * 1          (expected time to absorption)
//     B   = -Q_TT^{-1} * Q_TA       (absorption probability split)
// solved densely with LU (the chains have at most a few thousand states).
#ifndef RSMEM_MARKOV_ABSORPTION_H
#define RSMEM_MARKOV_ABSORPTION_H

#include <vector>

#include "linalg/dense_matrix.h"
#include "markov/ctmc.h"

namespace rsmem::markov {

struct AbsorptionResult {
  std::vector<std::size_t> transient_states;  // chain indices, in order
  std::vector<std::size_t> absorbing_states;  // chain indices, in order

  // expected_time[i]: mean time to absorption starting from
  // transient_states[i].
  std::vector<double> expected_time;

  // absorption_probability.at(i, j): probability that, starting from
  // transient_states[i], the chain is eventually absorbed in
  // absorbing_states[j].
  linalg::DenseMatrix absorption_probability;

  // Convenience: values from the chain's initial state. If the initial
  // state is itself absorbing, mttf == 0 and it is absorbed where it sits.
  double mttf = 0.0;
  std::vector<double> initial_absorption_split;
};

// Throws std::invalid_argument if the chain has no absorbing state, and
// std::domain_error if some transient state cannot reach any absorbing
// state (infinite expected time; the fundamental matrix is singular).
AbsorptionResult analyze_absorption(const Ctmc& chain);

}  // namespace rsmem::markov

#endif  // RSMEM_MARKOV_ABSORPTION_H
