// Reusable scratch state for the transient solvers.
//
// Sweeps solve the same small chain at hundreds of (rate, time) points; the
// allocating solve() entry points pay a Poisson-window recomputation and a
// handful of vector allocations per call. A SolverWorkspace owns those
// buffers and memoizes Poisson windows by their exact (lambda,
// truncation_error, tail_floor) key -- scrub-cycle grids share a single
// Delta-t, so a whole occupancy curve reuses one window.
//
// Thread rule (mirrors rs::DecoderWorkspace): a workspace is NOT
// synchronized. Use one workspace per thread; concurrent calls into the
// same workspace are a data race.
#ifndef RSMEM_MARKOV_SOLVER_WORKSPACE_H
#define RSMEM_MARKOV_SOLVER_WORKSPACE_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "markov/uniformization.h"

namespace rsmem::markov {

class SolverWorkspace {
 public:
  SolverWorkspace() = default;
  SolverWorkspace(const SolverWorkspace&) = delete;
  SolverWorkspace& operator=(const SolverWorkspace&) = delete;

  // Cached Poisson window for the exact key (lambda, truncation_error,
  // tail_floor). The first request computes poisson_window(); later
  // requests with a bitwise-equal key return the cached copy. The returned
  // reference stays valid until the next poisson() or clear() call.
  const PoissonWindow& poisson(double lambda, double truncation_error,
                               double tail_floor);

  std::size_t window_cache_size() const { return windows_.size(); }
  std::uint64_t window_cache_hits() const { return hits_; }
  std::uint64_t window_cache_misses() const { return misses_; }

  // Drops cached windows and releases buffer capacity.
  void clear();

  // Scratch buffers, resized on demand by the solvers. Exposed directly:
  // the workspace *is* the scratch arena, and the solvers' solve_into
  // overrides document which buffers they use.
  std::vector<double> v;   // uniformization: current pi0 * P^k iterate
  std::vector<double> qv;  // uniformization: v * Q staging
  // Dormand-Prince stages and step candidates.
  std::vector<double> k1, k2, k3, k4, k5, k6, k7, tmp, y5;
  // Grid / periodic propagation (occupancy curves, cycle anchors).
  std::vector<double> pi_a, pi_b, jump_tmp;

 private:
  struct WindowEntry {
    double lambda;
    double truncation_error;
    double tail_floor;
    std::uint64_t last_use;
    PoissonWindow window;
  };
  // A sweep touches only a few distinct q*t products; keep the cache small
  // and evict least-recently-used beyond that.
  static constexpr std::size_t kMaxWindows = 64;

  std::vector<WindowEntry> windows_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

// Dense one-step propagator M = exp(Q * dt), stored row-major so that
// row i is e_i advanced by dt with `solver`. Advancing a distribution is
// then an n x n streaming product instead of a full uniformization sum --
// worth building once the same dt repeats more often than the chain has
// states (n basis solves to build vs one solve saved per step). Every
// entry is a clamped probability (>= 0), so the product has no
// cancellation and far-tail Fail masses stay accurate; results agree with
// per-step solves to solver accuracy (~1e-13 relative), not bitwise, which
// is why dense stepping is opt-in via StepPolicy.
class StepOperator {
 public:
  StepOperator(const Ctmc& chain, double dt, const TransientSolver& solver,
               SolverWorkspace& ws);

  double dt() const { return dt_; }
  std::size_t num_states() const { return n_; }

  // out = in * M. `in` and `out` must not alias and must have size n.
  void advance(std::span<const double> in, std::span<double> out) const;

 private:
  double dt_;
  std::size_t n_;
  std::vector<double> matrix_;  // row-major n x n
};

}  // namespace rsmem::markov

#endif  // RSMEM_MARKOV_SOLVER_WORKSPACE_H
