#include "markov/absorption.h"

#include <memory>
#include <stdexcept>
#include <unordered_map>

namespace rsmem::markov {

AbsorptionResult analyze_absorption(const Ctmc& chain) {
  const std::size_t n = chain.num_states();
  AbsorptionResult result;
  std::unordered_map<std::size_t, std::size_t> transient_pos;
  for (std::size_t s = 0; s < n; ++s) {
    if (chain.is_absorbing(s)) {
      result.absorbing_states.push_back(s);
    } else {
      transient_pos.emplace(s, result.transient_states.size());
      result.transient_states.push_back(s);
    }
  }
  if (result.absorbing_states.empty()) {
    throw std::invalid_argument(
        "analyze_absorption: chain has no absorbing state");
  }

  const std::size_t nt = result.transient_states.size();
  const std::size_t na = result.absorbing_states.size();
  std::unordered_map<std::size_t, std::size_t> absorbing_pos;
  for (std::size_t j = 0; j < na; ++j) {
    absorbing_pos.emplace(result.absorbing_states[j], j);
  }

  // Assemble -Q_TT and Q_TA densely.
  linalg::DenseMatrix neg_qtt(nt, nt);
  linalg::DenseMatrix qta(nt, na);
  const auto& gen = chain.generator();
  const auto row_ptr = gen.row_pointers();
  const auto col_idx = gen.col_indices();
  const auto values = gen.values();
  for (std::size_t i = 0; i < nt; ++i) {
    const std::size_t s = result.transient_states[i];
    for (std::size_t e = row_ptr[s]; e < row_ptr[s + 1]; ++e) {
      const std::size_t c = col_idx[e];
      const auto it = transient_pos.find(c);
      if (it != transient_pos.end()) {
        neg_qtt.at(i, it->second) = -values[e];
      } else {
        qta.at(i, absorbing_pos.at(c)) = values[e];
      }
    }
  }

  std::unique_ptr<linalg::LuFactorization> lu;
  try {
    lu = std::make_unique<linalg::LuFactorization>(neg_qtt);
  } catch (const std::domain_error&) {
    throw std::domain_error(
        "analyze_absorption: some transient state cannot reach an absorbing "
        "state (expected absorption time is infinite)");
  }

  // tau = (-Q_TT)^{-1} * 1.
  const std::vector<double> ones(nt, 1.0);
  result.expected_time = lu->solve(ones);

  // B = (-Q_TT)^{-1} * Q_TA, column by column.
  result.absorption_probability = linalg::DenseMatrix(nt, na);
  std::vector<double> col(nt);
  for (std::size_t j = 0; j < na; ++j) {
    for (std::size_t i = 0; i < nt; ++i) col[i] = qta.at(i, j);
    const std::vector<double> bj = lu->solve(col);
    for (std::size_t i = 0; i < nt; ++i) {
      result.absorption_probability.at(i, j) = bj[i];
    }
  }

  const std::size_t init = chain.initial_state();
  const auto it = transient_pos.find(init);
  result.initial_absorption_split.assign(na, 0.0);
  if (it == transient_pos.end()) {
    // Initial state is absorbing: zero MTTF, absorbed in place.
    result.mttf = 0.0;
    result.initial_absorption_split[absorbing_pos.at(init)] = 1.0;
  } else {
    result.mttf = result.expected_time[it->second];
    for (std::size_t j = 0; j < na; ++j) {
      result.initial_absorption_split[j] =
          result.absorption_probability.at(it->second, j);
    }
  }
  return result;
}

}  // namespace rsmem::markov
