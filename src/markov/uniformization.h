// Transient CTMC solution by uniformization (Jensen's method).
//
// pi(t) = sum_k PoissonPmf(k; q t) * pi0 * P^k,  P = I + Q/q,
// with q >= max_i |Q[i][i]|. Poisson weights are computed from the mode
// outward in a numerically stable way (a simplified Fox-Glynn scheme), so
// large q*t products -- e.g. 48 h of scrubbing every 900 s -- remain
// accurate. This is the project's substitute for the NASA SURE solver used
// by the paper (see DESIGN.md section 2).
#ifndef RSMEM_MARKOV_UNIFORMIZATION_H
#define RSMEM_MARKOV_UNIFORMIZATION_H

#include "markov/ctmc.h"

namespace rsmem::markov {

// Default pmf floor for the right-tail extension of poisson_window; see
// the PoissonWindow comment below.
inline constexpr double kPoissonTailFloor = 1e-320;

class UniformizationSolver final : public TransientSolver {
 public:
  // `truncation_error` bounds the total discarded Poisson mass.
  explicit UniformizationSolver(double truncation_error = 1e-14);

  using TransientSolver::solve;
  std::vector<double> solve(const Ctmc& chain, std::span<const double> pi0,
                            double t) const override;

  // Zero-allocation path: uses ws.v / ws.qv for the propagation iterates
  // and ws.poisson() for the window, writing pi(t) into `out`. Bitwise
  // identical to solve() (which delegates here with a local workspace).
  void solve_into(const Ctmc& chain, std::span<const double> pi0, double t,
                  SolverWorkspace& ws, std::span<double> out) const override;

 private:
  double truncation_error_;
};

// Poisson(lambda) pmf weights covering all but `truncation_error` of the
// mass, then extended to the right until the pmf drops below `tail_floor`.
// The extension matters for the paper's Figs. 8-10: the Fail probability of
// a slow chain is carried entirely by the far Poisson tail (k >= n-k+1
// jumps while lambda*t ~ 1e-6), far below any sensible mass-based cutoff.
// Because every uniformization term is non-negative there is no
// cancellation, so those tail terms are accurate down to the underflow
// limit (~1e-300) -- which is how the paper's SURE plots reach 1e-200.
// Returned as {first_k, weights}: weights[i] = pmf(first_k + i).
struct PoissonWindow {
  std::size_t first_k = 0;
  std::vector<double> weights;
};
PoissonWindow poisson_window(double lambda, double truncation_error,
                             double tail_floor = kPoissonTailFloor);

}  // namespace rsmem::markov

#endif  // RSMEM_MARKOV_UNIFORMIZATION_H
