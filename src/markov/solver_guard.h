// Numerically guarded transient solves with an automatic fallback chain.
//
// The paper's chains are tiny but their regimes are extreme: uniformization
// at q*t ~ 1e5 (48 h of scrubbing every 900 s) next to absorption tails at
// 1e-200. A silent NaN or negative "probability" from one solver would
// poison every derived figure. The GuardedTransientSolver wraps each solve
// in distribution guards -- finiteness, no negative mass beyond tolerance,
// probability-mass conservation -- and on a trip falls back along a chain
// of numerically independent methods:
//
//     uniformization  ->  RK45 (Dormand-Prince)  ->  dense expm (Pade)
//
// recording which stage answered and why the earlier ones were rejected.
// When no guard trips (the normal case) the result is the untouched
// uniformization output, bitwise identical to calling that solver directly.
// When every stage trips, the solve throws core::StatusError with
// StatusCode::kSolverDivergence.
//
// The force_*_trip knobs reject a stage's (still computed) answer
// unconditionally; the adversarial fault-injection campaign uses them to
// prove the fallback chain recovers (analysis/fault_campaign.h).
#ifndef RSMEM_MARKOV_SOLVER_GUARD_H
#define RSMEM_MARKOV_SOLVER_GUARD_H

#include <cstdint>
#include <span>
#include <vector>

#include "core/status.h"
#include "markov/ctmc.h"

namespace rsmem::markov {

// Why a stage's answer was rejected. kNone = accepted.
enum class GuardTrip : std::uint8_t {
  kNone,
  kNonFinite,     // NaN or infinity in the distribution
  kNegativeMass,  // an entry below -negative_tolerance
  kMassDrift,     // |sum(out) - sum(pi0)| above mass_tolerance
  kForced,        // adversarial knob (fault-injection campaigns)
};
const char* to_string(GuardTrip trip);

enum class SolverStage : std::uint8_t {
  kUniformization,
  kRk45,
  kDenseExpm,
};
const char* to_string(SolverStage stage);

struct SolverGuardConfig {
  // Entries in [-negative_tolerance, 0) are accepted as roundoff; anything
  // more negative trips kNegativeMass.
  double negative_tolerance = 1e-12;
  // Probability mass must be conserved: |sum(out) - sum(pi0)| <= this.
  double mass_tolerance = 1e-9;
  // false: a trip in the first stage is immediately fatal (no fallback).
  bool enable_fallback = true;
  // Adversarial knobs: unconditionally reject the stage's answer with
  // GuardTrip::kForced, exercising the next rung of the chain.
  bool force_uniformization_trip = false;
  bool force_rk45_trip = false;
  bool force_expm_trip = false;
};

struct SolverAttempt {
  SolverStage stage = SolverStage::kUniformization;
  GuardTrip trip = GuardTrip::kNone;  // kNone = this stage answered
};

struct GuardedSolveReport {
  SolverStage answered_by = SolverStage::kUniformization;
  bool fallback_used = false;
  std::vector<SolverAttempt> attempts;  // in chain order
};

// First guard trip for `out` given the input mass `pi0_mass` (kForced is
// never returned here). Exposed for tests.
GuardTrip check_distribution(std::span<const double> out, double pi0_mass,
                             const SolverGuardConfig& config);

class GuardedTransientSolver final : public TransientSolver {
 public:
  explicit GuardedTransientSolver(SolverGuardConfig config = {});

  using TransientSolver::solve;
  std::vector<double> solve(const Ctmc& chain, std::span<const double> pi0,
                            double t) const override;
  // Routed through the chain stage-by-stage; identical buffers/windows to
  // the underlying UniformizationSolver when no guard trips.
  void solve_into(const Ctmc& chain, std::span<const double> pi0, double t,
                  SolverWorkspace& ws, std::span<double> out) const override;

  const SolverGuardConfig& config() const { return config_; }

  // Report of the most recent solve_into/solve on this instance. Like the
  // solver workspaces, a guarded solver instance is per-thread state.
  const GuardedSolveReport& last_report() const { return last_report_; }

  // Cumulative counters across the instance's lifetime.
  std::uint64_t solves() const { return solves_; }
  std::uint64_t fallbacks_taken() const { return fallbacks_taken_; }

 private:
  SolverGuardConfig config_;
  mutable GuardedSolveReport last_report_;
  mutable std::uint64_t solves_ = 0;
  mutable std::uint64_t fallbacks_taken_ = 0;
};

}  // namespace rsmem::markov

#endif  // RSMEM_MARKOV_SOLVER_GUARD_H
