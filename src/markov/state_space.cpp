#include "markov/state_space.h"

#include <deque>
#include <stdexcept>

#include "linalg/csr_matrix.h"

namespace rsmem::markov {

StateSpace build_state_space(const TransitionModel& model,
                             std::size_t max_states) {
  std::vector<PackedState> states;
  std::unordered_map<PackedState, std::size_t> index;
  std::deque<std::size_t> frontier;

  const auto intern = [&](PackedState s) -> std::size_t {
    const auto it = index.find(s);
    if (it != index.end()) return it->second;
    if (states.size() >= max_states) {
      throw std::length_error(
          "build_state_space: state explosion guard tripped");
    }
    const std::size_t id = states.size();
    states.push_back(s);
    index.emplace(s, id);
    frontier.push_back(id);
    return id;
  };

  const std::size_t initial_index = intern(model.initial_state());

  std::vector<linalg::Triplet> triplets;
  while (!frontier.empty()) {
    const std::size_t from = frontier.front();
    frontier.pop_front();
    const PackedState from_state = states[from];
    double exit_rate = 0.0;
    model.for_each_transition(from_state, [&](double rate, PackedState to) {
      if (rate < 0.0) {
        throw std::invalid_argument(
            "build_state_space: negative transition rate");
      }
      if (rate == 0.0 || to == from_state) return;  // no-op / self-loop
      const std::size_t to_idx = intern(to);
      triplets.push_back({from, to_idx, rate});
      exit_rate += rate;
    });
    if (exit_rate > 0.0) {
      triplets.push_back({from, from, -exit_rate});
    }
  }

  const std::size_t n = states.size();
  Ctmc chain{linalg::CsrMatrix(n, n, std::move(triplets)), initial_index};
  return StateSpace{std::move(states), std::move(index), initial_index,
                    std::move(chain)};
}

}  // namespace rsmem::markov
