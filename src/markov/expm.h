// Transient CTMC solution via the dense matrix exponential,
// pi(t) = pi0 * expm(Q t), computed with scaling-and-squaring on a Pade
// approximant. O(n^3) per solve -- only sensible for the paper's small
// chains -- but numerically independent from both uniformization and RK45,
// so the three-way agreement tests pin all solvers hard.
#ifndef RSMEM_MARKOV_EXPM_H
#define RSMEM_MARKOV_EXPM_H

#include "linalg/dense_matrix.h"
#include "markov/ctmc.h"

namespace rsmem::markov {

// expm(A) by [6/6] Pade with scaling and squaring.
linalg::DenseMatrix expm(const linalg::DenseMatrix& a);

class ExpmSolver final : public TransientSolver {
 public:
  ExpmSolver() = default;

  using TransientSolver::solve;
  std::vector<double> solve(const Ctmc& chain, std::span<const double> pi0,
                            double t) const override;
};

}  // namespace rsmem::markov

#endif  // RSMEM_MARKOV_EXPM_H
