#include "markov/ctmc.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "markov/solver_workspace.h"

namespace rsmem::markov {

namespace {
constexpr double kRowSumTolerance = 1e-9;
}

Ctmc::Ctmc(linalg::CsrMatrix generator, std::size_t initial_state)
    : generator_(std::move(generator)), initial_state_(initial_state) {
  if (generator_.rows() != generator_.cols()) {
    throw std::invalid_argument("Ctmc: generator must be square");
  }
  if (initial_state_ >= generator_.rows()) {
    throw std::invalid_argument("Ctmc: initial state out of range");
  }
  const auto row_ptr = generator_.row_pointers();
  const auto col_idx = generator_.col_indices();
  const auto values = generator_.values();
  for (std::size_t r = 0; r < generator_.rows(); ++r) {
    double row_sum = 0.0;
    double row_scale = 0.0;
    for (std::size_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      const double v = values[i];
      if (col_idx[i] != r && v < 0.0) {
        throw std::invalid_argument(
            "Ctmc: negative off-diagonal rate in row " + std::to_string(r));
      }
      row_sum += v;
      row_scale = std::max(row_scale, std::fabs(v));
    }
    if (std::fabs(row_sum) > kRowSumTolerance * std::max(1.0, row_scale)) {
      throw std::invalid_argument("Ctmc: row " + std::to_string(r) +
                                  " does not sum to zero");
    }
  }
}

std::vector<double> Ctmc::initial_distribution() const {
  std::vector<double> pi0(num_states(), 0.0);
  pi0[initial_state_] = 1.0;
  return pi0;
}

bool Ctmc::is_absorbing(std::size_t state) const {
  if (state >= num_states()) {
    throw std::invalid_argument("Ctmc::is_absorbing: state out of range");
  }
  const auto row_ptr = generator_.row_pointers();
  const auto values = generator_.values();
  for (std::size_t i = row_ptr[state]; i < row_ptr[state + 1]; ++i) {
    if (values[i] != 0.0) return false;
  }
  return true;
}

std::vector<double> TransientSolver::solve(const Ctmc& chain, double t) const {
  const std::vector<double> pi0 = chain.initial_distribution();
  return solve(chain, pi0, t);
}

void TransientSolver::solve_into(const Ctmc& chain,
                                 std::span<const double> pi0, double t,
                                 SolverWorkspace& /*ws*/,
                                 std::span<double> out) const {
  const std::vector<double> pi = solve(chain, pi0, t);
  if (out.size() != pi.size()) {
    throw std::invalid_argument("solve_into: output size mismatch");
  }
  std::copy(pi.begin(), pi.end(), out.begin());
}

std::vector<double> TransientSolver::occupancy_curve(
    const Ctmc& chain, std::size_t state,
    std::span<const double> times) const {
  if (state >= chain.num_states()) {
    throw std::invalid_argument("occupancy_curve: state out of range");
  }
  std::vector<double> result;
  result.reserve(times.size());
  std::vector<double> pi = chain.initial_distribution();
  double t_prev = 0.0;
  for (const double t : times) {
    if (t < t_prev) {
      throw std::invalid_argument("occupancy_curve: times must be sorted");
    }
    if (t > t_prev) {
      pi = solve(chain, pi, t - t_prev);
      t_prev = t;
    }
    result.push_back(pi[state]);
  }
  return result;
}

std::vector<double> TransientSolver::occupancy_curve(
    const Ctmc& chain, std::size_t state, std::span<const double> times,
    SolverWorkspace& ws, const StepPolicy& policy) const {
  if (state >= chain.num_states()) {
    throw std::invalid_argument("occupancy_curve: state out of range");
  }
  const std::size_t n = chain.num_states();

  // Pre-pass: validate ordering and count how often each distinct step
  // width occurs, so widths repeated more than n times can share a dense
  // operator. Keys are exact doubles -- evenly spaced grids can produce
  // step widths one ulp apart, and each such value is its own key.
  struct DtUse {
    double dt;
    std::size_t count;
    std::optional<StepOperator> op;
  };
  std::vector<DtUse> widths;
  double t_prev = 0.0;
  for (const double t : times) {
    if (t < t_prev) {
      throw std::invalid_argument("occupancy_curve: times must be sorted");
    }
    if (t > t_prev) {
      const double dt = t - t_prev;
      auto it = std::find_if(widths.begin(), widths.end(),
                             [dt](const DtUse& u) { return u.dt == dt; });
      if (it == widths.end()) {
        widths.push_back({dt, 1, std::nullopt});
      } else {
        ++it->count;
      }
      t_prev = t;
    }
  }
  const bool dense_allowed =
      policy.max_dense_states > 0 && n <= policy.max_dense_states;

  std::vector<double> result;
  result.reserve(times.size());
  ws.pi_a.assign(n, 0.0);
  ws.pi_a[chain.initial_state()] = 1.0;
  ws.pi_b.assign(n, 0.0);
  t_prev = 0.0;
  for (const double t : times) {
    if (t > t_prev) {
      const double dt = t - t_prev;
      const auto it = std::find_if(widths.begin(), widths.end(),
                                   [dt](const DtUse& u) { return u.dt == dt; });
      if (dense_allowed && it->count > n) {
        if (!it->op) it->op.emplace(chain, dt, *this, ws);
        it->op->advance(ws.pi_a, ws.pi_b);
      } else {
        solve_into(chain, ws.pi_a, dt, ws, ws.pi_b);
      }
      std::swap(ws.pi_a, ws.pi_b);
      t_prev = t;
    }
    result.push_back(ws.pi_a[state]);
  }
  return result;
}

}  // namespace rsmem::markov
