#include "markov/periodic.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <utility>

#include "markov/solver_workspace.h"

namespace rsmem::markov {

namespace {

void validate(const Ctmc& chain, std::span<const double> pi0,
              std::span<const std::size_t> jump_map, double period) {
  if (pi0.size() != chain.num_states()) {
    throw std::invalid_argument("periodic jump: pi0 size mismatch");
  }
  if (jump_map.size() != chain.num_states()) {
    throw std::invalid_argument("periodic jump: jump_map size mismatch");
  }
  for (const std::size_t target : jump_map) {
    if (target >= chain.num_states()) {
      throw std::invalid_argument("periodic jump: map target out of range");
    }
  }
  if (period <= 0.0) {
    throw std::invalid_argument("periodic jump: period must be positive");
  }
}

// pi <- pi routed through jump_map, using `scratch` as the accumulation
// buffer (swapped into pi afterwards).
void apply_jump_into(std::span<const std::size_t> jump_map,
                     std::vector<double>& pi, std::vector<double>& scratch) {
  scratch.assign(pi.size(), 0.0);
  for (std::size_t s = 0; s < pi.size(); ++s) {
    scratch[jump_map[s]] += pi[s];
  }
  pi.swap(scratch);
}

void apply_jump(std::span<const std::size_t> jump_map,
                std::vector<double>& pi) {
  std::vector<double> next;
  apply_jump_into(jump_map, pi, next);  // leaves the result in pi
}

}  // namespace

std::vector<double> solve_with_periodic_jump(
    const Ctmc& chain, std::span<const double> pi0,
    std::span<const std::size_t> jump_map, double period, double t,
    const TransientSolver& solver) {
  validate(chain, pi0, jump_map, period);
  if (t < 0.0) {
    throw std::invalid_argument("periodic jump: negative time");
  }
  std::vector<double> pi(pi0.begin(), pi0.end());
  double now = 0.0;
  // Evolve period by period; guard against float drift with a boundary
  // tolerance of one part in 1e-9 of the period.
  const double eps = period * 1e-9;
  while (t - now > period - eps) {
    pi = solver.solve(chain, pi, period);
    apply_jump(jump_map, pi);
    now += period;
  }
  if (t - now > eps) {
    const double rest = t - now;
    pi = solver.solve(chain, pi, rest);
    if (std::fabs(rest - period) <= eps) {
      apply_jump(jump_map, pi);  // query exactly on a jump instant
    }
  }
  return pi;
}

std::vector<double> occupancy_with_periodic_jump(
    const Ctmc& chain, std::size_t state,
    std::span<const std::size_t> jump_map, double period,
    std::span<const double> times, const TransientSolver& solver) {
  if (state >= chain.num_states()) {
    throw std::invalid_argument("periodic jump: state out of range");
  }
  const std::vector<double> pi0 = chain.initial_distribution();
  validate(chain, pi0, jump_map, period);

  std::vector<double> result;
  result.reserve(times.size());
  // Anchor: the distribution at the last completed scrub cycle (post-jump),
  // carried forward across query times. `now` accumulates period by period
  // exactly like the from-scratch loop did, so the cycle-boundary
  // comparisons -- and therefore the whole curve -- are bitwise identical
  // to solving every point from pi(0).
  std::vector<double> anchor = pi0;
  std::vector<double> pi;
  double now = 0.0;
  const double eps = period * 1e-9;
  double prev = -1.0;
  for (const double t : times) {
    if (t < prev) {
      throw std::invalid_argument("periodic jump: times must be sorted");
    }
    prev = t;
    if (t < 0.0) {
      throw std::invalid_argument("periodic jump: negative time");
    }
    while (t - now > period - eps) {
      anchor = solver.solve(chain, anchor, period);
      apply_jump(jump_map, anchor);
      now += period;
    }
    if (t - now > eps) {
      // Mid-cycle query: advance a scratch copy, leaving the anchor at the
      // cycle boundary for the next query.
      const double rest = t - now;
      pi = solver.solve(chain, anchor, rest);
      if (std::fabs(rest - period) <= eps) {
        apply_jump(jump_map, pi);  // query exactly on a jump instant
      }
      result.push_back(pi[state]);
    } else {
      result.push_back(anchor[state]);
    }
  }
  return result;
}

std::vector<double> solve_with_periodic_jump(
    const Ctmc& chain, std::span<const double> pi0,
    std::span<const std::size_t> jump_map, double period, double t,
    const TransientSolver& solver, SolverWorkspace& ws,
    const StepPolicy& policy) {
  validate(chain, pi0, jump_map, period);
  if (t < 0.0) {
    throw std::invalid_argument("periodic jump: negative time");
  }
  const std::size_t n = chain.num_states();
  const double eps = period * 1e-9;
  const std::size_t cycles =
      t > period - eps ? static_cast<std::size_t>((t + eps) / period) : 0;
  const bool dense = policy.max_dense_states > 0 &&
                     n <= policy.max_dense_states && cycles > n;
  std::optional<StepOperator> op;

  std::vector<double> pi(pi0.begin(), pi0.end());
  ws.pi_b.resize(n);
  double now = 0.0;
  while (t - now > period - eps) {
    if (dense) {
      if (!op) op.emplace(chain, period, solver, ws);
      op->advance(pi, ws.pi_b);
    } else {
      solver.solve_into(chain, pi, period, ws, ws.pi_b);
    }
    pi.swap(ws.pi_b);
    apply_jump_into(jump_map, pi, ws.jump_tmp);
    now += period;
  }
  if (t - now > eps) {
    const double rest = t - now;
    ws.pi_b.resize(n);
    solver.solve_into(chain, pi, rest, ws, ws.pi_b);
    pi.swap(ws.pi_b);
    if (std::fabs(rest - period) <= eps) {
      apply_jump_into(jump_map, pi, ws.jump_tmp);
    }
  }
  return pi;
}

std::vector<double> occupancy_with_periodic_jump(
    const Ctmc& chain, std::size_t state,
    std::span<const std::size_t> jump_map, double period,
    std::span<const double> times, const TransientSolver& solver,
    SolverWorkspace& ws, const StepPolicy& policy) {
  if (state >= chain.num_states()) {
    throw std::invalid_argument("periodic jump: state out of range");
  }
  const std::size_t n = chain.num_states();
  ws.pi_a.assign(n, 0.0);
  ws.pi_a[chain.initial_state()] = 1.0;
  validate(chain, ws.pi_a, jump_map, period);

  const double eps = period * 1e-9;
  const std::size_t total_cycles =
      times.empty() ? 0
                    : static_cast<std::size_t>(
                          std::max(0.0, (times.back() + eps) / period));
  const bool dense = policy.max_dense_states > 0 &&
                     n <= policy.max_dense_states && total_cycles > n;
  std::optional<StepOperator> op;

  std::vector<double> result;
  result.reserve(times.size());
  ws.pi_b.resize(n);
  double now = 0.0;
  double prev = -1.0;
  for (const double t : times) {
    if (t < prev) {
      throw std::invalid_argument("periodic jump: times must be sorted");
    }
    prev = t;
    if (t < 0.0) {
      throw std::invalid_argument("periodic jump: negative time");
    }
    while (t - now > period - eps) {
      if (dense) {
        if (!op) op.emplace(chain, period, solver, ws);
        op->advance(ws.pi_a, ws.pi_b);
      } else {
        solver.solve_into(chain, ws.pi_a, period, ws, ws.pi_b);
      }
      std::swap(ws.pi_a, ws.pi_b);
      apply_jump_into(jump_map, ws.pi_a, ws.jump_tmp);
      now += period;
    }
    if (t - now > eps) {
      const double rest = t - now;
      solver.solve_into(chain, ws.pi_a, rest, ws, ws.pi_b);
      if (std::fabs(rest - period) <= eps) {
        apply_jump_into(jump_map, ws.pi_b, ws.jump_tmp);
      }
      result.push_back(ws.pi_b[state]);
    } else {
      result.push_back(ws.pi_a[state]);
    }
  }
  return result;
}

}  // namespace rsmem::markov
