#include "markov/periodic.h"

#include <cmath>
#include <stdexcept>

namespace rsmem::markov {

namespace {

void validate(const Ctmc& chain, std::span<const double> pi0,
              std::span<const std::size_t> jump_map, double period) {
  if (pi0.size() != chain.num_states()) {
    throw std::invalid_argument("periodic jump: pi0 size mismatch");
  }
  if (jump_map.size() != chain.num_states()) {
    throw std::invalid_argument("periodic jump: jump_map size mismatch");
  }
  for (const std::size_t target : jump_map) {
    if (target >= chain.num_states()) {
      throw std::invalid_argument("periodic jump: map target out of range");
    }
  }
  if (period <= 0.0) {
    throw std::invalid_argument("periodic jump: period must be positive");
  }
}

void apply_jump(std::span<const std::size_t> jump_map,
                std::vector<double>& pi) {
  std::vector<double> next(pi.size(), 0.0);
  for (std::size_t s = 0; s < pi.size(); ++s) {
    next[jump_map[s]] += pi[s];
  }
  pi.swap(next);
}

}  // namespace

std::vector<double> solve_with_periodic_jump(
    const Ctmc& chain, std::span<const double> pi0,
    std::span<const std::size_t> jump_map, double period, double t,
    const TransientSolver& solver) {
  validate(chain, pi0, jump_map, period);
  if (t < 0.0) {
    throw std::invalid_argument("periodic jump: negative time");
  }
  std::vector<double> pi(pi0.begin(), pi0.end());
  double now = 0.0;
  // Evolve period by period; guard against float drift with a boundary
  // tolerance of one part in 1e-9 of the period.
  const double eps = period * 1e-9;
  while (t - now > period - eps) {
    pi = solver.solve(chain, pi, period);
    apply_jump(jump_map, pi);
    now += period;
  }
  if (t - now > eps) {
    const double rest = t - now;
    pi = solver.solve(chain, pi, rest);
    if (std::fabs(rest - period) <= eps) {
      apply_jump(jump_map, pi);  // query exactly on a jump instant
    }
  }
  return pi;
}

std::vector<double> occupancy_with_periodic_jump(
    const Ctmc& chain, std::size_t state,
    std::span<const std::size_t> jump_map, double period,
    std::span<const double> times, const TransientSolver& solver) {
  if (state >= chain.num_states()) {
    throw std::invalid_argument("periodic jump: state out of range");
  }
  std::vector<double> result;
  result.reserve(times.size());
  double prev = -1.0;
  for (const double t : times) {
    if (t < prev) {
      throw std::invalid_argument("periodic jump: times must be sorted");
    }
    prev = t;
    // Solve each point from scratch: jump instants do not align with a
    // shared incremental grid. The chains are small, so this is cheap.
    const std::vector<double> pi = solve_with_periodic_jump(
        chain, chain.initial_distribution(), jump_map, period, t, solver);
    result.push_back(pi[state]);
  }
  return result;
}

}  // namespace rsmem::markov
