// Generic CTMC state-space construction by breadth-first reachability.
//
// The paper's chains (simplex S(er,re); duplex 6-tuple) both pack their
// state descriptors into a 64-bit integer. A model enumerates the outgoing
// transitions of any packed state; the builder discovers all reachable
// states from the initial one, assigns dense indices, and assembles the
// sparse generator matrix (diagonal filled in automatically).
#ifndef RSMEM_MARKOV_STATE_SPACE_H
#define RSMEM_MARKOV_STATE_SPACE_H

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "markov/ctmc.h"

namespace rsmem::markov {

using PackedState = std::uint64_t;

// Receives (rate, destination) for each outgoing transition.
using TransitionSink = std::function<void(double, PackedState)>;

// A model of a CTMC over packed states. Implementations must be
// deterministic: repeated enumeration of the same state yields the same
// transitions.
class TransitionModel {
 public:
  virtual ~TransitionModel() = default;

  virtual PackedState initial_state() const = 0;

  // Emits every outgoing transition of `state`. Absorbing states emit
  // nothing. Emitting a self-loop is allowed and ignored (it does not
  // change the distribution of a CTMC).
  virtual void for_each_transition(PackedState state,
                                   const TransitionSink& emit) const = 0;
};

// The reachable chain of a model: dense indexing plus the generator.
struct StateSpace {
  std::vector<PackedState> states;                    // index -> packed
  std::unordered_map<PackedState, std::size_t> index;  // packed -> index
  std::size_t initial_index = 0;
  Ctmc chain;

  std::size_t size() const { return states.size(); }
  bool contains(PackedState s) const { return index.count(s) != 0; }
  std::size_t index_of(PackedState s) const { return index.at(s); }
};

// Builds the reachable state space. Throws std::length_error if more than
// `max_states` states are discovered (guard against state explosion) and
// std::invalid_argument if a model emits a negative rate.
StateSpace build_state_space(const TransitionModel& model,
                             std::size_t max_states = 2'000'000);

}  // namespace rsmem::markov

#endif  // RSMEM_MARKOV_STATE_SPACE_H
