#include "markov/uniformization.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "markov/solver_workspace.h"

namespace rsmem::markov {

namespace {

// log Gamma(x) without glibc lgamma()'s write to the global `signgam`,
// which is a data race when solver workers evaluate Poisson windows
// concurrently. Gamma is positive over our domain (x >= 1), so the sign
// output is discarded.
double log_gamma_threadsafe(double x) {
#if defined(__GLIBC__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace

UniformizationSolver::UniformizationSolver(double truncation_error)
    : truncation_error_(truncation_error) {
  if (truncation_error <= 0.0 || truncation_error >= 1.0) {
    throw std::invalid_argument(
        "UniformizationSolver: truncation_error must be in (0,1)");
  }
}

PoissonWindow poisson_window(double lambda, double truncation_error,
                             double tail_floor) {
  if (lambda < 0.0) {
    throw std::invalid_argument("poisson_window: negative lambda");
  }
  if (lambda == 0.0) {
    return {0, {1.0}};
  }
  const std::size_t mode = static_cast<std::size_t>(std::floor(lambda));
  const double log_pmf_mode = -lambda +
                              static_cast<double>(mode) * std::log(lambda) -
      log_gamma_threadsafe(static_cast<double>(mode) + 1.0);
  const double pmf_mode = std::exp(log_pmf_mode);

  // Walk outward from the mode with the ratio recurrences
  //   pmf(k+1) = pmf(k) * lambda / (k+1),  pmf(k-1) = pmf(k) * k / lambda
  // until the captured mass reaches 1 - truncation_error.
  std::vector<double> right{pmf_mode};  // pmf(mode), pmf(mode+1), ...
  std::vector<double> left;             // pmf(mode-1), pmf(mode-2), ...
  double total = pmf_mode;
  double right_pmf = pmf_mode;
  std::size_t right_k = mode;
  double left_pmf = pmf_mode;
  std::size_t left_k = mode;

  while (total < 1.0 - truncation_error) {
    // Prefer extending the side with the larger next term.
    const double next_right =
        right_pmf * lambda / static_cast<double>(right_k + 1);
    const double next_left =
        left_k > 0 ? left_pmf * static_cast<double>(left_k) / lambda : -1.0;
    if (next_right >= next_left) {
      right.push_back(next_right);
      right_pmf = next_right;
      ++right_k;
      total += next_right;
    } else {
      left.push_back(next_left);
      left_pmf = next_left;
      --left_k;
      total += next_left;
    }
    if (right_k > mode + 40 && next_right < 1e-300 &&
        (left_k == 0 || next_left < 1e-300)) {
      break;  // ran off the representable range; mass captured is maximal
    }
  }

  // Tail extension: keep appending right-side weights until they underflow
  // below tail_floor, so far-tail transition counts (the only path to Fail
  // in slow chains) contribute their exact positive mass.
  while (right_pmf >= tail_floor) {
    const double next = right_pmf * lambda / static_cast<double>(right_k + 1);
    if (next < tail_floor) break;
    right.push_back(next);
    right_pmf = next;
    ++right_k;
  }

  PoissonWindow window;
  window.first_k = left_k;
  window.weights.reserve(left.size() + right.size());
  for (auto it = left.rbegin(); it != left.rend(); ++it) {
    window.weights.push_back(*it);
  }
  for (const double w : right) window.weights.push_back(w);
  return window;
}

std::vector<double> UniformizationSolver::solve(const Ctmc& chain,
                                                std::span<const double> pi0,
                                                double t) const {
  SolverWorkspace ws;
  std::vector<double> out(pi0.size());
  solve_into(chain, pi0, t, ws, out);
  return out;
}

void UniformizationSolver::solve_into(const Ctmc& chain,
                                      std::span<const double> pi0, double t,
                                      SolverWorkspace& ws,
                                      std::span<double> out) const {
  if (pi0.size() != chain.num_states()) {
    throw std::invalid_argument("UniformizationSolver: pi0 size mismatch");
  }
  if (out.size() != chain.num_states()) {
    throw std::invalid_argument("UniformizationSolver: output size mismatch");
  }
  if (t < 0.0) {
    throw std::invalid_argument("UniformizationSolver: negative time");
  }
  const double q = chain.max_exit_rate();
  if (t == 0.0 || q == 0.0) {
    std::copy(pi0.begin(), pi0.end(), out.begin());
    return;
  }

  const PoissonWindow& window =
      ws.poisson(q * t, truncation_error_, kPoissonTailFloor);
  const std::size_t last_k = window.first_k + window.weights.size() - 1;

  const linalg::CsrMatrix& gen = chain.generator();
  std::vector<double>& v = ws.v;
  std::vector<double>& qv = ws.qv;
  v.assign(pi0.begin(), pi0.end());
  qv.resize(v.size());
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t k = 0; k <= last_k; ++k) {
    if (k >= window.first_k) {
      const double w = window.weights[k - window.first_k];
      for (std::size_t i = 0; i < v.size(); ++i) out[i] += w * v[i];
    }
    if (k == last_k) break;
    // v <- v P = v + (v Q) / q   (row-vector propagation).
    gen.apply_transpose(v, qv);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] += qv[i] / q;
  }
  // Clamp away tiny negative round-off.
  for (double& x : out) x = std::max(x, 0.0);
}

}  // namespace rsmem::markov
