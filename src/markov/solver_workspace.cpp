#include "markov/solver_workspace.h"

#include <algorithm>
#include <stdexcept>

namespace rsmem::markov {

const PoissonWindow& SolverWorkspace::poisson(double lambda,
                                              double truncation_error,
                                              double tail_floor) {
  ++tick_;
  for (WindowEntry& entry : windows_) {
    if (entry.lambda == lambda && entry.truncation_error == truncation_error &&
        entry.tail_floor == tail_floor) {
      entry.last_use = tick_;
      ++hits_;
      return entry.window;
    }
  }
  ++misses_;
  if (windows_.size() >= kMaxWindows) {
    const auto lru =
        std::min_element(windows_.begin(), windows_.end(),
                         [](const WindowEntry& a, const WindowEntry& b) {
                           return a.last_use < b.last_use;
                         });
    windows_.erase(lru);
  }
  windows_.push_back({lambda, truncation_error, tail_floor, tick_,
                      poisson_window(lambda, truncation_error, tail_floor)});
  return windows_.back().window;
}

void SolverWorkspace::clear() {
  windows_.clear();
  windows_.shrink_to_fit();
  tick_ = hits_ = misses_ = 0;
  for (std::vector<double>* buf :
       {&v, &qv, &k1, &k2, &k3, &k4, &k5, &k6, &k7, &tmp, &y5, &pi_a, &pi_b,
        &jump_tmp}) {
    buf->clear();
    buf->shrink_to_fit();
  }
}

StepOperator::StepOperator(const Ctmc& chain, double dt,
                           const TransientSolver& solver, SolverWorkspace& ws)
    : dt_(dt), n_(chain.num_states()), matrix_(n_ * n_) {
  if (dt < 0.0) {
    throw std::invalid_argument("StepOperator: negative dt");
  }
  std::vector<double> basis(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    basis[i] = 1.0;
    solver.solve_into(chain, basis, dt_, ws,
                      std::span<double>(matrix_).subspan(i * n_, n_));
    basis[i] = 0.0;
  }
}

void StepOperator::advance(std::span<const double> in,
                           std::span<double> out) const {
  if (in.size() != n_ || out.size() != n_) {
    throw std::invalid_argument("StepOperator::advance: size mismatch");
  }
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    const double xi = in[i];
    if (xi == 0.0) continue;  // skipping +/-0 terms never changes a sum
    const double* row = matrix_.data() + i * n_;
    for (std::size_t j = 0; j < n_; ++j) out[j] += xi * row[j];
  }
}

}  // namespace rsmem::markov
