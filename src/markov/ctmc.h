// Continuous-time Markov chain representation.
//
// A chain is its infinitesimal generator Q (sparse, row-oriented: Q[i][j] is
// the rate from state i to state j for i != j, and Q[i][i] = -sum of the
// row's off-diagonal entries) plus an initial state index. Absorbing states
// (the paper's Fail state) simply have an all-zero row.
#ifndef RSMEM_MARKOV_CTMC_H
#define RSMEM_MARKOV_CTMC_H

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/csr_matrix.h"

namespace rsmem::markov {

class Ctmc {
 public:
  // Throws std::invalid_argument if Q is not square, has negative
  // off-diagonal entries, rows that do not sum to ~0, or the initial index
  // is out of range.
  Ctmc(linalg::CsrMatrix generator, std::size_t initial_state);

  std::size_t num_states() const { return generator_.rows(); }
  std::size_t initial_state() const { return initial_state_; }
  const linalg::CsrMatrix& generator() const { return generator_; }

  // Point-mass initial distribution.
  std::vector<double> initial_distribution() const;

  // Largest exit rate, max_i |Q[i][i]| (uniformization constant bound).
  double max_exit_rate() const { return generator_.max_abs_diagonal(); }

  bool is_absorbing(std::size_t state) const;

 private:
  linalg::CsrMatrix generator_;
  std::size_t initial_state_;
};

// Interface shared by the transient solvers: returns the state probability
// vector pi(t) with pi(0) = pi0.
class TransientSolver {
 public:
  virtual ~TransientSolver() = default;
  virtual std::vector<double> solve(const Ctmc& chain,
                                    std::span<const double> pi0,
                                    double t) const = 0;

  // Convenience: start from the chain's own initial state.
  std::vector<double> solve(const Ctmc& chain, double t) const;

  // Probability of occupying `state` at each time in `times`
  // (times must be non-decreasing; solved incrementally).
  std::vector<double> occupancy_curve(const Ctmc& chain, std::size_t state,
                                      std::span<const double> times) const;
};

}  // namespace rsmem::markov

#endif  // RSMEM_MARKOV_CTMC_H
