// Continuous-time Markov chain representation.
//
// A chain is its infinitesimal generator Q (sparse, row-oriented: Q[i][j] is
// the rate from state i to state j for i != j, and Q[i][i] = -sum of the
// row's off-diagonal entries) plus an initial state index. Absorbing states
// (the paper's Fail state) simply have an all-zero row.
#ifndef RSMEM_MARKOV_CTMC_H
#define RSMEM_MARKOV_CTMC_H

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/csr_matrix.h"

namespace rsmem::markov {

class SolverWorkspace;

// Controls the dense step-operator optimisation in the workspace grid
// paths. Chains with at most max_dense_states states may be advanced
// through a dense exp(Q dt) operator when one step width repeats often
// enough to amortise its construction (more repeats than states). The
// default 0 disables dense stepping, keeping results bitwise identical to
// the per-step solver path; the sweep engine passes a nonzero bound and
// accepts ~1e-13 relative agreement instead.
struct StepPolicy {
  std::size_t max_dense_states = 0;
};

class Ctmc {
 public:
  // Throws std::invalid_argument if Q is not square, has negative
  // off-diagonal entries, rows that do not sum to ~0, or the initial index
  // is out of range.
  Ctmc(linalg::CsrMatrix generator, std::size_t initial_state);

  std::size_t num_states() const { return generator_.rows(); }
  std::size_t initial_state() const { return initial_state_; }
  const linalg::CsrMatrix& generator() const { return generator_; }

  // Point-mass initial distribution.
  std::vector<double> initial_distribution() const;

  // Largest exit rate, max_i |Q[i][i]| (uniformization constant bound).
  double max_exit_rate() const { return generator_.max_abs_diagonal(); }

  bool is_absorbing(std::size_t state) const;

 private:
  linalg::CsrMatrix generator_;
  std::size_t initial_state_;
};

// Interface shared by the transient solvers: returns the state probability
// vector pi(t) with pi(0) = pi0.
class TransientSolver {
 public:
  virtual ~TransientSolver() = default;
  virtual std::vector<double> solve(const Ctmc& chain,
                                    std::span<const double> pi0,
                                    double t) const = 0;

  // Convenience: start from the chain's own initial state.
  std::vector<double> solve(const Ctmc& chain, double t) const;

  // Zero-allocation variant: writes pi(t) into `out` (size num_states)
  // using workspace buffers and cached Poisson windows. The base
  // implementation falls back to the allocating solve(); the concrete
  // solvers override it. Results are bitwise identical to solve().
  virtual void solve_into(const Ctmc& chain, std::span<const double> pi0,
                          double t, SolverWorkspace& ws,
                          std::span<double> out) const;

  // Probability of occupying `state` at each time in `times`
  // (times must be non-decreasing; solved incrementally).
  std::vector<double> occupancy_curve(const Ctmc& chain, std::size_t state,
                                      std::span<const double> times) const;

  // Workspace variant: same incremental walk through solve_into, so with
  // the default StepPolicy the curve is bitwise identical to the
  // allocating overload while reusing the workspace's buffers and window
  // cache. A nonzero policy.max_dense_states lets repeated step widths run
  // through a dense StepOperator (engine accuracy, ~1e-13 relative).
  std::vector<double> occupancy_curve(const Ctmc& chain, std::size_t state,
                                      std::span<const double> times,
                                      SolverWorkspace& ws,
                                      const StepPolicy& policy = {}) const;
};

}  // namespace rsmem::markov

#endif  // RSMEM_MARKOV_CTMC_H
