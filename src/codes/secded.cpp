#include "codes/secded.h"

#include <stdexcept>

namespace rsmem::codes {

namespace {

bool is_power_of_two(unsigned x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace

SecDed::SecDed(unsigned data_bits) : data_bits_(data_bits) {
  if (data_bits == 0 || data_bits > (1u << 16)) {
    throw std::invalid_argument("SecDed: data_bits must be in [1, 65536]");
  }
  // Smallest r with 2^r - 1 - r >= data_bits.
  unsigned r = 2;
  while ((1u << r) - 1 - r < data_bits) ++r;
  hamming_parity_bits_ = r;
  parity_bits_ = r + 1;  // + overall parity

  // Stored layout: data bits first (non-power-of-two Hamming positions in
  // ascending order), then the r Hamming parity bits (positions 2^j), then
  // the overall parity bit (no Hamming position; sentinel 0).
  position_of_bit_.assign(codeword_bits(), 0);
  unsigned position = 1;
  for (unsigned i = 0; i < data_bits_; ++i) {
    while (is_power_of_two(position)) ++position;
    position_of_bit_[i] = position++;
  }
  for (unsigned j = 0; j < r; ++j) {
    position_of_bit_[data_bits_ + j] = 1u << j;
  }
}

unsigned SecDed::syndrome_and_parity(std::span<const std::uint8_t> word,
                                     unsigned* overall_parity) const {
  unsigned syndrome = 0;
  unsigned parity = 0;
  for (unsigned i = 0; i < codeword_bits(); ++i) {
    if (word[i] > 1) {
      throw std::invalid_argument("SecDed: bits must be 0 or 1");
    }
    if (word[i]) {
      syndrome ^= position_of_bit_[i];  // overall parity bit contributes 0
      parity ^= 1u;
    }
  }
  *overall_parity = parity;
  return syndrome;
}

std::vector<std::uint8_t> SecDed::encode(
    std::span<const std::uint8_t> data) const {
  if (data.size() != data_bits_) {
    throw std::invalid_argument("SecDed::encode: data size mismatch");
  }
  std::vector<std::uint8_t> word(codeword_bits(), 0);
  for (unsigned i = 0; i < data_bits_; ++i) {
    if (data[i] > 1) {
      throw std::invalid_argument("SecDed::encode: bits must be 0 or 1");
    }
    word[i] = data[i];
  }
  // Hamming parity bits: zero the parities, then each parity bit equals the
  // syndrome bit the data induces.
  unsigned parity = 0;
  unsigned syndrome = 0;
  for (unsigned i = 0; i < data_bits_; ++i) {
    if (word[i]) syndrome ^= position_of_bit_[i];
  }
  for (unsigned j = 0; j < hamming_parity_bits_; ++j) {
    word[data_bits_ + j] = (syndrome >> j) & 1u;
  }
  for (unsigned i = 0; i + 1 < codeword_bits(); ++i) parity ^= word[i];
  word[codeword_bits() - 1] = static_cast<std::uint8_t>(parity);
  return word;
}

SecDedOutcome SecDed::decode(std::span<std::uint8_t> codeword) const {
  if (codeword.size() != codeword_bits()) {
    throw std::invalid_argument("SecDed::decode: size mismatch");
  }
  unsigned overall = 0;
  const unsigned syndrome = syndrome_and_parity(codeword, &overall);

  SecDedOutcome outcome;
  if (syndrome == 0 && overall == 0) {
    outcome.status = SecDedStatus::kClean;
    return outcome;
  }
  if (syndrome == 0 && overall == 1) {
    // The overall parity bit itself flipped.
    codeword[codeword_bits() - 1] ^= 1u;
    outcome.status = SecDedStatus::kCorrected;
    outcome.corrected_bit = codeword_bits() - 1;
    return outcome;
  }
  if (overall == 1) {
    // Odd number of errors with a syndrome: assume a single error at the
    // stored bit whose Hamming position equals the syndrome.
    for (unsigned i = 0; i + 1 < codeword_bits(); ++i) {
      if (position_of_bit_[i] == syndrome) {
        codeword[i] ^= 1u;
        outcome.status = SecDedStatus::kCorrected;
        outcome.corrected_bit = i;
        return outcome;
      }
    }
    // Syndrome points at an unused (shortened) position: only a multi-bit
    // pattern can do that.
    outcome.status = SecDedStatus::kDetectedDouble;
    return outcome;
  }
  // syndrome != 0, overall parity even: a double error.
  outcome.status = SecDedStatus::kDetectedDouble;
  return outcome;
}

std::vector<std::uint8_t> SecDed::extract_data(
    std::span<const std::uint8_t> codeword) const {
  if (codeword.size() != codeword_bits()) {
    throw std::invalid_argument("SecDed::extract_data: size mismatch");
  }
  return std::vector<std::uint8_t>(codeword.begin(),
                                   codeword.begin() + data_bits_);
}

bool SecDed::is_codeword(std::span<const std::uint8_t> codeword) const {
  if (codeword.size() != codeword_bits()) return false;
  unsigned overall = 0;
  const unsigned syndrome = syndrome_and_parity(codeword, &overall);
  return syndrome == 0 && overall == 0;
}

}  // namespace rsmem::codes
