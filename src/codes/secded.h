// SEC-DED (single-error-correcting, double-error-detecting) extended
// Hamming code -- the industry-standard bit-oriented memory EDAC, built as
// a baseline against the paper's symbol-oriented RS codes.
//
// The classic (72,64) configuration has exactly the same 12.5% storage
// overhead as RS(18,16) over GF(2^8), which makes the comparison between
// bit-level and symbol-level protection exact (bench_secded_vs_rs):
// SEC-DED corrects any 1 flipped bit and detects any 2 per 72-bit word;
// RS(18,16) corrects any single 8-bit symbol, i.e. an arbitrary burst of
// up to 8 adjacent bits inside one symbol.
//
// Construction: distance-4 extended Hamming. Codeword bit positions are
// numbered 1..(2^r - 1) for the inner Hamming code; position j is a parity
// bit iff j is a power of two; an overall parity bit is appended. Decoding:
//   syndrome s, overall parity p:
//     s == 0, p == 0  -> clean
//     s != 0, p == 1  -> single error at position s, corrected
//     s == 0, p == 1  -> the overall parity bit itself flipped, corrected
//     s != 0, p == 0  -> double error DETECTED (uncorrectable)
// Note s may point beyond n for some double patterns; that is also a
// detected failure.
#ifndef RSMEM_CODES_SECDED_H
#define RSMEM_CODES_SECDED_H

#include <cstdint>
#include <span>
#include <vector>

namespace rsmem::codes {

enum class SecDedStatus : std::uint8_t {
  kClean,
  kCorrected,       // single bit repaired
  kDetectedDouble,  // uncorrectable, flagged
};

struct SecDedOutcome {
  SecDedStatus status = SecDedStatus::kClean;
  // Codeword bit index (0-based) repaired when status == kCorrected and the
  // error was inside the stored word; n_bits() for the overall parity bit.
  unsigned corrected_bit = 0;

  bool ok() const { return status != SecDedStatus::kDetectedDouble; }
};

class SecDed {
 public:
  // Builds the smallest extended Hamming code holding `data_bits` payload
  // bits. (72,64) results from data_bits = 64. Throws std::invalid_argument
  // for data_bits == 0 or > 2^16.
  explicit SecDed(unsigned data_bits);

  unsigned data_bits() const { return data_bits_; }
  unsigned parity_bits() const { return parity_bits_; }  // incl. overall
  unsigned codeword_bits() const { return data_bits_ + parity_bits_; }
  double overhead() const {
    return static_cast<double>(codeword_bits()) / data_bits_;
  }

  // Bits are passed as one 0/1 byte each (modeling-friendly layout).
  // Throws std::invalid_argument on size mismatch or non-binary content.
  std::vector<std::uint8_t> encode(std::span<const std::uint8_t> data) const;

  // In-place decode; on ok() the word is a valid codeword afterwards.
  SecDedOutcome decode(std::span<std::uint8_t> codeword) const;

  std::vector<std::uint8_t> extract_data(
      std::span<const std::uint8_t> codeword) const;

  bool is_codeword(std::span<const std::uint8_t> codeword) const;

 private:
  unsigned data_bits_;
  unsigned hamming_parity_bits_;  // r (excl. the overall parity bit)
  unsigned parity_bits_;          // r + 1
  // Hamming position (1-based) of each stored bit, data first then parity.
  std::vector<unsigned> position_of_bit_;

  unsigned syndrome_and_parity(std::span<const std::uint8_t> word,
                               unsigned* overall_parity) const;
};

}  // namespace rsmem::codes

#endif  // RSMEM_CODES_SECDED_H
