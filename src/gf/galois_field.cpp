#include "gf/galois_field.h"

#include <stdexcept>
#include <string>

namespace rsmem::gf {

namespace {

// Conway-style primitive polynomials over GF(2), leading term included.
// Indexed by m; the classic choices used by most RS implementations.
constexpr std::uint32_t kDefaultPoly[17] = {
    0,      0,      0x7,    0xB,     0x13,    0x25,    0x43,   0x89,
    0x11D,  0x211,  0x409,  0x805,   0x1053,  0x201B,  0x4443, 0x8003,
    0x1100B};

}  // namespace

std::uint32_t GaloisField::default_primitive_poly(unsigned m) {
  if (m < kMinM || m > kMaxM) {
    throw std::invalid_argument("GaloisField: m must be in [2,16], got " +
                                std::to_string(m));
  }
  return kDefaultPoly[m];
}

GaloisField::GaloisField(unsigned m)
    : GaloisField(m, default_primitive_poly(m)) {}

GaloisField::GaloisField(unsigned m, std::uint32_t primitive_poly)
    : m_(m), size_(0), primitive_poly_(primitive_poly) {
  if (m < kMinM || m > kMaxM) {
    throw std::invalid_argument("GaloisField: m must be in [2,16], got " +
                                std::to_string(m));
  }
  size_ = 1u << m;
  if ((primitive_poly_ >> m) != 1u) {
    throw std::invalid_argument(
        "GaloisField: primitive polynomial must have degree exactly m");
  }
  build_tables();
}

void GaloisField::build_tables() {
  const std::uint32_t ord = order();
  exp_.assign(2 * ord, 0);
  log_.assign(size_, 0);

  Element x = 1;
  for (std::uint32_t i = 0; i < ord; ++i) {
    if (i != 0 && x == 1) {
      // alpha's multiplicative order is < 2^m - 1: polynomial not primitive.
      throw std::invalid_argument(
          "GaloisField: polynomial is not primitive over GF(2^m)");
    }
    exp_[i] = x;
    exp_[i + ord] = x;
    log_[x] = i;
    // Multiply by alpha (i.e. by x) and reduce modulo the primitive poly.
    x <<= 1;
    if (x & size_) x ^= primitive_poly_;
  }
  if (exp_[1] != 2 && m_ > 1) {
    // alpha is represented by 2 by construction; sanity check.
    throw std::logic_error("GaloisField: table construction is inconsistent");
  }
}

Element GaloisField::div(Element a, Element b) const {
  if (b == 0) throw std::domain_error("GaloisField::div: division by zero");
  if (a == 0) return 0;
  const std::uint32_t ord = order();
  return exp_[(log_[a] + ord - log_[b]) % ord];
}

const Element* GaloisField::dense_mul_table() const {
  if (m_ > 8) return nullptr;
  const Element* table = dense_mul_ptr_.load(std::memory_order_acquire);
  if (table != nullptr) return table;
  const std::lock_guard<std::mutex> lock(dense_mul_build_);
  if (dense_mul_ptr_.load(std::memory_order_relaxed) == nullptr) {
    AlignedVector<Element> dense(std::size_t{1} << (2 * m_), 0);
    for (std::uint32_t a = 1; a < size_; ++a) {
      const std::uint32_t la = log_[a];
      Element* row = dense.data() + (static_cast<std::size_t>(a) << m_);
      for (std::uint32_t b = 1; b < size_; ++b) {
        row[b] = exp_[la + log_[b]];
      }
    }
    dense_mul_ = std::move(dense);
    dense_mul_ptr_.store(dense_mul_.data(), std::memory_order_release);
  }
  return dense_mul_ptr_.load(std::memory_order_relaxed);
}

Element GaloisField::inv(Element a) const {
  if (a == 0) throw std::domain_error("GaloisField::inv: zero has no inverse");
  const std::uint32_t ord = order();
  return exp_[(ord - log_[a]) % ord];
}

Element GaloisField::pow(Element a, long long e) const {
  if (a == 0) {
    if (e == 0) return 1;
    if (e < 0) throw std::domain_error("GaloisField::pow: 0^negative");
    return 0;
  }
  const long long ord = static_cast<long long>(order());
  long long le = static_cast<long long>(log_[a]) * (e % ord);
  le %= ord;
  if (le < 0) le += ord;
  return exp_[static_cast<std::size_t>(le)];
}

Element GaloisField::alpha_pow(long long e) const {
  const long long ord = static_cast<long long>(order());
  long long le = e % ord;
  if (le < 0) le += ord;
  return exp_[static_cast<std::size_t>(le)];
}

std::uint32_t GaloisField::log(Element a) const {
  if (a == 0) throw std::domain_error("GaloisField::log: log of zero");
  if (!contains(a)) throw std::domain_error("GaloisField::log: out of field");
  return log_[a];
}

}  // namespace rsmem::gf
