#include "gf/poly.h"

#include <algorithm>
#include <stdexcept>

namespace rsmem::gf {

Poly Poly::constant(Element c) {
  if (c == 0) return Poly{};
  return Poly{std::vector<Element>{c}};
}

Poly Poly::monomial(Element c, std::size_t degree) {
  if (c == 0) return Poly{};
  std::vector<Element> v(degree + 1, 0);
  v[degree] = c;
  return Poly{std::move(v)};
}

int Poly::degree() const {
  for (std::size_t i = c_.size(); i > 0; --i) {
    if (c_[i - 1] != 0) return static_cast<int>(i - 1);
  }
  return -1;
}

void Poly::set_coeff(std::size_t i, Element v) {
  if (i >= c_.size()) c_.resize(i + 1, 0);
  c_[i] = v;
}

void Poly::normalize() {
  while (!c_.empty() && c_.back() == 0) c_.pop_back();
}

Element Poly::eval(const GaloisField& f, Element x) const {
  Element acc = 0;
  for (std::size_t i = c_.size(); i > 0; --i) {
    acc = GaloisField::add(f.mul(acc, x), c_[i - 1]);
  }
  return acc;
}

Poly Poly::derivative() const {
  if (c_.size() <= 1) return Poly{};
  std::vector<Element> d(c_.size() - 1, 0);
  // d/dx x^i = i * x^{i-1}; in characteristic 2, i*c is c for odd i, 0 else.
  for (std::size_t i = 1; i < c_.size(); ++i) {
    d[i - 1] = (i % 2 == 1) ? c_[i] : 0;
  }
  Poly p{std::move(d)};
  p.normalize();
  return p;
}

Poly Poly::shifted_up(std::size_t s) const {
  if (is_zero()) return Poly{};
  std::vector<Element> v(c_.size() + s, 0);
  std::copy(c_.begin(), c_.end(), v.begin() + static_cast<std::ptrdiff_t>(s));
  return Poly{std::move(v)};
}

Poly Poly::truncated(std::size_t len) const {
  std::vector<Element> v(c_.begin(),
                         c_.begin() + static_cast<std::ptrdiff_t>(
                                          std::min(len, c_.size())));
  Poly p{std::move(v)};
  p.normalize();
  return p;
}

Poly Poly::add(const Poly& a, const Poly& b) {
  std::vector<Element> v(std::max(a.c_.size(), b.c_.size()), 0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = GaloisField::add(a.coeff(i), b.coeff(i));
  }
  Poly p{std::move(v)};
  p.normalize();
  return p;
}

Poly Poly::mul(const GaloisField& f, const Poly& a, const Poly& b) {
  if (a.is_zero() || b.is_zero()) return Poly{};
  std::vector<Element> v(a.c_.size() + b.c_.size() - 1, 0);
  for (std::size_t i = 0; i < a.c_.size(); ++i) {
    if (a.c_[i] == 0) continue;
    for (std::size_t j = 0; j < b.c_.size(); ++j) {
      v[i + j] = GaloisField::add(v[i + j], f.mul(a.c_[i], b.c_[j]));
    }
  }
  Poly p{std::move(v)};
  p.normalize();
  return p;
}

Poly Poly::scale(const GaloisField& f, const Poly& a, Element s) {
  if (s == 0) return Poly{};
  std::vector<Element> v(a.c_.size());
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = f.mul(a.c_[i], s);
  Poly p{std::move(v)};
  p.normalize();
  return p;
}

Poly::DivMod Poly::divmod(const GaloisField& f, const Poly& a, const Poly& b) {
  const int db = b.degree();
  if (db < 0) throw std::domain_error("Poly::divmod: division by zero poly");
  Poly r = a;
  r.normalize();
  int dr = r.degree();
  if (dr < db) return {Poly{}, std::move(r)};

  std::vector<Element> q(static_cast<std::size_t>(dr - db) + 1, 0);
  const Element lead_inv = f.inv(b.coeff(static_cast<std::size_t>(db)));
  while ((dr = r.degree()) >= db) {
    const std::size_t shift = static_cast<std::size_t>(dr - db);
    const Element coef =
        f.mul(r.coeff(static_cast<std::size_t>(dr)), lead_inv);
    q[shift] = coef;
    // r -= coef * x^shift * b
    for (std::size_t i = 0; i <= static_cast<std::size_t>(db); ++i) {
      const Element sub = f.mul(coef, b.coeff(i));
      r.set_coeff(i + shift, GaloisField::sub(r.coeff(i + shift), sub));
    }
    r.normalize();
  }
  Poly qp{std::move(q)};
  qp.normalize();
  return {std::move(qp), std::move(r)};
}

Poly Poly::mod(const GaloisField& f, const Poly& a, const Poly& b) {
  return divmod(f, a, b).remainder;
}

bool operator==(const Poly& a, const Poly& b) {
  const int da = a.degree();
  if (da != b.degree()) return false;
  for (int i = 0; i <= da; ++i) {
    if (a.coeff(static_cast<std::size_t>(i)) !=
        b.coeff(static_cast<std::size_t>(i))) {
      return false;
    }
  }
  return true;
}

}  // namespace rsmem::gf
