// Galois field GF(2^m) arithmetic.
//
// Substrate for the Reed-Solomon codec (src/rs). Supports every field
// GF(2^m) with m in [2, 16], which covers all codes discussed in the paper
// (RS(18,16) and RS(36,16) over GF(2^8)) plus small fields used for
// exhaustive property testing.
//
// Elements are represented as unsigned integers in [0, 2^m): the bits are
// the coefficients of the polynomial representation over GF(2). Addition is
// XOR; multiplication/division/inversion go through log/antilog tables built
// once per field from a primitive polynomial.
#ifndef RSMEM_GF_GALOIS_FIELD_H
#define RSMEM_GF_GALOIS_FIELD_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "gf/aligned.h"

namespace rsmem::gf {

// An element of GF(2^m). Plain integer; operations live on GaloisField so
// that one process can hold many fields of different sizes at once.
using Element = std::uint32_t;

class GaloisField {
 public:
  static constexpr unsigned kMinM = 2;
  static constexpr unsigned kMaxM = 16;

  // Builds GF(2^m) with the default primitive polynomial for m.
  // Throws std::invalid_argument if m is outside [kMinM, kMaxM].
  explicit GaloisField(unsigned m);

  // Builds GF(2^m) from an explicit primitive polynomial, given with the
  // leading x^m term included (e.g. 0x11D for the usual GF(2^8)).
  // Throws std::invalid_argument if the polynomial is not primitive over
  // GF(2^m) (detected while building the tables).
  GaloisField(unsigned m, std::uint32_t primitive_poly);

  unsigned m() const { return m_; }
  // Number of field elements, 2^m.
  std::uint32_t size() const { return size_; }
  // Multiplicative order, 2^m - 1.
  std::uint32_t order() const { return size_ - 1; }
  std::uint32_t primitive_poly() const { return primitive_poly_; }

  bool contains(Element a) const { return a < size_; }

  // Addition and subtraction coincide in characteristic 2.
  static Element add(Element a, Element b) { return a ^ b; }
  static Element sub(Element a, Element b) { return a ^ b; }

  Element mul(Element a, Element b) const {
    if (a == 0 || b == 0) return 0;
    return exp_[log_[a] + log_[b]];
  }

  // Throws std::domain_error on division by zero.
  Element div(Element a, Element b) const;

  // Multiplicative inverse. Throws std::domain_error for zero.
  Element inv(Element a) const;

  // a^e for a signed exponent (0^0 == 1 by convention; 0^e == 0 for e > 0;
  // throws std::domain_error for 0^e with e < 0).
  Element pow(Element a, long long e) const;

  // alpha^e where alpha is the primitive element (the root of the primitive
  // polynomial, i.e. the element with integer representation 2).
  Element alpha_pow(long long e) const;

  // Discrete log base alpha, defined for non-zero elements in [0, order).
  // Throws std::domain_error for zero.
  std::uint32_t log(Element a) const;

  // Default primitive polynomial used for GF(2^m).
  static std::uint32_t default_primitive_poly(unsigned m);

  // Dense 2^m x 2^m multiplication table for m <= 8, built lazily on first
  // request (thread-safe; at most one build per field instance) and cached
  // for the lifetime of the field. Entry (a << m) | b holds a*b with no
  // zero branch and no log/exp indirection; the RS decoder fast path reads
  // it directly in its inner loops. Returns nullptr for m > 8, where the
  // table would be prohibitively large. The lazy build keeps construction
  // cheap for the many short-lived fields the simulators create.
  const Element* dense_mul_table() const;

 private:
  void build_tables();

  unsigned m_;
  std::uint32_t size_;
  std::uint32_t primitive_poly_;
  // exp_ has 2*(size-1) entries so mul can skip the mod(order) reduction.
  std::vector<Element> exp_;
  std::vector<std::uint32_t> log_;
  // Lazily built dense product table (see dense_mul_table()). 64-byte
  // aligned so every row the SIMD table builders read starts on a cache
  // line. The mutex and atomic make the field non-copyable, which nothing
  // relies on.
  mutable AlignedVector<Element> dense_mul_;
  mutable std::atomic<const Element*> dense_mul_ptr_{nullptr};
  mutable std::mutex dense_mul_build_;
};

}  // namespace rsmem::gf

#endif  // RSMEM_GF_GALOIS_FIELD_H
