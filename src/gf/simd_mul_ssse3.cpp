// SSSE3 split-nibble GF(2^m) kernels: PSHUFB over 16-byte vectors.
//
// Compiled with -mssse3 (set per-file in src/CMakeLists.txt); only reached
// through the dispatcher after __builtin_cpu_supports("ssse3"), so no other
// translation unit ever inherits the ISA requirement.
#include "gf/simd_mul.h"

#if defined(RSMEM_HAVE_SSSE3)

#include <tmmintrin.h>

namespace rsmem::gf::simd {

namespace {

void ssse3_mul_const_acc(std::uint8_t* dst, const std::uint8_t* src,
                         const MulTables& t, std::size_t len) {
  if (t.c == 0) return;
  const __m128i tlo =
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i thi =
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i lo = _mm_and_si128(v, mask);
    // Per-byte >> 4: shift 16-bit lanes then clear the bits that crossed.
    const __m128i hi = _mm_and_si128(_mm_srli_epi16(v, 4), mask);
    const __m128i prod =
        _mm_xor_si128(_mm_shuffle_epi8(tlo, lo), _mm_shuffle_epi8(thi, hi));
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, prod));
  }
  for (; i < len; ++i) dst[i] ^= mul_one(t, src[i]);
}

void ssse3_xor_acc(std::uint8_t* dst, const std::uint8_t* src,
                   std::size_t len) {
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, s));
  }
  for (; i < len; ++i) dst[i] ^= src[i];
}

void ssse3_mul_rows_acc(std::uint8_t* dst, std::size_t dst_stride,
                        const std::uint8_t* src, const MulTables* tables,
                        std::size_t rows, std::size_t len) {
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    // The nibble split is shared by every row of this vector step.
    const __m128i lo = _mm_and_si128(v, mask);
    const __m128i hi = _mm_and_si128(_mm_srli_epi16(v, 4), mask);
    for (std::size_t r = 0; r < rows; ++r) {
      if (tables[r].c == 0) continue;
      const __m128i tlo =
          _mm_load_si128(reinterpret_cast<const __m128i*>(tables[r].lo));
      const __m128i thi =
          _mm_load_si128(reinterpret_cast<const __m128i*>(tables[r].hi));
      const __m128i prod =
          _mm_xor_si128(_mm_shuffle_epi8(tlo, lo), _mm_shuffle_epi8(thi, hi));
      std::uint8_t* dp = dst + r * dst_stride + i;
      const __m128i d =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(dp));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dp),
                       _mm_xor_si128(d, prod));
    }
  }
  if (i < len) {
    for (std::size_t r = 0; r < rows; ++r) {
      ssse3_mul_const_acc(dst + r * dst_stride + i, src + i, tables[r],
                          len - i);
    }
  }
}

constexpr Kernels kSsse3Kernels{Backend::kSsse3, "ssse3",
                                &ssse3_mul_const_acc, &ssse3_xor_acc,
                                &ssse3_mul_rows_acc};

}  // namespace

const Kernels* ssse3_kernels() { return &kSsse3Kernels; }

}  // namespace rsmem::gf::simd

#endif  // RSMEM_HAVE_SSSE3
