// Scalar + SWAR GF(2^m) kernels and the runtime backend dispatcher.
//
// The vector-ISA backends live in their own translation units
// (simd_mul_ssse3.cpp / simd_mul_avx2.cpp) compiled with the matching
// per-file -m flags, so the rest of the library never emits an instruction
// the host might not have; this file only ever calls them through function
// pointers after a CPUID check.
#include "gf/simd_mul.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

namespace rsmem::gf::simd {

namespace {

inline std::uint64_t load64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void store64(std::uint8_t* p, std::uint64_t v) {
  std::memcpy(p, &v, sizeof(v));
}

// ---- scalar backend: byte-at-a-time split-nibble lookups ----------------

void scalar_mul_const_acc(std::uint8_t* dst, const std::uint8_t* src,
                          const MulTables& t, std::size_t len) {
  if (t.c == 0) return;
  for (std::size_t i = 0; i < len; ++i) dst[i] ^= mul_one(t, src[i]);
}

void scalar_xor_acc(std::uint8_t* dst, const std::uint8_t* src,
                    std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) dst[i] ^= src[i];
}

// ---- SWAR backend: 8 bytes per step, table-free multiply ----------------
//
// Multiplies every byte lane of a 64-bit word by the constant c with the
// classic shift-and-reduce loop, SWAR-ified: the per-lane carry into x^m is
// isolated with a lane mask and folded back with the primitive polynomial.
// All lane products stay inside their byte (2^m <= 256 and the reduction
// constant fits a byte), so no cross-lane carries are possible.

void swar_mul_const_acc(std::uint8_t* dst, const std::uint8_t* src,
                        const MulTables& t, std::size_t len) {
  if (t.c == 0) return;
  const unsigned m = t.m;
  const std::uint64_t msb_mask =
      0x0101010101010101ULL * (std::uint64_t{1} << (m - 1));
  const std::uint64_t reduce = t.poly & ((std::uint64_t{1} << m) - 1);
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t x = load64(src + i);
    std::uint64_t r = 0;
    for (std::uint8_t c = t.c; c != 0; c >>= 1) {
      if (c & 1) r ^= x;
      const std::uint64_t hi = x & msb_mask;
      x = ((x ^ hi) << 1) ^ ((hi >> (m - 1)) * reduce);
    }
    store64(dst + i, load64(dst + i) ^ r);
  }
  for (; i < len; ++i) dst[i] ^= mul_one(t, src[i]);
}

void swar_xor_acc(std::uint8_t* dst, const std::uint8_t* src,
                  std::size_t len) {
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    store64(dst + i, load64(dst + i) ^ load64(src + i));
  }
  for (; i < len; ++i) dst[i] ^= src[i];
}

constexpr Kernels kScalarKernels{Backend::kScalar, "scalar",
                                 &scalar_mul_const_acc, &scalar_xor_acc};
constexpr Kernels kSwarKernels{Backend::kSwar, "swar", &swar_mul_const_acc,
                               &swar_xor_acc};

// ---- dispatch -----------------------------------------------------------

bool cpu_supports(Backend b) {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  if (b == Backend::kSsse3) return __builtin_cpu_supports("ssse3") != 0;
  if (b == Backend::kAvx2) return __builtin_cpu_supports("avx2") != 0;
  if (b == Backend::kGfni) {
    // The kernels use the 512-bit form plus VL 256/128-bit tail steps, so
    // GFNI alone (as shipped on some SSE-only parts) is not enough.
    return __builtin_cpu_supports("gfni") != 0 &&
           __builtin_cpu_supports("avx512f") != 0 &&
           __builtin_cpu_supports("avx512bw") != 0 &&
           __builtin_cpu_supports("avx512vl") != 0;
  }
#endif
  if (b == Backend::kSsse3 || b == Backend::kAvx2 || b == Backend::kGfni) {
    return false;
  }
  return true;
}

const Kernels* kernels_for(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return scalar_kernels();
    case Backend::kSwar:
      return swar_kernels();
    case Backend::kSsse3:
      return ssse3_kernels();
    case Backend::kAvx2:
      return avx2_kernels();
    case Backend::kGfni:
      return gfni_kernels();
  }
  return nullptr;
}

// Parses RSMEM_GF_BACKEND; returns true and sets `out` on a recognized
// explicit backend name, false for unset/"auto"/unrecognized.
bool env_backend(Backend& out) {
  const char* env = std::getenv("RSMEM_GF_BACKEND");
  if (env == nullptr || *env == '\0') return false;
  const std::string v{env};
  if (v == "scalar") return out = Backend::kScalar, true;
  if (v == "swar") return out = Backend::kSwar, true;
  if (v == "ssse3") return out = Backend::kSsse3, true;
  if (v == "avx2") return out = Backend::kAvx2, true;
  if (v == "gfni") return out = Backend::kGfni, true;
  return false;  // "auto" and unknown values fall through to detection
}

std::atomic<const Kernels*> g_active{nullptr};

}  // namespace

const Kernels* scalar_kernels() { return &kScalarKernels; }
const Kernels* swar_kernels() { return &kSwarKernels; }

#if !defined(RSMEM_HAVE_SSSE3)
const Kernels* ssse3_kernels() { return nullptr; }
#endif
#if !defined(RSMEM_HAVE_AVX2)
const Kernels* avx2_kernels() { return nullptr; }
#endif
#if !defined(RSMEM_HAVE_GFNI)
const Kernels* gfni_kernels() { return nullptr; }
#endif

void build_tables(MulTables& t, const GaloisField& field, Element c) {
  const unsigned m = field.m();
  const std::uint32_t size = field.size();
  t.c = static_cast<std::uint8_t>(c);
  t.m = static_cast<std::uint8_t>(m);
  t.poly = static_cast<std::uint16_t>(field.primitive_poly());
  for (unsigned v = 0; v < 16; ++v) {
    t.lo[v] = v < size ? static_cast<std::uint8_t>(field.mul(c, v)) : 0;
    const unsigned vh = v << 4;
    t.hi[v] = vh < size ? static_cast<std::uint8_t>(field.mul(c, vh)) : 0;
  }
  // GFNI affine matrix: multiplication by c is GF(2)-linear, so column j of
  // the 8x8 bit matrix is c * 2^j (zero for j >= m — valid field elements
  // never carry those bits). GF2P8AFFINEQB wants row i (the input-bit mask
  // of output bit i) in qword byte (7 - i).
  t.affine = 0;
  for (unsigned j = 0; j < 8; ++j) {
    const unsigned bit = 1u << j;
    const Element col = bit < size ? field.mul(c, bit) : 0;
    for (unsigned i = 0; i < 8; ++i) {
      if ((col >> i) & 1u) {
        t.affine |= std::uint64_t{1} << ((7 - i) * 8 + j);
      }
    }
  }
}

bool backend_supported(Backend b) {
  return kernels_for(b) != nullptr && cpu_supports(b);
}

Backend select_backend() {
  Backend requested;
  if (env_backend(requested) && backend_supported(requested)) {
    return requested;
  }
#if defined(RSMEM_DISABLE_SIMD)
  // The nosimd build keeps the scalar path as the default A/B control; the
  // env knob above can still opt into the (always portable) SWAR backend.
  return Backend::kScalar;
#else
  if (backend_supported(Backend::kGfni)) return Backend::kGfni;
  if (backend_supported(Backend::kAvx2)) return Backend::kAvx2;
  if (backend_supported(Backend::kSsse3)) return Backend::kSsse3;
  return Backend::kSwar;
#endif
}

const Kernels& active() {
  const Kernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    // Benign race: every contender computes the same selection.
    k = kernels_for(select_backend());
    g_active.store(k, std::memory_order_release);
  }
  return *k;
}

bool force_backend(Backend b) {
  if (!backend_supported(b)) return false;
  g_active.store(kernels_for(b), std::memory_order_release);
  return true;
}

const char* to_string(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSwar:
      return "swar";
    case Backend::kSsse3:
      return "ssse3";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kGfni:
      return "gfni";
  }
  return "unknown";
}

}  // namespace rsmem::gf::simd
