// SIMD GF(2^m) constant-by-vector kernels (m <= 8) with runtime dispatch.
//
// The RS codec's hot loops (systematic LFSR encoding, syndrome computation,
// Chien search, and the batch encode/decode planes) reduce to two byte-wise
// primitives over field elements packed one-per-byte:
//
//   mul_const_acc:  dst[i] ^= c * src[i]      (constant c, vector src)
//   xor_acc:        dst[i] ^= src[i]
//   mul_rows_acc:   dst_r[i] ^= c_r * src[i]  (many constants, one src row;
//                   optional fused form of a mul_const_acc loop)
//
// Constant-by-vector multiplication uses the ISA-L-style split-nibble
// decomposition: c*x = c*(x & 0xF) ^ c*(x & 0xF0), each factor a 16-entry
// table lookup, which maps 1:1 onto PSHUFB/VPSHUFB. Backends:
//
//   kScalar  byte-at-a-time nibble lookups; the A/B control. When the
//            active backend is kScalar the RS codec bypasses the kernel
//            layer entirely and runs its original scalar loops.
//   kSwar    portable 64-bit SWAR: 8 bytes per step, branch-free
//            shift-and-reduce multiply. No ISA requirements.
//   kSsse3   PSHUFB split-nibble, 16 bytes per step (x86 SSSE3).
//   kAvx2    VPSHUFB split-nibble, 32 bytes per step (x86 AVX2).
//   kGfni    GF2P8AFFINEQB affine multiply, 64 bytes per step (x86 GFNI +
//            AVX-512F/BW, with AVX-512VL 256/128-bit tail steps).
//            Constant-by-x multiplication in GF(2^m) is GF(2)-linear in x,
//            so c*x is one 8x8 bit-matrix transform — one instruction where
//            the PSHUFB backends need two shuffles plus mask/shift/xor.
//
// DISPATCH / ONE-BACKEND-PER-PROCESS RULE: the backend is chosen once, on
// first use, by select_backend() — compile-time gates (RSMEM_DISABLE_SIMD,
// per-arch availability), then the RSMEM_GF_BACKEND environment knob
// (scalar|swar|ssse3|avx2|gfni|auto), then CPUID feature detection, best
// first (gfni > avx2 > ssse3 > swar).
// All threads share the selected kernel table for the life of the process.
// force_backend() exists ONLY for tests and benchmarks that A/B the
// backends in a single process; it is not thread-safe against concurrent
// codec use and must never be called from production code.
//
// Every backend computes bit-identical results: all kernels evaluate exact
// GF(2^m) products, and the exhaustive differential suite
// (tests/test_simd_kernels.cpp) pins each backend against the scalar path
// across vector-width tails and unaligned buffers.
#ifndef RSMEM_GF_SIMD_MUL_H
#define RSMEM_GF_SIMD_MUL_H

#include <cstddef>
#include <cstdint>

#include "gf/aligned.h"
#include "gf/galois_field.h"

namespace rsmem::gf::simd {

enum class Backend : std::uint8_t { kScalar = 0, kSwar, kSsse3, kAvx2, kGfni };

// Every backend, in dispatch preference order (best last). Iteration helper
// for version reporting, the differential suite, and the bench sweeps.
inline constexpr Backend kAllBackends[] = {Backend::kScalar, Backend::kSwar,
                                           Backend::kSsse3, Backend::kAvx2,
                                           Backend::kGfni};

// Split-nibble multiplication tables for one constant c in GF(2^m), m <= 8:
//   lo[v] = c * v          for v in [0, 16)
//   hi[v] = c * (v << 4)   for v with (v << 4) inside the field, else 0
// plus the raw (c, m, poly) triple so the SWAR backend can run its
// table-free shift-and-reduce multiply, and the 8x8 GF(2) bit matrix of
// x -> c*x for the GFNI backend: qword byte (7 - i) holds row i (the mask
// of input bits feeding output bit i, i.e. bit j is set iff bit i of
// c * 2^j is, with columns j >= m zeroed) — exactly the operand layout of
// GF2P8AFFINEQB. 64-byte aligned so a kernel can load all tables from one
// cache line.
struct alignas(kHotPathAlignment) MulTables {
  std::uint8_t lo[16];
  std::uint8_t hi[16];
  std::uint64_t affine = 0;  // GFNI affine matrix of x -> c*x
  std::uint8_t c = 0;
  std::uint8_t m = 0;
  std::uint16_t poly = 0;  // primitive polynomial with the x^m term
};
static_assert(sizeof(MulTables) == kHotPathAlignment,
              "MulTables must occupy exactly one cache line");
static_assert(alignof(MulTables) == kHotPathAlignment,
              "MulTables must be cache-line aligned");

// Fills `t` with the split-nibble tables for constant c over `field`.
// Requires field.m() <= 8 and c inside the field.
void build_tables(MulTables& t, const GaloisField& field, Element c);

// One backend's kernel set. Buffers may be arbitrarily aligned (kernels
// issue unaligned loads/stores); len is in bytes/elements. dst and src must
// not partially overlap (dst == src is allowed for xor_acc-style zeroing
// tricks but the codec never relies on it).
struct Kernels {
  Backend backend = Backend::kScalar;
  const char* name = "scalar";
  // dst[i] ^= c * src[i], i in [0, len)
  void (*mul_const_acc)(std::uint8_t* dst, const std::uint8_t* src,
                        const MulTables& t, std::size_t len) = nullptr;
  // dst[i] ^= src[i], i in [0, len)
  void (*xor_acc)(std::uint8_t* dst, const std::uint8_t* src,
                  std::size_t len) = nullptr;
  // dst[r * dst_stride + i] ^= tables[r].c * src[i] for every row
  // r in [0, rows), i in [0, len). Semantically a mul_const_acc loop over
  // `rows` consecutive MulTables sharing one source row, fused so the
  // source loads (and, on the PSHUFB backends, the nibble extraction) are
  // paid once per vector step instead of once per row — the shape of the
  // batch codec's syndrome/parity sweeps, which call this once per
  // codeword position. OPTIONAL: may be nullptr (kSwar leaves it null);
  // callers must fall back to the mul_const_acc loop. The dst rows must
  // not overlap src or each other.
  void (*mul_rows_acc)(std::uint8_t* dst, std::size_t dst_stride,
                       const std::uint8_t* src, const MulTables* tables,
                       std::size_t rows, std::size_t len) = nullptr;
};

// True if `b` is compiled in AND usable on this host (CPUID-checked for the
// vector backends). kScalar and kSwar are always supported.
bool backend_supported(Backend b);

// The backend select_backend() would pick from compile gates, the
// RSMEM_GF_BACKEND environment knob, and CPUID — without touching the
// process-wide selection.
Backend select_backend();

// The process-wide kernel set, selected once on first call (thread-safe).
const Kernels& active();

// Test/bench-only: swap the active kernel set. Returns false (and leaves
// the selection unchanged) if `b` is unsupported on this host. NOT
// thread-safe against concurrent codec use; see the one-backend-per-process
// rule above.
bool force_backend(Backend b);

const char* to_string(Backend b);

// Scalar reference for one element: c * x via the split-nibble tables.
inline std::uint8_t mul_one(const MulTables& t, std::uint8_t x) {
  return static_cast<std::uint8_t>(t.lo[x & 0xF] ^ t.hi[x >> 4]);
}

// Internal: per-backend kernel tables. kSsse3/kAvx2/kGfni return nullptr
// when the translation unit was not compiled (non-x86, an old compiler, or
// RSMEM_DISABLE_SIMD). A non-null table only proves the backend is compiled
// in — backend_supported() additionally checks the host CPU.
const Kernels* scalar_kernels();
const Kernels* swar_kernels();
const Kernels* ssse3_kernels();
const Kernels* avx2_kernels();
const Kernels* gfni_kernels();

}  // namespace rsmem::gf::simd

#endif  // RSMEM_GF_SIMD_MUL_H
