// AVX2 split-nibble GF(2^m) kernels: VPSHUFB over 32-byte vectors.
//
// Compiled with -mavx2 (set per-file in src/CMakeLists.txt); only reached
// through the dispatcher after __builtin_cpu_supports("avx2"). VPSHUFB
// shuffles within each 128-bit lane, so the 16-entry nibble tables are
// broadcast to both lanes once per call.
#include "gf/simd_mul.h"

#if defined(RSMEM_HAVE_AVX2)

#include <immintrin.h>

namespace rsmem::gf::simd {

namespace {

void avx2_mul_const_acc(std::uint8_t* dst, const std::uint8_t* src,
                        const MulTables& t, std::size_t len) {
  if (t.c == 0) return;
  const __m256i tlo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo)));
  const __m256i thi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi)));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i lo = _mm256_and_si256(v, mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), mask);
    const __m256i prod = _mm256_xor_si256(_mm256_shuffle_epi8(tlo, lo),
                                          _mm256_shuffle_epi8(thi, hi));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, prod));
  }
  if (i + 16 <= len) {
    const __m128i tlo128 =
        _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
    const __m128i thi128 =
        _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
    const __m128i mask128 = _mm_set1_epi8(0x0F);
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i lo = _mm_and_si128(v, mask128);
    const __m128i hi = _mm_and_si128(_mm_srli_epi16(v, 4), mask128);
    const __m128i prod = _mm_xor_si128(_mm_shuffle_epi8(tlo128, lo),
                                       _mm_shuffle_epi8(thi128, hi));
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, prod));
    i += 16;
  }
  for (; i < len; ++i) dst[i] ^= mul_one(t, src[i]);
}

void avx2_xor_acc(std::uint8_t* dst, const std::uint8_t* src,
                  std::size_t len) {
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, s));
  }
  for (; i < len; ++i) dst[i] ^= src[i];
}

void avx2_mul_rows_acc(std::uint8_t* dst, std::size_t dst_stride,
                       const std::uint8_t* src, const MulTables* tables,
                       std::size_t rows, std::size_t len) {
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    // The nibble split is shared by every row of this vector step.
    const __m256i lo = _mm256_and_si256(v, mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), mask);
    for (std::size_t r = 0; r < rows; ++r) {
      if (tables[r].c == 0) continue;
      const __m256i tlo = _mm256_broadcastsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(tables[r].lo)));
      const __m256i thi = _mm256_broadcastsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(tables[r].hi)));
      const __m256i prod = _mm256_xor_si256(_mm256_shuffle_epi8(tlo, lo),
                                            _mm256_shuffle_epi8(thi, hi));
      std::uint8_t* dp = dst + r * dst_stride + i;
      const __m256i d =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dp));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dp),
                          _mm256_xor_si256(d, prod));
    }
  }
  if (i < len) {
    for (std::size_t r = 0; r < rows; ++r) {
      avx2_mul_const_acc(dst + r * dst_stride + i, src + i, tables[r],
                         len - i);
    }
  }
}

constexpr Kernels kAvx2Kernels{Backend::kAvx2, "avx2", &avx2_mul_const_acc,
                               &avx2_xor_acc, &avx2_mul_rows_acc};

}  // namespace

const Kernels* avx2_kernels() { return &kAvx2Kernels; }

}  // namespace rsmem::gf::simd

#endif  // RSMEM_HAVE_AVX2
