// 64-byte-aligned storage for the GF/RS hot-path tables and planes.
//
// Every table the SIMD kernel layer (gf/simd_mul.h) streams through — the
// dense multiplication table, the per-code nibble/constant tables, and the
// DecoderWorkspace batch planes — is allocated through AlignedAlloc64 so
// its base address sits on a cache-line (and maximal-vector) boundary.
// Kernels still use unaligned loads for caller-provided buffers; the
// alignment here removes split-line traffic on the buffers we own.
#ifndef RSMEM_GF_ALIGNED_H
#define RSMEM_GF_ALIGNED_H

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace rsmem::gf {

// Cache-line / widest-vector alignment used throughout the codec hot path.
inline constexpr std::size_t kHotPathAlignment = 64;
static_assert((kHotPathAlignment & (kHotPathAlignment - 1)) == 0,
              "hot-path alignment must be a power of two");
static_assert(kHotPathAlignment >= 64,
              "hot-path tables are pinned to at least a cache line");

// Minimal C++17 allocator that over-aligns every allocation to
// kHotPathAlignment. Equality is stateless: any two instances compare equal.
template <typename T>
struct AlignedAlloc64 {
  using value_type = T;
  static_assert(alignof(T) <= kHotPathAlignment,
                "element type over-aligned beyond the hot-path boundary");

  AlignedAlloc64() noexcept = default;
  template <typename U>
  AlignedAlloc64(const AlignedAlloc64<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{kHotPathAlignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kHotPathAlignment});
  }

  template <typename U>
  bool operator==(const AlignedAlloc64<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAlloc64<U>&) const noexcept {
    return false;
  }
};

// 64-byte-aligned vector: used for the GF dense multiplication table, the
// per-code SIMD constant tables, and the workspace SoA planes.
template <typename T>
using AlignedVector = std::vector<T, AlignedAlloc64<T>>;

// Rounds a byte stride up so consecutive rows keep the base alignment.
inline constexpr std::size_t aligned_stride(std::size_t bytes) {
  return (bytes + kHotPathAlignment - 1) & ~(kHotPathAlignment - 1);
}

inline bool is_hot_path_aligned(const void* p) {
  return (reinterpret_cast<std::uintptr_t>(p) & (kHotPathAlignment - 1)) == 0;
}

}  // namespace rsmem::gf

#endif  // RSMEM_GF_ALIGNED_H
