// Polynomials over GF(2^m).
//
// Dense coefficient representation, lowest-degree coefficient first:
// p(x) = c[0] + c[1] x + c[2] x^2 + ...
// The zero polynomial is represented by an empty coefficient vector (or any
// all-zero vector; normalize() trims trailing zeros).
//
// All operations take the field explicitly so a Poly is a plain value type
// and can be freely copied between contexts sharing the same field.
#ifndef RSMEM_GF_POLY_H
#define RSMEM_GF_POLY_H

#include <cstddef>
#include <span>
#include <vector>

#include "gf/galois_field.h"

namespace rsmem::gf {

class Poly {
 public:
  Poly() = default;
  explicit Poly(std::vector<Element> coeffs) : c_(std::move(coeffs)) {}
  explicit Poly(std::span<const Element> coeffs)
      : c_(coeffs.begin(), coeffs.end()) {}

  // The constant polynomial c.
  static Poly constant(Element c);
  // The monomial c * x^degree.
  static Poly monomial(Element c, std::size_t degree);
  static Poly zero() { return Poly{}; }
  static Poly one() { return constant(1); }

  // Degree of the polynomial; -1 for the zero polynomial.
  int degree() const;
  bool is_zero() const { return degree() < 0; }

  // Coefficient of x^i (0 beyond the stored length).
  Element coeff(std::size_t i) const { return i < c_.size() ? c_[i] : 0; }
  void set_coeff(std::size_t i, Element v);

  const std::vector<Element>& coeffs() const { return c_; }

  // Removes trailing zero coefficients.
  void normalize();

  // Horner evaluation p(x).
  Element eval(const GaloisField& f, Element x) const;

  // Formal derivative; over GF(2^m) this keeps odd-degree terms shifted down.
  Poly derivative() const;

  // p(x) * x^s.
  Poly shifted_up(std::size_t s) const;

  // Truncation: p(x) mod x^len (keeps coefficients 0..len-1).
  Poly truncated(std::size_t len) const;

  static Poly add(const Poly& a, const Poly& b);
  static Poly mul(const GaloisField& f, const Poly& a, const Poly& b);
  static Poly scale(const GaloisField& f, const Poly& a, Element s);

  // Euclidean division a = q*b + r; returns {q, r}.
  // Throws std::domain_error if b is zero.
  struct DivMod;
  static DivMod divmod(const GaloisField& f, const Poly& a, const Poly& b);
  static Poly mod(const GaloisField& f, const Poly& a, const Poly& b);

  friend bool operator==(const Poly& a, const Poly& b);

 private:
  std::vector<Element> c_;
};

bool operator==(const Poly& a, const Poly& b);

struct Poly::DivMod {
  Poly quotient;
  Poly remainder;
};

}  // namespace rsmem::gf

#endif  // RSMEM_GF_POLY_H
