// GFNI GF(2^m) kernels: GF2P8AFFINEQB over 64-byte vectors.
//
// Compiled with -mgfni -mavx512f -mavx512bw -mavx512vl (set per-file in
// src/CMakeLists.txt); only reached through the dispatcher after
// __builtin_cpu_supports() confirms gfni+avx512f/bw/vl. Constant-by-x
// multiplication in GF(2^m) is GF(2)-linear in x, so c*x is one 8x8
// bit-matrix transform per byte: the matrix (MulTables::affine, built by
// build_tables) has column j = c * 2^j with columns j >= m zeroed, which
// makes the affine product bit-identical to the split-nibble tables for
// every valid field element. The main loop runs 64 bytes per step on zmm
// registers; AVX-512VL supplies 256- and 128-bit tail steps.
#include "gf/simd_mul.h"

#if defined(RSMEM_HAVE_GFNI)

#include <immintrin.h>

namespace rsmem::gf::simd {

namespace {

void gfni_mul_const_acc(std::uint8_t* dst, const std::uint8_t* src,
                        const MulTables& t, std::size_t len) {
  if (t.c == 0) return;
  const __m512i mat512 = _mm512_set1_epi64(static_cast<long long>(t.affine));
  std::size_t i = 0;
  for (; i + 64 <= len; i += 64) {
    const __m512i v = _mm512_loadu_si512(src + i);
    const __m512i prod = _mm512_gf2p8affine_epi64_epi8(v, mat512, 0);
    const __m512i d = _mm512_loadu_si512(dst + i);
    _mm512_storeu_si512(dst + i, _mm512_xor_si512(d, prod));
  }
  if (i + 32 <= len) {
    const __m256i mat256 = _mm512_castsi512_si256(mat512);
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i prod = _mm256_gf2p8affine_epi64_epi8(v, mat256, 0);
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, prod));
    i += 32;
  }
  if (i + 16 <= len) {
    const __m128i mat128 = _mm512_castsi512_si128(mat512);
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i prod = _mm_gf2p8affine_epi64_epi8(v, mat128, 0);
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, prod));
    i += 16;
  }
  for (; i < len; ++i) dst[i] ^= mul_one(t, src[i]);
}

void gfni_xor_acc(std::uint8_t* dst, const std::uint8_t* src,
                  std::size_t len) {
  std::size_t i = 0;
  for (; i + 64 <= len; i += 64) {
    const __m512i s = _mm512_loadu_si512(src + i);
    const __m512i d = _mm512_loadu_si512(dst + i);
    _mm512_storeu_si512(dst + i, _mm512_xor_si512(d, s));
  }
  if (i + 32 <= len) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, s));
    i += 32;
  }
  for (; i < len; ++i) dst[i] ^= src[i];
}

void gfni_mul_rows_acc(std::uint8_t* dst, std::size_t dst_stride,
                       const std::uint8_t* src, const MulTables* tables,
                       std::size_t rows, std::size_t len) {
  std::size_t i = 0;
  for (; i + 64 <= len; i += 64) {
    const __m512i v = _mm512_loadu_si512(src + i);
    for (std::size_t r = 0; r < rows; ++r) {
      if (tables[r].c == 0) continue;
      const __m512i mat =
          _mm512_set1_epi64(static_cast<long long>(tables[r].affine));
      std::uint8_t* d = dst + r * dst_stride + i;
      const __m512i prod = _mm512_gf2p8affine_epi64_epi8(v, mat, 0);
      _mm512_storeu_si512(d,
                          _mm512_xor_si512(_mm512_loadu_si512(d), prod));
    }
  }
  if (i < len) {
    // Sub-vector tail: the per-row kernel already handles 256/128-bit and
    // scalar remainders.
    for (std::size_t r = 0; r < rows; ++r) {
      gfni_mul_const_acc(dst + r * dst_stride + i, src + i, tables[r],
                         len - i);
    }
  }
}

constexpr Kernels kGfniKernels{Backend::kGfni, "gfni", &gfni_mul_const_acc,
                               &gfni_xor_acc, &gfni_mul_rows_acc};

}  // namespace

const Kernels* gfni_kernels() { return &kGfniKernels; }

}  // namespace rsmem::gf::simd

#endif  // RSMEM_HAVE_GFNI
