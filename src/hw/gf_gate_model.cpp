#include "hw/gf_gate_model.h"

#include <bit>
#include <stdexcept>

namespace rsmem::hw {

void GfGateModel::validate() const {
  if (m < 2 || m > 16) {
    throw std::invalid_argument("GfGateModel: m must be in [2,16]");
  }
  if (gates_per_flop <= 0.0) {
    throw std::invalid_argument("GfGateModel: gates_per_flop must be > 0");
  }
}

double GfGateModel::adder_gates() const {
  validate();
  return static_cast<double>(m);
}

double GfGateModel::multiplier_gates() const {
  validate();
  const double md = m;
  return md * md /*AND2*/ + (md * md - 1.0) /*XOR2*/;
}

double GfGateModel::const_multiplier_gates() const {
  validate();
  // Constant multiplication is an XOR network over the fixed Mastrovito
  // matrix; on average half the matrix entries are 1.
  const double md = m;
  return md * md / 2.0;
}

unsigned GfGateModel::itoh_tsujii_multiplications(unsigned m) {
  if (m < 2) throw std::invalid_argument("itoh_tsujii: m must be >= 2");
  // Addition-chain exponentiation to a^(2^(m-1) - 1):
  // floor(log2(m-1)) + popcount(m-1) - 1 multiplications.
  const unsigned e = m - 1;
  const unsigned log2e = static_cast<unsigned>(std::bit_width(e) - 1);
  return log2e + static_cast<unsigned>(std::popcount(e)) - 1;
}

double GfGateModel::inverter_gates() const {
  validate();
  // Unrolled Itoh-Tsujii: multiplications dominate (squarings are cheap
  // XOR networks, ~m^2/4 gates each, m-1 of them).
  const double mults = itoh_tsujii_multiplications(m);
  const double md = m;
  return mults * multiplier_gates() + (md - 1.0) * md * md / 4.0;
}

double GfGateModel::register_gates() const {
  validate();
  return static_cast<double>(m) * gates_per_flop;
}

}  // namespace rsmem::hw
