#include "hw/codec_hw_model.h"

#include <stdexcept>

namespace rsmem::hw {

namespace {

void validate_code(unsigned n, unsigned k, unsigned m) {
  if (k == 0 || k >= n) {
    throw std::invalid_argument("codec_hw_model: require 0 < k < n");
  }
  if (m < 2 || m > 16 || n > (1u << m) - 1u) {
    throw std::invalid_argument("codec_hw_model: require n <= 2^m - 1");
  }
}

}  // namespace

HwEstimate encoder_estimate(unsigned n, unsigned k, unsigned m,
                            const CodecHwOptions& options) {
  validate_code(n, k, m);
  GfGateModel gf = options.gf;
  gf.m = m;
  gf.validate();
  const double parity = static_cast<double>(n - k);

  HwEstimate e;
  e.latency_cycles = static_cast<double>(k);  // symbol-serial feed
  // LFSR: one constant multiplier (generator coefficient), adder and symbol
  // register per parity stage, plus the feedback adder.
  e.gate_count = parity * (gf.const_multiplier_gates() + gf.adder_gates() +
                           gf.register_gates()) +
                 gf.adder_gates();
  e.register_bits = parity * m;
  e.multiplier_count = 0.0;  // constants only
  return e;
}

DecodeLatencyBreakdown decode_latency_breakdown(
    unsigned n, unsigned k, unsigned m, const CodecHwOptions& options) {
  validate_code(n, k, m);
  DecodeLatencyBreakdown b;
  const double two_t = static_cast<double>(n - k);
  b.syndrome = static_cast<double>(n);
  b.key_equation = options.erasure_support ? 2.0 * two_t : two_t;
  b.chien_forney = static_cast<double>(n);
  b.pipeline = static_cast<double>(options.pipeline_overhead_cycles);
  return b;
}

HwEstimate decoder_estimate(unsigned n, unsigned k, unsigned m,
                            const CodecHwOptions& options) {
  validate_code(n, k, m);
  GfGateModel gf = options.gf;
  gf.m = m;
  gf.validate();
  const double two_t = static_cast<double>(n - k);
  const double t = two_t / 2.0;
  const double mux = options.mux_gates_per_bit * m;

  HwEstimate e;
  e.latency_cycles = decode_latency_breakdown(n, k, m, options).total();

  // Stage 1: syndromes -- 2t Horner cells (const-mult + adder + register).
  const double syndrome_gates =
      two_t * (gf.const_multiplier_gates() + gf.adder_gates() +
               gf.register_gates());
  const double syndrome_regs = two_t * m;

  // Stage 2: RiBM -- 3t+1 PEs with 2 multipliers, 1 adder, 2 muxes and 2
  // registers each; erasure support adds an initialization multiplier path.
  const double pe_count = 3.0 * t + 1.0;
  const double pe_gates = 2.0 * gf.multiplier_gates() + gf.adder_gates() +
                          2.0 * mux + 2.0 * gf.register_gates();
  double keyeq_gates = pe_count * pe_gates;
  double keyeq_mults = pe_count * 2.0;
  if (options.erasure_support) {
    keyeq_gates += gf.multiplier_gates() + two_t * gf.register_gates();
    keyeq_mults += 1.0;
  }
  const double keyeq_regs = pe_count * 2.0 * m +
                            (options.erasure_support ? two_t * m : 0.0);

  // Stage 3: Chien/Forney -- (2t+1) locator + t evaluator constant-mult
  // cells with registers, one inverter, one output multiplier.
  const double chien_cells = (two_t + 1.0) + t;
  const double chien_gates =
      chien_cells * (gf.const_multiplier_gates() + gf.register_gates() +
                     gf.adder_gates()) +
      gf.inverter_gates() + gf.multiplier_gates();
  const double chien_regs = chien_cells * m;

  e.gate_count = syndrome_gates + keyeq_gates + chien_gates;
  e.register_bits = syndrome_regs + keyeq_regs + chien_regs;
  e.multiplier_count = keyeq_mults + 1.0;
  return e;
}

}  // namespace rsmem::hw
