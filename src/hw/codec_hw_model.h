// Structural latency/area model of a symbol-serial RS codec pipeline.
//
// Architecture modeled (the standard shape of FPGA RS codec IP, including
// the core the paper cites):
//
//   encoder:  (n-k)-stage LFSR.        latency k cycles (symbol-serial),
//             area (n-k) x (const-mult + adder + register).
//
//   decoder:  three pipeline stages, symbol-serial:
//     1. syndrome unit      : n cycles;  2t Horner cells
//                             (const-mult + adder + register each).
//     2. key-equation solver: reformulated inversionless Berlekamp-Massey
//                             (RiBM), one iteration per cycle -> 2t cycles
//                             (+2t more when erasure initialization is
//                             enabled); 3t+1 processing elements, each with
//                             2 multipliers, 1 adder, muxes and 2 registers.
//     3. Chien/Forney unit  : n cycles; (2t+1) + t constant-multiplier
//                             cells, one field inverter, output registers.
//
//   decode latency = n + 2t(+2t) + n + pipeline_overhead cycles -- the same
//   affine 'a*n + b*(n-k)' structure as the paper's fitted
//   Td ~= 3n + 10(n-k), which this model exists to cross-check.
#ifndef RSMEM_HW_CODEC_HW_MODEL_H
#define RSMEM_HW_CODEC_HW_MODEL_H

#include "hw/gf_gate_model.h"

namespace rsmem::hw {

struct CodecHwOptions {
  GfGateModel gf{};
  bool erasure_support = true;   // erasure-locator init in the key equation
  double mux_gates_per_bit = 3.0;
  unsigned pipeline_overhead_cycles = 4;  // stage handoff registers
};

struct HwEstimate {
  double latency_cycles = 0.0;
  double gate_count = 0.0;       // combinational + register gate equivalents
  double register_bits = 0.0;
  double multiplier_count = 0.0;  // full multipliers (area drivers)
};

// Throws std::invalid_argument for invalid (n, k, m).
HwEstimate encoder_estimate(unsigned n, unsigned k, unsigned m,
                            const CodecHwOptions& options = {});
HwEstimate decoder_estimate(unsigned n, unsigned k, unsigned m,
                            const CodecHwOptions& options = {});

// Per-stage decode latency breakdown (cycles), for reporting.
struct DecodeLatencyBreakdown {
  double syndrome = 0.0;
  double key_equation = 0.0;
  double chien_forney = 0.0;
  double pipeline = 0.0;
  double total() const {
    return syndrome + key_equation + chien_forney + pipeline;
  }
};
DecodeLatencyBreakdown decode_latency_breakdown(
    unsigned n, unsigned k, unsigned m, const CodecHwOptions& options = {});

}  // namespace rsmem::hw

#endif  // RSMEM_HW_CODEC_HW_MODEL_H
