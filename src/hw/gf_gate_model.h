// Gate-level cost models for GF(2^m) arithmetic primitives.
//
// The paper's Section 6 uses two FITTED hardware numbers from a codec IP
// core: decode latency Td ~= 3n + 10(n-k) cycles and area "almost linearly
// dependent on m and the number of check symbols". This module provides the
// structural basis to DERIVE such numbers: standard-basis combinational
// operator costs in 2-input-gate equivalents,
//   * adder:      m XOR2 gates (bitwise xor),
//   * multiplier: Mastrovito standard-basis, ~m^2 AND2 + (m^2 - 1) XOR2
//                 (plus reduction xors absorbed in the m^2 term),
//   * constant multiplier: ~m^2/2 XOR2 on average (half the matrix is 0),
//   * inverter:   Itoh-Tsujii, ~floor(log2(m-1)) + popcount(m-1) - 1 field
//                 multiplications worth of logic when unrolled,
//   * register:   per-bit flop cost in gate equivalents.
// These are the textbook estimates used in RS codec area studies; only
// ratios between configurations matter downstream.
#ifndef RSMEM_HW_GF_GATE_MODEL_H
#define RSMEM_HW_GF_GATE_MODEL_H

namespace rsmem::hw {

struct GfGateModel {
  unsigned m = 8;
  double gates_per_flop = 6.0;  // gate equivalents of one register bit

  // Throws std::invalid_argument from the constructor-free validate().
  void validate() const;

  double adder_gates() const;            // a + b
  double multiplier_gates() const;       // a * b, full parallel
  double const_multiplier_gates() const; // a * constant (Chien cells)
  double inverter_gates() const;         // a^-1, unrolled Itoh-Tsujii
  double register_gates() const;         // one m-bit symbol register

  // Number of field multiplications in an Itoh-Tsujii inversion chain.
  static unsigned itoh_tsujii_multiplications(unsigned m);
};

}  // namespace rsmem::hw

#endif  // RSMEM_HW_GF_GATE_MODEL_H
