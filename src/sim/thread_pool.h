// A small fixed-size worker pool for CPU-bound simulation campaigns.
//
// Tasks are closures executed FIFO by `threads` workers. The pool makes no
// ordering guarantee between tasks running on different workers, so callers
// that need deterministic results must make tasks independent and combine
// their outputs in a fixed order (see analysis/campaign.h, which does
// exactly that for Monte-Carlo shards).
#ifndef RSMEM_SIM_THREAD_POOL_H
#define RSMEM_SIM_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rsmem::sim {

class ThreadPool {
 public:
  // Spawns `threads` workers; 0 selects the hardware concurrency (at least
  // 1 even when the runtime cannot report it).
  explicit ThreadPool(unsigned threads = 0);
  // Joins the workers after draining already-submitted tasks.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Enqueues a task. A task MAY throw: the exception is captured in the
  // worker (the pool keeps running) and the FIRST captured exception is
  // rethrown to the caller from the next wait_idle(). Callers that need a
  // specific exception-selection order (e.g. first by task index) should
  // still wrap tasks and pick their own winner, as analysis::run_chunked
  // does for campaign shards.
  void submit(std::function<void()> task);

  // Blocks until every submitted task has finished running, then rethrows
  // the first exception captured from a task since the previous wait_idle()
  // (if any). The pool remains usable after the rethrow.
  void wait_idle();

  // 0 -> std::thread::hardware_concurrency(), clamped to >= 1.
  static unsigned resolve(unsigned requested);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_idle_;
  std::size_t in_flight_ = 0;  // queued + currently running tasks
  std::exception_ptr first_exception_;  // first task throw since last wait
  bool stop_ = false;
};

}  // namespace rsmem::sim

#endif  // RSMEM_SIM_THREAD_POOL_H
