// A small fixed-size worker pool for CPU-bound simulation campaigns.
//
// Tasks are closures executed FIFO by `threads` workers. The pool makes no
// ordering guarantee between tasks running on different workers, so callers
// that need deterministic results must make tasks independent and combine
// their outputs in a fixed order (see analysis/campaign.h, which does
// exactly that for Monte-Carlo shards).
#ifndef RSMEM_SIM_THREAD_POOL_H
#define RSMEM_SIM_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rsmem::sim {

class ThreadPool {
 public:
  // Spawns `threads` workers; 0 selects the hardware concurrency (at least
  // 1 even when the runtime cannot report it).
  explicit ThreadPool(unsigned threads = 0);
  // Joins the workers after draining already-submitted tasks.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Enqueues a task. Tasks must not throw (wrap and capture exceptions on
  // the caller's side; analysis::run_chunked does this for campaigns).
  void submit(std::function<void()> task);

  // Blocks until every submitted task has finished running.
  void wait_idle();

  // 0 -> std::thread::hardware_concurrency(), clamped to >= 1.
  static unsigned resolve(unsigned requested);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_idle_;
  std::size_t in_flight_ = 0;  // queued + currently running tasks
  bool stop_ = false;
};

}  // namespace rsmem::sim

#endif  // RSMEM_SIM_THREAD_POOL_H
