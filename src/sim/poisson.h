// Homogeneous Poisson arrival process helper.
//
// SEUs and permanent faults in the paper arrive as independent Poisson
// processes (per bit / per symbol). This wrapper draws successive
// exponential inter-arrival times from a dedicated RNG stream.
#ifndef RSMEM_SIM_POISSON_H
#define RSMEM_SIM_POISSON_H

#include <vector>

#include "sim/rng.h"

namespace rsmem::sim {

class PoissonProcess {
 public:
  // `rate` is per unit time (>= 0). A zero-rate process never fires.
  PoissonProcess(double rate, Rng rng);

  double rate() const { return rate_; }

  // Time of the next arrival strictly after `now`; +infinity if rate == 0.
  double next_after(double now);

  // All arrival times in (t0, t1], in order.
  std::vector<double> arrivals_in(double t0, double t1);

 private:
  double rate_;
  Rng rng_;
};

}  // namespace rsmem::sim

#endif  // RSMEM_SIM_POISSON_H
