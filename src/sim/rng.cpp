#include "sim/rng.h"

#include <cmath>
#include <stdexcept>

namespace rsmem::sim {

namespace {

// SplitMix64 finalizer: decorrelates nearby seeds.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) : root_seed_(seed) {}

std::mt19937_64& Rng::engine() {
  if (!engine_) engine_.emplace(mix(root_seed_));
  return *engine_;
}

Rng Rng::split(std::uint64_t stream_id) const {
  return Rng{mix(root_seed_ ^ mix(stream_id + 1))};
}

double Rng::uniform() {
  return static_cast<double>(engine()() >> 11) * 0x1.0p-53;
}

double Rng::uniform_positive() {
  // (0, 1]: complements uniform() which is [0, 1).
  return 1.0 - uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::uniform_int: bound == 0");
  auto& eng = engine();
  if ((bound & (bound - 1)) == 0) {
    // Power-of-two bound: bit-identical to the general path below (for
    // 2^64 mod bound == 0 its limit is 2^64 - bound and x % bound is
    // x & (bound - 1)) without the two 64-bit divisions — this is the
    // symbol-draw path for every power-of-two field (m = 8 included), hot
    // in Monte-Carlo dataword generation.
    const std::uint64_t limit = ~std::uint64_t{0} - (bound - 1);
    std::uint64_t x;
    do {
      x = eng();
    } while (x >= limit);
    return x & (bound - 1);
  }
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t x;
  do {
    x = eng();
  } while (x >= limit);
  return x % bound;
}

bool Rng::bernoulli(double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("Rng::bernoulli: p outside [0,1]");
  }
  return uniform() < p;
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) {
    throw std::invalid_argument("Rng::exponential: rate must be > 0");
  }
  return -std::log(uniform_positive()) / rate;
}

std::uint64_t Rng::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("Rng::poisson: negative mean");
  // Chunk large means so the product inversion below never underflows.
  std::uint64_t count = 0;
  while (mean > 500.0) {
    // A Poisson(mean) is the sum of independent Poisson(500) + Poisson(rest).
    count += poisson(500.0);
    mean -= 500.0;
  }
  const double limit = std::exp(-mean);
  double product = uniform_positive();
  while (product > limit) {
    product *= uniform_positive();
    ++count;
  }
  return count;
}

}  // namespace rsmem::sim
