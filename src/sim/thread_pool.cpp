#include "sim/thread_pool.h"

#include <utility>

namespace rsmem::sim {

unsigned ThreadPool::resolve(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1u;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = resolve(threads);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_exception_) {
    std::exception_ptr pending = std::exchange(first_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(pending);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    // A throwing task must not kill the worker (std::terminate) or leak the
    // in_flight_ decrement (wait_idle deadlock). Capture the first
    // exception; wait_idle() rethrows it once the pool drains.
    std::exception_ptr thrown;
    try {
      task();
    } catch (...) {
      thrown = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (thrown && !first_exception_) first_exception_ = thrown;
      --in_flight_;
      if (in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace rsmem::sim
