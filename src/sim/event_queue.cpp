#include "sim/event_queue.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rsmem::sim {

std::uint64_t EventQueue::schedule_at(double when, EventAction action) {
  if (!std::isfinite(when) || when < now_) {
    throw std::invalid_argument(
        "EventQueue::schedule_at: time must be finite and >= now");
  }
  if (!action) {
    throw std::invalid_argument("EventQueue::schedule_at: empty action");
  }
  const std::uint64_t id = next_seq_++;
  heap_.push(Entry{when, id, std::move(action)});
  return id;
}

std::uint64_t EventQueue::schedule_in(double delay, EventAction action) {
  return schedule_at(now_ + delay, std::move(action));
}

bool EventQueue::cancel(std::uint64_t id) {
  if (id >= next_seq_) return false;
  if (is_cancelled(id)) return false;
  // We cannot remove from the middle of a priority queue; remember the id
  // and skip the entry when it surfaces.
  cancelled_.insert(
      std::lower_bound(cancelled_.begin(), cancelled_.end(), id), id);
  return true;
}

bool EventQueue::is_cancelled(std::uint64_t id) const {
  return std::binary_search(cancelled_.begin(), cancelled_.end(), id);
}

void EventQueue::forget_cancelled(std::uint64_t id) {
  const auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id);
  if (it != cancelled_.end() && *it == id) cancelled_.erase(it);
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    Entry top = heap_.top();
    heap_.pop();
    if (is_cancelled(top.seq)) {
      forget_cancelled(top.seq);
      continue;
    }
    now_ = top.when;
    top.action();
    return true;
  }
  return false;
}

void EventQueue::run_until(double until) {
  if (until < now_) {
    throw std::invalid_argument("EventQueue::run_until: until < now");
  }
  while (!heap_.empty() && heap_.top().when <= until) {
    if (is_cancelled(heap_.top().seq)) {
      forget_cancelled(heap_.top().seq);
      heap_.pop();
      continue;
    }
    step();
  }
  now_ = until;
}

}  // namespace rsmem::sim
