// Deterministic random number generation for the Monte-Carlo simulator.
//
// Wraps the fully-specified std::mt19937_64 engine but implements every
// distribution transform in-house (std:: distributions are implementation
// defined, which would make simulation results differ across standard
// libraries). Streams can be split so that independent subsystems (fault
// injection per module, scrubbing jitter, ...) draw from decorrelated
// sequences while staying reproducible from one root seed.
//
// THREAD-SAFETY INVARIANT (parallel Monte-Carlo campaigns): an Rng holds a
// mutable engine and is NOT safe for concurrent draws. The library keeps
// every generator strictly SHARD-LOCAL: there are no global/static
// generators anywhere in rsmem, each simulated system owns the Rngs it
// draws from, and a campaign derives each trial's streams from the root
// seed via split() keyed by the GLOBAL trial index (split() is const and
// safe to call concurrently -- it only mixes seeds, touching no engine
// state). Worker threads therefore never share engine state, and trial
// results are independent of the thread or shard that ran them.
#ifndef RSMEM_SIM_RNG_H
#define RSMEM_SIM_RNG_H

#include <cstdint>
#include <optional>
#include <random>

namespace rsmem::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Deterministically derives an independent stream (SplitMix64 mixing of
  // the root seed with the stream id).
  Rng split(std::uint64_t stream_id) const;

  // Uniform in [0, 1) with 53 bits of precision.
  double uniform();
  // Uniform in (0, 1]; never returns exactly 0 (safe for log()).
  double uniform_positive();
  // Uniform integer in [0, bound); bound must be > 0.
  std::uint64_t uniform_int(std::uint64_t bound);
  bool bernoulli(double p);
  // Exponential with the given rate (> 0); mean 1/rate.
  double exponential(double rate);
  // Poisson count with the given mean (>= 0) by inversion/chunking.
  std::uint64_t poisson(double mean);

  std::uint64_t next_u64() { return engine()(); }

 private:
  // The mt19937-64 state (312 words, non-trivial to seed) is materialized
  // lazily on the first draw, producing exactly the sequence the eager
  // seeding produced. Campaign trial setup creates several Rngs that are
  // only ever split() -- the campaign root, each system's root -- and those
  // never pay for an engine at all.
  std::mt19937_64& engine();
  std::uint64_t root_seed_;
  std::optional<std::mt19937_64> engine_;
};

}  // namespace rsmem::sim

#endif  // RSMEM_SIM_RNG_H
