#include "sim/poisson.h"

#include <limits>
#include <stdexcept>

namespace rsmem::sim {

PoissonProcess::PoissonProcess(double rate, Rng rng)
    : rate_(rate), rng_(rng) {
  if (rate < 0.0) {
    throw std::invalid_argument("PoissonProcess: negative rate");
  }
}

double PoissonProcess::next_after(double now) {
  if (rate_ == 0.0) return std::numeric_limits<double>::infinity();
  return now + rng_.exponential(rate_);
}

std::vector<double> PoissonProcess::arrivals_in(double t0, double t1) {
  std::vector<double> times;
  if (rate_ == 0.0 || t1 <= t0) return times;
  double t = t0;
  for (;;) {
    t = next_after(t);
    if (t > t1) break;
    times.push_back(t);
  }
  return times;
}

}  // namespace rsmem::sim
