// Discrete-event simulation core: a time-ordered event queue.
//
// Events are closures scheduled at absolute simulation times; ties are
// broken by insertion order so runs are fully deterministic. The memory
// system simulator (src/memory) schedules fault arrivals, scrubbing passes
// and read operations through this queue.
#ifndef RSMEM_SIM_EVENT_QUEUE_H
#define RSMEM_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace rsmem::sim {

using EventAction = std::function<void()>;

class EventQueue {
 public:
  EventQueue() = default;

  double now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  // Schedules `action` at absolute time `when` (>= now). Returns an id that
  // can be used to cancel the event. Throws std::invalid_argument for
  // events in the past or non-finite times.
  std::uint64_t schedule_at(double when, EventAction action);
  // Schedules relative to the current time.
  std::uint64_t schedule_in(double delay, EventAction action);

  // Cancels a pending event; returns false if it already ran / was cancelled.
  bool cancel(std::uint64_t id);

  // Runs events in time order until the queue is empty or the next event is
  // later than `until`; the clock ends at exactly `until`.
  void run_until(double until);

  // Runs a single event if one is pending; returns false otherwise.
  bool step();

 private:
  struct Entry {
    double when;
    std::uint64_t seq;  // insertion order; also the cancellation id
    EventAction action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<std::uint64_t> cancelled_;  // sorted ids pending removal
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;

  bool is_cancelled(std::uint64_t id) const;
  void forget_cancelled(std::uint64_t id);
};

}  // namespace rsmem::sim

#endif  // RSMEM_SIM_EVENT_QUEUE_H
