// Non-homogeneous Poisson arrivals with a Weibull cumulative hazard:
//
//   Lambda(t) = (t / eta)^beta,   rate(t) = (beta/eta) * (t/eta)^(beta-1).
//
// beta = 1 is the homogeneous process of rate 1/eta (infant/constant/
// wearout regimes are beta <1/=1/>1 -- the bathtub curve's pieces).
// The Markov chains assume beta = 1; this process lets the FUNCTIONAL
// stack model wearout so the constant-rate assumption can be tested
// (bench_wearout).
//
// Sampling is exact by hazard inversion: with E ~ Exp(1),
//   next = eta * (Lambda(now) + E)^(1/beta).
#ifndef RSMEM_SIM_WEIBULL_H
#define RSMEM_SIM_WEIBULL_H

#include <vector>

#include "sim/rng.h"

namespace rsmem::sim {

class WeibullProcess {
 public:
  // Throws std::invalid_argument for non-positive shape or scale.
  WeibullProcess(double shape_beta, double scale_eta, Rng rng);

  double shape() const { return shape_; }
  double scale() const { return scale_; }

  // Expected number of arrivals in [0, t].
  double cumulative_hazard(double t) const;

  // Time of the next arrival strictly after `now` (>= 0).
  double next_after(double now);

  // All arrivals in (t0, t1], in order.
  std::vector<double> arrivals_in(double t0, double t1);

 private:
  double shape_;
  double scale_;
  Rng rng_;
};

}  // namespace rsmem::sim

#endif  // RSMEM_SIM_WEIBULL_H
