#include "sim/weibull.h"

#include <cmath>
#include <stdexcept>

namespace rsmem::sim {

WeibullProcess::WeibullProcess(double shape_beta, double scale_eta, Rng rng)
    : shape_(shape_beta), scale_(scale_eta), rng_(rng) {
  if (shape_beta <= 0.0 || scale_eta <= 0.0) {
    throw std::invalid_argument(
        "WeibullProcess: shape and scale must be positive");
  }
}

double WeibullProcess::cumulative_hazard(double t) const {
  if (t < 0.0) {
    throw std::invalid_argument("WeibullProcess: negative time");
  }
  return std::pow(t / scale_, shape_);
}

double WeibullProcess::next_after(double now) {
  if (now < 0.0) {
    throw std::invalid_argument("WeibullProcess: negative time");
  }
  const double exp_draw = -std::log(rng_.uniform_positive());
  return scale_ * std::pow(cumulative_hazard(now) + exp_draw, 1.0 / shape_);
}

std::vector<double> WeibullProcess::arrivals_in(double t0, double t1) {
  std::vector<double> times;
  if (t1 <= t0) return times;
  double t = t0;
  for (;;) {
    t = next_after(t);
    if (t > t1) break;
    times.push_back(t);
  }
  return times;
}

}  // namespace rsmem::sim
