// Compressed sparse row matrix with a coordinate-format builder.
//
// The CTMC generator matrices of the paper's models are extremely sparse
// (each state has at most ~16 outgoing transitions), so the transient
// solvers operate on CSR matvecs.
#ifndef RSMEM_LINALG_CSR_MATRIX_H
#define RSMEM_LINALG_CSR_MATRIX_H

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/dense_matrix.h"

namespace rsmem::linalg {

struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  // Builds from coordinate triplets; duplicate (row, col) entries are summed.
  // Throws std::invalid_argument for out-of-range indices.
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<Triplet> triplets);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  // y = A x.
  std::vector<double> apply(std::span<const double> x) const;
  void apply(std::span<const double> x, std::span<double> y) const;

  // y = A^T x (used for row-vector propagation pi' = pi P). Runs on the
  // transposed (CSC) mirror built at construction, so the output is written
  // sequentially instead of scattered; within each column the row order of
  // the CSR layout is preserved, which keeps the accumulation order -- and
  // therefore the result -- bitwise identical to the scatter formulation.
  std::vector<double> apply_transpose(std::span<const double> x) const;
  void apply_transpose(std::span<const double> x, std::span<double> y) const;

  // Element lookup (O(log nnz_row)); 0.0 when absent.
  double at(std::size_t r, std::size_t c) const;

  // Largest absolute diagonal entry (uniformization rate bound helper).
  // Cached at construction.
  double max_abs_diagonal() const { return max_abs_diag_; }

  // Diagonal entries, cached at construction; size min(rows, cols).
  std::span<const double> diagonal() const { return diag_; }

  DenseMatrix to_dense() const;

  std::span<const std::size_t> row_pointers() const { return row_ptr_; }
  std::span<const std::size_t> col_indices() const { return col_idx_; }
  std::span<const double> values() const { return values_; }

  // Transposed (CSC) mirror: entries of column c of A live at
  // [col_ptr()[c], col_ptr()[c+1]) in row_indices()/transposed_values().
  std::span<const std::size_t> col_pointers() const { return col_ptr_; }
  std::span<const std::size_t> row_indices() const { return row_idx_; }
  std::span<const double> transposed_values() const { return csc_values_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
  // Transposed mirror for streaming row-vector propagation.
  std::vector<std::size_t> col_ptr_;
  std::vector<std::size_t> row_idx_;
  std::vector<double> csc_values_;
  // Diagonal cache (avoids a binary search per row on every query).
  std::vector<double> diag_;
  double max_abs_diag_ = 0.0;
};

}  // namespace rsmem::linalg

#endif  // RSMEM_LINALG_CSR_MATRIX_H
