// Compressed sparse row matrix with a coordinate-format builder.
//
// The CTMC generator matrices of the paper's models are extremely sparse
// (each state has at most ~16 outgoing transitions), so the transient
// solvers operate on CSR matvecs.
#ifndef RSMEM_LINALG_CSR_MATRIX_H
#define RSMEM_LINALG_CSR_MATRIX_H

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/dense_matrix.h"

namespace rsmem::linalg {

struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  // Builds from coordinate triplets; duplicate (row, col) entries are summed.
  // Throws std::invalid_argument for out-of-range indices.
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<Triplet> triplets);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  // y = A x.
  std::vector<double> apply(std::span<const double> x) const;
  void apply(std::span<const double> x, std::span<double> y) const;

  // y = A^T x (used for row-vector propagation pi' = pi P).
  std::vector<double> apply_transpose(std::span<const double> x) const;
  void apply_transpose(std::span<const double> x, std::span<double> y) const;

  // Element lookup (O(log nnz_row)); 0.0 when absent.
  double at(std::size_t r, std::size_t c) const;

  // Largest absolute diagonal entry (uniformization rate bound helper).
  double max_abs_diagonal() const;

  DenseMatrix to_dense() const;

  std::span<const std::size_t> row_pointers() const { return row_ptr_; }
  std::span<const std::size_t> col_indices() const { return col_idx_; }
  std::span<const double> values() const { return values_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace rsmem::linalg

#endif  // RSMEM_LINALG_CSR_MATRIX_H
