#include "linalg/dense_matrix.h"

#include <cmath>
#include <stdexcept>

namespace rsmem::linalg {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols, double init)
    : rows_(rows), cols_(cols), data_(rows * cols, init) {}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

std::vector<double> DenseMatrix::apply(std::span<const double> x) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("DenseMatrix::apply: dimension mismatch");
  }
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row_ptr[c] * x[c];
    y[r] = acc;
  }
  return y;
}

std::vector<double> DenseMatrix::apply_transpose(
    std::span<const double> x) const {
  if (x.size() != rows_) {
    throw std::invalid_argument(
        "DenseMatrix::apply_transpose: dimension mismatch");
  }
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row_ptr[c] * xr;
  }
  return y;
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

DenseMatrix DenseMatrix::mul(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("DenseMatrix::mul: dimension mismatch");
  }
  DenseMatrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.at(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return c;
}

double DenseMatrix::max_abs() const {
  double m = 0.0;
  for (const double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

LuFactorization::LuFactorization(const DenseMatrix& a)
    : n_(a.rows()), lu_(a), perm_(a.rows()) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("LuFactorization: matrix must be square");
  }
  for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;

  for (std::size_t col = 0; col < n_; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::fabs(lu_.at(col, col));
    for (std::size_t r = col + 1; r < n_; ++r) {
      const double v = std::fabs(lu_.at(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best == 0.0) {
      throw std::domain_error("LuFactorization: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n_; ++c) {
        std::swap(lu_.at(pivot, c), lu_.at(col, c));
      }
      std::swap(perm_[pivot], perm_[col]);
      perm_sign_ = -perm_sign_;
    }
    const double diag = lu_.at(col, col);
    for (std::size_t r = col + 1; r < n_; ++r) {
      const double factor = lu_.at(r, col) / diag;
      lu_.at(r, col) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = col + 1; c < n_; ++c) {
        lu_.at(r, c) -= factor * lu_.at(col, c);
      }
    }
  }
}

std::vector<double> LuFactorization::solve(std::span<const double> b) const {
  if (b.size() != n_) {
    throw std::invalid_argument("LuFactorization::solve: dimension mismatch");
  }
  std::vector<double> y(n_);
  for (std::size_t i = 0; i < n_; ++i) y[i] = b[perm_[i]];
  // Forward substitution (L has unit diagonal).
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < i; ++j) y[i] -= lu_.at(i, j) * y[j];
  }
  // Back substitution.
  for (std::size_t ii = n_; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    for (std::size_t j = i + 1; j < n_; ++j) y[i] -= lu_.at(i, j) * y[j];
    y[i] /= lu_.at(i, i);
  }
  return y;
}

double LuFactorization::determinant() const {
  double det = perm_sign_;
  for (std::size_t i = 0; i < n_; ++i) det *= lu_.at(i, i);
  return det;
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("dot: dimension mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm1(std::span<const double> a) {
  double acc = 0.0;
  for (const double v : a) acc += std::fabs(v);
  return acc;
}

double norm_inf(std::span<const double> a) {
  double acc = 0.0;
  for (const double v : a) acc = std::max(acc, std::fabs(v));
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("axpy: dimension mismatch");
  }
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

}  // namespace rsmem::linalg
