// Small dense linear algebra used by the Markov solvers and their tests:
// row-major dense matrix, LU factorization with partial pivoting, and linear
// solves. Sized for the moderate state spaces of the paper's chains (the
// largest, simplex RS(36,16), has ~130 states).
#ifndef RSMEM_LINALG_DENSE_MATRIX_H
#define RSMEM_LINALG_DENSE_MATRIX_H

#include <cstddef>
#include <span>
#include <vector>

namespace rsmem::linalg {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double init = 0.0);

  static DenseMatrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  // y = A * x. Throws std::invalid_argument on dimension mismatch.
  std::vector<double> apply(std::span<const double> x) const;
  // y = A^T * x.
  std::vector<double> apply_transpose(std::span<const double> x) const;

  DenseMatrix transpose() const;
  static DenseMatrix mul(const DenseMatrix& a, const DenseMatrix& b);

  // Max-absolute-value norm of the matrix entries.
  double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// LU factorization with partial pivoting of a square matrix.
// Throws std::domain_error if the matrix is (numerically) singular.
class LuFactorization {
 public:
  explicit LuFactorization(const DenseMatrix& a);

  // Solves A x = b.
  std::vector<double> solve(std::span<const double> b) const;

  double determinant() const;

 private:
  std::size_t n_;
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
  int perm_sign_ = 1;
};

// Utility vector operations (used across solvers and tests).
double dot(std::span<const double> a, std::span<const double> b);
double norm1(std::span<const double> a);
double norm_inf(std::span<const double> a);
// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);
void scale(double alpha, std::span<double> x);

}  // namespace rsmem::linalg

#endif  // RSMEM_LINALG_DENSE_MATRIX_H
