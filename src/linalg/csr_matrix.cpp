#include "linalg/csr_matrix.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rsmem::linalg {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  for (const Triplet& t : triplets) {
    if (t.row >= rows_ || t.col >= cols_) {
      throw std::invalid_argument("CsrMatrix: triplet index out of range");
    }
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  row_ptr_.assign(rows_ + 1, 0);
  col_idx_.reserve(triplets.size());
  values_.reserve(triplets.size());
  for (std::size_t i = 0; i < triplets.size();) {
    const std::size_t r = triplets[i].row;
    const std::size_t c = triplets[i].col;
    double sum = 0.0;
    while (i < triplets.size() && triplets[i].row == r &&
           triplets[i].col == c) {
      sum += triplets[i].value;
      ++i;
    }
    if (sum != 0.0) {
      col_idx_.push_back(c);
      values_.push_back(sum);
      ++row_ptr_[r + 1];
    }
  }
  for (std::size_t r = 0; r < rows_; ++r) row_ptr_[r + 1] += row_ptr_[r];

  // Diagonal cache.
  const std::size_t n = std::min(rows_, cols_);
  diag_.assign(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      if (col_idx_[i] == r) {
        diag_[r] = values_[i];
        break;
      }
    }
    max_abs_diag_ = std::max(max_abs_diag_, std::fabs(diag_[r]));
  }

  // Transposed (CSC) mirror by counting sort over columns. The sort is
  // stable in the row index, so each column lists its rows in ascending
  // order -- the invariant apply_transpose relies on for bitwise-identical
  // accumulation.
  col_ptr_.assign(cols_ + 1, 0);
  for (const std::size_t c : col_idx_) ++col_ptr_[c + 1];
  for (std::size_t c = 0; c < cols_; ++c) col_ptr_[c + 1] += col_ptr_[c];
  row_idx_.resize(values_.size());
  csc_values_.resize(values_.size());
  std::vector<std::size_t> cursor(col_ptr_.begin(), col_ptr_.end() - 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      const std::size_t slot = cursor[col_idx_[i]]++;
      row_idx_[slot] = r;
      csc_values_[slot] = values_[i];
    }
  }
}

void CsrMatrix::apply(std::span<const double> x, std::span<double> y) const {
  if (x.size() != cols_ || y.size() != rows_) {
    throw std::invalid_argument("CsrMatrix::apply: dimension mismatch");
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      acc += values_[i] * x[col_idx_[i]];
    }
    y[r] = acc;
  }
}

std::vector<double> CsrMatrix::apply(std::span<const double> x) const {
  std::vector<double> y(rows_);
  apply(x, y);
  return y;
}

void CsrMatrix::apply_transpose(std::span<const double> x,
                                std::span<double> y) const {
  if (x.size() != rows_ || y.size() != cols_) {
    throw std::invalid_argument(
        "CsrMatrix::apply_transpose: dimension mismatch");
  }
  for (std::size_t c = 0; c < cols_; ++c) {
    double acc = 0.0;
    for (std::size_t i = col_ptr_[c]; i < col_ptr_[c + 1]; ++i) {
      acc += csc_values_[i] * x[row_idx_[i]];
    }
    y[c] = acc;
  }
}

std::vector<double> CsrMatrix::apply_transpose(
    std::span<const double> x) const {
  std::vector<double> y(cols_);
  apply_transpose(x, y);
  return y;
}

double CsrMatrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw std::invalid_argument("CsrMatrix::at: index out of range");
  }
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix d(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      d.at(r, col_idx_[i]) = values_[i];
    }
  }
  return d;
}

}  // namespace rsmem::linalg
