#include "linalg/csr_matrix.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rsmem::linalg {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  for (const Triplet& t : triplets) {
    if (t.row >= rows_ || t.col >= cols_) {
      throw std::invalid_argument("CsrMatrix: triplet index out of range");
    }
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  row_ptr_.assign(rows_ + 1, 0);
  col_idx_.reserve(triplets.size());
  values_.reserve(triplets.size());
  for (std::size_t i = 0; i < triplets.size();) {
    const std::size_t r = triplets[i].row;
    const std::size_t c = triplets[i].col;
    double sum = 0.0;
    while (i < triplets.size() && triplets[i].row == r &&
           triplets[i].col == c) {
      sum += triplets[i].value;
      ++i;
    }
    if (sum != 0.0) {
      col_idx_.push_back(c);
      values_.push_back(sum);
      ++row_ptr_[r + 1];
    }
  }
  for (std::size_t r = 0; r < rows_; ++r) row_ptr_[r + 1] += row_ptr_[r];
}

void CsrMatrix::apply(std::span<const double> x, std::span<double> y) const {
  if (x.size() != cols_ || y.size() != rows_) {
    throw std::invalid_argument("CsrMatrix::apply: dimension mismatch");
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      acc += values_[i] * x[col_idx_[i]];
    }
    y[r] = acc;
  }
}

std::vector<double> CsrMatrix::apply(std::span<const double> x) const {
  std::vector<double> y(rows_);
  apply(x, y);
  return y;
}

void CsrMatrix::apply_transpose(std::span<const double> x,
                                std::span<double> y) const {
  if (x.size() != rows_ || y.size() != cols_) {
    throw std::invalid_argument(
        "CsrMatrix::apply_transpose: dimension mismatch");
  }
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      y[col_idx_[i]] += values_[i] * xr;
    }
  }
}

std::vector<double> CsrMatrix::apply_transpose(
    std::span<const double> x) const {
  std::vector<double> y(cols_);
  apply_transpose(x, y);
  return y;
}

double CsrMatrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw std::invalid_argument("CsrMatrix::at: index out of range");
  }
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

double CsrMatrix::max_abs_diagonal() const {
  double m = 0.0;
  const std::size_t n = std::min(rows_, cols_);
  for (std::size_t r = 0; r < n; ++r) m = std::max(m, std::fabs(at(r, r)));
  return m;
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix d(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      d.at(r, col_idx_[i]) = values_[i];
    }
  }
  return d;
}

}  // namespace rsmem::linalg
