#include "rs/reed_solomon.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <stdexcept>
#include <string>

namespace rsmem::rs {

using gf::GaloisField;
using gf::Poly;

namespace {

// SIMD kernel-path engagement thresholds. Below these sizes the kernel
// call overhead beats the vector win and the scalar loops stay in charge;
// either route is bit-identical, so the constants are pure tuning.
constexpr unsigned kMinKernelTwoT = 16;   // per-word syndrome/LFSR rows
constexpr unsigned kMinKernelN = 32;      // per-word Chien row
constexpr std::size_t kMinSoaBatch = 4;   // batch SoA staging
// Stack staging for per-word kernel paths: n <= 255 and 2t < n for every
// m <= 8 code, so one page-free 256-byte buffer covers both.
constexpr std::size_t kMaxSymbols = 256;

// Returns the active kernel set when the SIMD layer should serve this
// code, nullptr when the scalar loops must run (m > 8, or the selected
// backend is the scalar A/B control).
inline const gf::simd::Kernels* simd_kernels_for(unsigned m) {
  if (m > 8) return nullptr;
  const gf::simd::Kernels& k = gf::simd::active();
  return k.backend == gf::simd::Backend::kScalar ? nullptr : &k;
}

inline std::uint64_t load64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void store64(std::uint8_t* p, std::uint64_t v) {
  std::memcpy(p, &v, sizeof(v));
}

// Degree of the polynomial stored in a[0..len), -1 for zero.
inline int degree_in(const Element* a, std::size_t len) {
  for (std::size_t i = len; i > 0; --i) {
    if (a[i - 1] != 0) return static_cast<int>(i - 1);
  }
  return -1;
}

// Field multiplication for the fast path: either one dense-table load
// (m <= 8) or the log/exp route. Dispatched statically so the inner loops
// carry no per-mul branch.
template <bool kDense>
struct FieldOps {
  const GaloisField& f;
  const Element* dense;
  unsigned m;

  Element mul(Element a, Element b) const {
    if constexpr (kDense) {
      return dense[(static_cast<std::size_t>(a) << m) | b];
    } else {
      return f.mul(a, b);
    }
  }
};

}  // namespace

ReedSolomon::ReedSolomon(const CodeParams& params)
    : params_(params),
      field_(params.m, params.prim_poly != 0
                           ? params.prim_poly
                           : gf::GaloisField::default_primitive_poly(
                                 params.m)) {
  if (params_.k == 0 || params_.k >= params_.n) {
    throw std::invalid_argument("ReedSolomon: require 0 < k < n");
  }
  if (params_.n > field_.order()) {
    throw std::invalid_argument(
        "ReedSolomon: n exceeds 2^m - 1 (n=" + std::to_string(params_.n) +
        ", m=" + std::to_string(params_.m) + ")");
  }
  // g(x) = prod_{j=0}^{n-k-1} (x - alpha^(fcr+j)); note -a == a in GF(2^m).
  generator_ = Poly::one();
  for (unsigned j = 0; j < parity_symbols(); ++j) {
    const Element root = field_.alpha_pow(params_.fcr + j);
    Poly factor{std::vector<Element>{root, 1}};  // (x + root)
    generator_ = Poly::mul(field_, generator_, factor);
  }
  // Per-code tables for the fast path.
  const unsigned two_t = parity_symbols();
  syndrome_root_.resize(two_t);
  gen_lfsr_.resize(two_t);
  for (unsigned j = 0; j < two_t; ++j) {
    syndrome_root_[j] = field_.alpha_pow(params_.fcr + j);
    // Parity position k+j holds coeff of x^(n-k-1-j); store the matching
    // generator coefficient so the LFSR walks the table forward.
    gen_lfsr_[j] = generator_.coeff(two_t - 1 - j);
  }
  pos_locator_.resize(params_.n);
  pos_locator_inv_.resize(params_.n);
  forney_scale_.resize(params_.n);
  for (unsigned p = 0; p < params_.n; ++p) {
    const Element X = locator_of_position(p);
    pos_locator_[p] = X;
    pos_locator_inv_[p] = field_.inv(X);
    forney_scale_[p] =
        field_.pow(X, 1 - static_cast<long long>(params_.fcr));
  }
}

const ReedSolomon::SimdTables* ReedSolomon::simd_tables() const {
  if (params_.m > 8) return nullptr;
  const SimdTables* t = simd_ptr_.load(std::memory_order_acquire);
  if (t != nullptr) return t;
  const std::lock_guard<std::mutex> lock(simd_build_);
  if (simd_ptr_.load(std::memory_order_relaxed) == nullptr) {
    auto st = std::make_unique<SimdTables>();
    const unsigned n = params_.n;
    const unsigned k = params_.k;
    const unsigned two_t = parity_symbols();
    const std::uint32_t size = field_.size();
    st->synd_stride = gf::aligned_stride(two_t);
    st->chien_stride = gf::aligned_stride(n);

    // Batch-encode constants: P[p][j] is the parity-j symbol produced by
    // the unit dataword e_p, computed with an inline scalar LFSR so the
    // build never re-enters the dispatched encoder.
    st->encode_mul.resize(static_cast<std::size_t>(k) * two_t);
    std::vector<Element> par(two_t);
    for (unsigned p = 0; p < k; ++p) {
      std::fill(par.begin(), par.end(), 0);
      for (unsigned q = 0; q < k; ++q) {
        const Element fb = (q == p ? 1u : 0u) ^ par[0];
        for (unsigned j = 0; j + 1 < two_t; ++j) {
          par[j] = par[j + 1] ^ field_.mul(fb, gen_lfsr_[j]);
        }
        par[two_t - 1] = field_.mul(fb, gen_lfsr_[two_t - 1]);
      }
      for (unsigned j = 0; j < two_t; ++j) {
        gf::simd::build_tables(
            st->encode_mul[static_cast<std::size_t>(p) * two_t + j], field_,
            par[j]);
      }
    }

    // Batch-syndrome constants X_p^(fcr+j) and their per-word split-nibble
    // pre-expansion (rows of v * X_p^(fcr+j) over j).
    st->synd_mul.resize(static_cast<std::size_t>(n) * two_t);
    st->synd_nib.assign(static_cast<std::size_t>(n) * 32 * st->synd_stride,
                        0);
    for (unsigned p = 0; p < n; ++p) {
      for (unsigned j = 0; j < two_t; ++j) {
        const Element c = field_.pow(pos_locator_[p], params_.fcr + j);
        gf::simd::build_tables(
            st->synd_mul[static_cast<std::size_t>(p) * two_t + j], field_, c);
        std::uint8_t* rows =
            st->synd_nib.data() +
            static_cast<std::size_t>(p) * 32 * st->synd_stride;
        for (unsigned v = 0; v < 16; ++v) {
          // Nibble values outside small fields (m < 4 lo, m < 8 hi) can
          // never appear in a validated word; their rows stay zero.
          rows[v * st->synd_stride + j] =
              v < size ? static_cast<std::uint8_t>(field_.mul(v, c)) : 0;
          const unsigned vh = v << 4;
          rows[(16 + v) * st->synd_stride + j] =
              vh < size ? static_cast<std::uint8_t>(field_.mul(vh, c)) : 0;
        }
      }
    }

    // Per-word LFSR rows: v * g[j] for each feedback nibble.
    st->lfsr_nib.assign(32 * st->synd_stride, 0);
    for (unsigned v = 0; v < 16; ++v) {
      for (unsigned j = 0; j < two_t; ++j) {
        st->lfsr_nib[v * st->synd_stride + j] =
            v < size
                ? static_cast<std::uint8_t>(field_.mul(v, gen_lfsr_[j]))
                : 0;
        const unsigned vh = v << 4;
        st->lfsr_nib[(16 + v) * st->synd_stride + j] =
            vh < size ? static_cast<std::uint8_t>(field_.mul(vh, gen_lfsr_[j]))
                      : 0;
      }
    }

    // Chien power rows: X_p^(-i) across positions, one row per locator
    // coefficient index.
    st->chien_pow.assign(
        static_cast<std::size_t>(two_t + 1) * st->chien_stride, 0);
    for (unsigned i = 0; i <= two_t; ++i) {
      for (unsigned p = 0; p < n; ++p) {
        st->chien_pow[static_cast<std::size_t>(i) * st->chien_stride + p] =
            static_cast<std::uint8_t>(field_.pow(pos_locator_inv_[p], i));
      }
    }

    simd_ = std::move(st);
    simd_ptr_.store(simd_.get(), std::memory_order_release);
  }
  return simd_ptr_.load(std::memory_order_relaxed);
}

void DecoderWorkspace::reserve(const ReedSolomon& code) {
  const std::size_t two_t = code.parity_symbols();
  const std::size_t n = code.n();
  synd.reserve(two_t);
  gamma.reserve(two_t + 1);
  xi.reserve(two_t);
  r0.reserve(two_t + 1);
  r1.reserve(two_t + 1);
  u0.reserve(two_t + 1);
  u1.reserve(two_t + 1);
  psi.reserve(two_t + 1);
  psi_deriv.reserve(two_t);
  omega.reserve(two_t);
  corrected.reserve(n);
  erasure_mark.reserve(n);
  erasure_scratch.reserve(n);
  if (code.m() <= 8) {
    code.field().dense_mul_table();  // force the lazy build
    code.simd_tables();              // and the SIMD constant tables
  }
}

void ReedSolomon::validate_encode_args(std::span<const Element> data,
                                       std::span<Element> codeword) const {
  if (data.size() != params_.k) {
    throw std::invalid_argument("ReedSolomon::encode: data size != k");
  }
  if (codeword.size() != params_.n) {
    throw std::invalid_argument("ReedSolomon::encode: codeword size != n");
  }
  for (const Element d : data) {
    if (!field_.contains(d)) {
      throw std::invalid_argument("ReedSolomon::encode: symbol out of field");
    }
  }
}

void ReedSolomon::encode(std::span<const Element> data,
                         std::span<Element> codeword) const {
  validate_encode_args(data, codeword);
  // Systematic LFSR division by the monic generator: feed the data symbols
  // highest-degree first, keeping the running remainder in the parity slots
  // (parity[j] = coeff of x^(n-k-1-j), already in external order).
  const unsigned two_t = parity_symbols();
  std::copy(data.begin(), data.end(), codeword.begin());
  Element* parity = codeword.data() + params_.k;
  std::fill(parity, parity + two_t, 0);
  const Element* gr = gen_lfsr_.data();
  if (const gf::simd::Kernels* kn = simd_kernels_for(params_.m);
      kn != nullptr && two_t >= kMinKernelTwoT) {
    // Kernel path: the LFSR step "shift parity, xor fb*g" becomes one
    // memmove plus two split-nibble row xors (fb = lo ^ hi<<4, with
    // v*g[j] rows precomputed per code). Bit-identical to the scalar
    // LFSR below: same feedback chain, same field products.
    const SimdTables* st = simd_tables();
    const std::size_t stride = st->synd_stride;
    const std::uint8_t* rows = st->lfsr_nib.data();
    std::uint8_t par[kMaxSymbols];
    std::memset(par, 0, two_t);
    for (unsigned p = 0; p < params_.k; ++p) {
      const Element fb = data[p] ^ par[0];
      std::memmove(par, par + 1, two_t - 1);
      par[two_t - 1] = 0;
      if (fb == 0) continue;
      kn->xor_acc(par, rows + (fb & 0xF) * stride, two_t);
      kn->xor_acc(par, rows + (16 + (fb >> 4)) * stride, two_t);
    }
    for (unsigned j = 0; j < two_t; ++j) parity[j] = par[j];
    return;
  }
  const Element* dense =
      params_.m <= 8 ? field_.dense_mul_table() : nullptr;
  if (dense != nullptr) {
    const unsigned m = params_.m;
    for (unsigned p = 0; p < params_.k; ++p) {
      const Element fb = data[p] ^ parity[0];
      if (fb == 0) {
        for (unsigned j = 0; j + 1 < two_t; ++j) parity[j] = parity[j + 1];
        parity[two_t - 1] = 0;
        continue;
      }
      const Element* row = dense + (static_cast<std::size_t>(fb) << m);
      for (unsigned j = 0; j + 1 < two_t; ++j) {
        parity[j] = parity[j + 1] ^ row[gr[j]];
      }
      parity[two_t - 1] = row[gr[two_t - 1]];
    }
  } else {
    for (unsigned p = 0; p < params_.k; ++p) {
      const Element fb = data[p] ^ parity[0];
      for (unsigned j = 0; j + 1 < two_t; ++j) {
        parity[j] = parity[j + 1] ^ field_.mul(fb, gr[j]);
      }
      parity[two_t - 1] = field_.mul(fb, gr[two_t - 1]);
    }
  }
}

void ReedSolomon::encode(DecoderWorkspace& /*ws*/,
                         std::span<const Element> data,
                         std::span<Element> codeword) const {
  encode(data, codeword);
}

void ReedSolomon::encode_legacy(std::span<const Element> data,
                                std::span<Element> codeword) const {
  validate_encode_args(data, codeword);
  // Message polynomial with data[0] as the highest-degree coefficient:
  // M(x) = sum_p data[p] * x^(k-1-p); codeword poly c(x) = M(x)*x^(n-k) - R,
  // R = (M(x)*x^(n-k)) mod g(x). External position p holds coeff of x^(n-1-p).
  std::vector<Element> shifted(params_.n, 0);
  for (unsigned p = 0; p < params_.k; ++p) {
    shifted[params_.n - 1 - p] = data[p];
  }
  const Poly remainder =
      Poly::mod(field_, Poly{std::move(shifted)}, generator_);
  std::copy(data.begin(), data.end(), codeword.begin());
  for (unsigned j = 0; j < parity_symbols(); ++j) {
    // Parity position k+j holds coeff of x^(n-1-(k+j)) = x^(n-k-1-j).
    codeword[params_.k + j] = remainder.coeff(parity_symbols() - 1 - j);
  }
}

std::vector<Element> ReedSolomon::encode(std::span<const Element> data) const {
  std::vector<Element> cw(params_.n, 0);
  encode(data, cw);
  return cw;
}

void ReedSolomon::encode_batch(DecoderWorkspace& ws,
                               std::span<const Element> data_plane,
                               std::span<Element> codeword_plane) const {
  const std::size_t k = params_.k;
  const std::size_t n = params_.n;
  if (data_plane.size() % k != 0) {
    throw std::invalid_argument(
        "ReedSolomon::encode_batch: data plane is not a multiple of k");
  }
  const std::size_t count = data_plane.size() / k;
  if (codeword_plane.size() != count * n) {
    throw std::invalid_argument(
        "ReedSolomon::encode_batch: codeword plane size mismatch");
  }
  const gf::simd::Kernels* kn = simd_kernels_for(params_.m);
  if (kn != nullptr && count >= kMinSoaBatch) {
    // SoA plane path: transpose the word-major plane into one byte stream
    // per data position, then accumulate each parity stream as a sum of
    // constant-by-vector products parity_j ^= P[p][j] * data_p — the
    // ISA-L shape, with `count` as the vector axis. Parity symbols are
    // unique for a given dataword, so this is bit-identical to the
    // per-word LFSR.
    const SimdTables* st = simd_tables();
    const std::size_t two_t = parity_symbols();
    const std::size_t stride = gf::aligned_stride(count);
    const std::uint32_t size = field_.size();
    ws.soa_in.resize(k * stride);
    ws.soa_acc.assign(two_t * stride, 0);
    std::uint8_t* in = ws.soa_in.data();
    std::uint8_t* acc = ws.soa_acc.data();
    for (std::size_t w = 0; w < count; ++w) {
      const Element* word = data_plane.data() + w * k;
      for (std::size_t p = 0; p < k; ++p) {
        if (word[p] >= size) {
          throw std::invalid_argument(
              "ReedSolomon::encode: symbol out of field");
        }
        in[p * stride + w] = static_cast<std::uint8_t>(word[p]);
      }
    }
    if (kn->mul_rows_acc != nullptr) {
      // Fused sweep: one kernel call per data position updates every
      // parity row (encode_mul rows for a position are contiguous).
      // Reordering the XOR accumulation is exact, so still bit-identical.
      for (std::size_t p = 0; p < k; ++p) {
        kn->mul_rows_acc(acc, stride, in + p * stride,
                         st->encode_mul.data() + p * two_t, two_t, count);
      }
    } else {
      for (std::size_t j = 0; j < two_t; ++j) {
        std::uint8_t* dst = acc + j * stride;
        for (std::size_t p = 0; p < k; ++p) {
          kn->mul_const_acc(dst, in + p * stride,
                            st->encode_mul[p * two_t + j], count);
        }
      }
    }
    for (std::size_t w = 0; w < count; ++w) {
      Element* cw = codeword_plane.data() + w * n;
      std::copy(data_plane.data() + w * k, data_plane.data() + (w + 1) * k,
                cw);
      for (std::size_t j = 0; j < two_t; ++j) {
        cw[k + j] = acc[j * stride + w];
      }
    }
    return;
  }
  for (std::size_t w = 0; w < count; ++w) {
    encode(data_plane.subspan(w * k, k), codeword_plane.subspan(w * n, n));
  }
}

void ReedSolomon::decode_batch(
    DecoderWorkspace& ws, std::span<Element> word_plane,
    std::span<DecodeOutcome> outcomes,
    std::span<const std::uint8_t> erasure_flags) const {
  const std::size_t n = params_.n;
  if (word_plane.size() % n != 0) {
    throw std::invalid_argument(
        "ReedSolomon::decode_batch: word plane is not a multiple of n");
  }
  const std::size_t count = word_plane.size() / n;
  if (outcomes.size() != count) {
    throw std::invalid_argument(
        "ReedSolomon::decode_batch: outcomes size mismatch");
  }
  if (!erasure_flags.empty() && erasure_flags.size() != word_plane.size()) {
    throw std::invalid_argument(
        "ReedSolomon::decode_batch: erasure_flags size mismatch");
  }
  const gf::simd::Kernels* kn = simd_kernels_for(params_.m);
  if (kn != nullptr && count >= kMinSoaBatch) {
    // SoA screening path: compute every word's syndromes in one
    // structure-of-arrays sweep (syndrome_j ^= X_p^(fcr+j) * word_p over
    // the whole plane), then run the full per-word pipeline only for
    // words that are dirty or carry erasure flags. Clean, unflagged words
    // exit with kNoError exactly as the per-word syndrome screen would
    // decide — same values, same outcome.
    const SimdTables* st = simd_tables();
    const std::size_t two_t = parity_symbols();
    const std::size_t stride = gf::aligned_stride(count);
    const std::uint32_t size = field_.size();
    ws.soa_in.resize(n * stride);
    ws.soa_acc.assign(two_t * stride, 0);
    ws.soa_dirty.assign(stride, 0);
    std::uint8_t* in = ws.soa_in.data();
    std::uint8_t* acc = ws.soa_acc.data();
    std::uint8_t* dirty = ws.soa_dirty.data();
    for (std::size_t w = 0; w < count; ++w) {
      const Element* word = word_plane.data() + w * n;
      for (std::size_t p = 0; p < n; ++p) {
        if (word[p] >= size) {
          throw std::invalid_argument(
              "ReedSolomon::decode: symbol out of field");
        }
        in[p * stride + w] = static_cast<std::uint8_t>(word[p]);
      }
    }
    if (kn->mul_rows_acc != nullptr) {
      // Fused sweep: one kernel call per codeword position updates every
      // syndrome row (synd_mul rows for a position are contiguous).
      // Reordering the XOR accumulation is exact, so still bit-identical.
      for (std::size_t p = 0; p < n; ++p) {
        kn->mul_rows_acc(acc, stride, in + p * stride,
                         st->synd_mul.data() + p * two_t, two_t, count);
      }
    } else {
      for (std::size_t j = 0; j < two_t; ++j) {
        std::uint8_t* dst = acc + j * stride;
        for (std::size_t p = 0; p < n; ++p) {
          kn->mul_const_acc(dst, in + p * stride,
                            st->synd_mul[p * two_t + j], count);
        }
      }
    }
    for (std::size_t j = 0; j < two_t; ++j) {
      const std::uint8_t* row = acc + j * stride;
      for (std::size_t i = 0; i < stride; i += 8) {
        store64(dirty + i, load64(dirty + i) | load64(row + i));
      }
    }
    for (std::size_t w = 0; w < count; ++w) {
      ws.erasure_scratch.clear();
      if (!erasure_flags.empty()) {
        const std::uint8_t* flags = erasure_flags.data() + w * n;
        for (std::size_t i = 0; i < n; ++i) {
          if (flags[i]) {
            ws.erasure_scratch.push_back(static_cast<unsigned>(i));
          }
        }
      }
      if (dirty[w] == 0 && ws.erasure_scratch.empty()) {
        // Zero syndromes, no erasures: the per-word pipeline's clean exit.
        outcomes[w] = {DecodeStatus::kNoError, 0, 0};
        continue;
      }
      outcomes[w] =
          decode(ws, word_plane.subspan(w * n, n), ws.erasure_scratch);
    }
    return;
  }
  for (std::size_t w = 0; w < count; ++w) {
    ws.erasure_scratch.clear();
    if (!erasure_flags.empty()) {
      const std::uint8_t* flags = erasure_flags.data() + w * n;
      for (std::size_t i = 0; i < n; ++i) {
        if (flags[i]) ws.erasure_scratch.push_back(static_cast<unsigned>(i));
      }
    }
    outcomes[w] = decode(ws, word_plane.subspan(w * n, n),
                         ws.erasure_scratch);
  }
}

bool ReedSolomon::syndromes(std::span<const Element> word,
                            std::vector<Element>& out) const {
  out.assign(parity_symbols(), 0);
  bool all_zero = true;
  for (unsigned j = 0; j < parity_symbols(); ++j) {
    const Element x = field_.alpha_pow(params_.fcr + j);
    // Horner over c(x) = sum_p word[p] x^(n-1-p).
    Element acc = 0;
    for (unsigned p = 0; p < params_.n; ++p) {
      acc = GaloisField::add(field_.mul(acc, x), word[p]);
    }
    out[j] = acc;
    all_zero = all_zero && (acc == 0);
  }
  return all_zero;
}

bool ReedSolomon::is_codeword(std::span<const Element> word) const {
  if (word.size() != params_.n) return false;
  std::vector<Element> s;
  return syndromes(word, s);
}

std::vector<Element> ReedSolomon::extract_data(
    std::span<const Element> codeword) const {
  if (codeword.size() != params_.n) {
    throw std::invalid_argument("ReedSolomon::extract_data: size != n");
  }
  return std::vector<Element>(codeword.begin(), codeword.begin() + params_.k);
}

DecodeOutcome ReedSolomon::decode(
    std::span<Element> word, std::span<const unsigned> erasure_positions) const {
  DecoderWorkspace ws;
  return decode(ws, word, erasure_positions);
}

DecodeOutcome ReedSolomon::decode(
    DecoderWorkspace& ws, std::span<Element> word,
    std::span<const unsigned> erasure_positions) const {
  const Element* dense =
      params_.m <= 8 ? field_.dense_mul_table() : nullptr;
  if (dense != nullptr) {
    return decode_fast<true>(ws, word, erasure_positions, dense);
  }
  return decode_fast<false>(ws, word, erasure_positions, nullptr);
}

// The allocation-free pipeline. Mirrors decode_legacy step for step; every
// field operation computes the same element values in the same per-chain
// order, so outcomes AND corrected words are bit-identical — the only
// reorderings are across independent computations (syndrome chains,
// commutative locator products).
template <bool kDense>
DecodeOutcome ReedSolomon::decode_fast(
    DecoderWorkspace& ws, std::span<Element> word,
    std::span<const unsigned> erasure_positions, const Element* dense) const {
  const unsigned n = params_.n;
  const unsigned two_t = parity_symbols();
  const FieldOps<kDense> op{field_, dense, params_.m};

  if (word.size() != n) {
    throw std::invalid_argument("ReedSolomon::decode: word size != n");
  }
  // Erasure validation via a per-position mark buffer (no std::set).
  ws.erasure_mark.assign(n, 0);
  for (const unsigned p : erasure_positions) {
    if (p >= n) {
      throw std::invalid_argument(
          "ReedSolomon::decode: erasure position out of range");
    }
    if (ws.erasure_mark[p] != 0) {
      throw std::invalid_argument(
          "ReedSolomon::decode: duplicate erasure position");
    }
    ws.erasure_mark[p] = 1;
  }
  for (const Element w : word) {
    if (!field_.contains(w)) {
      throw std::invalid_argument("ReedSolomon::decode: symbol out of field");
    }
  }

  const unsigned rho = static_cast<unsigned>(erasure_positions.size());
  if (rho > two_t) {
    return {DecodeStatus::kFailure, 0, 0};
  }

  // Syndromes. The kernel route computes synd[j] = sum_p word[p] *
  // X_p^(fcr+j) from precomputed split-nibble rows (two xor_acc per
  // non-zero symbol); X_p^(fcr+j) == roots[j]^(n-1-p), so it is the same
  // exact value the position-major Horner chains produce — only the XOR
  // association differs, which is lossless in GF(2^m).
  ws.synd.assign(two_t, 0);
  Element* synd = ws.synd.data();
  const Element* roots = syndrome_root_.data();
  const gf::simd::Kernels* kn = simd_kernels_for(params_.m);
  const SimdTables* st = kn != nullptr ? simd_tables() : nullptr;
  if (kn != nullptr && two_t >= kMinKernelTwoT) {
    alignas(gf::kHotPathAlignment) std::uint8_t synd8[kMaxSymbols] = {0};
    const std::size_t stride = st->synd_stride;
    for (unsigned p = 0; p < n; ++p) {
      const Element w = word[p];
      if (w == 0) continue;
      const std::uint8_t* rows =
          st->synd_nib.data() + static_cast<std::size_t>(p) * 32 * stride;
      kn->xor_acc(synd8, rows + (w & 0xF) * stride, two_t);
      if ((w >> 4) != 0) {
        kn->xor_acc(synd8, rows + (16 + (w >> 4)) * stride, two_t);
      }
    }
    for (unsigned j = 0; j < two_t; ++j) synd[j] = synd8[j];
  } else {
    for (unsigned p = 0; p < n; ++p) {
      const Element w = word[p];
      for (unsigned j = 0; j < two_t; ++j) {
        synd[j] = op.mul(synd[j], roots[j]) ^ w;
      }
    }
  }
  bool clean = true;
  for (unsigned j = 0; j < two_t; ++j) clean = clean && synd[j] == 0;
  if (clean) {
    // Already a codeword: with no erasures this matches the legacy early
    // exit; with erasures the legacy pipeline walks Chien/Forney only to
    // compute all-zero magnitudes and land on the same kNoError.
    return {DecodeStatus::kNoError, 0, 0};
  }

  // Erasure locator Gamma(x) = prod_i (1 + X_i x), built in place.
  ws.gamma.assign(two_t + 1, 0);
  Element* gamma = ws.gamma.data();
  gamma[0] = 1;
  unsigned dgamma = 0;
  for (const unsigned p : erasure_positions) {
    const Element X = pos_locator_[p];
    for (unsigned j = dgamma + 1; j > 0; --j) {
      gamma[j] ^= op.mul(gamma[j - 1], X);
    }
    ++dgamma;
  }

  // Modified syndrome Xi(x) = S(x) * Gamma(x) mod x^(2t).
  ws.xi.assign(two_t, 0);
  Element* xi = ws.xi.data();
  for (unsigned i = 0; i < two_t; ++i) {
    if (synd[i] == 0) continue;
    const unsigned jmax = std::min(dgamma, two_t - 1 - i);
    for (unsigned j = 0; j <= jmax; ++j) {
      xi[i + j] ^= op.mul(synd[i], gamma[j]);
    }
  }
  const int dxi = degree_in(xi, two_t);

  // Error locator Lambda ends up in u1 (monic-normalized by u1[0]); the
  // Xi-cofactor evaluator in r1.
  ws.r0.assign(two_t + 1, 0);
  ws.r1.assign(two_t + 1, 0);
  ws.u0.assign(two_t + 1, 0);
  ws.u1.assign(two_t + 1, 0);
  Element* r0 = ws.r0.data();
  Element* r1 = ws.r1.data();
  Element* u0 = ws.u0.data();
  Element* u1 = ws.u1.data();
  unsigned dlambda = 0;
  if (dxi >= 0) {
    // Sugiyama: extended Euclid on (x^(2t), Xi), tracking the Xi-cofactor.
    // Stop at the first remainder with 2*deg(r) < 2t + rho.
    r0[two_t] = 1;
    std::copy(xi, xi + two_t, r1);
    u1[0] = 1;
    int dr1 = dxi;
    while (dr1 >= 0 && 2 * static_cast<unsigned>(dr1) >= two_t + rho) {
      // One Euclid step, in place: divide r0 by r1 (remainder replaces r0)
      // while accumulating u0 += q * u1, then swap the pairs.
      const Element lead_inv = field_.inv(r1[dr1]);
      const int du1 = degree_in(u1, two_t + 1);
      for (int d = degree_in(r0, two_t + 1); d >= dr1;
           d = degree_in(r0, static_cast<std::size_t>(d) + 1)) {
        const Element c = op.mul(r0[d], lead_inv);
        const unsigned shift = static_cast<unsigned>(d - dr1);
        for (int i = 0; i <= dr1; ++i) r0[i + shift] ^= op.mul(c, r1[i]);
        for (int i = 0; i <= du1; ++i) u0[i + shift] ^= op.mul(c, u1[i]);
      }
      std::swap(r0, r1);
      std::swap(u0, u1);
      dr1 = degree_in(r1, two_t + 1);
    }
    const Element ucoef0 = u1[0];
    if (ucoef0 == 0) {
      return {DecodeStatus::kFailure, 0, 0};
    }
    const Element u0_inv = field_.inv(ucoef0);
    const int du = degree_in(u1, two_t + 1);
    for (int i = 0; i <= du; ++i) u1[i] = op.mul(u1[i], u0_inv);
    const int drem = degree_in(r1, two_t + 1);
    for (int i = 0; i <= drem; ++i) r1[i] = op.mul(r1[i], u0_inv);
    dlambda = static_cast<unsigned>(std::max(0, du));
    // Capability check: nu <= (2t - rho) / 2.
    if (2 * dlambda + rho > two_t) {
      return {DecodeStatus::kFailure, 0, 0};
    }
  } else {
    // Errors are confined to the erasure positions (if any): Lambda = 1.
    u1[0] = 1;
  }

  // Combined locator Psi = Lambda * Gamma and its evaluator
  // Omega = Psi * S mod x^(2t) (correct also for the pure-erasure case).
  ws.psi.assign(two_t + 1, 0);
  Element* psi = ws.psi.data();
  for (unsigned i = 0; i <= dlambda; ++i) {
    if (u1[i] == 0) continue;
    for (unsigned j = 0; j <= dgamma; ++j) {
      psi[i + j] ^= op.mul(u1[i], gamma[j]);
    }
  }
  const unsigned dpsi = dlambda + dgamma;
  const unsigned expected_roots = dpsi;
  if (expected_roots == 0) {
    // Non-zero syndromes but empty locator: detected failure (the clean
    // case already returned above).
    return {DecodeStatus::kFailure, 0, 0};
  }

  ws.omega.assign(two_t, 0);
  Element* omega = ws.omega.data();
  for (unsigned i = 0; i <= dpsi && i < two_t; ++i) {
    if (psi[i] == 0) continue;
    const unsigned jmax = two_t - 1 - i;
    for (unsigned j = 0; j <= jmax; ++j) {
      if (synd[j] != 0) omega[i + j] ^= op.mul(psi[i], synd[j]);
    }
  }
  const int domega = degree_in(omega, two_t);

  ws.psi_deriv.assign(two_t, 0);
  Element* psi_deriv = ws.psi_deriv.data();
  for (unsigned i = 1; i <= dpsi; i += 2) psi_deriv[i - 1] = psi[i];
  const int dderiv = degree_in(psi_deriv, two_t);

  // Chien search restricted to the n valid positions of the shortened code,
  // with Forney magnitudes at every root. The kernel route evaluates
  // Psi(X_p^-1) for all positions at once as sum_i psi[i] * X_p^(-i) from
  // the precomputed power rows — the same exact values as the per-position
  // Horner loops, so the same roots are found.
  ws.corrected.assign(word.begin(), word.end());
  Element* corrected = ws.corrected.data();
  unsigned roots_found = 0;
  unsigned errors_corrected = 0;
  unsigned erasures_corrected = 0;
  alignas(gf::kHotPathAlignment) std::uint8_t eval[kMaxSymbols];
  const bool have_eval = kn != nullptr && n >= kMinKernelN;
  if (have_eval) {
    std::memset(eval, 0, n);
    for (unsigned i = 0; i <= dpsi; ++i) {
      if (psi[i] == 0) continue;
      const std::uint8_t* row =
          st->chien_pow.data() + static_cast<std::size_t>(i) * st->chien_stride;
      if (psi[i] == 1) {
        kn->xor_acc(eval, row, n);
      } else {
        gf::simd::MulTables tbl;
        gf::simd::build_tables(tbl, field_, psi[i]);
        kn->mul_const_acc(eval, row, tbl, n);
      }
    }
  }
  for (unsigned p = 0; p < n; ++p) {
    const Element X_inv = pos_locator_inv_[p];
    if (have_eval) {
      if (eval[p] != 0) continue;
    } else {
      Element acc = 0;
      for (int i = static_cast<int>(dpsi); i >= 0; --i) {
        acc = op.mul(acc, X_inv) ^ psi[i];
      }
      if (acc != 0) continue;
    }
    ++roots_found;
    Element denom = 0;
    for (int i = dderiv; i >= 0; --i) {
      denom = op.mul(denom, X_inv) ^ psi_deriv[i];
    }
    if (denom == 0) {
      return {DecodeStatus::kFailure, 0, 0};
    }
    // Forney with first consecutive root fcr:
    // e = X^(1-fcr) * Omega(X^-1) / Psi'(X^-1).
    Element num = 0;
    for (int i = domega; i >= 0; --i) {
      num = op.mul(num, X_inv) ^ omega[i];
    }
    Element magnitude = field_.div(num, denom);
    magnitude = op.mul(magnitude, forney_scale_[p]);
    if (magnitude != 0) {
      corrected[p] ^= magnitude;
      if (ws.erasure_mark[p] != 0) {
        ++erasures_corrected;
      } else {
        ++errors_corrected;
      }
    }
  }
  if (roots_found != expected_roots) {
    // Locator has roots outside the valid position range (or repeated
    // roots): the error pattern is uncorrectable and detected as such.
    return {DecodeStatus::kFailure, 0, 0};
  }

  // Final verification: the corrected word must be a true codeword. Same
  // kernel/scalar split as the opening syndrome pass, same exact values.
  std::fill(synd, synd + two_t, 0);
  if (kn != nullptr && two_t >= kMinKernelTwoT) {
    alignas(gf::kHotPathAlignment) std::uint8_t synd8[kMaxSymbols] = {0};
    const std::size_t stride = st->synd_stride;
    for (unsigned p = 0; p < n; ++p) {
      const Element w = corrected[p];
      if (w == 0) continue;
      const std::uint8_t* rows =
          st->synd_nib.data() + static_cast<std::size_t>(p) * 32 * stride;
      kn->xor_acc(synd8, rows + (w & 0xF) * stride, two_t);
      if ((w >> 4) != 0) {
        kn->xor_acc(synd8, rows + (16 + (w >> 4)) * stride, two_t);
      }
    }
    for (unsigned j = 0; j < two_t; ++j) synd[j] = synd8[j];
  } else {
    for (unsigned p = 0; p < n; ++p) {
      const Element w = corrected[p];
      for (unsigned j = 0; j < two_t; ++j) {
        synd[j] = op.mul(synd[j], roots[j]) ^ w;
      }
    }
  }
  for (unsigned j = 0; j < two_t; ++j) {
    if (synd[j] != 0) return {DecodeStatus::kFailure, 0, 0};
  }
  std::copy(corrected, corrected + n, word.begin());
  if (errors_corrected == 0 && erasures_corrected == 0) {
    return {DecodeStatus::kNoError, 0, 0};
  }
  return {DecodeStatus::kCorrected, errors_corrected, erasures_corrected};
}

DecodeOutcome ReedSolomon::decode_legacy(
    std::span<Element> word, std::span<const unsigned> erasure_positions) const {
  if (word.size() != params_.n) {
    throw std::invalid_argument("ReedSolomon::decode: word size != n");
  }
  std::set<unsigned> erasure_set;
  for (const unsigned p : erasure_positions) {
    if (p >= params_.n) {
      throw std::invalid_argument(
          "ReedSolomon::decode: erasure position out of range");
    }
    if (!erasure_set.insert(p).second) {
      throw std::invalid_argument(
          "ReedSolomon::decode: duplicate erasure position");
    }
  }
  for (const Element w : word) {
    if (!field_.contains(w)) {
      throw std::invalid_argument("ReedSolomon::decode: symbol out of field");
    }
  }

  const unsigned two_t = parity_symbols();
  const unsigned rho = static_cast<unsigned>(erasure_set.size());
  if (rho > two_t) {
    return {DecodeStatus::kFailure, 0, 0};
  }

  std::vector<Element> synd;
  const bool clean = syndromes(word, synd);
  if (clean && rho == 0) {
    return {DecodeStatus::kNoError, 0, 0};
  }

  // Erasure locator Gamma(x) = prod_i (1 - X_i x), X_i the position locators.
  Poly gamma = Poly::one();
  for (const unsigned p : erasure_set) {
    const Element X = locator_of_position(p);
    gamma = Poly::mul(field_, gamma, Poly{std::vector<Element>{1, X}});
  }

  // Modified syndrome Xi(x) = S(x) * Gamma(x) mod x^(2t).
  const Poly S{std::vector<Element>(synd.begin(), synd.end())};
  const Poly xi = Poly::mul(field_, S, gamma).truncated(two_t);

  Poly lambda = Poly::one();  // error locator (errors only)
  Poly omega;                 // evaluator for the combined locator
  if (xi.is_zero()) {
    // Errors are confined to the erasure positions (if any).
    omega = Poly::zero();
  } else {
    // Sugiyama: extended Euclid on (x^(2t), Xi), tracking the Xi-cofactor.
    Poly r_prev = Poly::monomial(1, two_t);
    Poly r_cur = xi;
    Poly u_prev = Poly::zero();
    Poly u_cur = Poly::one();
    // Stop at the first remainder with 2*deg(r) < 2t + rho.
    while (!r_cur.is_zero() &&
           2 * static_cast<unsigned>(r_cur.degree()) >= two_t + rho) {
      const Poly::DivMod dm = Poly::divmod(field_, r_prev, r_cur);
      Poly r_next = dm.remainder;
      Poly u_next =
          Poly::add(u_prev, Poly::mul(field_, dm.quotient, u_cur));
      r_prev = std::move(r_cur);
      r_cur = std::move(r_next);
      u_prev = std::move(u_cur);
      u_cur = std::move(u_next);
    }
    const Element u0 = u_cur.coeff(0);
    if (u0 == 0) {
      return {DecodeStatus::kFailure, 0, 0};
    }
    const Element u0_inv = field_.inv(u0);
    lambda = Poly::scale(field_, u_cur, u0_inv);
    omega = Poly::scale(field_, r_cur, u0_inv);
    // Capability check: nu <= (2t - rho) / 2.
    const unsigned nu = static_cast<unsigned>(std::max(0, lambda.degree()));
    if (2 * nu + rho > two_t) {
      return {DecodeStatus::kFailure, 0, 0};
    }
  }

  // Combined locator Psi = Lambda * Gamma and its evaluator.
  const Poly psi = Poly::mul(field_, lambda, gamma);
  // Omega above solves Lambda*Xi = Omega mod x^2t; the combined evaluator is
  // Psi*S mod x^2t, which equals Lambda*Gamma*S = Lambda*Xi mod x^2t. Use the
  // direct product to stay correct also when xi was zero (pure erasures).
  const Poly omega_c = Poly::mul(field_, psi, S).truncated(two_t);

  const unsigned expected_roots = static_cast<unsigned>(std::max(0, psi.degree()));
  if (expected_roots == 0) {
    // Non-zero syndromes but empty locator: detected failure (can happen only
    // without erasures, when Euclid degenerates).
    if (!clean) return {DecodeStatus::kFailure, 0, 0};
    return {DecodeStatus::kNoError, 0, 0};
  }

  // Chien search restricted to the n valid positions of the shortened code.
  const Poly psi_deriv = psi.derivative();
  unsigned roots_found = 0;
  unsigned errors_corrected = 0;
  unsigned erasures_corrected = 0;
  std::vector<Element> corrected(word.begin(), word.end());
  for (unsigned p = 0; p < params_.n; ++p) {
    const Element X = locator_of_position(p);
    const Element X_inv = field_.inv(X);
    if (psi.eval(field_, X_inv) != 0) continue;
    ++roots_found;
    const Element denom = psi_deriv.eval(field_, X_inv);
    if (denom == 0) {
      return {DecodeStatus::kFailure, 0, 0};
    }
    // Forney with first consecutive root fcr: e = X^(1-fcr) * Omega(X^-1)/Psi'(X^-1).
    const Element num = omega_c.eval(field_, X_inv);
    Element magnitude = field_.div(num, denom);
    magnitude = field_.mul(
        magnitude, field_.pow(X, 1 - static_cast<long long>(params_.fcr)));
    if (magnitude != 0) {
      corrected[p] = GaloisField::add(corrected[p], magnitude);
      if (erasure_set.count(p) != 0) {
        ++erasures_corrected;
      } else {
        ++errors_corrected;
      }
    }
  }
  if (roots_found != expected_roots) {
    // Locator has roots outside the valid position range (or repeated
    // roots): the error pattern is uncorrectable and detected as such.
    return {DecodeStatus::kFailure, 0, 0};
  }

  // Final verification: the corrected word must be a true codeword.
  std::vector<Element> check;
  if (!syndromes(corrected, check)) {
    return {DecodeStatus::kFailure, 0, 0};
  }
  std::copy(corrected.begin(), corrected.end(), word.begin());
  if (errors_corrected == 0 && erasures_corrected == 0) {
    return {DecodeStatus::kNoError, 0, 0};
  }
  return {DecodeStatus::kCorrected, errors_corrected, erasures_corrected};
}

}  // namespace rsmem::rs
