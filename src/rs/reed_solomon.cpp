#include "rs/reed_solomon.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>

namespace rsmem::rs {

using gf::GaloisField;
using gf::Poly;

ReedSolomon::ReedSolomon(const CodeParams& params)
    : params_(params),
      field_(params.m, params.prim_poly != 0
                           ? params.prim_poly
                           : gf::GaloisField::default_primitive_poly(
                                 params.m)) {
  if (params_.k == 0 || params_.k >= params_.n) {
    throw std::invalid_argument("ReedSolomon: require 0 < k < n");
  }
  if (params_.n > field_.order()) {
    throw std::invalid_argument(
        "ReedSolomon: n exceeds 2^m - 1 (n=" + std::to_string(params_.n) +
        ", m=" + std::to_string(params_.m) + ")");
  }
  // g(x) = prod_{j=0}^{n-k-1} (x - alpha^(fcr+j)); note -a == a in GF(2^m).
  generator_ = Poly::one();
  for (unsigned j = 0; j < parity_symbols(); ++j) {
    const Element root = field_.alpha_pow(params_.fcr + j);
    Poly factor{std::vector<Element>{root, 1}};  // (x + root)
    generator_ = Poly::mul(field_, generator_, factor);
  }
}

void ReedSolomon::encode(std::span<const Element> data,
                         std::span<Element> codeword) const {
  if (data.size() != params_.k) {
    throw std::invalid_argument("ReedSolomon::encode: data size != k");
  }
  if (codeword.size() != params_.n) {
    throw std::invalid_argument("ReedSolomon::encode: codeword size != n");
  }
  for (const Element d : data) {
    if (!field_.contains(d)) {
      throw std::invalid_argument("ReedSolomon::encode: symbol out of field");
    }
  }
  // Message polynomial with data[0] as the highest-degree coefficient:
  // M(x) = sum_p data[p] * x^(k-1-p); codeword poly c(x) = M(x)*x^(n-k) - R,
  // R = (M(x)*x^(n-k)) mod g(x). External position p holds coeff of x^(n-1-p).
  std::vector<Element> shifted(params_.n, 0);
  for (unsigned p = 0; p < params_.k; ++p) {
    shifted[params_.n - 1 - p] = data[p];
  }
  const Poly remainder =
      Poly::mod(field_, Poly{std::move(shifted)}, generator_);
  std::copy(data.begin(), data.end(), codeword.begin());
  for (unsigned j = 0; j < parity_symbols(); ++j) {
    // Parity position k+j holds coeff of x^(n-1-(k+j)) = x^(n-k-1-j).
    codeword[params_.k + j] = remainder.coeff(parity_symbols() - 1 - j);
  }
}

std::vector<Element> ReedSolomon::encode(std::span<const Element> data) const {
  std::vector<Element> cw(params_.n, 0);
  encode(data, cw);
  return cw;
}

bool ReedSolomon::syndromes(std::span<const Element> word,
                            std::vector<Element>& out) const {
  out.assign(parity_symbols(), 0);
  bool all_zero = true;
  for (unsigned j = 0; j < parity_symbols(); ++j) {
    const Element x = field_.alpha_pow(params_.fcr + j);
    // Horner over c(x) = sum_p word[p] x^(n-1-p).
    Element acc = 0;
    for (unsigned p = 0; p < params_.n; ++p) {
      acc = GaloisField::add(field_.mul(acc, x), word[p]);
    }
    out[j] = acc;
    all_zero = all_zero && (acc == 0);
  }
  return all_zero;
}

bool ReedSolomon::is_codeword(std::span<const Element> word) const {
  if (word.size() != params_.n) return false;
  std::vector<Element> s;
  return syndromes(word, s);
}

std::vector<Element> ReedSolomon::extract_data(
    std::span<const Element> codeword) const {
  if (codeword.size() != params_.n) {
    throw std::invalid_argument("ReedSolomon::extract_data: size != n");
  }
  return std::vector<Element>(codeword.begin(), codeword.begin() + params_.k);
}

DecodeOutcome ReedSolomon::decode(
    std::span<Element> word, std::span<const unsigned> erasure_positions) const {
  if (word.size() != params_.n) {
    throw std::invalid_argument("ReedSolomon::decode: word size != n");
  }
  std::set<unsigned> erasure_set;
  for (const unsigned p : erasure_positions) {
    if (p >= params_.n) {
      throw std::invalid_argument(
          "ReedSolomon::decode: erasure position out of range");
    }
    if (!erasure_set.insert(p).second) {
      throw std::invalid_argument(
          "ReedSolomon::decode: duplicate erasure position");
    }
  }
  for (const Element w : word) {
    if (!field_.contains(w)) {
      throw std::invalid_argument("ReedSolomon::decode: symbol out of field");
    }
  }

  const unsigned two_t = parity_symbols();
  const unsigned rho = static_cast<unsigned>(erasure_set.size());
  if (rho > two_t) {
    return {DecodeStatus::kFailure, 0, 0};
  }

  std::vector<Element> synd;
  const bool clean = syndromes(word, synd);
  if (clean && rho == 0) {
    return {DecodeStatus::kNoError, 0, 0};
  }

  // Erasure locator Gamma(x) = prod_i (1 - X_i x), X_i the position locators.
  Poly gamma = Poly::one();
  for (const unsigned p : erasure_set) {
    const Element X = locator_of_position(p);
    gamma = Poly::mul(field_, gamma, Poly{std::vector<Element>{1, X}});
  }

  // Modified syndrome Xi(x) = S(x) * Gamma(x) mod x^(2t).
  const Poly S{std::vector<Element>(synd.begin(), synd.end())};
  const Poly xi = Poly::mul(field_, S, gamma).truncated(two_t);

  Poly lambda = Poly::one();  // error locator (errors only)
  Poly omega;                 // evaluator for the combined locator
  if (xi.is_zero()) {
    // Errors are confined to the erasure positions (if any).
    omega = Poly::zero();
  } else {
    // Sugiyama: extended Euclid on (x^(2t), Xi), tracking the Xi-cofactor.
    Poly r_prev = Poly::monomial(1, two_t);
    Poly r_cur = xi;
    Poly u_prev = Poly::zero();
    Poly u_cur = Poly::one();
    // Stop at the first remainder with 2*deg(r) < 2t + rho.
    while (!r_cur.is_zero() &&
           2 * static_cast<unsigned>(r_cur.degree()) >= two_t + rho) {
      const Poly::DivMod dm = Poly::divmod(field_, r_prev, r_cur);
      Poly r_next = dm.remainder;
      Poly u_next =
          Poly::add(u_prev, Poly::mul(field_, dm.quotient, u_cur));
      r_prev = std::move(r_cur);
      r_cur = std::move(r_next);
      u_prev = std::move(u_cur);
      u_cur = std::move(u_next);
    }
    const Element u0 = u_cur.coeff(0);
    if (u0 == 0) {
      return {DecodeStatus::kFailure, 0, 0};
    }
    const Element u0_inv = field_.inv(u0);
    lambda = Poly::scale(field_, u_cur, u0_inv);
    omega = Poly::scale(field_, r_cur, u0_inv);
    // Capability check: nu <= (2t - rho) / 2.
    const unsigned nu = static_cast<unsigned>(std::max(0, lambda.degree()));
    if (2 * nu + rho > two_t) {
      return {DecodeStatus::kFailure, 0, 0};
    }
  }

  // Combined locator Psi = Lambda * Gamma and its evaluator.
  const Poly psi = Poly::mul(field_, lambda, gamma);
  // Omega above solves Lambda*Xi = Omega mod x^2t; the combined evaluator is
  // Psi*S mod x^2t, which equals Lambda*Gamma*S = Lambda*Xi mod x^2t. Use the
  // direct product to stay correct also when xi was zero (pure erasures).
  const Poly omega_c = Poly::mul(field_, psi, S).truncated(two_t);

  const unsigned expected_roots = static_cast<unsigned>(std::max(0, psi.degree()));
  if (expected_roots == 0) {
    // Non-zero syndromes but empty locator: detected failure (can happen only
    // without erasures, when Euclid degenerates).
    if (!clean) return {DecodeStatus::kFailure, 0, 0};
    return {DecodeStatus::kNoError, 0, 0};
  }

  // Chien search restricted to the n valid positions of the shortened code.
  const Poly psi_deriv = psi.derivative();
  unsigned roots_found = 0;
  unsigned errors_corrected = 0;
  unsigned erasures_corrected = 0;
  std::vector<Element> corrected(word.begin(), word.end());
  for (unsigned p = 0; p < params_.n; ++p) {
    const Element X = locator_of_position(p);
    const Element X_inv = field_.inv(X);
    if (psi.eval(field_, X_inv) != 0) continue;
    ++roots_found;
    const Element denom = psi_deriv.eval(field_, X_inv);
    if (denom == 0) {
      return {DecodeStatus::kFailure, 0, 0};
    }
    // Forney with first consecutive root fcr: e = X^(1-fcr) * Omega(X^-1)/Psi'(X^-1).
    const Element num = omega_c.eval(field_, X_inv);
    Element magnitude = field_.div(num, denom);
    magnitude = field_.mul(
        magnitude, field_.pow(X, 1 - static_cast<long long>(params_.fcr)));
    if (magnitude != 0) {
      corrected[p] = GaloisField::add(corrected[p], magnitude);
      if (erasure_set.count(p) != 0) {
        ++erasures_corrected;
      } else {
        ++errors_corrected;
      }
    }
  }
  if (roots_found != expected_roots) {
    // Locator has roots outside the valid position range (or repeated
    // roots): the error pattern is uncorrectable and detected as such.
    return {DecodeStatus::kFailure, 0, 0};
  }

  // Final verification: the corrected word must be a true codeword.
  std::vector<Element> check;
  if (!syndromes(corrected, check)) {
    return {DecodeStatus::kFailure, 0, 0};
  }
  std::copy(corrected.begin(), corrected.end(), word.begin());
  if (errors_corrected == 0 && erasures_corrected == 0) {
    return {DecodeStatus::kNoError, 0, 0};
  }
  return {DecodeStatus::kCorrected, errors_corrected, erasures_corrected};
}

}  // namespace rsmem::rs
