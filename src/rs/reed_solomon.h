// Reed-Solomon RS(n,k) codec over GF(2^m) with errors-AND-erasures decoding.
//
// This is the EDAC scheme of the paper: transient faults (SEU bit flips) are
// random errors at unknown positions; located permanent faults are erasures.
// A pattern of `re` random errors and `er` erasures is correctable iff
//     2*re + er <= n - k.
//
// Shortened codes (n < 2^m - 1), e.g. the paper's RS(18,16) and RS(36,16)
// over GF(2^8), are supported directly: codeword position p corresponds to
// the coefficient of x^(n-1-p), i.e. data symbols first, parity last.
//
// Decoding pipeline (Blahut, "Theory and Practice of Error Control Codes"):
//   syndromes -> erasure locator -> modified syndromes -> Sugiyama
//   (extended Euclid) key-equation solver -> Chien search -> Forney.
//
// Two implementations of that pipeline coexist:
//  * the WORKSPACE fast path (`decode(ws, ...)`) — an allocation-free
//    steady-state codec: all temporaries live in a reusable DecoderWorkspace,
//    the encoder is a table-driven systematic LFSR, clean words exit straight
//    from the syndrome pass, and for m <= 8 the inner loops read the field's
//    dense multiplication table (no log/exp indirection, no zero branches).
//    On top of that, for m <= 8 the three hot loops — LFSR encoding,
//    syndrome computation, and Chien search — and the batch plane APIs run
//    on the runtime-dispatched SIMD kernel layer (gf/simd_mul.h:
//    PSHUFB/AVX2 split-nibble multiply with a portable SWAR fallback).
//    When the selected backend is `scalar` (RSMEM_GF_BACKEND=scalar or a
//    -DRSMEM_DISABLE_SIMD=ON build) every call runs the original scalar
//    loops, which stay first-class as the A/B control. All backends are
//    bit-identical: same outcomes, same corrected words, same thrown
//    errors;
//  * the LEGACY reference path (`encode_legacy`/`decode_legacy`) — the
//    original Poly-based implementation, kept verbatim as the differential-
//    testing baseline. Outputs are bit-identical between the two paths for
//    every input, including beyond-capability mis-corrections.
//
// Failure semantics matter to the duplex arbiter (paper Section 3):
//  * kNoError   - the word is already a codeword; nothing changed.
//  * kCorrected - a correction was performed; the "flag" of the paper.
//  * kFailure   - the decoder knows it cannot produce a codeword.
// When the fault pattern exceeds the code capability the decoder may instead
// "mis-correct": return kCorrected with a *valid but wrong* codeword. That
// behaviour is real (not simulated) and is exactly what the duplex arbiter's
// flag-comparison logic is designed to handle.
#ifndef RSMEM_RS_REED_SOLOMON_H
#define RSMEM_RS_REED_SOLOMON_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "gf/aligned.h"
#include "gf/galois_field.h"
#include "gf/poly.h"
#include "gf/simd_mul.h"

namespace rsmem::rs {

using gf::Element;

enum class DecodeStatus : std::uint8_t {
  kNoError,    // word was already a codeword
  kCorrected,  // correction performed (sets the paper's flag)
  kFailure,    // detected uncorrectable pattern
};

struct DecodeOutcome {
  DecodeStatus status = DecodeStatus::kNoError;
  unsigned errors_corrected = 0;    // changed symbols outside the erasure set
  unsigned erasures_corrected = 0;  // changed symbols inside the erasure set

  // The paper's per-word correction flag: set when a correction has been
  // performed and completed.
  bool correction_flag() const { return status == DecodeStatus::kCorrected; }
  bool ok() const { return status != DecodeStatus::kFailure; }
};

struct CodeParams {
  unsigned n = 0;    // codeword length in symbols
  unsigned k = 0;    // dataword length in symbols
  unsigned m = 0;    // bits per symbol; requires n <= 2^m - 1
  unsigned fcr = 1;  // first consecutive root exponent of the generator
  // Primitive polynomial for GF(2^m), leading x^m term included; 0 selects
  // the library default. Set this when interoperating with an existing
  // codec built over a different field representation.
  std::uint32_t prim_poly = 0;
};

class ReedSolomon;

// Reusable scratch arena for the allocation-free codec fast path. Every
// decode temporary (syndromes, erasure/error locators, Sugiyama remainder
// and cofactor buffers, the corrected-word image) lives here and is
// re-initialized — never reallocated — on each call, so steady-state
// decodes perform ZERO heap allocations once the buffers have grown to the
// largest code seen (or after reserve()).
//
// THREAD SAFETY: a workspace is per-call mutable state; use one workspace
// per thread. One workspace may be shared freely across different codes and
// interleaved calls on the same thread — buffers adapt per call, and no
// state (including failed-decode state) leaks between calls.
class DecoderWorkspace {
 public:
  DecoderWorkspace() = default;

  // Pre-sizes every buffer for `code` (and forces the field's dense
  // multiplication table for m <= 8), so even the first decode through this
  // workspace allocates nothing.
  void reserve(const ReedSolomon& code);

 private:
  friend class ReedSolomon;
  std::vector<Element> synd;       // 2t syndromes / final re-check
  std::vector<Element> gamma;      // erasure locator Gamma(x)
  std::vector<Element> xi;         // modified syndromes Xi(x)
  std::vector<Element> r0, r1;     // Sugiyama remainder pair
  std::vector<Element> u0, u1;     // Sugiyama cofactor pair
  std::vector<Element> psi;        // combined locator Lambda*Gamma
  std::vector<Element> psi_deriv;  // formal derivative of psi
  std::vector<Element> omega;      // combined evaluator
  std::vector<Element> corrected;  // corrected-word image
  std::vector<unsigned char> erasure_mark;  // per-position erasure flags
  std::vector<unsigned> erasure_scratch;    // batch erasure gathering

  // Byte-domain SoA staging for the batch-plane SIMD paths (m <= 8 only).
  // 64-byte aligned (gf::AlignedVector) with row strides rounded to the
  // same boundary, so every SoA row starts on a cache line; caller planes
  // may be arbitrarily aligned — the kernels use unaligned loads for those.
  gf::AlignedVector<std::uint8_t> soa_in;     // batch symbol planes (SoA)
  gf::AlignedVector<std::uint8_t> soa_acc;    // batch parity/syndrome rows
  gf::AlignedVector<std::uint8_t> soa_dirty;  // batch non-clean word mask
};

class ReedSolomon {
 public:
  // Throws std::invalid_argument for inconsistent parameters
  // (k >= n, n > 2^m - 1, m out of range).
  explicit ReedSolomon(const CodeParams& params);
  ReedSolomon(unsigned n, unsigned k, unsigned m)
      : ReedSolomon(CodeParams{n, k, m, 1}) {}

  unsigned n() const { return params_.n; }
  unsigned k() const { return params_.k; }
  unsigned m() const { return params_.m; }
  unsigned fcr() const { return params_.fcr; }
  unsigned parity_symbols() const { return params_.n - params_.k; }
  // Maximum random errors correctable with no erasures: t = floor((n-k)/2).
  unsigned t() const { return parity_symbols() / 2; }

  const gf::GaloisField& field() const { return field_; }
  const gf::Poly& generator() const { return generator_; }

  // True iff the pattern (erasures, random_errors) is within the code's
  // guaranteed correction capability: erasures + 2*random_errors <= n-k.
  bool correctable(unsigned erasures, unsigned random_errors) const {
    return erasures + 2 * random_errors <= parity_symbols();
  }

  // Systematic encoding: codeword = [data (k symbols) | parity (n-k)].
  // Implemented as a table-driven LFSR over the precomputed generator
  // coefficients; allocation-free, bit-identical to encode_legacy.
  // Throws std::invalid_argument on size mismatch or out-of-field symbols.
  void encode(std::span<const Element> data, std::span<Element> codeword) const;
  std::vector<Element> encode(std::span<const Element> data) const;
  // Workspace overload for API symmetry with decode (the encoder itself
  // needs no scratch).
  void encode(DecoderWorkspace& ws, std::span<const Element> data,
              std::span<Element> codeword) const;

  // In-place errors-and-erasures decoding through a workspace: the
  // allocation-free fast path. `erasure_positions` lists indices in [0, n)
  // whose content is untrusted (located permanent faults); the stored value
  // at those positions is irrelevant. Duplicate positions are rejected with
  // std::invalid_argument. On kNoError/kCorrected the word is a valid
  // codeword afterwards; on kFailure the word is left untouched.
  DecodeOutcome decode(DecoderWorkspace& ws, std::span<Element> word,
                       std::span<const unsigned> erasure_positions = {}) const;

  // Convenience wrapper over the workspace path using a per-call scratch
  // workspace. Prefer holding a DecoderWorkspace for hot loops.
  DecodeOutcome decode(std::span<Element> word,
                       std::span<const unsigned> erasure_positions = {}) const;

  // Batch API over contiguous symbol planes: `data_plane` is `count`
  // datawords of k symbols back to back; `codeword_plane` receives `count`
  // codewords of n symbols. Sizes must match exactly (count is derived from
  // the plane sizes).
  void encode_batch(DecoderWorkspace& ws, std::span<const Element> data_plane,
                    std::span<Element> codeword_plane) const;
  // Decodes `count = word_plane.size()/n` words in place, one outcome per
  // word. `erasure_flags`, when non-empty, marks untrusted symbol positions
  // (size must equal word_plane.size()). Allocation-free in steady state.
  void decode_batch(DecoderWorkspace& ws, std::span<Element> word_plane,
                    std::span<DecodeOutcome> outcomes,
                    std::span<const std::uint8_t> erasure_flags = {}) const;

  // Legacy Poly-based reference implementations, kept verbatim as the
  // baseline for differential tests and BENCH_codec.json comparisons.
  // Bit-identical to the fast path on every input.
  void encode_legacy(std::span<const Element> data,
                     std::span<Element> codeword) const;
  DecodeOutcome decode_legacy(
      std::span<Element> word,
      std::span<const unsigned> erasure_positions = {}) const;

  // Extracts the k data symbols from a (corrected) codeword.
  std::vector<Element> extract_data(std::span<const Element> codeword) const;

  bool is_codeword(std::span<const Element> word) const;

 private:
  // Syndromes S_j = c(alpha^(fcr+j)), j in [0, n-k). Returns true if all 0.
  bool syndromes(std::span<const Element> word,
                 std::vector<Element>& out) const;
  // Locator value of codeword position p: X = alpha^(n-1-p).
  Element locator_of_position(unsigned p) const {
    return field_.alpha_pow(static_cast<long long>(params_.n - 1 - p));
  }
  void validate_encode_args(std::span<const Element> data,
                            std::span<Element> codeword) const;
  template <bool kDense>
  DecodeOutcome decode_fast(DecoderWorkspace& ws, std::span<Element> word,
                            std::span<const unsigned> erasure_positions,
                            const Element* dense) const;

  // Per-code constant tables for the SIMD kernel layer (m <= 8), built
  // lazily on first use (thread-safe, one build per code) and shared by
  // every workspace. reserve() forces the build so steady-state calls
  // never construct tables. All rows are 64-byte aligned.
  struct SimdTables {
    // Batch encode: split-nibble tables for P[p][j], the parity-j
    // contribution of a unit data symbol at position p. Index p*2t + j.
    gf::AlignedVector<gf::simd::MulTables> encode_mul;
    // Batch syndromes: tables for X_p^(fcr+j). Index p*2t + j.
    gf::AlignedVector<gf::simd::MulTables> synd_mul;
    // Per-word syndromes, split-nibble pre-expansion: row (p, v) holds
    // v * X_p^(fcr+j) over j for v in [0,16), then (v<<4) * X_p^(fcr+j)
    // for v in [16,32). Index ((p*32 + v) * synd_stride + j).
    gf::AlignedVector<std::uint8_t> synd_nib;
    std::size_t synd_stride = 0;  // 2t rounded up for row alignment
    // Per-word LFSR encode: row v holds v*g[j] (v < 16) / (v-16)<<4 * g[j].
    gf::AlignedVector<std::uint8_t> lfsr_nib;
    // Chien search: row i holds X_p^(-i) over positions p, i in [0, 2t].
    gf::AlignedVector<std::uint8_t> chien_pow;
    std::size_t chien_stride = 0;  // n rounded up for row alignment
  };
  // Returns the lazily built tables, or nullptr for m > 8.
  const SimdTables* simd_tables() const;
  // reserve() forces the lazy SIMD table build.
  friend class DecoderWorkspace;

  CodeParams params_;
  gf::GaloisField field_;
  gf::Poly generator_;
  // Precomputed per-code tables for the fast path (all O(n) small):
  std::vector<Element> syndrome_root_;    // alpha^(fcr+j), j in [0, n-k)
  std::vector<Element> pos_locator_;      // X_p = alpha^(n-1-p)
  std::vector<Element> pos_locator_inv_;  // X_p^-1 (Chien search)
  std::vector<Element> forney_scale_;     // X_p^(1-fcr) (Forney)
  std::vector<Element> gen_lfsr_;         // g coeff of x^(n-k-1-j) at [j]
  // Lazily built SIMD constant tables (see SimdTables above).
  mutable std::unique_ptr<SimdTables> simd_;
  mutable std::atomic<const SimdTables*> simd_ptr_{nullptr};
  mutable std::mutex simd_build_;
};

}  // namespace rsmem::rs

#endif  // RSMEM_RS_REED_SOLOMON_H
