// Reed-Solomon RS(n,k) codec over GF(2^m) with errors-AND-erasures decoding.
//
// This is the EDAC scheme of the paper: transient faults (SEU bit flips) are
// random errors at unknown positions; located permanent faults are erasures.
// A pattern of `re` random errors and `er` erasures is correctable iff
//     2*re + er <= n - k.
//
// Shortened codes (n < 2^m - 1), e.g. the paper's RS(18,16) and RS(36,16)
// over GF(2^8), are supported directly: codeword position p corresponds to
// the coefficient of x^(n-1-p), i.e. data symbols first, parity last.
//
// Decoding pipeline (Blahut, "Theory and Practice of Error Control Codes"):
//   syndromes -> erasure locator -> modified syndromes -> Sugiyama
//   (extended Euclid) key-equation solver -> Chien search -> Forney.
//
// Failure semantics matter to the duplex arbiter (paper Section 3):
//  * kNoError   - the word is already a codeword; nothing changed.
//  * kCorrected - a correction was performed; the "flag" of the paper.
//  * kFailure   - the decoder knows it cannot produce a codeword.
// When the fault pattern exceeds the code capability the decoder may instead
// "mis-correct": return kCorrected with a *valid but wrong* codeword. That
// behaviour is real (not simulated) and is exactly what the duplex arbiter's
// flag-comparison logic is designed to handle.
#ifndef RSMEM_RS_REED_SOLOMON_H
#define RSMEM_RS_REED_SOLOMON_H

#include <cstdint>
#include <span>
#include <vector>

#include "gf/galois_field.h"
#include "gf/poly.h"

namespace rsmem::rs {

using gf::Element;

enum class DecodeStatus : std::uint8_t {
  kNoError,    // word was already a codeword
  kCorrected,  // correction performed (sets the paper's flag)
  kFailure,    // detected uncorrectable pattern
};

struct DecodeOutcome {
  DecodeStatus status = DecodeStatus::kNoError;
  unsigned errors_corrected = 0;    // changed symbols outside the erasure set
  unsigned erasures_corrected = 0;  // changed symbols inside the erasure set

  // The paper's per-word correction flag: set when a correction has been
  // performed and completed.
  bool correction_flag() const { return status == DecodeStatus::kCorrected; }
  bool ok() const { return status != DecodeStatus::kFailure; }
};

struct CodeParams {
  unsigned n = 0;    // codeword length in symbols
  unsigned k = 0;    // dataword length in symbols
  unsigned m = 0;    // bits per symbol; requires n <= 2^m - 1
  unsigned fcr = 1;  // first consecutive root exponent of the generator
  // Primitive polynomial for GF(2^m), leading x^m term included; 0 selects
  // the library default. Set this when interoperating with an existing
  // codec built over a different field representation.
  std::uint32_t prim_poly = 0;
};

class ReedSolomon {
 public:
  // Throws std::invalid_argument for inconsistent parameters
  // (k >= n, n > 2^m - 1, m out of range).
  explicit ReedSolomon(const CodeParams& params);
  ReedSolomon(unsigned n, unsigned k, unsigned m)
      : ReedSolomon(CodeParams{n, k, m, 1}) {}

  unsigned n() const { return params_.n; }
  unsigned k() const { return params_.k; }
  unsigned m() const { return params_.m; }
  unsigned fcr() const { return params_.fcr; }
  unsigned parity_symbols() const { return params_.n - params_.k; }
  // Maximum random errors correctable with no erasures: t = floor((n-k)/2).
  unsigned t() const { return parity_symbols() / 2; }

  const gf::GaloisField& field() const { return field_; }
  const gf::Poly& generator() const { return generator_; }

  // True iff the pattern (erasures, random_errors) is within the code's
  // guaranteed correction capability: erasures + 2*random_errors <= n-k.
  bool correctable(unsigned erasures, unsigned random_errors) const {
    return erasures + 2 * random_errors <= parity_symbols();
  }

  // Systematic encoding: codeword = [data (k symbols) | parity (n-k)].
  // Throws std::invalid_argument on size mismatch or out-of-field symbols.
  void encode(std::span<const Element> data, std::span<Element> codeword) const;
  std::vector<Element> encode(std::span<const Element> data) const;

  // In-place errors-and-erasures decoding. `erasure_positions` lists indices
  // in [0, n) whose content is untrusted (located permanent faults); the
  // stored value at those positions is irrelevant. Duplicate positions are
  // rejected with std::invalid_argument.
  // On kNoError/kCorrected the word is a valid codeword afterwards.
  DecodeOutcome decode(std::span<Element> word,
                       std::span<const unsigned> erasure_positions = {}) const;

  // Extracts the k data symbols from a (corrected) codeword.
  std::vector<Element> extract_data(std::span<const Element> codeword) const;

  bool is_codeword(std::span<const Element> word) const;

 private:
  // Syndromes S_j = c(alpha^(fcr+j)), j in [0, n-k). Returns true if all 0.
  bool syndromes(std::span<const Element> word,
                 std::vector<Element>& out) const;
  // Locator value of codeword position p: X = alpha^(n-1-p).
  Element locator_of_position(unsigned p) const {
    return field_.alpha_pow(static_cast<long long>(params_.n - 1 - p));
  }

  CodeParams params_;
  gf::GaloisField field_;
  gf::Poly generator_;
};

}  // namespace rsmem::rs

#endif  // RSMEM_RS_REED_SOLOMON_H
