#include "rs/stream_codec.h"

#include <algorithm>
#include <stdexcept>

namespace rsmem::rs {

StreamCodec::StreamCodec(const CodeParams& params) : code_(params) {
  if (params.m != 8) {
    throw std::invalid_argument("StreamCodec: requires byte symbols (m=8)");
  }
}

std::size_t StreamCodec::frames_for(std::size_t payload_bytes) const {
  const std::size_t k = code_.k();
  return payload_bytes == 0 ? 1 : (payload_bytes + k - 1) / k;
}

std::size_t StreamCodec::encoded_size(std::size_t payload_bytes) const {
  return frames_for(payload_bytes) * code_.n();
}

std::vector<std::uint8_t> StreamCodec::encode(
    std::span<const std::uint8_t> payload) const {
  const std::size_t k = code_.k();
  const std::size_t n = code_.n();
  const std::size_t frames = frames_for(payload.size());
  // Widen the payload into a contiguous dataword plane (zero-padding the
  // last frame) and run the batch encoder over it.
  std::vector<gf::Element> data_plane(frames * k, 0);
  std::copy(payload.begin(), payload.end(), data_plane.begin());
  std::vector<gf::Element> word_plane(frames * n);
  DecoderWorkspace ws;
  code_.encode_batch(ws, data_plane, word_plane);
  std::vector<std::uint8_t> out(word_plane.size());
  std::transform(word_plane.begin(), word_plane.end(), out.begin(),
                 [](gf::Element s) { return static_cast<std::uint8_t>(s); });
  return out;
}

StreamCodec::StreamResult StreamCodec::decode(
    std::span<const std::uint8_t> encoded, std::size_t payload_bytes,
    std::span<const std::uint8_t> erasure_flags) const {
  const std::size_t n = code_.n();
  const std::size_t k = code_.k();
  const std::size_t frames = frames_for(payload_bytes);
  if (encoded.size() != frames * n) {
    throw std::invalid_argument(
        "StreamCodec::decode: encoded size does not match payload_bytes");
  }
  if (!erasure_flags.empty() && erasure_flags.size() != encoded.size()) {
    throw std::invalid_argument(
        "StreamCodec::decode: erasure_flags size mismatch");
  }

  StreamResult result;
  result.frames = frames;
  result.payload.assign(payload_bytes, 0);
  result.ok = true;
  // Widen into a symbol plane; the per-frame erasure flags map 1:1 onto the
  // batch decoder's flag plane.
  std::vector<gf::Element> word_plane(encoded.begin(), encoded.end());
  std::vector<DecodeOutcome> outcomes(frames);
  DecoderWorkspace ws;
  code_.decode_batch(ws, word_plane, outcomes, erasure_flags);
  for (std::size_t f = 0; f < frames; ++f) {
    const DecodeOutcome& outcome = outcomes[f];
    if (!outcome.ok()) {
      ++result.frames_failed;
      result.ok = false;
      continue;  // failed frames leave zeros in the payload
    }
    if (outcome.status == DecodeStatus::kCorrected) {
      ++result.frames_corrected;
    }
    const std::size_t copy =
        std::min(k, payload_bytes - std::min(payload_bytes, f * k));
    for (std::size_t i = 0; i < copy; ++i) {
      result.payload[f * k + i] =
          static_cast<std::uint8_t>(word_plane[f * n + i]);
    }
  }
  return result;
}

}  // namespace rsmem::rs
