#include "rs/stream_codec.h"

#include <algorithm>
#include <stdexcept>

namespace rsmem::rs {

StreamCodec::StreamCodec(const CodeParams& params) : code_(params) {
  if (params.m != 8) {
    throw std::invalid_argument("StreamCodec: requires byte symbols (m=8)");
  }
}

std::size_t StreamCodec::frames_for(std::size_t payload_bytes) const {
  const std::size_t k = code_.k();
  return payload_bytes == 0 ? 1 : (payload_bytes + k - 1) / k;
}

std::size_t StreamCodec::encoded_size(std::size_t payload_bytes) const {
  return frames_for(payload_bytes) * code_.n();
}

std::vector<std::uint8_t> StreamCodec::encode(
    std::span<const std::uint8_t> payload) const {
  const std::size_t k = code_.k();
  const std::size_t frames = frames_for(payload.size());
  std::vector<std::uint8_t> out;
  out.reserve(frames * code_.n());
  std::vector<gf::Element> data(k, 0);
  std::vector<gf::Element> word(code_.n());
  for (std::size_t f = 0; f < frames; ++f) {
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t pos = f * k + i;
      data[i] = pos < payload.size() ? payload[pos] : 0;
    }
    code_.encode(data, word);
    for (const gf::Element s : word) {
      out.push_back(static_cast<std::uint8_t>(s));
    }
  }
  return out;
}

StreamCodec::StreamResult StreamCodec::decode(
    std::span<const std::uint8_t> encoded, std::size_t payload_bytes,
    std::span<const std::uint8_t> erasure_flags) const {
  const std::size_t n = code_.n();
  const std::size_t k = code_.k();
  const std::size_t frames = frames_for(payload_bytes);
  if (encoded.size() != frames * n) {
    throw std::invalid_argument(
        "StreamCodec::decode: encoded size does not match payload_bytes");
  }
  if (!erasure_flags.empty() && erasure_flags.size() != encoded.size()) {
    throw std::invalid_argument(
        "StreamCodec::decode: erasure_flags size mismatch");
  }

  StreamResult result;
  result.frames = frames;
  result.payload.assign(payload_bytes, 0);
  result.ok = true;
  std::vector<gf::Element> word(n);
  std::vector<unsigned> erasures;
  for (std::size_t f = 0; f < frames; ++f) {
    for (std::size_t i = 0; i < n; ++i) word[i] = encoded[f * n + i];
    erasures.clear();
    if (!erasure_flags.empty()) {
      for (std::size_t i = 0; i < n; ++i) {
        if (erasure_flags[f * n + i]) {
          erasures.push_back(static_cast<unsigned>(i));
        }
      }
    }
    DecodeOutcome outcome;
    if (erasures.size() > code_.parity_symbols()) {
      outcome.status = DecodeStatus::kFailure;
    } else {
      outcome = code_.decode(word, erasures);
    }
    if (!outcome.ok()) {
      ++result.frames_failed;
      result.ok = false;
      continue;  // failed frames leave zeros in the payload
    }
    if (outcome.status == DecodeStatus::kCorrected) {
      ++result.frames_corrected;
    }
    const std::size_t copy =
        std::min(k, payload_bytes - std::min(payload_bytes, f * k));
    for (std::size_t i = 0; i < copy; ++i) {
      result.payload[f * k + i] = static_cast<std::uint8_t>(word[i]);
    }
  }
  return result;
}

}  // namespace rsmem::rs
