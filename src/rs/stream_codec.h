// Byte-stream convenience layer over the RS codec (m = 8 codes).
//
// Downstream users store BUFFERS, not symbol vectors. StreamCodec chunks a
// payload into k-byte datawords, encodes each into an n-byte codeword, and
// concatenates the codewords; decode reverses the process, correcting each
// frame independently (with optional per-byte erasure flags from the
// storage layer's detected-fault map) and reporting per-frame outcomes.
// The final frame is zero-padded; the caller keeps the payload length, as
// storage systems do.
#ifndef RSMEM_RS_STREAM_CODEC_H
#define RSMEM_RS_STREAM_CODEC_H

#include <cstdint>
#include <span>
#include <vector>

#include "rs/reed_solomon.h"

namespace rsmem::rs {

class StreamCodec {
 public:
  // Requires params.m == 8 (byte symbols); throws std::invalid_argument
  // otherwise (and for any invalid code).
  explicit StreamCodec(const CodeParams& params);

  const ReedSolomon& code() const { return code_; }
  std::size_t frames_for(std::size_t payload_bytes) const;
  std::size_t encoded_size(std::size_t payload_bytes) const;

  // Encodes payload (any size, zero-padded into the last frame).
  std::vector<std::uint8_t> encode(std::span<const std::uint8_t> payload) const;

  struct StreamResult {
    bool ok = false;                  // every frame produced an output
    std::size_t frames = 0;
    std::size_t frames_corrected = 0;  // frames needing correction
    std::size_t frames_failed = 0;     // detected uncorrectable frames
    std::vector<std::uint8_t> payload; // recovered bytes (zeros for failed
                                       // frames), sized to payload_bytes
  };

  // Decodes `encoded` back into `payload_bytes` bytes. `erasure_flags`,
  // when non-empty, marks untrusted encoded byte positions (size must equal
  // encoded.size()). Throws std::invalid_argument on size mismatches.
  StreamResult decode(std::span<const std::uint8_t> encoded,
                      std::size_t payload_bytes,
                      std::span<const std::uint8_t> erasure_flags = {}) const;

 private:
  ReedSolomon code_;
};

}  // namespace rsmem::rs

#endif  // RSMEM_RS_STREAM_CODEC_H
