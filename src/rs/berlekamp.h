// Berlekamp-Massey errors-and-erasures RS decoder.
//
// A second, algorithmically independent implementation of the same
// bounded-distance decoding problem solved by ReedSolomon::decode (which
// uses the Sugiyama / extended-Euclid key-equation solver). Bounded-
// distance decoding is unique -- if the received word lies within the
// guaranteed radius of a codeword both algorithms MUST return it, and
// outside the radius both must either detect failure or mis-correct to the
// same nearest codeword -- so the two decoders are differential-tested
// against each other over random patterns, including overload
// (tests/test_berlekamp.cpp). This mirrors hardware practice: the RiBM
// key-equation stage modeled in src/hw is a Berlekamp-Massey variant.
//
// The algorithm: initialize the locator with the erasure polynomial
// (Lambda = B = Gamma, L = rho) and run the Massey LFSR-synthesis
// iterations for r = rho .. n-k-1; then Chien search and Forney as usual.
#ifndef RSMEM_RS_BERLEKAMP_H
#define RSMEM_RS_BERLEKAMP_H

#include <span>

#include "rs/reed_solomon.h"

namespace rsmem::rs {

class BerlekampDecoder {
 public:
  // Shares the code definition (and field) with an existing codec; the
  // codec must outlive the decoder.
  explicit BerlekampDecoder(const ReedSolomon& code) : code_(&code) {}

  // Same contract as ReedSolomon::decode: in-place, erasure positions in
  // [0, n), returns the outcome; on ok() the word is a valid codeword.
  DecodeOutcome decode(std::span<Element> word,
                       std::span<const unsigned> erasure_positions = {}) const;

 private:
  const ReedSolomon* code_;
};

}  // namespace rsmem::rs

#endif  // RSMEM_RS_BERLEKAMP_H
