#include "rs/berlekamp.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "gf/poly.h"

namespace rsmem::rs {

using gf::GaloisField;
using gf::Poly;

DecodeOutcome BerlekampDecoder::decode(
    std::span<Element> word, std::span<const unsigned> erasure_positions) const {
  const ReedSolomon& code = *code_;
  const GaloisField& f = code.field();
  const unsigned n = code.n();
  const unsigned two_t = code.parity_symbols();
  if (word.size() != n) {
    throw std::invalid_argument("BerlekampDecoder: word size != n");
  }
  std::set<unsigned> erasure_set;
  for (const unsigned p : erasure_positions) {
    if (p >= n) {
      throw std::invalid_argument("BerlekampDecoder: erasure out of range");
    }
    if (!erasure_set.insert(p).second) {
      throw std::invalid_argument("BerlekampDecoder: duplicate erasure");
    }
  }
  for (const Element w : word) {
    if (!f.contains(w)) {
      throw std::invalid_argument("BerlekampDecoder: symbol out of field");
    }
  }
  const unsigned rho = static_cast<unsigned>(erasure_set.size());
  if (rho > two_t) return {DecodeStatus::kFailure, 0, 0};

  // Syndromes S_j = c(alpha^(fcr+j)) with position p holding x^(n-1-p).
  std::vector<Element> synd(two_t);
  bool clean = true;
  for (unsigned j = 0; j < two_t; ++j) {
    const Element x = f.alpha_pow(code.fcr() + j);
    Element acc = 0;
    for (unsigned p = 0; p < n; ++p) {
      acc = GaloisField::add(f.mul(acc, x), word[p]);
    }
    synd[j] = acc;
    clean = clean && (acc == 0);
  }
  if (clean && rho == 0) return {DecodeStatus::kNoError, 0, 0};

  const auto locator_of = [&](unsigned p) {
    return f.alpha_pow(static_cast<long long>(n - 1 - p));
  };

  // Erasure locator Gamma(x) = prod (1 - X_i x).
  Poly gamma = Poly::one();
  for (const unsigned p : erasure_set) {
    gamma = Poly::mul(f, gamma,
                      Poly{std::vector<Element>{1, locator_of(p)}});
  }

  // Berlekamp-Massey with erasure initialization.
  Poly lambda = gamma;
  Poly shift_reg = gamma;  // the "B" polynomial, with 1/b folded in
  unsigned length = rho;   // current LFSR length L
  for (unsigned r = rho; r < two_t; ++r) {
    // Discrepancy: sum over lambda's coefficients against the syndromes.
    Element delta = 0;
    const int deg = lambda.degree();
    for (int j = 0; j <= deg && static_cast<unsigned>(j) <= r; ++j) {
      delta = GaloisField::add(
          delta, f.mul(lambda.coeff(static_cast<std::size_t>(j)),
                       synd[r - static_cast<unsigned>(j)]));
    }
    if (delta == 0) {
      shift_reg = shift_reg.shifted_up(1);
    } else if (2 * length <= r + rho) {
      const Poly updated = Poly::add(
          lambda,
          Poly::scale(f, shift_reg.shifted_up(1), delta));
      shift_reg = Poly::scale(f, lambda, f.inv(delta));
      lambda = updated;
      length = r + 1 + rho - length;
    } else {
      lambda = Poly::add(
          lambda, Poly::scale(f, shift_reg.shifted_up(1), delta));
      shift_reg = shift_reg.shifted_up(1);
    }
  }

  const unsigned deg_lambda =
      static_cast<unsigned>(std::max(0, lambda.degree()));
  if (deg_lambda == 0) {
    // Non-trivial syndromes but an empty locator: detected failure (only
    // reachable without erasures).
    if (!clean) return {DecodeStatus::kFailure, 0, 0};
    return {DecodeStatus::kNoError, 0, 0};
  }
  // Strict bounded-distance semantics (same rule as the Euclidean decoder):
  // reject locators beyond the guaranteed radius 2*nu + rho <= 2t, even
  // when they would pass the root-count and re-syndrome checks. This keeps
  // the two decoders behaviourally identical everywhere.
  if (deg_lambda < rho || 2 * (deg_lambda - rho) + rho > two_t) {
    return {DecodeStatus::kFailure, 0, 0};
  }

  // Evaluator Omega = Lambda * S mod x^(2t), Forney with fcr adjustment.
  const Poly S{std::vector<Element>(synd.begin(), synd.end())};
  const Poly omega = Poly::mul(f, lambda, S).truncated(two_t);
  const Poly lambda_deriv = lambda.derivative();

  unsigned roots_found = 0;
  unsigned errors_corrected = 0;
  unsigned erasures_corrected = 0;
  std::vector<Element> corrected(word.begin(), word.end());
  for (unsigned p = 0; p < n; ++p) {
    const Element X = locator_of(p);
    const Element X_inv = f.inv(X);
    if (lambda.eval(f, X_inv) != 0) continue;
    ++roots_found;
    const Element denom = lambda_deriv.eval(f, X_inv);
    if (denom == 0) return {DecodeStatus::kFailure, 0, 0};
    Element magnitude = f.div(omega.eval(f, X_inv), denom);
    magnitude = f.mul(
        magnitude, f.pow(X, 1 - static_cast<long long>(code.fcr())));
    if (magnitude != 0) {
      corrected[p] = GaloisField::add(corrected[p], magnitude);
      if (erasure_set.count(p) != 0) {
        ++erasures_corrected;
      } else {
        ++errors_corrected;
      }
    }
  }
  if (roots_found != deg_lambda) {
    return {DecodeStatus::kFailure, 0, 0};
  }

  // Final verification against the full syndrome set.
  for (unsigned j = 0; j < two_t; ++j) {
    const Element x = f.alpha_pow(code.fcr() + j);
    Element acc = 0;
    for (unsigned p = 0; p < n; ++p) {
      acc = GaloisField::add(f.mul(acc, x), corrected[p]);
    }
    if (acc != 0) return {DecodeStatus::kFailure, 0, 0};
  }
  std::copy(corrected.begin(), corrected.end(), word.begin());
  if (errors_corrected == 0 && erasures_corrected == 0) {
    return {DecodeStatus::kNoError, 0, 0};
  }
  return {DecodeStatus::kCorrected, errors_corrected, erasures_corrected};
}

}  // namespace rsmem::rs
