#include "service/scheduler.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "core/api.h"

namespace rsmem::service {

namespace {

JsonObject curve_to_json(const models::BerCurve& curve) {
  JsonObject object;
  object.emplace("times_hours", Json::from_doubles(curve.times_hours));
  object.emplace("fail_probability",
                 Json::from_doubles(curve.fail_probability));
  object.emplace("ber", Json::from_doubles(curve.ber));
  return object;
}

core::Result<std::string> compute_ber(const Request& request) {
  const core::Result<models::BerCurve> curve =
      request.periodic
          ? try_analyze_ber_periodic_scrub(request.spec, request.times_hours)
          : try_analyze_ber(request.spec, request.times_hours);
  if (!curve.ok()) return curve.status();
  return Json(curve_to_json(curve.value())).serialize();
}

core::Result<std::string> compute_mttf(const Request& request) {
  const core::Result<double> hours = try_mttf_hours(request.spec);
  if (!hours.ok()) return hours.status();
  JsonObject object;
  object.emplace("mttf_hours", hours.value());
  return Json(std::move(object)).serialize();
}

// Mirrors the CLI sweep command point for point: one single-time
// analyze_ber per swept value, same mutation of the base spec, so service
// sweeps are bit-identical to `rsmem_cli sweep`.
core::Result<std::string> compute_sweep(const Request& request) {
  std::vector<double> fail_probability;
  std::vector<double> ber;
  fail_probability.reserve(request.sweep_values.size());
  ber.reserve(request.sweep_values.size());
  for (const double value : request.sweep_values) {
    core::MemorySystemSpec spec = request.spec;
    if (request.sweep_param == "seu") {
      spec.seu_rate_per_bit_day = value;
    } else if (request.sweep_param == "perm") {
      spec.erasure_rate_per_symbol_day = value;
    } else {
      spec.scrub_period_seconds = value;
    }
    const double times[] = {request.sweep_hours};
    const core::Result<models::BerCurve> curve = try_analyze_ber(spec, times);
    if (!curve.ok()) return curve.status();
    fail_probability.push_back(curve.value().fail_probability.front());
    ber.push_back(curve.value().ber.front());
  }
  JsonObject object;
  object.emplace("param", request.sweep_param);
  object.emplace("hours", request.sweep_hours);
  object.emplace("values", Json::from_doubles(request.sweep_values));
  object.emplace("fail_probability", Json::from_doubles(fail_probability));
  object.emplace("ber", Json::from_doubles(ber));
  return Json(std::move(object)).serialize();
}

core::Result<std::string> compute_result(const Request& request) {
  switch (request.kind) {
    case RequestKind::kBer:
      return compute_ber(request);
    case RequestKind::kMttf:
      return compute_mttf(request);
    case RequestKind::kSweep:
      return compute_sweep(request);
    case RequestKind::kPing:
    case RequestKind::kStats:
    case RequestKind::kShutdown:
      break;
  }
  return core::Status::invalid_config(
      std::string("request kind '") + to_string(request.kind) +
      "' is handled by the server control plane, not the scheduler");
}

void update_max(std::atomic<std::uint64_t>& slot, std::uint64_t candidate) {
  std::uint64_t seen = slot.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !slot.compare_exchange_weak(seen, candidate,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

std::string batch_compatibility_key(const Request& request) {
  // The chain structure depends on the geometry and on WHICH rates are
  // nonzero (models::ChainCache's structural key), not their magnitudes;
  // the analysis family decides which solver path runs.
  std::string key;
  key.reserve(48);
  key += to_string(request.kind);
  key += request.periodic ? "|periodic" : "|chain";
  key += "|";
  key += analysis::to_string(request.spec.arrangement);
  key += "|n=" + std::to_string(request.spec.code.n);
  key += "|k=" + std::to_string(request.spec.code.k);
  key += "|m=" + std::to_string(request.spec.code.m);
  key += request.spec.seu_rate_per_bit_day != 0.0 ? "|seu" : "|noseu";
  key += request.spec.erasure_rate_per_symbol_day != 0.0 ? "|perm" : "|noperm";
  key += request.spec.scrub_period_seconds != 0.0 ? "|scrub" : "|noscrub";
  if (request.kind == RequestKind::kSweep) key += "|" + request.sweep_param;
  return key;
}

AnalysisScheduler::Stats& AnalysisScheduler::Stats::merge(const Stats& other) {
  accepted += other.accepted;
  rejected_overload += other.rejected_overload;
  deadline_expired += other.deadline_expired;
  completed += other.completed;
  batches += other.batches;
  batch_groups += other.batch_groups;
  max_batch = std::max(max_batch, other.max_batch);
  queue_depth += other.queue_depth;
  in_flight += other.in_flight;
  brownout_active = brownout_active || other.brownout_active;
  brownout_entries += other.brownout_entries;
  brownout_shed += other.brownout_shed;
  brownout_hits += other.brownout_hits;
  stuck = stuck || other.stuck;
  stalled_ms = std::max(stalled_ms, other.stalled_ms);
  return *this;
}

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

AnalysisScheduler::AnalysisScheduler(const SchedulerConfig& config)
    : config_(config),
      brownout_enter_(config.brownout_enter > 0
                          ? config.brownout_enter
                          : std::max<std::size_t>(1, 3 * config.max_queue / 4)),
      brownout_exit_(config.brownout_exit > 0 ? config.brownout_exit
                                              : config.max_queue / 4),
      cache_(config.cache_capacity),
      pool_(config.threads),
      pending_(config.max_queue),
      last_progress_ns_(steady_now_ns()),
      dispatcher_([this] { dispatcher_loop(); }) {}

AnalysisScheduler::~AnalysisScheduler() { stop(); }

core::Status AnalysisScheduler::submit(Request request,
                                       std::function<void(Response)> done) {
  Pending pending;
  pending.deadline = request.deadline_ms > 0.0
                         ? Clock::now() + std::chrono::microseconds(
                               static_cast<std::int64_t>(
                                   request.deadline_ms * 1000.0))
                         : Clock::time_point::max();
  pending.request = std::move(request);
  pending.done = std::move(done);

  // Quiescence barrier: stop() waits for in-flight submits before its
  // final drain, so a push racing with shutdown is never stranded.
  submits_in_flight_.fetch_add(1, std::memory_order_acq_rel);
  const auto leave_submit = [this] {
    submits_in_flight_.fetch_sub(1, std::memory_order_release);
    submits_in_flight_.notify_all();
  };

  if (stopping_.load(std::memory_order_acquire)) {
    stats_.rejected_overload.fetch_add(1, std::memory_order_relaxed);
    leave_submit();
    return core::Status::overloaded("scheduler stopping");
  }

  // Brown-out state machine, watermarked on in-flight depth. The checks
  // are heuristic (racing submitters may each flip the flag; that's fine,
  // entries are counted via exchange) — correctness only needs: while the
  // flag is set, misses are shed typed and hits are served inline.
  if (config_.brownout_enabled) {
    const std::size_t depth = in_flight_now();
    bool active = brownout_.load(std::memory_order_relaxed);
    if (active && depth <= brownout_exit_) {
      brownout_.store(false, std::memory_order_relaxed);
      active = false;
    } else if (!active && depth >= brownout_enter_) {
      if (!brownout_.exchange(true, std::memory_order_relaxed)) {
        stats_.brownout_entries.fetch_add(1, std::memory_order_relaxed);
      }
      active = true;
    }
    if (active) {
      const std::string key = canonical_cache_key(pending.request);
      if (auto value = cache_.lookup(key); value != nullptr) {
        // Hits stay cheap even in brown-out: answer inline, no queueing.
        Response response;
        response.id = pending.request.id;
        response.status = core::Status::ok();
        response.cache = CacheSource::kHit;
        response.result_json = *value;
        stats_.accepted.fetch_add(1, std::memory_order_relaxed);
        stats_.completed.fetch_add(1, std::memory_order_relaxed);
        stats_.brownout_hits.fetch_add(1, std::memory_order_relaxed);
        note_progress();
        leave_submit();
        pending.done(std::move(response));
        return core::Status::ok();
      }
      stats_.brownout_shed.fetch_add(1, std::memory_order_relaxed);
      leave_submit();
      return core::Status::brownout(
          "shard in brown-out (" + std::to_string(depth) +
          " in flight): shedding cache-miss work, hits still served; "
          "retry after " + format_double(config_.brownout_retry_after_ms) +
          " ms");
    }
  }
  // Reserve a queue slot before pushing: the counter is an upper bound on
  // ring occupancy, so the ring (capacity >= max_queue) can never refuse
  // a reserved push.
  const std::size_t depth =
      pending_count_.fetch_add(1, std::memory_order_acq_rel);
  if (depth >= config_.max_queue) {
    pending_count_.fetch_sub(1, std::memory_order_release);
    stats_.rejected_overload.fetch_add(1, std::memory_order_relaxed);
    leave_submit();
    return core::Status::overloaded(
        "request queue full (" + std::to_string(depth) + "/" +
        std::to_string(config_.max_queue) + " pending); retry with backoff");
  }
  if (!pending_.try_push(std::move(pending))) {
    // Unreachable by construction; kept as a typed failure, never a drop.
    pending_count_.fetch_sub(1, std::memory_order_release);
    stats_.rejected_overload.fetch_add(1, std::memory_order_relaxed);
    leave_submit();
    return core::Status::overloaded("request ring rejected push");
  }
  stats_.accepted.fetch_add(1, std::memory_order_relaxed);
  work_epoch_.fetch_add(1, std::memory_order_release);
  work_epoch_.notify_one();
  leave_submit();
  return core::Status::ok();
}

void AnalysisScheduler::dispatcher_loop() {
  std::vector<Pending> batch;
  batch.reserve(config_.batch_max);
  for (;;) {
    // Snapshot the epoch BEFORE draining: a push that lands after the
    // drain bumps the epoch past the snapshot, so the wait below returns
    // immediately instead of missing the wake-up.
    const std::uint64_t epoch = work_epoch_.load(std::memory_order_acquire);
    batch.clear();
    Pending item;
    while (batch.size() < config_.batch_max && pending_.try_pop(item)) {
      pending_count_.fetch_sub(1, std::memory_order_release);
      batch.push_back(std::move(item));
    }
    if (batch.empty()) {
      if (stopping_.load(std::memory_order_acquire)) return;
      work_epoch_.wait(epoch, std::memory_order_acquire);
      continue;
    }
    dispatch_batch(batch);
  }
}

void AnalysisScheduler::dispatch_batch(std::vector<Pending>& batch) {
  stats_.batches.fetch_add(1, std::memory_order_relaxed);
  update_max(stats_.max_batch, batch.size());
  // Stable grouping by compatibility key: order within a group is the
  // arrival order, so deadline fairness is preserved per group. Requests
  // already past their deadline are answered here — they never occupy a
  // pool worker.
  std::map<std::string, std::shared_ptr<std::vector<Pending>>> groups;
  for (Pending& pending : batch) {
    if (Clock::now() > pending.deadline) {
      answer_deadline_expired(pending);
      continue;
    }
    auto& group = groups[batch_compatibility_key(pending.request)];
    if (!group) group = std::make_shared<std::vector<Pending>>();
    group->push_back(std::move(pending));
  }
  stats_.batch_groups.fetch_add(groups.size(), std::memory_order_relaxed);
  for (auto& [key, group] : groups) {
    pool_.submit([this, group] { run_group(group); });
  }
}

void AnalysisScheduler::answer_deadline_expired(Pending& pending) {
  Response response;
  response.id = pending.request.id;
  response.status = core::Status::deadline_exceeded(
      "deadline of " + format_double(pending.request.deadline_ms) +
      " ms expired before execution started");
  stats_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
  stats_.completed.fetch_add(1, std::memory_order_relaxed);
  note_progress();
  pending.done(std::move(response));
}

void AnalysisScheduler::note_progress() {
  last_progress_ns_.store(steady_now_ns(), std::memory_order_relaxed);
}

std::size_t AnalysisScheduler::in_flight_now() const {
  const std::uint64_t accepted =
      stats_.accepted.load(std::memory_order_relaxed);
  const std::uint64_t completed =
      stats_.completed.load(std::memory_order_relaxed);
  // Loaded separately, so completed can transiently read AHEAD of the
  // accepted it belongs to; clamp instead of wrapping.
  return accepted > completed ? accepted - completed : 0;
}

void AnalysisScheduler::run_group(std::shared_ptr<std::vector<Pending>> group) {
  for (Pending& pending : *group) {
    // Deadline re-check at worker dequeue: the group may have waited
    // behind other groups (or behind earlier requests in this group) on a
    // busy pool, so dispatch-time policing alone would let an expired
    // request compute and return a late success.
    if (Clock::now() > pending.deadline) {
      answer_deadline_expired(pending);
      continue;
    }
    Response response = execute_timed(pending.request);
    stats_.completed.fetch_add(1, std::memory_order_relaxed);
    note_progress();
    pending.done(std::move(response));
  }
}

Response AnalysisScheduler::execute_timed(const Request& request) {
  Response response;
  response.id = request.id;
  const std::string key = canonical_cache_key(request);
  if (key.empty()) {
    response.status = core::Status::invalid_config(
        "request kind is not executable by the scheduler");
    return response;
  }
  const auto start = Clock::now();
  ResultCache::Outcome outcome = cache_.get_or_compute(
      key, [&] { return compute_result(request); });
  response.compute_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  response.cache = outcome.source;
  response.status = outcome.status;
  if (outcome.value) response.result_json = *outcome.value;
  return response;
}

Response AnalysisScheduler::execute(const Request& request) {
  return execute_timed(request);
}

AnalysisScheduler::Stats AnalysisScheduler::stats() const {
  Stats snapshot;
  snapshot.accepted = stats_.accepted.load(std::memory_order_relaxed);
  snapshot.rejected_overload =
      stats_.rejected_overload.load(std::memory_order_relaxed);
  snapshot.deadline_expired =
      stats_.deadline_expired.load(std::memory_order_relaxed);
  snapshot.completed = stats_.completed.load(std::memory_order_relaxed);
  snapshot.batches = stats_.batches.load(std::memory_order_relaxed);
  snapshot.batch_groups = stats_.batch_groups.load(std::memory_order_relaxed);
  snapshot.max_batch = stats_.max_batch.load(std::memory_order_relaxed);
  snapshot.queue_depth = pending_count_.load(std::memory_order_relaxed);
  snapshot.in_flight = in_flight_now();
  snapshot.brownout_active = brownout_.load(std::memory_order_relaxed);
  snapshot.brownout_entries =
      stats_.brownout_entries.load(std::memory_order_relaxed);
  snapshot.brownout_shed =
      stats_.brownout_shed.load(std::memory_order_relaxed);
  snapshot.brownout_hits =
      stats_.brownout_hits.load(std::memory_order_relaxed);
  if (snapshot.in_flight > 0) {
    const std::int64_t idle_ns =
        steady_now_ns() - last_progress_ns_.load(std::memory_order_relaxed);
    snapshot.stalled_ms = static_cast<double>(idle_ns) / 1e6;
    snapshot.stuck = config_.watchdog_stall_ms > 0 &&
                     snapshot.stalled_ms > config_.watchdog_stall_ms;
  }
  return snapshot;
}

void AnalysisScheduler::stop() {
  if (stopped_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);
  work_epoch_.fetch_add(1, std::memory_order_release);
  work_epoch_.notify_all();
  // Wait out in-flight submits so the final drain below observes every
  // push that was admitted before stopping_ became visible.
  for (int in_flight =
           submits_in_flight_.load(std::memory_order_acquire);
       in_flight != 0;
       in_flight = submits_in_flight_.load(std::memory_order_acquire)) {
    submits_in_flight_.wait(in_flight, std::memory_order_acquire);
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  // The dispatcher exits only on an empty ring, but a submit that raced
  // with shutdown may have pushed after its final look: drain leftovers
  // here so every admitted request is still answered.
  std::vector<Pending> batch;
  Pending item;
  while (pending_.try_pop(item)) {
    pending_count_.fetch_sub(1, std::memory_order_release);
    batch.push_back(std::move(item));
    if (batch.size() == config_.batch_max) {
      dispatch_batch(batch);
      batch.clear();
    }
  }
  if (!batch.empty()) dispatch_batch(batch);
  pool_.wait_idle();
}

}  // namespace rsmem::service
