#include "service/scheduler.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "core/api.h"

namespace rsmem::service {

namespace {

JsonObject curve_to_json(const models::BerCurve& curve) {
  JsonObject object;
  object.emplace("times_hours", Json::from_doubles(curve.times_hours));
  object.emplace("fail_probability",
                 Json::from_doubles(curve.fail_probability));
  object.emplace("ber", Json::from_doubles(curve.ber));
  return object;
}

core::Result<std::string> compute_ber(const Request& request) {
  const core::Result<models::BerCurve> curve =
      request.periodic
          ? try_analyze_ber_periodic_scrub(request.spec, request.times_hours)
          : try_analyze_ber(request.spec, request.times_hours);
  if (!curve.ok()) return curve.status();
  return Json(curve_to_json(curve.value())).serialize();
}

core::Result<std::string> compute_mttf(const Request& request) {
  const core::Result<double> hours = try_mttf_hours(request.spec);
  if (!hours.ok()) return hours.status();
  JsonObject object;
  object.emplace("mttf_hours", hours.value());
  return Json(std::move(object)).serialize();
}

// Mirrors the CLI sweep command point for point: one single-time
// analyze_ber per swept value, same mutation of the base spec, so service
// sweeps are bit-identical to `rsmem_cli sweep`.
core::Result<std::string> compute_sweep(const Request& request) {
  std::vector<double> fail_probability;
  std::vector<double> ber;
  fail_probability.reserve(request.sweep_values.size());
  ber.reserve(request.sweep_values.size());
  for (const double value : request.sweep_values) {
    core::MemorySystemSpec spec = request.spec;
    if (request.sweep_param == "seu") {
      spec.seu_rate_per_bit_day = value;
    } else if (request.sweep_param == "perm") {
      spec.erasure_rate_per_symbol_day = value;
    } else {
      spec.scrub_period_seconds = value;
    }
    const double times[] = {request.sweep_hours};
    const core::Result<models::BerCurve> curve = try_analyze_ber(spec, times);
    if (!curve.ok()) return curve.status();
    fail_probability.push_back(curve.value().fail_probability.front());
    ber.push_back(curve.value().ber.front());
  }
  JsonObject object;
  object.emplace("param", request.sweep_param);
  object.emplace("hours", request.sweep_hours);
  object.emplace("values", Json::from_doubles(request.sweep_values));
  object.emplace("fail_probability", Json::from_doubles(fail_probability));
  object.emplace("ber", Json::from_doubles(ber));
  return Json(std::move(object)).serialize();
}

core::Result<std::string> compute_result(const Request& request) {
  switch (request.kind) {
    case RequestKind::kBer:
      return compute_ber(request);
    case RequestKind::kMttf:
      return compute_mttf(request);
    case RequestKind::kSweep:
      return compute_sweep(request);
    case RequestKind::kPing:
    case RequestKind::kStats:
    case RequestKind::kShutdown:
      break;
  }
  return core::Status::invalid_config(
      std::string("request kind '") + to_string(request.kind) +
      "' is handled by the server control plane, not the scheduler");
}

}  // namespace

std::string batch_compatibility_key(const Request& request) {
  // The chain structure depends on the geometry and on WHICH rates are
  // nonzero (models::ChainCache's structural key), not their magnitudes;
  // the analysis family decides which solver path runs.
  std::string key;
  key.reserve(48);
  key += to_string(request.kind);
  key += request.periodic ? "|periodic" : "|chain";
  key += "|";
  key += analysis::to_string(request.spec.arrangement);
  key += "|n=" + std::to_string(request.spec.code.n);
  key += "|k=" + std::to_string(request.spec.code.k);
  key += "|m=" + std::to_string(request.spec.code.m);
  key += request.spec.seu_rate_per_bit_day != 0.0 ? "|seu" : "|noseu";
  key += request.spec.erasure_rate_per_symbol_day != 0.0 ? "|perm" : "|noperm";
  key += request.spec.scrub_period_seconds != 0.0 ? "|scrub" : "|noscrub";
  if (request.kind == RequestKind::kSweep) key += "|" + request.sweep_param;
  return key;
}

AnalysisScheduler::AnalysisScheduler(const SchedulerConfig& config)
    : config_(config),
      cache_(config.cache_capacity),
      pool_(config.threads),
      dispatcher_([this] { dispatcher_loop(); }) {}

AnalysisScheduler::~AnalysisScheduler() { stop(); }

core::Status AnalysisScheduler::submit(Request request,
                                       std::function<void(Response)> done) {
  Pending pending;
  pending.deadline = request.deadline_ms > 0.0
                         ? Clock::now() + std::chrono::microseconds(
                               static_cast<std::int64_t>(
                                   request.deadline_ms * 1000.0))
                         : Clock::time_point::max();
  pending.request = std::move(request);
  pending.done = std::move(done);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) {
      ++stats_.rejected_overload;
      return core::Status::overloaded("scheduler stopping");
    }
    if (pending_.size() >= config_.max_queue) {
      ++stats_.rejected_overload;
      return core::Status::overloaded(
          "request queue full (" + std::to_string(pending_.size()) + "/" +
          std::to_string(config_.max_queue) +
          " pending); retry with backoff");
    }
    ++stats_.accepted;
    pending_.push_back(std::move(pending));
  }
  work_cv_.notify_one();
  return core::Status::ok();
}

void AnalysisScheduler::dispatcher_loop() {
  while (true) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stopping and drained
      const std::size_t take = std::min(config_.batch_max, pending_.size());
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(pending_.front()));
        pending_.pop_front();
      }
      ++stats_.batches;
      stats_.max_batch = std::max<std::uint64_t>(stats_.max_batch, take);
    }
    // Stable grouping by compatibility key: order within a group is the
    // arrival order, so deadline fairness is preserved per group.
    std::map<std::string, std::shared_ptr<std::vector<Pending>>> groups;
    for (Pending& pending : batch) {
      auto& group = groups[batch_compatibility_key(pending.request)];
      if (!group) group = std::make_shared<std::vector<Pending>>();
      group->push_back(std::move(pending));
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      stats_.batch_groups += groups.size();
    }
    for (auto& [key, group] : groups) {
      pool_.submit([this, group] { run_group(group); });
    }
  }
}

void AnalysisScheduler::run_group(std::shared_ptr<std::vector<Pending>> group) {
  for (Pending& pending : *group) {
    Response response;
    if (Clock::now() > pending.deadline) {
      response.id = pending.request.id;
      response.status = core::Status::deadline_exceeded(
          "deadline of " + format_double(pending.request.deadline_ms) +
          " ms expired before execution started");
      std::unique_lock<std::mutex> lock(mutex_);
      ++stats_.deadline_expired;
      ++stats_.completed;
      lock.unlock();
      pending.done(std::move(response));
      continue;
    }
    response = execute_timed(pending.request);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++stats_.completed;
    }
    pending.done(std::move(response));
  }
}

Response AnalysisScheduler::execute_timed(const Request& request) {
  Response response;
  response.id = request.id;
  const std::string key = canonical_cache_key(request);
  if (key.empty()) {
    response.status = core::Status::invalid_config(
        "request kind is not executable by the scheduler");
    return response;
  }
  const auto start = Clock::now();
  ResultCache::Outcome outcome = cache_.get_or_compute(
      key, [&] { return compute_result(request); });
  response.compute_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  response.cache = outcome.source;
  response.status = outcome.status;
  if (outcome.value) response.result_json = *outcome.value;
  return response;
}

Response AnalysisScheduler::execute(const Request& request) {
  return execute_timed(request);
}

AnalysisScheduler::Stats AnalysisScheduler::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  Stats snapshot = stats_;
  snapshot.queue_depth = pending_.size();
  return snapshot;
}

void AnalysisScheduler::stop() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_ && !dispatcher_.joinable()) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  pool_.wait_idle();
}

}  // namespace rsmem::service
