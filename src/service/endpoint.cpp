#include "service/endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rsmem::service {

namespace {

core::Status errno_status(const std::string& what) {
  return core::Status::internal(what + ": " + std::strerror(errno));
}

core::Result<int> open_unix(const Endpoint& endpoint, sockaddr_un& addr) {
  if (endpoint.path.size() >= sizeof addr.sun_path) {
    return core::Status::invalid_config(
        "unix socket path too long (" + std::to_string(endpoint.path.size()) +
        " bytes, max " + std::to_string(sizeof addr.sun_path - 1) + "): " +
        endpoint.path);
  }
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, endpoint.path.c_str(), endpoint.path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket(AF_UNIX)");
  return fd;
}

core::Result<int> open_tcp(const Endpoint& endpoint, sockaddr_in& addr) {
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    // Keep the resolver dependency-free: accept dotted quads and the
    // obvious aliases only.
    if (endpoint.host == "localhost") {
      ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    } else {
      return core::Status::invalid_config(
          "host must be an IPv4 address or 'localhost', got '" +
          endpoint.host + "'");
    }
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket(AF_INET)");
  return fd;
}

}  // namespace

Endpoint Endpoint::unix_socket(std::string socket_path) {
  Endpoint endpoint;
  endpoint.kind = Kind::kUnix;
  endpoint.path = std::move(socket_path);
  return endpoint;
}

Endpoint Endpoint::tcp(std::string host, std::uint16_t port) {
  Endpoint endpoint;
  endpoint.kind = Kind::kTcp;
  endpoint.host = std::move(host);
  endpoint.port = port;
  return endpoint;
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return host + ":" + std::to_string(port);
}

core::Result<Endpoint> parse_endpoint(const std::string& text) {
  if (text.rfind("unix:", 0) == 0) {
    const std::string path = text.substr(5);
    if (path.empty()) {
      return core::Status::invalid_config(
          "unix endpoint needs a path after 'unix:', got '" + text + "'");
    }
    return Endpoint::unix_socket(path);
  }
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos) {
    return core::Status::invalid_config(
        "endpoint must be 'unix:/path' or 'host:port', got '" + text + "'");
  }
  const std::string host = text.substr(0, colon);
  const std::string port_text = text.substr(colon + 1);
  if (host.empty()) {
    return core::Status::invalid_config("endpoint host is empty in '" + text +
                                        "'");
  }
  if (port_text.empty() ||
      port_text.find_first_not_of("0123456789") != std::string::npos) {
    return core::Status::invalid_config(
        "endpoint port must be a decimal integer, got '" + port_text + "'");
  }
  // All-digits guaranteed above; bound the value before converting.
  if (port_text.size() > 5 || std::stol(port_text) > 65535) {
    return core::Status::invalid_config("endpoint port out of range [0, " +
                                        std::to_string(65535) + "]: '" +
                                        port_text + "'");
  }
  return Endpoint::tcp(host, static_cast<std::uint16_t>(std::stol(port_text)));
}

core::Result<int> listen_on(const Endpoint& endpoint, int backlog) {
  int fd = -1;
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr;
    core::Result<int> opened = open_unix(endpoint, addr);
    if (!opened.ok()) return opened.status();
    fd = opened.value();
    ::unlink(endpoint.path.c_str());  // clear a stale socket file
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      const core::Status status = errno_status("bind(" + endpoint.to_string() +
                                               ")");
      ::close(fd);
      return status;
    }
  } else {
    sockaddr_in addr;
    core::Result<int> opened = open_tcp(endpoint, addr);
    if (!opened.ok()) return opened.status();
    fd = opened.value();
    const int enable = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      const core::Status status = errno_status("bind(" + endpoint.to_string() +
                                               ")");
      ::close(fd);
      return status;
    }
  }
  if (::listen(fd, backlog) != 0) {
    const core::Status status = errno_status("listen(" + endpoint.to_string() +
                                             ")");
    ::close(fd);
    return status;
  }
  return fd;
}

core::Result<int> connect_to(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr;
    core::Result<int> opened = open_unix(endpoint, addr);
    if (!opened.ok()) return opened.status();
    const int fd = opened.value();
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      const core::Status status =
          errno_status("connect(" + endpoint.to_string() + ")");
      ::close(fd);
      return status;
    }
    return fd;
  }
  sockaddr_in addr;
  core::Result<int> opened = open_tcp(endpoint, addr);
  if (!opened.ok()) return opened.status();
  const int fd = opened.value();
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const core::Status status =
        errno_status("connect(" + endpoint.to_string() + ")");
    ::close(fd);
    return status;
  }
  return fd;
}

core::Result<Endpoint> bound_endpoint(int listen_fd,
                                      const Endpoint& requested) {
  if (requested.kind == Endpoint::Kind::kUnix) return requested;
  sockaddr_in addr;
  socklen_t length = sizeof addr;
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &length) !=
      0) {
    return errno_status("getsockname");
  }
  return Endpoint::tcp(requested.host, ntohs(addr.sin_port));
}

}  // namespace rsmem::service
