#include "service/endpoint.h"

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>

namespace rsmem::service {

namespace {

core::Status errno_status(const std::string& what) {
  return core::Status::internal(what + ": " + std::strerror(errno));
}

core::Result<int> open_unix(const Endpoint& endpoint, sockaddr_un& addr) {
  if (endpoint.path.size() >= sizeof addr.sun_path) {
    return core::Status::invalid_config(
        "unix socket path too long (" + std::to_string(endpoint.path.size()) +
        " bytes, max " + std::to_string(sizeof addr.sun_path - 1) + "): " +
        endpoint.path);
  }
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, endpoint.path.c_str(), endpoint.path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket(AF_UNIX)");
  return fd;
}

struct AddrInfoDeleter {
  void operator()(addrinfo* list) const { ::freeaddrinfo(list); }
};
using AddrInfoList = std::unique_ptr<addrinfo, AddrInfoDeleter>;

// DNS names, IPv4 dotted quads, and IPv6 literals all resolve through one
// call; AI_PASSIVE makes a server resolution prefer wildcard binds. An
// unresolvable host is the caller's mistake (typo, dead name) -> typed
// InvalidConfig, which the CLI maps to exit 2.
core::Result<AddrInfoList> resolve_tcp(const Endpoint& endpoint,
                                       bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_protocol = IPPROTO_TCP;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  const std::string port_text = std::to_string(endpoint.port);
  addrinfo* results = nullptr;
  const int rc =
      ::getaddrinfo(endpoint.host.c_str(), port_text.c_str(), &hints,
                    &results);
  if (rc != 0) {
    return core::Status::invalid_config(
        "cannot resolve host '" + endpoint.host + "': " +
        (rc == EAI_SYSTEM ? std::strerror(errno) : ::gai_strerror(rc)));
  }
  if (results == nullptr) {
    return core::Status::invalid_config("host '" + endpoint.host +
                                        "' resolved to no addresses");
  }
  return AddrInfoList(results);
}

}  // namespace

Endpoint Endpoint::unix_socket(std::string socket_path) {
  Endpoint endpoint;
  endpoint.kind = Kind::kUnix;
  endpoint.path = std::move(socket_path);
  return endpoint;
}

Endpoint Endpoint::tcp(std::string host, std::uint16_t port) {
  Endpoint endpoint;
  endpoint.kind = Kind::kTcp;
  endpoint.host = std::move(host);
  endpoint.port = port;
  return endpoint;
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  if (host.find(':') != std::string::npos) {
    // IPv6 literal: re-bracket so the string round-trips through
    // parse_endpoint.
    return "[" + host + "]:" + std::to_string(port);
  }
  return host + ":" + std::to_string(port);
}

core::Result<Endpoint> parse_endpoint(const std::string& text) {
  if (text.rfind("unix:", 0) == 0) {
    const std::string path = text.substr(5);
    if (path.empty()) {
      return core::Status::invalid_config(
          "unix endpoint needs a path after 'unix:', got '" + text + "'");
    }
    return Endpoint::unix_socket(path);
  }
  std::string host;
  std::string port_text;
  if (!text.empty() && text.front() == '[') {
    // Bracketed IPv6 literal: "[::1]:8080".
    const std::size_t close = text.find(']');
    if (close == std::string::npos || close + 1 >= text.size() ||
        text[close + 1] != ':') {
      return core::Status::invalid_config(
          "bracketed IPv6 endpoint must be '[address]:port', got '" + text +
          "'");
    }
    host = text.substr(1, close - 1);
    port_text = text.substr(close + 2);
    if (host.empty()) {
      return core::Status::invalid_config("endpoint host is empty in '" +
                                          text + "'");
    }
  } else {
    const std::size_t colon = text.rfind(':');
    if (colon == std::string::npos) {
      return core::Status::invalid_config(
          "endpoint must be 'unix:/path', 'host:port', or '[ipv6]:port', "
          "got '" + text + "'");
    }
    host = text.substr(0, colon);
    port_text = text.substr(colon + 1);
    if (host.empty()) {
      return core::Status::invalid_config("endpoint host is empty in '" +
                                          text + "'");
    }
    if (host.find(':') != std::string::npos) {
      return core::Status::invalid_config(
          "IPv6 literals must be bracketed: '[" + host + "]:" + port_text +
          "', got '" + text + "'");
    }
  }
  if (port_text.empty() ||
      port_text.find_first_not_of("0123456789") != std::string::npos) {
    return core::Status::invalid_config(
        "endpoint port must be a decimal integer, got '" + port_text + "'");
  }
  // All-digits guaranteed above; bound the value before converting.
  if (port_text.size() > 5 || std::stol(port_text) > 65535) {
    return core::Status::invalid_config("endpoint port out of range [0, " +
                                        std::to_string(65535) + "]: '" +
                                        port_text + "'");
  }
  return Endpoint::tcp(host, static_cast<std::uint16_t>(std::stol(port_text)));
}

core::Result<int> listen_on(const Endpoint& endpoint, int backlog) {
  int fd = -1;
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr;
    core::Result<int> opened = open_unix(endpoint, addr);
    if (!opened.ok()) return opened.status();
    fd = opened.value();
    ::unlink(endpoint.path.c_str());  // clear a stale socket file
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      const core::Status status = errno_status("bind(" + endpoint.to_string() +
                                               ")");
      ::close(fd);
      return status;
    }
  } else {
    core::Result<AddrInfoList> resolved =
        resolve_tcp(endpoint, /*passive=*/true);
    if (!resolved.ok()) return resolved.status();
    core::Status last = core::Status::internal(
        "bind(" + endpoint.to_string() + "): no usable address");
    for (const addrinfo* ai = resolved.value().get(); ai != nullptr;
         ai = ai->ai_next) {
      fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) {
        last = errno_status("socket(" + endpoint.to_string() + ")");
        continue;
      }
      const int enable = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);
      if (ai->ai_family == AF_INET6) {
        // An explicit IPv6 endpoint listens on IPv6 only; a dual-stack
        // host name yields separate v4/v6 entries we try in order.
        ::setsockopt(fd, IPPROTO_IPV6, IPV6_V6ONLY, &enable, sizeof enable);
      }
      if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
      last = errno_status("bind(" + endpoint.to_string() + ")");
      ::close(fd);
      fd = -1;
    }
    if (fd < 0) return last;
  }
  if (::listen(fd, backlog) != 0) {
    const core::Status status = errno_status("listen(" + endpoint.to_string() +
                                             ")");
    ::close(fd);
    return status;
  }
  return fd;
}

core::Result<int> connect_to(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr;
    core::Result<int> opened = open_unix(endpoint, addr);
    if (!opened.ok()) return opened.status();
    const int fd = opened.value();
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      const core::Status status =
          errno_status("connect(" + endpoint.to_string() + ")");
      ::close(fd);
      return status;
    }
    return fd;
  }
  core::Result<AddrInfoList> resolved =
      resolve_tcp(endpoint, /*passive=*/false);
  if (!resolved.ok()) return resolved.status();
  core::Status last = core::Status::internal(
      "connect(" + endpoint.to_string() + "): no usable address");
  for (const addrinfo* ai = resolved.value().get(); ai != nullptr;
       ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = errno_status("socket(" + endpoint.to_string() + ")");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) return fd;
    last = errno_status("connect(" + endpoint.to_string() + ")");
    ::close(fd);
  }
  return last;
}

core::Result<Endpoint> bound_endpoint(int listen_fd,
                                      const Endpoint& requested) {
  if (requested.kind == Endpoint::Kind::kUnix) return requested;
  sockaddr_storage addr{};
  socklen_t length = sizeof addr;
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &length) !=
      0) {
    return errno_status("getsockname");
  }
  std::uint16_t port = 0;
  if (addr.ss_family == AF_INET6) {
    port = ntohs(reinterpret_cast<const sockaddr_in6*>(&addr)->sin6_port);
  } else {
    port = ntohs(reinterpret_cast<const sockaddr_in*>(&addr)->sin_port);
  }
  return Endpoint::tcp(requested.host, port);
}

}  // namespace rsmem::service
