#include "service/chaos_campaign.h"

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <thread>
#include <utility>

#include "analysis/table.h"
#include "service/chaos.h"
#include "service/client.h"
#include "service/server.h"

namespace rsmem::service {

namespace {

core::MemorySystemSpec paper_spec() {
  core::MemorySystemSpec spec;
  spec.arrangement = analysis::Arrangement::kDuplex;
  spec.code = {18, 16, 8, 1};
  spec.seu_rate_per_bit_day = 1e-2;
  spec.scrub_period_seconds = 3600.0;
  return spec;
}

// The churn workload: one small BER request per distinct variant (distinct
// horizons => distinct cache keys, same chain structure => fast solves).
Request ber_request(std::uint64_t variant) {
  Request request;
  request.kind = RequestKind::kBer;
  request.spec = paper_spec();
  request.times_hours = {0.0, 24.0, 48.0 + static_cast<double>(variant)};
  return request;
}

// Heavier request for the brown-out flood (more grid points per solve).
Request heavy_request(std::uint64_t variant) {
  Request request;
  request.kind = RequestKind::kBer;
  request.spec = paper_spec();
  request.times_hours.reserve(16);
  for (int i = 0; i < 16; ++i) {
    request.times_hours.push_back(6.0 * i + static_cast<double>(variant));
  }
  return request;
}

std::string scenario_socket(unsigned index) {
  return "/tmp/rsmem-chaos-" + std::to_string(::getpid()) + "-" +
         std::to_string(index) + ".sock";
}

ServerConfig base_server_config(unsigned index) {
  ServerConfig config;
  config.endpoint = Endpoint::unix_socket(scenario_socket(index));
  config.router.shards = 2;
  config.router.scheduler.threads = 2;
  config.router.scheduler.max_queue = 64;
  config.router.scheduler.cache_capacity = 128;
  return config;
}

RetryPolicy churn_retry_policy(std::uint64_t seed) {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.base_backoff_ms = 0.5;
  policy.max_backoff_ms = 8.0;
  policy.seed = seed;
  return policy;
}

bool is_timeout(const core::Status& status) {
  return status.message().find("timed out") != std::string::npos;
}

// Every submitted request must land in exactly one of these buckets.
void account(ChaosScenarioResult& result, const core::Result<Response>& called,
             const std::string* expected, bool payload_corruption) {
  ++result.ops;
  if (!called.ok()) {
    if (is_timeout(called.status())) {
      ++result.timeouts;
    } else {
      ++result.transport_errors;
    }
    return;
  }
  const Response& response = called.value();
  if (!response.status.is_ok()) {
    ++result.typed_rejections;
    return;
  }
  ++result.ok;
  if (expected != nullptr && response.result_json != *expected) {
    // An ok response whose bytes differ from the direct core:: execution:
    // with payload corruption being injected that is an OBSERVED mangled
    // delivery (the wire has no integrity check); without it, it would
    // mean the daemon itself served wrong data.
    if (payload_corruption) {
      ++result.corrupt_deliveries;
    } else {
      ++result.mismatches;
    }
  }
}

bool ping_alive(const Endpoint& endpoint, double timeout_ms) {
  // Retry through whatever chaos is still wrapping the transport: alive
  // means "some attempt gets a clean pong", not "the first frame survives".
  RetryPolicy policy = churn_retry_policy(0x417E);
  ResilientClient client(endpoint, policy);
  client.set_receive_timeout(timeout_ms);
  Request request;
  request.kind = RequestKind::kPing;
  const core::Result<Response> called = client.call(request);
  return called.ok() && called.value().status.is_ok();
}

core::Result<Json> fetch_stats(const Endpoint& endpoint, double timeout_ms) {
  core::Result<Client> client = Client::connect(endpoint);
  if (!client.ok()) return client.status();
  (void)client.value().set_receive_timeout(timeout_ms);
  Request request;
  request.kind = RequestKind::kStats;
  core::Result<Response> called = client.value().call(request);
  if (!called.ok()) return called.status();
  if (!called.value().status.is_ok()) return called.value().status;
  return Json::parse(called.value().result_json);
}

std::string fault_detail(const chaos::ChaosCounters& counters) {
  return "torn=" + std::to_string(counters.torn_frames) +
         " len=" + std::to_string(counters.corrupt_lengths) +
         " pay=" + std::to_string(counters.corrupt_payloads) +
         " part=" + std::to_string(counters.partial_writes) +
         " stall=" + std::to_string(counters.stalls) +
         " reset=" + std::to_string(counters.resets) +
         " acc=" + std::to_string(counters.accept_failures);
}

void finish_invariants(ChaosScenarioResult& result) {
  result.invariants_ok =
      result.ops == result.ok + result.typed_rejections +
                        result.transport_errors + result.timeouts &&
      result.timeouts == 0 && result.mismatches == 0 && result.daemon_alive;
}

struct ChurnOptions {
  chaos::ChaosPolicy server_policy;
  chaos::ChaosPolicy client_policy;
  double hedge_after_ms = 0.0;
  // Drive through plain send()/receive() (1:1, in order) instead of the
  // retrying client — used when REQUEST payloads are being corrupted, so a
  // response carrying a mangled id can never wedge an id-matching loop.
  bool pipelined = false;
  bool payload_corruption = false;
  // Corruption scenarios flip bits whose effect depends on the exact
  // response byte-length — which embeds the wall-clock compute_ms — so
  // their ok/transport split and retry-driven fault counts vary run to
  // run even under a fixed seed. They print "." for those columns.
  bool counts_deterministic = true;
};

// The generic churn scenario: one server, one deterministic client-side
// request sequence through a faulty transport, then the audit.
ChaosScenarioResult run_churn_scenario(const ChaosCampaignConfig& config,
                                       unsigned index, const std::string& name,
                                       ChurnOptions options,
                                       const std::vector<std::string>& expected) {
  ChaosScenarioResult result;
  result.name = name;

  // Independent, scenario-keyed fault streams: scenario i replays the
  // same plan regardless of what ran before it.
  options.server_policy.seed = config.seed + 1000 + index;
  options.client_policy.seed = config.seed + 2000 + index;
  std::shared_ptr<chaos::ChaosEngine> server_engine =
      options.server_policy.any()
          ? std::make_shared<chaos::ChaosEngine>(options.server_policy)
          : nullptr;
  std::shared_ptr<chaos::ChaosEngine> client_engine =
      options.client_policy.any()
          ? std::make_shared<chaos::ChaosEngine>(options.client_policy)
          : nullptr;

  ServerConfig server_config = base_server_config(index);
  server_config.chaos = server_engine;
  core::Result<std::unique_ptr<Server>> started = Server::start(server_config);
  if (!started.ok()) {
    result.detail = "server failed to start: " + started.status().message();
    return result;
  }
  const std::unique_ptr<Server> server = std::move(started).value();

  if (options.pipelined) {
    // Plain client, one in-flight frame at a time. The server answers
    // every well-framed request exactly once (a request that fails to
    // parse gets a typed id-0 response), so receive() pairs 1:1 with
    // send() and a corrupted id cannot wedge anything.
    std::optional<Client> client;
    for (std::size_t i = 0; i < config.requests_per_scenario; ++i) {
      if (!client.has_value() || !client->connected()) {
        core::Result<Client> connected =
            Client::connect(server->endpoint(), client_engine);
        if (!connected.ok()) {
          ++result.ops;
          ++result.transport_errors;
          continue;
        }
        client = std::move(connected).value();
        (void)client->set_receive_timeout(config.receive_timeout_ms);
      }
      Request request = ber_request(i % config.distinct);
      request.id = static_cast<std::uint64_t>(i) + 1;
      const core::Result<std::uint64_t> sent = client->send(request);
      if (!sent.ok()) {
        ++result.ops;
        ++result.transport_errors;
        client.reset();
        continue;
      }
      // A corrupted REQUEST may still parse as a different valid request,
      // so the response bytes are not comparable to a fixed expectation;
      // daemon-side integrity is audited by the differential pass below.
      account(result, client->receive(), nullptr, true);
      if (!client->connected()) client.reset();
    }
  } else {
    ResilientClient client(server->endpoint(),
                           [&] {
                             RetryPolicy policy =
                                 churn_retry_policy(config.seed + index);
                             policy.hedge_after_ms = options.hedge_after_ms;
                             return policy;
                           }(),
                           client_engine);
    client.set_receive_timeout(config.receive_timeout_ms);
    for (std::size_t i = 0; i < config.requests_per_scenario; ++i) {
      const std::size_t variant = i % config.distinct;
      account(result, client.call(ber_request(variant)), &expected[variant],
              options.payload_corruption);
    }
  }

  // Differential audit: for every variant, the daemon must still be able
  // to deliver the byte-exact direct-core result through its (still
  // chaotic) transport. Payload corruption can mangle individual
  // deliveries, so each variant gets a few attempts; a variant that NEVER
  // matches means the daemon's state is wrong.
  std::size_t verified = 0;
  {
    ResilientClient checker(server->endpoint(),
                            churn_retry_policy(config.seed + 3000 + index));
    checker.set_receive_timeout(config.receive_timeout_ms);
    for (std::size_t variant = 0; variant < config.distinct; ++variant) {
      bool matched = false;
      for (int attempt = 0; attempt < 16 && !matched; ++attempt) {
        const core::Result<Response> called =
            checker.call(ber_request(variant));
        matched = called.ok() && called.value().status.is_ok() &&
                  called.value().result_json == expected[variant];
      }
      if (matched) {
        ++verified;
      } else {
        ++result.mismatches;
      }
    }
  }

  result.daemon_alive = ping_alive(server->endpoint(), config.receive_timeout_ms);
  chaos::ChaosCounters counters;
  if (server_engine) counters = server_engine->counters();
  if (client_engine) {
    const chaos::ChaosCounters client_counters = client_engine->counters();
    counters.torn_frames += client_counters.torn_frames;
    counters.corrupt_lengths += client_counters.corrupt_lengths;
    counters.corrupt_payloads += client_counters.corrupt_payloads;
    counters.partial_writes += client_counters.partial_writes;
    counters.stalls += client_counters.stalls;
    counters.resets += client_counters.resets;
    counters.accept_failures += client_counters.accept_failures;
  }
  result.faults_injected = counters.total();
  result.counts_deterministic = options.counts_deterministic;
  const std::string verified_detail = " verified=" + std::to_string(verified) +
                                      "/" + std::to_string(config.distinct);
  result.detail = options.counts_deterministic
                      ? fault_detail(counters) + verified_detail
                      : "fault mix tracks response length" + verified_detail;
  finish_invariants(result);
  return result;
}

// Oversized frame announcement => typed kInvalidConfig BEFORE allocation,
// then the connection closes.
ChaosScenarioResult run_max_frame_scenario(const ChaosCampaignConfig& config,
                                           unsigned index) {
  ChaosScenarioResult result;
  result.name = "max-frame-reject";
  ServerConfig server_config = base_server_config(index);
  server_config.max_frame_bytes = 1024;
  core::Result<std::unique_ptr<Server>> started = Server::start(server_config);
  if (!started.ok()) {
    result.detail = "server failed to start: " + started.status().message();
    return result;
  }
  const std::unique_ptr<Server> server = std::move(started).value();

  bool typed_reject = false;
  bool closed_after = false;
  core::Result<int> fd = connect_to(server->endpoint());
  if (fd.ok()) {
    ++result.ops;
    // A bare length prefix announcing 2048 bytes (> the 1024 cap); the
    // body never follows and must never be awaited.
    const unsigned char header[4] = {0x00, 0x00, 0x08, 0x00};
    if (wire::write_all(fd.value(), header, sizeof header).is_ok()) {
      const core::Result<FrameRead> frame = read_frame(fd.value());
      if (frame.ok() && !frame.value().eof) {
        const core::Result<Response> response =
            Response::from_json(frame.value().payload);
        if (response.ok() &&
            response.value().status.code() ==
                core::StatusCode::kInvalidConfig) {
          typed_reject = true;
          ++result.typed_rejections;
        }
      }
      const core::Result<FrameRead> after = read_frame(fd.value());
      closed_after = !after.ok() || after.value().eof;
    }
    ::close(fd.value());
  }
  if (!typed_reject) ++result.transport_errors;  // keep the books balanced

  result.daemon_alive = ping_alive(server->endpoint(), config.receive_timeout_ms);
  result.detail = std::string("typed-reject=") + (typed_reject ? "yes" : "no") +
                  " closed=" + (closed_after ? "yes" : "no");
  finish_invariants(result);
  result.invariants_ok = result.invariants_ok && typed_reject && closed_after;
  return result;
}

// Burst past the per-connection token bucket => typed kOverloaded
// rejections, connection survives. The ok/rejected split depends on wall
// time, so only the booleans are printed.
ChaosScenarioResult run_rate_limit_scenario(const ChaosCampaignConfig& config,
                                            unsigned index) {
  ChaosScenarioResult result;
  result.name = "frame-rate-limit";
  result.counts_deterministic = false;
  ServerConfig server_config = base_server_config(index);
  server_config.max_frames_per_second = 5.0;
  core::Result<std::unique_ptr<Server>> started = Server::start(server_config);
  if (!started.ok()) {
    result.detail = "server failed to start: " + started.status().message();
    return result;
  }
  const std::unique_ptr<Server> server = std::move(started).value();

  core::Result<Client> client = Client::connect(server->endpoint());
  bool survived_connection = false;
  if (client.ok()) {
    (void)client.value().set_receive_timeout(config.receive_timeout_ms);
    Request request;
    request.kind = RequestKind::kPing;
    for (int i = 0; i < 30; ++i) {
      account(result, client.value().call(request), nullptr, false);
    }
    // The rate-limited connection must still be usable afterwards.
    survived_connection = client.value().connected();
  }
  const bool engaged = result.typed_rejections > 0;
  result.daemon_alive = ping_alive(server->endpoint(), config.receive_timeout_ms);
  result.detail = std::string("engaged=") + (engaged ? "yes" : "no") +
                  " connection-survived=" +
                  (survived_connection ? "yes" : "no");
  finish_invariants(result);
  result.invariants_ok =
      result.invariants_ok && engaged && survived_connection;
  return result;
}

// Sustained overload on a 1-worker shard => brown-out sheds cache-miss
// work with typed kBrownout while the control plane stays responsive.
ChaosScenarioResult run_brownout_scenario(const ChaosCampaignConfig& config,
                                          unsigned index) {
  ChaosScenarioResult result;
  result.name = "overload-brownout";
  result.counts_deterministic = false;
  ServerConfig server_config = base_server_config(index);
  server_config.router.shards = 1;
  server_config.router.scheduler.threads = 1;
  server_config.router.scheduler.max_queue = 16;  // brown-out enters at 12
  server_config.router.scheduler.batch_max = 4;
  core::Result<std::unique_ptr<Server>> started = Server::start(server_config);
  if (!started.ok()) {
    result.detail = "server failed to start: " + started.status().message();
    return result;
  }
  const std::unique_ptr<Server> server = std::move(started).value();

  bool saw_brownout = false;
  bool control_plane_ok = false;
  core::Result<Client> client = Client::connect(server->endpoint());
  if (client.ok()) {
    (void)client.value().set_receive_timeout(config.receive_timeout_ms);
    const std::size_t flood = 48;
    std::size_t sent = 0;
    for (std::size_t i = 0; i < flood; ++i) {
      Request request = heavy_request(i);
      request.id = static_cast<std::uint64_t>(i) + 1;
      if (client.value().send(request).ok()) {
        ++sent;
      } else {
        ++result.ops;
        ++result.transport_errors;
      }
    }
    // While the flood is in flight, the control plane must still answer
    // (ping on a second connection — never queued, never shed).
    control_plane_ok = ping_alive(server->endpoint(), config.receive_timeout_ms);
    for (std::size_t i = 0; i < sent; ++i) {
      const core::Result<Response> received = client.value().receive();
      account(result, received, nullptr, false);
      if (received.ok() &&
          received.value().status.code() == core::StatusCode::kBrownout) {
        saw_brownout = true;
      }
    }
  }
  std::uint64_t brownout_entries = 0;
  const core::Result<Json> stats =
      fetch_stats(server->endpoint(), config.receive_timeout_ms);
  if (stats.ok()) {
    if (const Json* scheduler = stats.value().find("scheduler")) {
      brownout_entries = static_cast<std::uint64_t>(
          scheduler->number_or("brownout_entries", 0.0));
    }
  }
  const bool engaged = saw_brownout || brownout_entries > 0;
  result.daemon_alive = ping_alive(server->endpoint(), config.receive_timeout_ms);
  result.detail = std::string("engaged=") + (engaged ? "yes" : "no") +
                  " control-plane=" + (control_plane_ok ? "yes" : "no");
  finish_invariants(result);
  result.invariants_ok = result.invariants_ok && engaged && control_plane_ok;
  return result;
}

// Idle connections get their read side shut down by the reaper; the
// daemon does not leak an fd + thread per abandoned client.
ChaosScenarioResult run_idle_reaper_scenario(const ChaosCampaignConfig& config,
                                             unsigned index) {
  ChaosScenarioResult result;
  result.name = "idle-reaper";
  result.counts_deterministic = false;
  ServerConfig server_config = base_server_config(index);
  server_config.idle_timeout_ms = 50.0;
  core::Result<std::unique_ptr<Server>> started = Server::start(server_config);
  if (!started.ok()) {
    result.detail = "server failed to start: " + started.status().message();
    return result;
  }
  const std::unique_ptr<Server> server = std::move(started).value();

  // Three clients ping once and then go silent (slow-loris shape).
  std::vector<Client> idlers;
  Request ping;
  ping.kind = RequestKind::kPing;
  for (int i = 0; i < 3; ++i) {
    core::Result<Client> connected = Client::connect(server->endpoint());
    if (!connected.ok()) continue;
    (void)connected.value().set_receive_timeout(config.receive_timeout_ms);
    account(result, connected.value().call(ping), nullptr, false);
    idlers.push_back(std::move(connected).value());
  }

  std::uint64_t reaped = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    const core::Result<Json> stats =
        fetch_stats(server->endpoint(), config.receive_timeout_ms);
    if (stats.ok()) {
      reaped = static_cast<std::uint64_t>(
          stats.value().number_or("idle_reaped", 0.0));
      if (reaped >= idlers.size()) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const bool all_reaped = !idlers.empty() && reaped >= idlers.size();
  result.daemon_alive = ping_alive(server->endpoint(), config.receive_timeout_ms);
  result.detail = std::string("reaped-all-idlers=") +
                  (all_reaped ? "yes" : "no");
  finish_invariants(result);
  result.invariants_ok = result.invariants_ok && all_reaped;
  return result;
}

// Snapshot on drain shutdown, warm start on reboot: the second server
// serves the first server's results as cache HITS, byte-identical.
ChaosScenarioResult run_warm_start_scenario(const ChaosCampaignConfig& config,
                                            unsigned index,
                                            const std::vector<std::string>& expected) {
  ChaosScenarioResult result;
  result.name = "snapshot-warm-start";
  const std::string snapshot = "/tmp/rsmem-chaos-" +
                               std::to_string(::getpid()) + "-snap.bin";
  ::unlink(snapshot.c_str());

  {
    ServerConfig first_config = base_server_config(index);
    first_config.snapshot_path = snapshot;
    core::Result<std::unique_ptr<Server>> started =
        Server::start(first_config);
    if (!started.ok()) {
      result.detail = "server failed to start: " + started.status().message();
      return result;
    }
    const std::unique_ptr<Server> server = std::move(started).value();
    ResilientClient client(server->endpoint(),
                           churn_retry_policy(config.seed + index));
    client.set_receive_timeout(config.receive_timeout_ms);
    for (std::size_t variant = 0; variant < config.distinct; ++variant) {
      account(result, client.call(ber_request(variant)), &expected[variant],
              false);
    }
    server->shutdown();  // drain + snapshot save
  }

  std::uint64_t warm_entries = 0;
  std::size_t warm_hits = 0;
  bool alive = false;
  {
    ServerConfig second_config = base_server_config(index + 100);
    second_config.snapshot_path = snapshot;
    core::Result<std::unique_ptr<Server>> started =
        Server::start(second_config);
    if (started.ok()) {
      const std::unique_ptr<Server> server = std::move(started).value();
      const core::Result<Json> stats =
          fetch_stats(server->endpoint(), config.receive_timeout_ms);
      if (stats.ok()) {
        warm_entries = static_cast<std::uint64_t>(
            stats.value().number_or("warm_start_entries", 0.0));
      }
      ResilientClient client(server->endpoint(),
                             churn_retry_policy(config.seed + index + 1));
      client.set_receive_timeout(config.receive_timeout_ms);
      for (std::size_t variant = 0; variant < config.distinct; ++variant) {
        const core::Result<Response> called =
            client.call(ber_request(variant));
        account(result, called, &expected[variant], false);
        if (called.ok() && called.value().status.is_ok() &&
            called.value().cache == CacheSource::kHit) {
          ++warm_hits;
        }
      }
      alive = ping_alive(server->endpoint(), config.receive_timeout_ms);
    }
  }
  ::unlink(snapshot.c_str());

  const bool warmed =
      warm_entries >= config.distinct && warm_hits == config.distinct;
  result.daemon_alive = alive;
  result.detail = "warm-entries=" + std::to_string(warm_entries) +
                  " warm-hits=" + std::to_string(warm_hits) + "/" +
                  std::to_string(config.distinct);
  finish_invariants(result);
  result.invariants_ok = result.invariants_ok && warmed;
  return result;
}

// A corrupt snapshot must produce a clean cold start (error surfaced in
// stats), never a crash or poisoned cache.
ChaosScenarioResult run_corrupt_snapshot_scenario(
    const ChaosCampaignConfig& config, unsigned index,
    const std::vector<std::string>& expected) {
  ChaosScenarioResult result;
  result.name = "corrupt-snapshot";
  const std::string snapshot = "/tmp/rsmem-chaos-" +
                               std::to_string(::getpid()) + "-corrupt.bin";
  {
    std::ofstream file(snapshot, std::ios::binary | std::ios::trunc);
    file << "RSMSgarbage-not-a-valid-snapshot-body-truncated";
  }

  ServerConfig server_config = base_server_config(index);
  server_config.snapshot_path = snapshot;
  core::Result<std::unique_ptr<Server>> started = Server::start(server_config);
  if (!started.ok()) {
    ::unlink(snapshot.c_str());
    result.detail = "server failed to start: " + started.status().message();
    return result;
  }
  const std::unique_ptr<Server> server = std::move(started).value();

  std::uint64_t warm_entries = 0;
  bool error_surfaced = false;
  const core::Result<Json> stats =
      fetch_stats(server->endpoint(), config.receive_timeout_ms);
  if (stats.ok()) {
    warm_entries = static_cast<std::uint64_t>(
        stats.value().number_or("warm_start_entries", 0.0));
    error_surfaced =
        !stats.value().string_or("warm_start_error", "").empty();
  }
  ResilientClient client(server->endpoint(),
                         churn_retry_policy(config.seed + index));
  client.set_receive_timeout(config.receive_timeout_ms);
  for (std::size_t variant = 0; variant < config.distinct; ++variant) {
    account(result, client.call(ber_request(variant)), &expected[variant],
            false);
  }
  result.daemon_alive = ping_alive(server->endpoint(), config.receive_timeout_ms);
  ::unlink(snapshot.c_str());
  const bool cold_start = warm_entries == 0;
  result.detail = std::string("cold-start=") + (cold_start ? "yes" : "no") +
                  " error-surfaced=" + (error_surfaced ? "yes" : "no");
  finish_invariants(result);
  result.invariants_ok =
      result.invariants_ok && cold_start && error_surfaced;
  return result;
}

}  // namespace

core::Result<ChaosCampaignReport> run_chaos_campaign(
    const ChaosCampaignConfig& config) {
  if (config.requests_per_scenario == 0 || config.distinct == 0) {
    return core::Status::invalid_config(
        "chaos campaign needs requests_per_scenario >= 1 and distinct >= 1");
  }
  if (config.receive_timeout_ms <= 0) {
    return core::Status::invalid_config(
        "chaos campaign needs a positive receive timeout (its hang detector)");
  }
  // Injected resets surface as typed errors, never a SIGPIPE kill.
  auto* previous_pipe = std::signal(SIGPIPE, SIG_IGN);

  // The ground truth every ok response is compared against: the same
  // requests executed directly on the core engines.
  std::vector<std::string> expected;
  expected.reserve(config.distinct);
  {
    SchedulerConfig local;
    local.threads = 1;
    AnalysisScheduler direct(local);
    for (std::size_t variant = 0; variant < config.distinct; ++variant) {
      expected.push_back(direct.execute(ber_request(variant)).result_json);
    }
  }

  ChaosCampaignReport report;
  unsigned index = 0;
  const auto add = [&report](ChaosScenarioResult scenario) {
    report.scenarios.push_back(std::move(scenario));
  };

  {
    ChurnOptions clean;
    add(run_churn_scenario(config, index++, "baseline-clean", clean, expected));
  }
  {
    ChurnOptions hedged;
    hedged.hedge_after_ms = 0.2;
    add(run_churn_scenario(config, index++, "hedged-clean", hedged, expected));
  }
  {
    ChurnOptions torn;
    torn.server_policy.torn_frame = 0.25;
    add(run_churn_scenario(config, index++, "server-torn-frames", torn,
                           expected));
  }
  {
    ChurnOptions length;
    length.server_policy.corrupt_length = 0.25;
    length.counts_deterministic = false;
    add(run_churn_scenario(config, index++, "server-corrupt-length", length,
                           expected));
  }
  {
    ChurnOptions payload;
    payload.server_policy.corrupt_payload = 0.25;
    payload.payload_corruption = true;
    payload.counts_deterministic = false;
    add(run_churn_scenario(config, index++, "server-corrupt-payload", payload,
                           expected));
  }
  {
    ChurnOptions requests;
    requests.client_policy.corrupt_payload = 0.25;
    requests.pipelined = true;
    requests.payload_corruption = true;
    requests.counts_deterministic = false;
    add(run_churn_scenario(config, index++, "client-corrupt-requests",
                           requests, expected));
  }
  {
    ChurnOptions resets;
    resets.client_policy.reset_read = 0.3;
    add(run_churn_scenario(config, index++, "mid-response-resets", resets,
                           expected));
  }
  {
    ChurnOptions loris;
    loris.server_policy.stall_write = 0.4;
    loris.server_policy.partial_write = 0.3;
    loris.server_policy.stall_ms = 2.0;
    add(run_churn_scenario(config, index++, "slow-loris-writes", loris,
                           expected));
  }
  {
    ChurnOptions accepts;
    accepts.server_policy.accept_fail = 0.4;
    add(run_churn_scenario(config, index++, "accept-failures", accepts,
                           expected));
  }
  {
    ChurnOptions storm;
    storm.server_policy.torn_frame = 0.08;
    storm.server_policy.corrupt_length = 0.08;
    storm.server_policy.corrupt_payload = 0.08;
    storm.server_policy.partial_write = 0.15;
    storm.server_policy.stall_write = 0.1;
    storm.server_policy.stall_ms = 1.0;
    storm.client_policy.stall_read = 0.1;
    storm.client_policy.reset_read = 0.1;
    storm.client_policy.stall_ms = 1.0;
    storm.server_policy.accept_fail = 0.15;
    storm.payload_corruption = true;
    storm.counts_deterministic = false;
    add(run_churn_scenario(config, index++, "mixed-storm", storm, expected));
  }
  add(run_max_frame_scenario(config, index++));
  add(run_rate_limit_scenario(config, index++));
  add(run_brownout_scenario(config, index++));
  add(run_idle_reaper_scenario(config, index++));
  add(run_warm_start_scenario(config, index++, expected));
  ++index;  // the warm-start scenario used index and index + 100
  add(run_corrupt_snapshot_scenario(config, index++, expected));

  for (const ChaosScenarioResult& scenario : report.scenarios) {
    report.ops += scenario.ops;
    report.ok += scenario.ok;
    report.typed_rejections += scenario.typed_rejections;
    report.transport_errors += scenario.transport_errors;
    report.timeouts += scenario.timeouts;
    report.faults_injected += scenario.faults_injected;
    report.corrupt_deliveries += scenario.corrupt_deliveries;
    report.mismatches += scenario.mismatches;
  }
  std::signal(SIGPIPE, previous_pipe);
  return report;
}

std::string format_chaos_report(const ChaosCampaignConfig& config,
                                const ChaosCampaignReport& report) {
  analysis::Table table{{"scenario", "ops", "ok", "typed", "transport",
                         "faults", "alive", "audit", "detail"}};
  for (const ChaosScenarioResult& scenario : report.scenarios) {
    // Wall-clock-sensitive scenarios print "." for the fields whose split
    // varies run to run; everything else is byte-deterministic per seed.
    const auto count = [&](std::uint64_t value) {
      return scenario.counts_deterministic ? std::to_string(value)
                                           : std::string(".");
    };
    table.add_row({scenario.name, std::to_string(scenario.ops),
                   count(scenario.ok), count(scenario.typed_rejections),
                   count(scenario.transport_errors),
                   count(scenario.faults_injected),
                   scenario.daemon_alive ? "yes" : "NO",
                   scenario.invariants_ok ? "ok" : "FAIL", scenario.detail});
  }
  std::string out = table.to_text();
  out += "\n";
  out += "seed " + std::to_string(config.seed) + ": " +
         std::to_string(report.scenarios.size()) + " scenarios, " +
         std::to_string(report.ops) + " requests, every one accounted for (" +
         std::to_string(report.timeouts) + " hangs, " +
         std::to_string(report.mismatches) + " differential mismatches)\n";
  out += std::string("CHAOS CAMPAIGN ") +
         (report.passed() ? "PASSED" : "FAILED") + "\n";
  return out;
}

}  // namespace rsmem::service
