#include "service/shard_router.h"

#include <algorithm>
#include <iterator>
#include <utility>

namespace rsmem::service {

namespace {

// Splits the total worker budget evenly; every shard gets at least one
// worker so a shard can never deadlock on an empty pool.
unsigned threads_per_shard(unsigned total, unsigned shards) {
  const unsigned resolved = sim::ThreadPool::resolve(total);
  return std::max(1u, resolved / std::max(1u, shards));
}

}  // namespace

ShardRouter::ShardRouter(const ShardRouterConfig& config)
    : shard_count_(std::max(1u, config.shards)),
      global_max_(config.global_max_pending != 0
                      ? config.global_max_pending
                      : static_cast<std::size_t>(shard_count_) *
                            config.scheduler.max_queue) {
  SchedulerConfig per_shard = config.scheduler;
  per_shard.threads = threads_per_shard(config.scheduler.threads, shard_count_);
  shards_.reserve(shard_count_);
  for (unsigned i = 0; i < shard_count_; ++i) {
    shards_.push_back(std::make_unique<AnalysisScheduler>(per_shard));
  }
}

ShardRouter::~ShardRouter() { stop(); }

std::size_t ShardRouter::shard_of(const Request& request) const {
  return shard_of_key(canonical_cache_key(request), shard_count_);
}

core::Status ShardRouter::submit(Request request,
                                 std::function<void(Response)> done) {
  // Global backstop: reserve a slot before touching any shard. The wrapped
  // done-callback releases it when the response fires, so `global_pending_`
  // counts admitted-but-unanswered requests across all shards.
  const std::size_t pending = global_pending_.fetch_add(1, std::memory_order_acq_rel);
  if (pending >= global_max_) {
    global_pending_.fetch_sub(1, std::memory_order_acq_rel);
    rejected_global_.fetch_add(1, std::memory_order_relaxed);
    return core::Status(
        core::StatusCode::kOverloaded,
        "service at global capacity (" + std::to_string(pending) + "/" +
            std::to_string(global_max_) + " in flight); retry with backoff");
  }

  const std::size_t shard = shard_of(request);
  auto wrapped = [this, done = std::move(done)](Response response) {
    global_pending_.fetch_sub(1, std::memory_order_acq_rel);
    done(std::move(response));
  };
  core::Status status =
      shards_[shard]->submit(std::move(request), std::move(wrapped));
  if (!status.is_ok()) {
    // Shard-level rejection: the wrapped callback will never run, so the
    // global reservation must be released here.
    global_pending_.fetch_sub(1, std::memory_order_acq_rel);
  }
  return status;
}

Response ShardRouter::execute(const Request& request) {
  return shards_[shard_of(request)]->execute(request);
}

ShardRouter::Stats ShardRouter::stats() const {
  Stats out;
  out.shard_scheduler.reserve(shards_.size());
  out.shard_cache.reserve(shards_.size());
  for (const auto& shard : shards_) {
    out.shard_scheduler.push_back(shard->stats());
    out.shard_cache.push_back(shard->cache_stats());
    out.scheduler.merge(out.shard_scheduler.back());
    out.cache.merge(out.shard_cache.back());
  }
  out.rejected_global = rejected_global_.load(std::memory_order_relaxed);
  out.global_pending = global_pending_.load(std::memory_order_relaxed);
  return out;
}

AnalysisScheduler::Stats ShardRouter::scheduler_stats() const {
  AnalysisScheduler::Stats merged;
  for (const auto& shard : shards_) merged.merge(shard->stats());
  return merged;
}

ResultCache::Stats ShardRouter::cache_stats() const {
  ResultCache::Stats merged;
  for (const auto& shard : shards_) merged.merge(shard->cache_stats());
  return merged;
}

core::Status ShardRouter::save_snapshot(const std::string& path) const {
  std::vector<SnapshotEntry> entries;
  for (const auto& shard : shards_) {
    std::vector<SnapshotEntry> exported = shard->export_cache_entries();
    entries.insert(entries.end(), std::make_move_iterator(exported.begin()),
                   std::make_move_iterator(exported.end()));
  }
  core::Status status = write_snapshot_file(path, entries);
  return status.with_context("cache snapshot save");
}

core::Result<std::size_t> ShardRouter::load_snapshot(const std::string& path) {
  core::Result<std::vector<SnapshotEntry>> entries = read_snapshot_file(path);
  if (!entries.ok()) {
    core::Status status = entries.status();
    return status.with_context("cache snapshot load");
  }
  for (SnapshotEntry& entry : entries.value()) {
    // Re-route by key: the snapshot's shard count is irrelevant, each
    // entry lands on the shard that owns it HERE.
    const std::size_t shard = shard_of_key(entry.key, shard_count_);
    shards_[shard]->warm_cache_entry(entry.key, std::move(entry.value));
  }
  return entries.value().size();
}

void ShardRouter::stop() {
  for (auto& shard : shards_) shard->stop();
}

}  // namespace rsmem::service
