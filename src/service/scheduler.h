// Request scheduler of rsmem-serve: admission control, deadline policing,
// compatibility batching, and execution on the shared analysis engines.
// One AnalysisScheduler is one SHARD of the service (service/shard_router.h
// routes requests to shards by canonical-cache-key hash); a single-shard
// deployment is simply a router with one scheduler.
//
// Life of a request:
//   1. submit() — ADMISSION: the pending queue is a bounded lock-free MPMC
//      ring (service/mpmc_queue.h). When it already holds max_queue
//      requests the submission is rejected immediately with a typed
//      kOverloaded Status (never a silent drop, never a blocked producer)
//      and nothing is enqueued. The submit hot path takes no mutex: a
//      slot reservation on an atomic depth counter, a ring push, and an
//      epoch bump to wake the dispatcher.
//   2. The dispatcher thread drains up to batch_max pending requests at a
//      time and groups them by COMPATIBILITY KEY — the structural identity
//      of the Markov chain they need (arrangement, code geometry, rate
//      zero-pattern, analysis family). Each group becomes one task on the
//      sim::ThreadPool: distinct groups run concurrently, requests inside
//      a group run back-to-back so the first solve warms the
//      models::ChainCache structure and the ResultCache, and the rest of
//      the group replays/hits instead of re-enumerating.
//   3. DEADLINE: policed twice. A request whose deadline_ms elapsed by the
//      time the dispatcher drains it is answered kDeadlineExceeded without
//      ever occupying a worker; and because a group can sit behind earlier
//      groups on a busy pool, the deadline is RE-CHECKED when the shard
//      worker dequeues the request for execution — a request queued past
//      its deadline gets the typed rejection, not a late success.
//   4. Execution routes through the core try_* facade (global ChainCache +
//      per-thread SolverWorkspace) via the single-flight ResultCache, so
//      results are bit-identical to direct core:: calls.
// stop() drains: accepted requests still complete, new submissions are
// rejected kOverloaded("scheduler stopping").
#ifndef RSMEM_SERVICE_SCHEDULER_H
#define RSMEM_SERVICE_SCHEDULER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "service/mpmc_queue.h"
#include "service/protocol.h"
#include "service/result_cache.h"
#include "sim/thread_pool.h"

namespace rsmem::service {

struct SchedulerConfig {
  unsigned threads = 0;            // worker pool size; 0 = hardware
  std::size_t max_queue = 128;     // admission bound on pending requests
  std::size_t cache_capacity = 256;
  std::size_t batch_max = 16;      // max requests drained per dispatch
};

class AnalysisScheduler {
 public:
  explicit AnalysisScheduler(const SchedulerConfig& config);
  ~AnalysisScheduler();
  AnalysisScheduler(const AnalysisScheduler&) = delete;
  AnalysisScheduler& operator=(const AnalysisScheduler&) = delete;

  // Admission-controlled enqueue. Ok => `done` fires exactly once, from a
  // worker thread, with the final Response. Non-ok (kOverloaded) => `done`
  // was NOT and will not be invoked; the caller owns the rejection.
  core::Status submit(Request request, std::function<void(Response)> done);

  // Executes one request synchronously on the caller's thread through the
  // same cache + engines (used by tests and the router's sync path).
  Response execute(const Request& request);

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected_overload = 0;
    std::uint64_t deadline_expired = 0;
    std::uint64_t completed = 0;
    std::uint64_t batches = 0;        // dispatcher drains
    std::uint64_t batch_groups = 0;   // pool tasks dispatched
    std::uint64_t max_batch = 0;      // largest single drain
    std::size_t queue_depth = 0;      // pending right now

    // Counter-wise sum used by the shard router's stats merge
    // (max_batch merges as a max, queue_depth as a sum).
    Stats& merge(const Stats& other);
  };
  Stats stats() const;
  ResultCache::Stats cache_stats() const { return cache_.stats(); }

  // Rejects new work, drains everything already accepted, joins workers.
  // Idempotent; also run by the destructor.
  void stop();

 private:
  using Clock = std::chrono::steady_clock;
  struct Pending {
    Request request;
    std::function<void(Response)> done;
    Clock::time_point deadline;  // time_point::max() = none
  };

  void dispatcher_loop();
  void dispatch_batch(std::vector<Pending>& batch);
  void run_group(std::shared_ptr<std::vector<Pending>> group);
  void answer_deadline_expired(Pending& pending);
  Response execute_timed(const Request& request);

  const SchedulerConfig config_;
  ResultCache cache_;
  sim::ThreadPool pool_;

  // Lock-free dispatch state. pending_count_ is the admission bound
  // (reserve-then-push keeps it an upper bound on ring occupancy);
  // work_epoch_ is bumped after every push so the dispatcher's
  // atomic wait never misses a wake-up.
  MpmcQueue<Pending> pending_;
  std::atomic<std::size_t> pending_count_{0};
  std::atomic<std::uint64_t> work_epoch_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<int> submits_in_flight_{0};  // quiescence barrier for stop()

  struct AtomicStats {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected_overload{0};
    std::atomic<std::uint64_t> deadline_expired{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> batch_groups{0};
    std::atomic<std::uint64_t> max_batch{0};
  };
  AtomicStats stats_;
  std::thread dispatcher_;
};

// Compatibility key used for batching: requests with equal keys share the
// same chain structure in models::ChainCache. Exposed for tests.
std::string batch_compatibility_key(const Request& request);

}  // namespace rsmem::service

#endif  // RSMEM_SERVICE_SCHEDULER_H
