// Request scheduler of rsmem-serve: admission control, deadline policing,
// compatibility batching, and execution on the shared analysis engines.
// One AnalysisScheduler is one SHARD of the service (service/shard_router.h
// routes requests to shards by canonical-cache-key hash); a single-shard
// deployment is simply a router with one scheduler.
//
// Life of a request:
//   1. submit() — ADMISSION: the pending queue is a bounded lock-free MPMC
//      ring (service/mpmc_queue.h). When it already holds max_queue
//      requests the submission is rejected immediately with a typed
//      kOverloaded Status (never a silent drop, never a blocked producer)
//      and nothing is enqueued. The submit hot path takes no mutex: a
//      slot reservation on an atomic depth counter, a ring push, and an
//      epoch bump to wake the dispatcher.
//   2. The dispatcher thread drains up to batch_max pending requests at a
//      time and groups them by COMPATIBILITY KEY — the structural identity
//      of the Markov chain they need (arrangement, code geometry, rate
//      zero-pattern, analysis family). Each group becomes one task on the
//      sim::ThreadPool: distinct groups run concurrently, requests inside
//      a group run back-to-back so the first solve warms the
//      models::ChainCache structure and the ResultCache, and the rest of
//      the group replays/hits instead of re-enumerating.
//   3. DEADLINE: policed twice. A request whose deadline_ms elapsed by the
//      time the dispatcher drains it is answered kDeadlineExceeded without
//      ever occupying a worker; and because a group can sit behind earlier
//      groups on a busy pool, the deadline is RE-CHECKED when the shard
//      worker dequeues the request for execution — a request queued past
//      its deadline gets the typed rejection, not a late success.
//   4. Execution routes through the core try_* facade (global ChainCache +
//      per-thread SolverWorkspace) via the single-flight ResultCache, so
//      results are bit-identical to direct core:: calls.
// stop() drains: accepted requests still complete, new submissions are
// rejected kOverloaded("scheduler stopping").
#ifndef RSMEM_SERVICE_SCHEDULER_H
#define RSMEM_SERVICE_SCHEDULER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "service/mpmc_queue.h"
#include "service/protocol.h"
#include "service/result_cache.h"
#include "sim/thread_pool.h"

namespace rsmem::service {

struct SchedulerConfig {
  unsigned threads = 0;            // worker pool size; 0 = hardware
  std::size_t max_queue = 128;     // admission bound on pending requests
  std::size_t cache_capacity = 256;
  std::size_t batch_max = 16;      // max requests drained per dispatch

  // Brown-out: graceful degradation under SUSTAINED overload, watermarked
  // on in-flight depth (accepted - completed: ring + pool queue +
  // executing). Crossing brownout_enter puts the shard in brown-out:
  // cache-MISS analysis work is shed with a typed kBrownout rejection
  // (carrying a retry-after hint), while cache HITS are answered inline
  // from submit() and the control plane stays untouched. The mode is
  // self-draining — no new misses are admitted, so depth falls — and
  // clears once depth reaches brownout_exit. 0 = derive from max_queue
  // (enter: 3/4 * max_queue, exit: 1/4 * max_queue).
  bool brownout_enabled = true;
  std::size_t brownout_enter = 0;
  std::size_t brownout_exit = 0;
  double brownout_retry_after_ms = 50.0;

  // Watchdog: a shard with in-flight work but no completion progress for
  // longer than this is reported stuck in stats (a starved/wedged shard
  // must be VISIBLE, not silent). <= 0 disables.
  double watchdog_stall_ms = 2000.0;
};

class AnalysisScheduler {
 public:
  explicit AnalysisScheduler(const SchedulerConfig& config);
  ~AnalysisScheduler();
  AnalysisScheduler(const AnalysisScheduler&) = delete;
  AnalysisScheduler& operator=(const AnalysisScheduler&) = delete;

  // Admission-controlled enqueue. Ok => `done` fires exactly once with
  // the final Response — from a worker thread, or INLINE from submit()
  // when a brown-out serves a cache hit without queueing. Non-ok
  // (kOverloaded / kBrownout) => `done` was NOT and will not be invoked;
  // the caller owns the rejection.
  core::Status submit(Request request, std::function<void(Response)> done);

  // Executes one request synchronously on the caller's thread through the
  // same cache + engines (used by tests and the router's sync path).
  Response execute(const Request& request);

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected_overload = 0;
    std::uint64_t deadline_expired = 0;
    std::uint64_t completed = 0;
    std::uint64_t batches = 0;        // dispatcher drains
    std::uint64_t batch_groups = 0;   // pool tasks dispatched
    std::uint64_t max_batch = 0;      // largest single drain
    std::size_t queue_depth = 0;      // pending right now
    std::size_t in_flight = 0;        // accepted - completed
    // Brown-out telemetry.
    bool brownout_active = false;
    std::uint64_t brownout_entries = 0;  // times brown-out engaged
    std::uint64_t brownout_shed = 0;     // misses rejected kBrownout
    std::uint64_t brownout_hits = 0;     // hits served inline from submit
    // Watchdog: stalled_ms = time since the last completion while work is
    // in flight (0 when idle); stuck = stalled past watchdog_stall_ms.
    bool stuck = false;
    double stalled_ms = 0.0;

    // Counter-wise sum used by the shard router's stats merge
    // (max_batch/stalled_ms merge as a max, the bools as OR,
    // queue_depth/in_flight as sums).
    Stats& merge(const Stats& other);
  };
  Stats stats() const;
  ResultCache::Stats cache_stats() const { return cache_.stats(); }

  // Warm-start surfaces (the router's snapshot save/load goes through
  // these; see result_cache.h).
  std::vector<SnapshotEntry> export_cache_entries() const {
    return cache_.export_entries();
  }
  void warm_cache_entry(const std::string& key,
                        std::shared_ptr<const std::string> value) {
    cache_.insert(key, std::move(value));
  }

  // Rejects new work, drains everything already accepted, joins workers.
  // Idempotent; also run by the destructor.
  void stop();

 private:
  using Clock = std::chrono::steady_clock;
  struct Pending {
    Request request;
    std::function<void(Response)> done;
    Clock::time_point deadline;  // time_point::max() = none
  };

  void dispatcher_loop();
  void dispatch_batch(std::vector<Pending>& batch);
  void run_group(std::shared_ptr<std::vector<Pending>> group);
  void answer_deadline_expired(Pending& pending);
  Response execute_timed(const Request& request);
  void note_progress();
  std::size_t in_flight_now() const;

  const SchedulerConfig config_;
  std::size_t brownout_enter_ = 0;  // resolved thresholds (see config)
  std::size_t brownout_exit_ = 0;
  ResultCache cache_;
  sim::ThreadPool pool_;

  // Lock-free dispatch state. pending_count_ is the admission bound
  // (reserve-then-push keeps it an upper bound on ring occupancy);
  // work_epoch_ is bumped after every push so the dispatcher's
  // atomic wait never misses a wake-up.
  MpmcQueue<Pending> pending_;
  std::atomic<std::size_t> pending_count_{0};
  std::atomic<std::uint64_t> work_epoch_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<int> submits_in_flight_{0};  // quiescence barrier for stop()

  struct AtomicStats {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected_overload{0};
    std::atomic<std::uint64_t> deadline_expired{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> batch_groups{0};
    std::atomic<std::uint64_t> max_batch{0};
    std::atomic<std::uint64_t> brownout_entries{0};
    std::atomic<std::uint64_t> brownout_shed{0};
    std::atomic<std::uint64_t> brownout_hits{0};
  };
  AtomicStats stats_;
  std::atomic<bool> brownout_{false};
  // Watchdog heartbeat: steady-clock ns of the last completion (or of
  // construction). A shard whose in-flight count stays > 0 while this
  // timestamp ages past watchdog_stall_ms is reported stuck.
  std::atomic<std::int64_t> last_progress_ns_{0};
  std::thread dispatcher_;
};

// Compatibility key used for batching: requests with equal keys share the
// same chain structure in models::ChainCache. Exposed for tests.
std::string batch_compatibility_key(const Request& request);

}  // namespace rsmem::service

#endif  // RSMEM_SERVICE_SCHEDULER_H
