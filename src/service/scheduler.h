// Request scheduler of rsmem-serve: admission control, deadline policing,
// compatibility batching, and execution on the shared analysis engines.
//
// Life of a request:
//   1. submit() — ADMISSION: if the pending queue already holds max_queue
//      requests the submission is rejected immediately with a typed
//      kOverloaded Status (never a silent drop) and nothing is enqueued.
//   2. The dispatcher thread drains up to batch_max pending requests at a
//      time and groups them by COMPATIBILITY KEY — the structural identity
//      of the Markov chain they need (arrangement, code geometry, rate
//      zero-pattern, analysis family). Each group becomes one task on the
//      sim::ThreadPool: distinct groups run concurrently, requests inside
//      a group run back-to-back so the first solve warms the
//      models::ChainCache structure and the ResultCache, and the rest of
//      the group replays/hits instead of re-enumerating.
//   3. DEADLINE: a request whose deadline_ms elapsed before its group task
//      reached it is answered kDeadlineExceeded without computing.
//   4. Execution routes through the core try_* facade (global ChainCache +
//      per-thread SolverWorkspace) via the single-flight ResultCache, so
//      results are bit-identical to direct core:: calls.
// stop() drains: accepted requests still complete, new submissions are
// rejected kOverloaded("scheduler stopping").
#ifndef RSMEM_SERVICE_SCHEDULER_H
#define RSMEM_SERVICE_SCHEDULER_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "service/protocol.h"
#include "service/result_cache.h"
#include "sim/thread_pool.h"

namespace rsmem::service {

struct SchedulerConfig {
  unsigned threads = 0;            // worker pool size; 0 = hardware
  std::size_t max_queue = 128;     // admission bound on pending requests
  std::size_t cache_capacity = 256;
  std::size_t batch_max = 16;      // max requests drained per dispatch
};

class AnalysisScheduler {
 public:
  explicit AnalysisScheduler(const SchedulerConfig& config);
  ~AnalysisScheduler();
  AnalysisScheduler(const AnalysisScheduler&) = delete;
  AnalysisScheduler& operator=(const AnalysisScheduler&) = delete;

  // Admission-controlled enqueue. Ok => `done` fires exactly once, from a
  // worker thread, with the final Response. Non-ok (kOverloaded) => `done`
  // was NOT and will not be invoked; the caller owns the rejection.
  core::Status submit(Request request, std::function<void(Response)> done);

  // Executes one request synchronously on the caller's thread through the
  // same cache + engines (used by submit's workers and by tests).
  Response execute(const Request& request);

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected_overload = 0;
    std::uint64_t deadline_expired = 0;
    std::uint64_t completed = 0;
    std::uint64_t batches = 0;        // dispatcher drains
    std::uint64_t batch_groups = 0;   // pool tasks dispatched
    std::uint64_t max_batch = 0;      // largest single drain
    std::size_t queue_depth = 0;      // pending right now
  };
  Stats stats() const;
  ResultCache::Stats cache_stats() const { return cache_.stats(); }

  // Rejects new work, drains everything already accepted, joins workers.
  // Idempotent; also run by the destructor.
  void stop();

 private:
  using Clock = std::chrono::steady_clock;
  struct Pending {
    Request request;
    std::function<void(Response)> done;
    Clock::time_point deadline;  // time_point::max() = none
  };

  void dispatcher_loop();
  void run_group(std::shared_ptr<std::vector<Pending>> group);
  Response execute_timed(const Request& request);

  const SchedulerConfig config_;
  ResultCache cache_;
  sim::ThreadPool pool_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<Pending> pending_;
  bool stopping_ = false;
  Stats stats_;
  std::thread dispatcher_;
};

// Compatibility key used for batching: requests with equal keys share the
// same chain structure in models::ChainCache. Exposed for tests.
std::string batch_compatibility_key(const Request& request);

}  // namespace rsmem::service

#endif  // RSMEM_SERVICE_SCHEDULER_H
