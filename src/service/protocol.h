// rsmem-serve wire protocol.
//
// Transport: length-framed JSON over a stream socket (Unix or TCP). Each
// frame is a 4-byte big-endian payload length followed by that many bytes
// of UTF-8 JSON — one request or one response object per frame. Frames are
// capped at kMaxFrameBytes; a peer that announces more is protocol-broken
// and the connection is closed.
//
// Requests name an analysis over a core::MemorySystemSpec; responses carry
// either a result object or a typed core::Status code. Doubles cross the
// wire with 17 significant digits (service/json.h), so a service response
// is bit-identical to the equivalent direct core:: call.
//
// Cache keys: canonical_cache_key() renders the SEMANTIC content of a
// request (kind, spec, times — never the raw JSON text, ids, or deadlines)
// with hex-float (%a) formatting, so two requests share a key if and only
// if every double is bitwise equal. See docs/SERVICE.md for the
// canonicalization rules.
#ifndef RSMEM_SERVICE_PROTOCOL_H
#define RSMEM_SERVICE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/status.h"
#include "service/json.h"

namespace rsmem::service {

// Hard ceiling on one frame's JSON payload (16 MiB): big enough for any
// curve the analyses produce, small enough to bound a malicious peer.
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

enum class RequestKind : std::uint8_t {
  kPing,      // liveness + version; not cached
  kBer,       // BER(t) curve over times_hours (analyze_ber / periodic)
  kMttf,      // mean time to data loss
  kSweep,     // BER at a horizon across one swept parameter
  kStats,     // server counters (cache + scheduler); not cached
  kShutdown,  // orderly shutdown: drain queue, close connections
};

const char* to_string(RequestKind kind);

struct Request {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::kPing;
  // Milliseconds the caller is willing to wait before the request STARTS
  // computing; 0 = no deadline. Expired requests get kDeadlineExceeded.
  double deadline_ms = 0.0;

  core::MemorySystemSpec spec;  // kBer / kMttf / kSweep
  bool periodic = false;        // kBer: deterministic periodic scrubbing
  std::vector<double> times_hours;  // kBer sample times (ascending)

  std::string sweep_param;           // kSweep: "seu" | "perm" | "tsc"
  std::vector<double> sweep_values;  // kSweep: swept values
  double sweep_hours = 48.0;         // kSweep: fixed horizon

  std::string to_json() const;
  // Parses and shape-checks one request frame. Unknown kinds and malformed
  // shapes come back as InvalidConfig (the server answers with the status,
  // it never drops the frame silently).
  static core::Result<Request> from_json(std::string_view text);
};

// Cache provenance of a response, reported so clients (and loadgen) can
// measure hit rates end to end.
enum class CacheSource : std::uint8_t {
  kNone,  // not a cacheable kind (ping/stats/shutdown) or an error
  kMiss,  // computed by this request (single-flight leader)
  kHit,   // served from the LRU cache
  kWait,  // deduplicated onto a concurrent identical computation
};

const char* to_string(CacheSource source);

struct Response {
  std::uint64_t id = 0;
  core::Status status;         // ok or typed rejection
  CacheSource cache = CacheSource::kNone;
  double compute_ms = 0.0;     // server-side time inside the analysis
  std::string result_json;     // serialized result object; empty on error

  std::string to_json() const;
  static core::Result<Response> from_json(std::string_view text);
};

// Canonical cache key of a request's semantic content (empty string for
// kinds that are not cacheable). Doubles are rendered with %a so key
// equality is exactly bitwise equality of every parameter.
std::string canonical_cache_key(const Request& request);

// FNV-1a 64-bit of the canonical key; exposed for stats/diagnostics (the
// cache itself is keyed by the full string, collisions are impossible).
std::uint64_t cache_key_hash(std::string_view canonical_key);

// THE shard routing rule (service/shard_router.h and the tests share this
// one definition): xor-fold the 64-bit FNV-1a of the canonical key to 32
// bits — so the high bytes of the hash still spread keys whose low bytes
// collide — then reduce modulo shard_count. Deterministic: every request
// with the same semantic content routes to the same shard, which is what
// keeps per-shard caches as effective as one global cache for repeated
// queries. Empty keys (control-plane kinds) and shard_count <= 1 route
// to shard 0.
//
// Stats schema note: a sharded server's `stats` response keeps the
// merged `scheduler`/`cache` objects (counter sums; max_batch is a max)
// at the top level for backwards compatibility and adds `shard_count`,
// `queue_backend` ("lockfree" | "mutex"), `rejected_global` (backstop
// rejections that never reached a shard), and a `shards` array with one
// {scheduler, cache} object per shard, in shard-index order.
std::uint32_t shard_of_key(std::string_view canonical_key,
                           std::uint32_t shard_count);

// ---------------------------------------------------------------------------
// Frame transport over a connected socket fd. Blocking; both retry EINTR
// and short reads/writes. read_frame distinguishes orderly EOF before any
// byte (kOk=false via the bool flag) from mid-frame truncation (Internal).
// A receive timeout armed on the fd (SO_RCVTIMEO) surfaces as an Internal
// status whose message starts with "socket read timed out" — the chaos
// campaign's hang detector keys on it.
core::Status write_frame(int fd, std::string_view payload);
struct FrameRead {
  bool eof = false;     // peer closed before the next frame started
  std::string payload;  // valid when !eof
};
core::Result<FrameRead> read_frame(int fd);
// Same, but with a caller-chosen frame cap (must be <= kMaxFrameBytes).
// A header announcing more than the cap is a PROTOCOL violation, reported
// as InvalidConfig (so the server can answer a typed rejection before
// closing) and never triggers the allocation.
core::Result<FrameRead> read_frame(int fd, std::uint32_t max_frame_bytes);

// Raw building blocks of the framing layer, exposed for the chaos shim
// (service/chaos.h) so injected faults go through exactly the transport
// code paths the clean build uses. write_all retries EINTR and short
// writes and never raises SIGPIPE; read_all returns 0 only on EOF before
// the first byte.
namespace wire {
core::Status write_all(int fd, const void* data, std::size_t size);
core::Result<std::size_t> read_all(int fd, void* data, std::size_t size);
}  // namespace wire

// Spec <-> JSON object helpers shared by request encode/decode.
JsonObject spec_to_json(const core::MemorySystemSpec& spec);
core::Result<core::MemorySystemSpec> spec_from_json(const Json& json);

}  // namespace rsmem::service

#endif  // RSMEM_SERVICE_PROTOCOL_H
