// Load generator for rsmem-serve: N concurrent clients replaying a
// cacheable analysis workload, measuring end-to-end latency percentiles
// and the cache behaviour the clients actually observed.
//
// Each client opens its own connection and issues requests_per_client
// requests, cycling through `distinct` variants of the template request
// (distinct horizons => distinct cache keys), so a run exercises
// miss -> single-flight wait -> hit transitions. Two driving modes:
//   * CLOSED LOOP (default): each client thread waits for every response
//     before sending the next request — latency under think-time-free
//     serial clients, throughput bounded by clients x 1/latency.
//   * OPEN LOOP (open_loop = true): each client runs a sender thread that
//     pipelines requests at scheduled arrival times — at the aggregate
//     arrival_rate_rps across all clients, or flat-out when the rate is
//     0 — plus a receiver thread that drains completions; the sender
//     NEVER waits for a response, so queueing delay is measured instead
//     of hidden (the coordinated-omission-free number). Typed kOverloaded
//     rejections are the expected relief valve under deliberate overload
//     and are counted separately from errors.
// The report separates latency by cache source; the hot-query speedup is
// miss_mean / hit_mean. With self_host the loadgen spins up an in-process
// Server on a private Unix socket — the full wire protocol, no external
// daemon needed (tools/run_bench.sh uses this to snapshot
// BENCH_serve.json).
#ifndef RSMEM_SERVICE_LOADGEN_H
#define RSMEM_SERVICE_LOADGEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "service/client.h"
#include "service/scheduler.h"
#include "service/server.h"

namespace rsmem::service {

struct LoadgenConfig {
  bool self_host = true;           // spin an in-process server
  Endpoint endpoint;               // target when !self_host
  SchedulerConfig scheduler;       // self-hosted per-shard scheduler knobs
  unsigned shards = 1;             // self-hosted server shard count
  unsigned clients = 8;
  std::size_t requests_per_client = 40;
  std::size_t distinct = 4;        // distinct cache keys in the mix
  bool open_loop = false;          // pipelined scheduled arrivals
  double arrival_rate_rps = 0.0;   // open loop: aggregate rate; 0 = flat out
  Request request;                 // template analysis request
};

struct LoadgenReport {
  std::size_t requests = 0;        // completed OK
  std::size_t rejected = 0;        // typed kOverloaded (admission control)
  std::size_t errors = 0;          // transport or other non-ok responses
  double elapsed_seconds = 0.0;
  double offered_rps = 0.0;        // requests actually sent per second
  double throughput_rps = 0.0;     // requests completed OK per second
  // End-to-end latency (client side), milliseconds.
  double mean_ms = 0.0, p50_ms = 0.0, p90_ms = 0.0, p99_ms = 0.0,
         max_ms = 0.0;
  // Client-observed cache behaviour.
  std::uint64_t hits = 0, misses = 0, waits = 0;
  double hit_rate = 0.0;           // (hits + waits) / requests
  double miss_mean_ms = 0.0;       // cold: single-flight leaders
  double hit_mean_ms = 0.0;        // hot: cache hits
  double hot_speedup = 0.0;        // miss_mean / hit_mean
  std::string server_stats_json;   // final kStats result object
};

// Runs the workload. InvalidConfig for a nonsensical setup (0 clients,
// non-analysis template kind); transport-level failures surface as
// Internal.
core::Result<LoadgenReport> run_loadgen(const LoadgenConfig& config);

// Human-readable summary table.
std::string format_loadgen_report(const LoadgenConfig& config,
                                  const LoadgenReport& report);

// JSON snapshot (BENCH_serve.json schema; see docs/SERVICE.md).
std::string loadgen_report_json(const LoadgenConfig& config,
                                const LoadgenReport& report);

// ---------------------------------------------------------------------------
// Shard-scaling sweep: the same open-loop workload replayed against
// self-hosted servers at each shard count, so throughput can be compared
// apples-to-apples (tools/run_bench.sh appends this to BENCH_serve.json).

struct ShardScalingPoint {
  unsigned shards = 0;
  LoadgenReport report;
};

// Runs `base` once per shard count (self_host and open_loop are forced
// on). Shard counts must be >= 1 and non-empty.
core::Result<std::vector<ShardScalingPoint>> run_shard_scaling(
    const LoadgenConfig& base, const std::vector<unsigned>& shard_counts);

// Human-readable scaling table (speedups are relative to the first point).
std::string format_shard_scaling(const std::vector<ShardScalingPoint>& points);

// JSON object for the BENCH_serve.json "shard_scaling" key: the hardware
// core count (scaling is core-bound), one entry per point, and each
// point's throughput speedup relative to the first.
Json shard_scaling_json(const std::vector<ShardScalingPoint>& points);

}  // namespace rsmem::service

#endif  // RSMEM_SERVICE_LOADGEN_H
