// Load generator for rsmem-serve: N concurrent clients replaying a
// cacheable analysis workload, measuring end-to-end latency percentiles
// and the cache behaviour the clients actually observed.
//
// Each client thread opens its own connection and issues
// requests_per_client requests, cycling through `distinct` variants of
// the template request (distinct horizons => distinct cache keys), so a
// run exercises miss -> single-flight wait -> hit transitions. The report
// separates latency by cache source; the hot-query speedup is
// miss_mean / hit_mean. With self_host the loadgen spins up an in-process
// Server on a private Unix socket — the full wire protocol, no external
// daemon needed (tools/run_bench.sh uses this to snapshot
// BENCH_serve.json).
#ifndef RSMEM_SERVICE_LOADGEN_H
#define RSMEM_SERVICE_LOADGEN_H

#include <cstdint>
#include <string>

#include "service/client.h"
#include "service/scheduler.h"
#include "service/server.h"

namespace rsmem::service {

struct LoadgenConfig {
  bool self_host = true;           // spin an in-process server
  Endpoint endpoint;               // target when !self_host
  SchedulerConfig scheduler;       // self-hosted server knobs
  unsigned clients = 8;
  std::size_t requests_per_client = 40;
  std::size_t distinct = 4;        // distinct cache keys in the mix
  Request request;                 // template analysis request
};

struct LoadgenReport {
  std::size_t requests = 0;        // completed OK
  std::size_t errors = 0;          // transport or non-ok responses
  double elapsed_seconds = 0.0;
  double throughput_rps = 0.0;
  // End-to-end latency (client side), milliseconds.
  double mean_ms = 0.0, p50_ms = 0.0, p90_ms = 0.0, p99_ms = 0.0,
         max_ms = 0.0;
  // Client-observed cache behaviour.
  std::uint64_t hits = 0, misses = 0, waits = 0;
  double hit_rate = 0.0;           // (hits + waits) / requests
  double miss_mean_ms = 0.0;       // cold: single-flight leaders
  double hit_mean_ms = 0.0;        // hot: cache hits
  double hot_speedup = 0.0;        // miss_mean / hit_mean
  std::string server_stats_json;   // final kStats result object
};

// Runs the workload. InvalidConfig for a nonsensical setup (0 clients,
// non-analysis template kind); transport-level failures surface as
// Internal.
core::Result<LoadgenReport> run_loadgen(const LoadgenConfig& config);

// Human-readable summary table.
std::string format_loadgen_report(const LoadgenConfig& config,
                                  const LoadgenReport& report);

// JSON snapshot (BENCH_serve.json schema; see docs/SERVICE.md).
std::string loadgen_report_json(const LoadgenConfig& config,
                                const LoadgenReport& report);

}  // namespace rsmem::service

#endif  // RSMEM_SERVICE_LOADGEN_H
