#include "service/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#include "core/api.h"

namespace rsmem::service {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

core::Status Server::Connection::write_response(const Response& response) {
  const std::string payload = response.to_json();
  std::unique_lock<std::mutex> lock(write_mutex);
  touch();  // outbound traffic keeps a connection out of the idle reaper
  if (chaos) return chaos->write_frame(fd, payload);
  return write_frame(fd, payload);
}

void Server::Connection::touch() {
  last_activity_ns.store(steady_now_ns(), std::memory_order_relaxed);
}

core::Result<std::unique_ptr<Server>> Server::start(
    const ServerConfig& config) {
  core::Result<int> listen_fd = listen_on(config.endpoint, config.backlog);
  if (!listen_fd.ok()) {
    core::Status status = listen_fd.status();
    return status.with_context("rsmem-serve start");
  }
  core::Result<Endpoint> bound =
      bound_endpoint(listen_fd.value(), config.endpoint);
  if (!bound.ok()) {
    ::close(listen_fd.value());
    core::Status status = bound.status();
    return status.with_context("rsmem-serve start");
  }
  // make_unique needs a public constructor; bare new keeps it private.
  std::unique_ptr<Server> server(
      new Server(config, bound.value(), listen_fd.value()));
  return server;
}

Server::Server(ServerConfig config, Endpoint bound, int listen_fd)
    : config_(std::move(config)),
      endpoint_(std::move(bound)),
      listen_fd_(listen_fd),
      router_(std::make_unique<ShardRouter>(config_.router)) {
  if (!config_.snapshot_path.empty()) {
    // Warm start. EVERY failure mode — missing file, torn write, CRC or
    // version mismatch — degrades to a cold start; the outcome is
    // surfaced in `stats`, never fatal.
    core::Result<std::size_t> loaded =
        router_->load_snapshot(config_.snapshot_path);
    if (loaded.ok()) {
      warm_start_entries_ = loaded.value();
    } else if (loaded.status().message().find("no snapshot") ==
               std::string::npos) {
      warm_start_error_ = loaded.status().message();
    }
  }
  if (config_.idle_timeout_ms > 0) {
    reaper_thread_ = std::thread([this] { reaper_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { shutdown(); }

void Server::accept_loop() {
  while (true) {
    join_finished_readers();
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      const int err = errno;
      if (shutdown_requested_.load()) return;  // listener closed on purpose
      if (err == EINTR || err == ECONNABORTED) continue;
      if (err == EMFILE || err == ENFILE || err == ENOBUFS ||
          err == ENOMEM) {
        // Out of descriptors or memory, possibly transiently: back off
        // and retry rather than silently becoming a daemon that looks
        // healthy but never accepts again.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      return;  // EBADF/EINVAL etc.: the listener itself is gone
    }
    if (config_.chaos && config_.chaos->should_fail_accept()) {
      // Injected accept-time failure: the client sees an immediate reset
      // before any frame is exchanged (retry territory, not an error the
      // server can answer).
      chaos::hard_reset(fd);
      ::close(fd);
      continue;
    }
    auto connection = std::make_shared<Connection>(fd);
    if (config_.chaos) connection->chaos = config_.chaos->make_session();
    connection->touch();
    std::unique_lock<std::mutex> lock(mutex_);
    if (shutdown_requested_.load()) {
      lock.unlock();
      // Late arrival during teardown: refuse politely instead of hanging.
      Response refusal;
      refusal.status = core::Status::overloaded("server shutting down");
      (void)connection->write_response(refusal);
      continue;
    }
    connections_.push_back(connection);
    // Registered under the lock BEFORE the reader can run to completion:
    // its self-reap needs this same mutex, so the handle is always in
    // reader_threads_ by the time the reader looks for it.
    reader_threads_.emplace(
        connection.get(),
        std::thread([this, connection] { serve_connection(connection); }));
  }
}

void Server::reaper_loop() {
  const double idle_ms = config_.idle_timeout_ms;
  // Poll a few times per timeout so reaping latency stays proportional,
  // bounded to [10, 250] ms so tiny timeouts don't spin and huge ones
  // still notice shutdown promptly.
  const auto poll = std::chrono::milliseconds(std::clamp<std::int64_t>(
      static_cast<std::int64_t>(idle_ms / 4.0), 10, 250));
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (shutdown_cv_.wait_for(lock, poll,
                              [&] { return shutdown_requested_.load(); })) {
      return;
    }
    const std::int64_t now = steady_now_ns();
    for (const auto& connection : connections_) {
      const std::int64_t last =
          connection->last_activity_ns.load(std::memory_order_relaxed);
      if (static_cast<double>(now - last) * 1e-6 <= idle_ms) continue;
      if (connection->reaped.exchange(true)) continue;  // already poked
      // SHUT_RD, not RDWR: the blocked reader wakes up and exits (which
      // self-reaps the connection and closes the fd), while any response
      // still being flushed by a worker goes out intact.
      ::shutdown(connection->fd, SHUT_RD);
      idle_reaped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void Server::join_finished_readers() {
  std::vector<std::thread> finished;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    finished.swap(finished_readers_);
  }
  for (std::thread& reader : finished) {
    if (reader.joinable()) reader.join();
  }
}

void Server::serve_connection(std::shared_ptr<Connection> connection) {
  read_requests(connection);
  // Self-reap: drop the connection's entry so its fd closes as soon as
  // in-flight scheduler callbacks release their references, and park the
  // thread handle for the accept loop (or shutdown) to join. During
  // shutdown the handle may already be gone — shutdown() owns it then.
  std::unique_lock<std::mutex> lock(mutex_);
  connections_.erase(
      std::remove(connections_.begin(), connections_.end(), connection),
      connections_.end());
  const auto it = reader_threads_.find(connection.get());
  if (it != reader_threads_.end()) {
    finished_readers_.push_back(std::move(it->second));
    reader_threads_.erase(it);
  }
}

void Server::read_requests(const std::shared_ptr<Connection>& connection) {
  // Per-connection frame-rate token bucket (burst = one second's worth,
  // never below one frame). Purely local state: each connection meters
  // itself, so one abusive client cannot consume another's budget.
  const double rate = config_.max_frames_per_second;
  const double burst = rate > 0 ? std::max(1.0, rate) : 0.0;
  double tokens = burst;
  std::int64_t last_refill = steady_now_ns();
  while (true) {
    core::Result<FrameRead> frame =
        connection->chaos
            ? connection->chaos->read_frame(connection->fd,
                                            config_.max_frame_bytes)
            : read_frame(connection->fd, config_.max_frame_bytes);
    if (!frame.ok()) {
      if (frame.status().code() == core::StatusCode::kInvalidConfig) {
        // Oversized frame announcement, rejected before allocation. The
        // client gets the typed reason, then the connection closes — the
        // stream cannot resync past a body we refused to read.
        oversized_frames_.fetch_add(1, std::memory_order_relaxed);
        Response response;
        response.status = frame.status();
        (void)connection->write_response(response);
      }
      return;  // framing broken or socket torn down
    }
    if (frame.value().eof) return;
    connection->touch();
    core::Result<Request> request = Request::from_json(frame.value().payload);
    if (!request.ok()) {
      // Malformed but well-framed: answer with the typed status and keep
      // the connection (the stream is still in sync).
      Response response;
      core::Status status = request.status();
      response.status = status.with_context("parse request");
      if (!connection->write_response(response).is_ok()) return;
      continue;
    }
    if (rate > 0) {
      const std::int64_t now = steady_now_ns();
      tokens = std::min(
          burst, tokens + static_cast<double>(now - last_refill) * 1e-9 * rate);
      last_refill = now;
      if (tokens < 1.0) {
        // Over budget: typed rejection echoing the request id (so a
        // pipelining client can match it), frame discarded, stream still
        // in sync — the connection survives.
        rate_limited_.fetch_add(1, std::memory_order_relaxed);
        Response response;
        response.id = request.value().id;
        response.status = core::Status::overloaded(
            "per-connection frame rate limit exceeded (max " +
            format_double(rate) + " frames/s); retry with backoff");
        if (!connection->write_response(response).is_ok()) return;
        continue;
      }
      tokens -= 1.0;
    }
    handle_request(connection, std::move(request).value());
  }
}

void Server::handle_request(const std::shared_ptr<Connection>& connection,
                            Request request) {
  Response response;
  response.id = request.id;
  switch (request.kind) {
    case RequestKind::kPing: {
      JsonObject object;
      object.emplace("version", rsmem::version());
      response.status = core::Status::ok();
      response.result_json = Json(std::move(object)).serialize();
      (void)connection->write_response(response);
      return;
    }
    case RequestKind::kStats: {
      response.status = core::Status::ok();
      response.result_json = stats_result_json();
      (void)connection->write_response(response);
      return;
    }
    case RequestKind::kShutdown: {
      response.status = core::Status::ok();
      (void)connection->write_response(response);
      shutdown_requested_.store(true);
      shutdown_cv_.notify_all();
      return;
    }
    case RequestKind::kBer:
    case RequestKind::kMttf:
    case RequestKind::kSweep:
      break;
  }
  core::Status admitted = router_->submit(
      std::move(request), [connection](Response completed) {
        // Write failures mean the client went away; the result stays in
        // the cache for the next asker, nothing else to do.
        (void)connection->write_response(completed);
      });
  if (!admitted.is_ok()) {
    response.status = admitted;  // typed kOverloaded rejection
    (void)connection->write_response(response);
  }
}

namespace {

JsonObject scheduler_stats_json(const AnalysisScheduler::Stats& scheduler) {
  JsonObject scheduler_json;
  scheduler_json.emplace("accepted", scheduler.accepted);
  scheduler_json.emplace("rejected_overload", scheduler.rejected_overload);
  scheduler_json.emplace("deadline_expired", scheduler.deadline_expired);
  scheduler_json.emplace("completed", scheduler.completed);
  scheduler_json.emplace("batches", scheduler.batches);
  scheduler_json.emplace("batch_groups", scheduler.batch_groups);
  scheduler_json.emplace("max_batch", scheduler.max_batch);
  scheduler_json.emplace("queue_depth",
                         static_cast<std::uint64_t>(scheduler.queue_depth));
  scheduler_json.emplace("in_flight",
                         static_cast<std::uint64_t>(scheduler.in_flight));
  scheduler_json.emplace("brownout_active", scheduler.brownout_active);
  scheduler_json.emplace("brownout_entries", scheduler.brownout_entries);
  scheduler_json.emplace("brownout_shed", scheduler.brownout_shed);
  scheduler_json.emplace("brownout_hits", scheduler.brownout_hits);
  scheduler_json.emplace("stuck", scheduler.stuck);
  scheduler_json.emplace("stalled_ms", scheduler.stalled_ms);
  return scheduler_json;
}

JsonObject cache_stats_json(const ResultCache::Stats& cache) {
  JsonObject cache_json;
  cache_json.emplace("hits", cache.hits);
  cache_json.emplace("misses", cache.misses);
  cache_json.emplace("waits", cache.waits);
  cache_json.emplace("evictions", cache.evictions);
  cache_json.emplace("failures", cache.failures);
  cache_json.emplace("warm_loads", cache.warm_loads);
  cache_json.emplace("size", static_cast<std::uint64_t>(cache.size));
  cache_json.emplace("hit_rate", cache.hit_rate());
  return cache_json;
}

}  // namespace

std::string Server::stats_result_json() const {
  const ShardRouter::Stats stats = router_->stats();
  // Top-level `scheduler`/`cache` stay the merged totals (pre-sharding
  // schema); the `shards` array carries the per-shard breakdown.
  JsonObject object;
  object.emplace("scheduler", scheduler_stats_json(stats.scheduler));
  object.emplace("cache", cache_stats_json(stats.cache));
  object.emplace("shard_count",
                 static_cast<std::uint64_t>(router_->shard_count()));
  object.emplace("queue_backend", std::string(kQueueBackendName));
  object.emplace("rejected_global", stats.rejected_global);
  object.emplace("global_pending",
                 static_cast<std::uint64_t>(stats.global_pending));
  JsonArray shards;
  shards.reserve(stats.shard_scheduler.size());
  for (std::size_t i = 0; i < stats.shard_scheduler.size(); ++i) {
    JsonObject shard;
    shard.emplace("scheduler", scheduler_stats_json(stats.shard_scheduler[i]));
    shard.emplace("cache", cache_stats_json(stats.shard_cache[i]));
    shards.push_back(Json(std::move(shard)));
  }
  object.emplace("shards", Json(std::move(shards)));
  // Transport-hardening telemetry.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    object.emplace("connections_open",
                   static_cast<std::uint64_t>(connections_.size()));
  }
  object.emplace("idle_reaped", idle_reaped_.load(std::memory_order_relaxed));
  object.emplace("rate_limited",
                 rate_limited_.load(std::memory_order_relaxed));
  object.emplace("oversized_frames",
                 oversized_frames_.load(std::memory_order_relaxed));
  object.emplace("warm_start_entries",
                 static_cast<std::uint64_t>(warm_start_entries_));
  object.emplace("warm_start_error", warm_start_error_);
  if (config_.chaos) {
    object.emplace("chaos_faults_injected", config_.chaos->counters().total());
  }
  object.emplace("version", rsmem::version());
  return Json(std::move(object)).serialize();
}

bool Server::wait_for_shutdown(std::chrono::milliseconds poll) {
  std::unique_lock<std::mutex> lock(mutex_);
  return shutdown_cv_.wait_for(lock, poll,
                               [&] { return shutdown_requested_.load(); });
}

void Server::shutdown() {
  if (stopped_.exchange(true)) return;
  shutdown_requested_.store(true);
  shutdown_cv_.notify_all();

  // 1. Stop accepting: closing the listener unblocks ::accept. The idle
  //    reaper wakes on the cv and exits on the same flag.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (reaper_thread_.joinable()) reaper_thread_.join();

  // 2. Stop reading: half-close every connection so reader threads see
  //    EOF, while the write sides stay open for in-flight responses.
  //    Taking the handles out of reader_threads_ here means readers that
  //    exit concurrently skip their self-reap; every handle is joined
  //    exactly once, either below or via finished_readers_.
  std::vector<std::shared_ptr<Connection>> connections;
  std::vector<std::thread> readers;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    connections = connections_;
    readers.reserve(reader_threads_.size() + finished_readers_.size());
    for (auto& [unused, reader] : reader_threads_) {
      readers.push_back(std::move(reader));
    }
    reader_threads_.clear();
    for (std::thread& reader : finished_readers_) {
      readers.push_back(std::move(reader));
    }
    finished_readers_.clear();
  }
  for (const auto& connection : connections) {
    ::shutdown(connection->fd, SHUT_RD);
  }
  for (std::thread& reader : readers) {
    if (reader.joinable()) reader.join();
  }

  // 3. Drain: every admitted request completes and flushes its response.
  router_->stop();

  // 3b. Persist the drained caches. Post-drain means the snapshot holds
  //     every completed result; write failures leave any previous
  //     snapshot intact (tmp + atomic rename) and the next boot simply
  //     cold-starts.
  if (!config_.snapshot_path.empty()) {
    (void)router_->save_snapshot(config_.snapshot_path);
  }

  // 4. Release the sockets (fds close when the last shared_ptr drops) and
  //    remove a Unix socket file we created.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    connections_.clear();
  }
  connections.clear();
  if (endpoint_.kind == Endpoint::Kind::kUnix) {
    ::unlink(endpoint_.path.c_str());
  }
}

}  // namespace rsmem::service
