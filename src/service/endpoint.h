// Service endpoint addressing: `unix:/path/to.sock`, `host:port`, or
// `[ipv6-literal]:port`.
//
// One parser shared by the server (--socket/--listen), the client
// (--at), and loadgen, so every front-end rejects malformed endpoints
// with the same actionable InvalidConfig status (mapped to exit 2 by the
// CLI). TCP hosts go through getaddrinfo — DNS names, IPv4 dotted quads,
// and bracketed IPv6 literals all resolve, and connect/bind try every
// returned address in order. An unresolvable host is InvalidConfig (the
// caller typo'd the endpoint), not Internal. The listen/connect helpers
// wrap the POSIX socket calls and return typed Statuses instead of errno
// soup.
#ifndef RSMEM_SERVICE_ENDPOINT_H
#define RSMEM_SERVICE_ENDPOINT_H

#include <cstdint>
#include <string>

#include "core/status.h"

namespace rsmem::service {

struct Endpoint {
  enum class Kind : std::uint8_t { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  // kUnix: filesystem path of the socket
  std::string host;  // kTcp
  std::uint16_t port = 0;  // kTcp; 0 lets the kernel pick (server only)

  static Endpoint unix_socket(std::string socket_path);
  static Endpoint tcp(std::string host, std::uint16_t port);

  // "unix:/path" / "host:port" / "[v6]:port" — parse_endpoint
  // round-trips this (IPv6 hosts are re-bracketed).
  std::string to_string() const;
};

// Accepts "unix:/path" (non-empty path), "host:port" (non-empty host,
// integer port in [0, 65535]; 0 only makes sense for servers), or
// "[ipv6]:port" (bracketed IPv6 literal). An unbracketed host containing
// ':' is rejected with a message pointing at the bracket form — "::1:80"
// is ambiguous. Everything else is InvalidConfig with a message naming
// the rule violated.
core::Result<Endpoint> parse_endpoint(const std::string& text);

// Binds + listens; Unix endpoints unlink a stale socket file first.
// Returns the listening fd.
core::Result<int> listen_on(const Endpoint& endpoint, int backlog);

// Connects a blocking stream socket to the endpoint; returns the fd.
core::Result<int> connect_to(const Endpoint& endpoint);

// The endpoint actually bound (resolves an ephemeral TCP port requested
// as 0 via getsockname).
core::Result<Endpoint> bound_endpoint(int listen_fd,
                                      const Endpoint& requested);

}  // namespace rsmem::service

#endif  // RSMEM_SERVICE_ENDPOINT_H
