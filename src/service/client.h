// Client library for rsmem-serve.
//
// A Client owns one connected socket and offers two surfaces:
//   * synchronous call(): write one request frame, read frames until the
//     response with the matching id arrives. Single-threaded by design —
//     run one per worker (closed-loop loadgen does exactly that).
//   * pipelined send()/receive(): send() writes a frame and returns its id
//     without waiting; receive() blocks for the NEXT response frame,
//     whatever its id. The supported concurrency is exactly one sender
//     thread plus one receiver thread on the same Client (the open-loop
//     loadgen's shape); the two directions of the socket are independent,
//     but neither method may be called from two threads at once, and
//     call() must not be mixed with in-flight send()s.
#ifndef RSMEM_SERVICE_CLIENT_H
#define RSMEM_SERVICE_CLIENT_H

#include <cstdint>

#include "service/endpoint.h"
#include "service/protocol.h"

namespace rsmem::service {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(Client&& other) noexcept : fd_(other.fd_), next_id_(other.next_id_) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  static core::Result<Client> connect(const Endpoint& endpoint);

  bool connected() const { return fd_ >= 0; }
  void close();

  // Sends the request (assigning a fresh id when request.id == 0) and
  // blocks for its response. Transport failures come back as kInternal;
  // application failures arrive as the Response's own status.
  core::Result<Response> call(Request request);

  // Pipelined surface (one sender thread + one receiver thread):
  // send() writes the frame and returns the id it was assigned without
  // waiting for the response; receive() blocks for the next response
  // frame regardless of id (the caller matches ids itself — a sharded
  // server completes pipelined requests out of order).
  core::Result<std::uint64_t> send(Request request);
  core::Result<Response> receive();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
};

}  // namespace rsmem::service

#endif  // RSMEM_SERVICE_CLIENT_H
