// Client library for rsmem-serve.
//
// A Client owns one connected socket and offers synchronous call():
// write one request frame, read frames until the response with the
// matching id arrives. One Client is single-threaded by design — run one
// per worker (loadgen does exactly that); the protocol itself supports
// pipelining, but the simple call() surface is what the CLI and tests
// need.
#ifndef RSMEM_SERVICE_CLIENT_H
#define RSMEM_SERVICE_CLIENT_H

#include <cstdint>

#include "service/endpoint.h"
#include "service/protocol.h"

namespace rsmem::service {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(Client&& other) noexcept : fd_(other.fd_), next_id_(other.next_id_) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  static core::Result<Client> connect(const Endpoint& endpoint);

  bool connected() const { return fd_ >= 0; }
  void close();

  // Sends the request (assigning a fresh id when request.id == 0) and
  // blocks for its response. Transport failures come back as kInternal;
  // application failures arrive as the Response's own status.
  core::Result<Response> call(Request request);

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
};

}  // namespace rsmem::service

#endif  // RSMEM_SERVICE_CLIENT_H
