// Client library for rsmem-serve.
//
// A Client owns one connected socket and offers two surfaces:
//   * synchronous call(): write one request frame, read frames until the
//     response with the matching id arrives. Single-threaded by design —
//     run one per worker (closed-loop loadgen does exactly that).
//   * pipelined send()/receive(): send() writes a frame and returns its id
//     without waiting; receive() blocks for the NEXT response frame,
//     whatever its id. The supported concurrency is exactly one sender
//     thread plus one receiver thread on the same Client (the open-loop
//     loadgen's shape); the two directions of the socket are independent,
//     but neither method may be called from two threads at once, and
//     call() must not be mixed with in-flight send()s.
//
// On top of Client sits ResilientClient: retry with capped exponential
// backoff + decorrelated jitter, a deadline BUDGET shared across attempts
// (a retry never runs past the caller's deadline), idempotency-keyed
// retries (the request keeps one id across attempts — safe because
// responses are deterministic and cache-keyed), and optional hedged
// second attempts for tail latency. Every terminal outcome is a typed
// Status; nothing is ever silently dropped.
#ifndef RSMEM_SERVICE_CLIENT_H
#define RSMEM_SERVICE_CLIENT_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "service/chaos.h"
#include "service/endpoint.h"
#include "service/protocol.h"
#include "sim/rng.h"

namespace rsmem::service {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(Client&& other) noexcept
      : fd_(other.fd_),
        next_id_(other.next_id_),
        chaos_engine_(std::move(other.chaos_engine_)),
        chaos_(std::move(other.chaos_)) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // An optional chaos engine wraps this connection's socket I/O in a
  // deterministic fault-injection session (service/chaos.h); null = clean
  // transport, zero cost.
  static core::Result<Client> connect(
      const Endpoint& endpoint,
      std::shared_ptr<chaos::ChaosEngine> chaos_engine = nullptr);

  bool connected() const { return fd_ >= 0; }
  void close();

  // Aborts any blocked read/write on this socket from ANOTHER thread
  // without closing the fd (plain close() does not reliably unblock a
  // blocked read; shutdown() does). The owner still calls close().
  // Used to cancel the losing lane of a hedged request.
  void cancel();

  // Arms SO_RCVTIMEO: every subsequent blocking read fails typed
  // ("socket read timed out") instead of hanging if the peer goes quiet.
  // The chaos campaign uses this as its hang detector. timeout_ms <= 0
  // disarms.
  core::Status set_receive_timeout(double timeout_ms);

  // Sends the request (assigning a fresh id when request.id == 0) and
  // blocks for its response. Transport failures come back as kInternal;
  // application failures arrive as the Response's own status.
  core::Result<Response> call(Request request);

  // Pipelined surface (one sender thread + one receiver thread):
  // send() writes the frame and returns the id it was assigned without
  // waiting for the response; receive() blocks for the next response
  // frame regardless of id (the caller matches ids itself — a sharded
  // server completes pipelined requests out of order).
  core::Result<std::uint64_t> send(Request request);
  core::Result<Response> receive();

 private:
  explicit Client(int fd) : fd_(fd) {}

  core::Status write_one(std::string_view payload);
  core::Result<FrameRead> read_one();

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::shared_ptr<chaos::ChaosEngine> chaos_engine_;  // keeps sessions valid
  std::unique_ptr<chaos::ChaosSession> chaos_;
};

// ---------------------------------------------------------------------------
// Retry / hedging layer.

struct RetryPolicy {
  unsigned max_attempts = 4;
  // Decorrelated-jitter backoff: sleep_k = min(max_backoff_ms,
  // uniform(base_backoff_ms, sleep_{k-1} * backoff_multiplier)). The
  // sequence is deterministic for a fixed seed.
  double base_backoff_ms = 5.0;
  double max_backoff_ms = 500.0;
  double backoff_multiplier = 3.0;
  // Wall-clock budget shared by ALL attempts of one call (backoff sleeps
  // included). 0 falls back to the request's own deadline_ms; both 0 =
  // unbounded. A call that would sleep past the budget stops immediately
  // with kDeadlineExceeded — it never retries past the caller's deadline.
  double budget_ms = 0.0;
  // > 0 enables hedging on the first attempt: if no response lands within
  // hedge_after_ms, a second connection races the same request and the
  // loser is cancelled.
  double hedge_after_ms = 0.0;
  std::uint64_t seed = 1;
};

// The deterministic backoff schedule (exposed for tests: same policy +
// seed => same sleep sequence).
class Backoff {
 public:
  explicit Backoff(const RetryPolicy& policy);
  double next_ms();

 private:
  RetryPolicy policy_;
  sim::Rng rng_;
  double previous_ms_;
};

// Which failures are worth another attempt: transport breakage
// (kInternal), saturation (kOverloaded), and brown-out shedding
// (kBrownout — the server explicitly asked us to come back). Semantic
// failures (kInvalidConfig, solver statuses, ...) are final.
bool status_is_retryable(const core::Status& status);

class ResilientClient {
 public:
  struct Counters {
    std::uint64_t attempts = 0;        // connection attempts incl. retries
    std::uint64_t retries = 0;         // backoff sleeps taken
    std::uint64_t reconnects = 0;      // fresh connections after a break
    std::uint64_t hedges = 0;          // hedge lanes launched
    std::uint64_t hedge_wins = 0;      // hedge lane beat the primary
    std::uint64_t budget_exhausted = 0;
  };

  ResilientClient(Endpoint endpoint, RetryPolicy policy,
                  std::shared_ptr<chaos::ChaosEngine> chaos_engine = nullptr);

  // Single-threaded like Client::call. Reuses one connection across calls
  // while it stays healthy; reconnects (counted) after transport errors.
  core::Result<Response> call(Request request);

  // Applied to every connection this client opens (hang detector).
  void set_receive_timeout(double timeout_ms) {
    receive_timeout_ms_ = timeout_ms;
  }

  const Counters& counters() const { return counters_; }

 private:
  core::Result<Response> plain_attempt(const Request& request);
  core::Result<Response> hedged_attempt(const Request& request);
  core::Result<Client> open_connection();

  Endpoint endpoint_;
  RetryPolicy policy_;
  std::shared_ptr<chaos::ChaosEngine> chaos_engine_;
  std::optional<Client> primary_;
  bool ever_connected_ = false;
  double receive_timeout_ms_ = 0.0;
  std::uint64_t next_id_ = 1;
  Counters counters_;
};

}  // namespace rsmem::service

#endif  // RSMEM_SERVICE_CLIENT_H
