// Chaos campaign for rsmem-serve: scripted transport-fault scenarios
// against live in-process servers, graded the way the analytic fault
// campaign grades memory systems (analysis/fault_campaign.h).
//
// Each scenario boots a private server (unix socket), drives a
// deterministic request sequence through a faulty transport — torn
// frames, corrupted length prefixes, flipped payload bits, stalls,
// injected resets, accept failures, plus the server's own defenses
// (brown-out shedding, frame-rate limits, max-frame rejection, idle
// reaping, snapshot warm-start) — and then audits the books:
//
//   * EXACTLY-ONCE OUTCOME: every submitted request terminates in exactly
//     one typed outcome (ok, server-typed rejection, or client-typed
//     transport error). ops == ok + typed + transport, with zero
//     receive-timeout hangs — nothing is ever silently dropped.
//   * DAEMON SURVIVAL: after every scenario the daemon still answers a
//     clean ping.
//   * BYTE IDENTITY: ok responses match a direct core:: execution of the
//     same request byte-for-byte (the transport may mangle deliveries
//     when payload corruption is being injected — those are observed and
//     counted — but the daemon's own state must stay correct).
//
// Determinism: scenarios run one client at a time and every fault is
// drawn from chaos.h's split-stream RNG, so a fixed seed replays the
// exact fault plan and the report is byte-identical run to run. The few
// wall-clock-sensitive scenarios — rate limit, brown-out, idle reaper,
// and the bit-flip corruption scenarios (flipped-bit effects depend on
// the response byte-length, which embeds the measured compute_ms) —
// print only their deterministic fields.
#ifndef RSMEM_SERVICE_CHAOS_CAMPAIGN_H
#define RSMEM_SERVICE_CHAOS_CAMPAIGN_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace rsmem::service {

struct ChaosCampaignConfig {
  std::uint64_t seed = 2005;
  std::size_t requests_per_scenario = 24;
  std::size_t distinct = 4;          // distinct cache keys in the churn mix
  double receive_timeout_ms = 5000;  // hang detector on every client read
};

struct ChaosScenarioResult {
  std::string name;
  std::uint64_t ops = 0;               // requests submitted
  std::uint64_t ok = 0;                // terminal ok responses
  std::uint64_t typed_rejections = 0;  // server-typed non-ok responses
  std::uint64_t transport_errors = 0;  // client-typed terminal errors
  std::uint64_t timeouts = 0;          // receive-timeout hangs (must be 0)
  std::uint64_t faults_injected = 0;   // chaos engine counters, summed
  std::uint64_t corrupt_deliveries = 0;  // ok responses with mangled bytes
  std::uint64_t mismatches = 0;  // differential failures (daemon-side)
  bool daemon_alive = false;     // clean ping answered after the scenario
  bool invariants_ok = false;    // the exactly-once + survival audit
  // Wall-clock-sensitive scenarios set this false; the report prints only
  // ops and the verdict for them (counts would vary run to run).
  bool counts_deterministic = true;
  std::string detail;  // one-line deterministic account
};

struct ChaosCampaignReport {
  std::vector<ChaosScenarioResult> scenarios;
  std::uint64_t ops = 0;
  std::uint64_t ok = 0;
  std::uint64_t typed_rejections = 0;
  std::uint64_t transport_errors = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t corrupt_deliveries = 0;
  std::uint64_t mismatches = 0;
  bool passed() const {
    if (scenarios.empty() || timeouts != 0 || mismatches != 0) return false;
    for (const ChaosScenarioResult& scenario : scenarios) {
      if (!scenario.invariants_ok) return false;
    }
    return true;
  }
};

// The serve-churn preset (the only preset today). InvalidConfig for a
// nonsensical setup; scenario-level failures are graded, not thrown.
core::Result<ChaosCampaignReport> run_chaos_campaign(
    const ChaosCampaignConfig& config);

// Fixed-width scenario table + verdict line; byte-identical for a fixed
// seed.
std::string format_chaos_report(const ChaosCampaignConfig& config,
                                const ChaosCampaignReport& report);

}  // namespace rsmem::service

#endif  // RSMEM_SERVICE_CHAOS_CAMPAIGN_H
