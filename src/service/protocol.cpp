#include "service/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace rsmem::service {

const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kPing:
      return "ping";
    case RequestKind::kBer:
      return "ber";
    case RequestKind::kMttf:
      return "mttf";
    case RequestKind::kSweep:
      return "sweep";
    case RequestKind::kStats:
      return "stats";
    case RequestKind::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

const char* to_string(CacheSource source) {
  switch (source) {
    case CacheSource::kNone:
      return "none";
    case CacheSource::kMiss:
      return "miss";
    case CacheSource::kHit:
      return "hit";
    case CacheSource::kWait:
      return "wait";
  }
  return "unknown";
}

namespace {

core::Result<RequestKind> kind_from_string(const std::string& name) {
  for (const RequestKind kind :
       {RequestKind::kPing, RequestKind::kBer, RequestKind::kMttf,
        RequestKind::kSweep, RequestKind::kStats, RequestKind::kShutdown}) {
    if (name == to_string(kind)) return kind;
  }
  return core::Status::invalid_config("unknown request kind '" + name + "'");
}

core::Result<CacheSource> cache_source_from_string(const std::string& name) {
  for (const CacheSource source : {CacheSource::kNone, CacheSource::kMiss,
                                   CacheSource::kHit, CacheSource::kWait}) {
    if (name == to_string(source)) return source;
  }
  return core::Status::invalid_config("unknown cache source '" + name + "'");
}

core::Result<core::StatusCode> status_code_from_name(const std::string& name) {
  using core::StatusCode;
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidConfig, StatusCode::kDecodeFailure,
        StatusCode::kMiscorrection, StatusCode::kArbiterNoOutput,
        StatusCode::kSolverDivergence, StatusCode::kDegradedMode,
        StatusCode::kRetryExhausted, StatusCode::kOverloaded,
        StatusCode::kDeadlineExceeded, StatusCode::kBrownout,
        StatusCode::kInternal}) {
    if (name == core::to_string(code)) return code;
  }
  return core::Status::invalid_config("unknown status code '" + name + "'");
}

// Hex-float rendering: bitwise-exact, locale-independent, and cheap to
// compare. Used ONLY in cache keys (the wire format stays decimal JSON).
std::string hex_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%a", value);
  return buffer;
}

void append_hex_doubles(std::string& out, const std::vector<double>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += hex_double(values[i]);
  }
}

}  // namespace

JsonObject spec_to_json(const core::MemorySystemSpec& spec) {
  JsonObject object;
  object.emplace("arrangement", analysis::to_string(spec.arrangement));
  object.emplace("n", static_cast<double>(spec.code.n));
  object.emplace("k", static_cast<double>(spec.code.k));
  object.emplace("m", static_cast<double>(spec.code.m));
  object.emplace("seu", spec.seu_rate_per_bit_day);
  object.emplace("perm", spec.erasure_rate_per_symbol_day);
  object.emplace("tsc", spec.scrub_period_seconds);
  return object;
}

core::Result<core::MemorySystemSpec> spec_from_json(const Json& json) {
  if (!json.is_object()) {
    return core::Status::invalid_config("request 'spec' must be an object");
  }
  core::MemorySystemSpec spec;
  const std::string arrangement = json.string_or("arrangement", "simplex");
  if (arrangement == "simplex") {
    spec.arrangement = analysis::Arrangement::kSimplex;
  } else if (arrangement == "duplex") {
    spec.arrangement = analysis::Arrangement::kDuplex;
  } else {
    return core::Status::invalid_config(
        "spec arrangement must be 'simplex' or 'duplex', got '" + arrangement +
        "'");
  }
  const double n = json.number_or("n", 18);
  const double k = json.number_or("k", 16);
  const double m = json.number_or("m", 8);
  // Positive logic: every comparison against NaN is false, so a
  // `v < 1 || v > max` rejection would wave NaN through to the unsigned
  // cast below (undefined behavior). Require in-range AND integral.
  const auto valid_count = [](double v, double max) {
    return v >= 1 && v <= max && v == std::floor(v);
  };
  if (!valid_count(n, 1e6) || !valid_count(k, 1e6) || !valid_count(m, 64)) {
    return core::Status::invalid_config(
        "spec n/k/m must be integers in range");
  }
  spec.code.n = static_cast<unsigned>(n);
  spec.code.k = static_cast<unsigned>(k);
  spec.code.m = static_cast<unsigned>(m);
  spec.seu_rate_per_bit_day = json.number_or("seu", 0.0);
  spec.erasure_rate_per_symbol_day = json.number_or("perm", 0.0);
  spec.scrub_period_seconds = json.number_or("tsc", 0.0);
  const auto valid_rate = [](double v) { return std::isfinite(v) && v >= 0; };
  if (!valid_rate(spec.seu_rate_per_bit_day) ||
      !valid_rate(spec.erasure_rate_per_symbol_day) ||
      !valid_rate(spec.scrub_period_seconds)) {
    return core::Status::invalid_config(
        "spec seu/perm/tsc must be finite and >= 0");
  }
  return spec;
}

std::string Request::to_json() const {
  JsonObject object;
  object.emplace("id", static_cast<double>(id));
  object.emplace("kind", to_string(kind));
  if (deadline_ms > 0.0) object.emplace("deadline_ms", deadline_ms);
  switch (kind) {
    case RequestKind::kPing:
    case RequestKind::kStats:
    case RequestKind::kShutdown:
      break;
    case RequestKind::kBer:
      object.emplace("spec", spec_to_json(spec));
      object.emplace("periodic", periodic);
      object.emplace("times_hours", Json::from_doubles(times_hours));
      break;
    case RequestKind::kMttf:
      object.emplace("spec", spec_to_json(spec));
      break;
    case RequestKind::kSweep:
      object.emplace("spec", spec_to_json(spec));
      object.emplace("param", sweep_param);
      object.emplace("values", Json::from_doubles(sweep_values));
      object.emplace("hours", sweep_hours);
      break;
  }
  return Json(std::move(object)).serialize();
}

core::Result<Request> Request::from_json(std::string_view text) {
  core::Result<Json> parsed = Json::parse(text);
  if (!parsed.ok()) return parsed.status();
  const Json& json = parsed.value();
  if (!json.is_object()) {
    return core::Status::invalid_config("request frame must be a JSON object");
  }
  Request request;
  request.id = static_cast<std::uint64_t>(json.number_or("id", 0));
  core::Result<RequestKind> kind =
      kind_from_string(json.string_or("kind", ""));
  if (!kind.ok()) return kind.status();
  request.kind = kind.value();
  request.deadline_ms = json.number_or("deadline_ms", 0.0);
  if (!std::isfinite(request.deadline_ms) || request.deadline_ms < 0.0) {
    return core::Status::invalid_config("deadline_ms must be >= 0, got " +
                                        format_double(request.deadline_ms));
  }

  const bool needs_spec = request.kind == RequestKind::kBer ||
                          request.kind == RequestKind::kMttf ||
                          request.kind == RequestKind::kSweep;
  if (needs_spec) {
    const Json* spec_field = json.find("spec");
    if (spec_field == nullptr) {
      return core::Status::invalid_config("request is missing 'spec'");
    }
    core::Result<core::MemorySystemSpec> spec = spec_from_json(*spec_field);
    if (!spec.ok()) return spec.status();
    request.spec = spec.value();
  }
  if (request.kind == RequestKind::kBer) {
    request.periodic = json.bool_or("periodic", false);
    core::Result<std::vector<double>> times = json.doubles_at("times_hours");
    if (!times.ok()) return times.status();
    request.times_hours = std::move(times).value();
    if (request.times_hours.empty()) {
      return core::Status::invalid_config("ber request needs >= 1 time");
    }
    for (const double t : request.times_hours) {
      // doubles_at maps JSON null to NaN (for result payloads); request
      // inputs must be real instants.
      if (!std::isfinite(t) || t < 0) {
        return core::Status::invalid_config(
            "ber times_hours must be finite and >= 0");
      }
    }
  }
  if (request.kind == RequestKind::kSweep) {
    request.sweep_param = json.string_or("param", "");
    if (request.sweep_param != "seu" && request.sweep_param != "perm" &&
        request.sweep_param != "tsc") {
      return core::Status::invalid_config(
          "sweep param must be one of seu|perm|tsc, got '" +
          request.sweep_param + "'");
    }
    core::Result<std::vector<double>> values = json.doubles_at("values");
    if (!values.ok()) return values.status();
    request.sweep_values = std::move(values).value();
    if (request.sweep_values.empty()) {
      return core::Status::invalid_config("sweep request needs >= 1 value");
    }
    for (const double v : request.sweep_values) {
      if (!std::isfinite(v) || v < 0) {
        return core::Status::invalid_config(
            "sweep values must be finite and >= 0");
      }
    }
    request.sweep_hours = json.number_or("hours", 48.0);
    if (!std::isfinite(request.sweep_hours) || request.sweep_hours <= 0) {
      return core::Status::invalid_config("sweep hours must be > 0, got " +
                                          format_double(request.sweep_hours));
    }
  }
  return request;
}

std::string Response::to_json() const {
  JsonObject object;
  object.emplace("id", static_cast<double>(id));
  object.emplace("status", core::to_string(status.code()));
  if (!status.message().empty()) object.emplace("message", status.message());
  object.emplace("cache", to_string(cache));
  object.emplace("compute_ms", compute_ms);
  if (!result_json.empty()) {
    // result_json is already a serialized object produced by this module;
    // re-parsing keeps to_json() purely Json-driven (and validates it).
    core::Result<Json> result = Json::parse(result_json);
    object.emplace("result", result.ok() ? std::move(result).value() : Json());
  }
  return Json(std::move(object)).serialize();
}

core::Result<Response> Response::from_json(std::string_view text) {
  core::Result<Json> parsed = Json::parse(text);
  if (!parsed.ok()) return parsed.status();
  const Json& json = parsed.value();
  if (!json.is_object()) {
    return core::Status::invalid_config("response frame must be a JSON object");
  }
  Response response;
  response.id = static_cast<std::uint64_t>(json.number_or("id", 0));
  core::Result<core::StatusCode> code =
      status_code_from_name(json.string_or("status", ""));
  if (!code.ok()) return code.status();
  response.status = core::Status(code.value(), json.string_or("message", ""));
  core::Result<CacheSource> source =
      cache_source_from_string(json.string_or("cache", "none"));
  if (!source.ok()) return source.status();
  response.cache = source.value();
  response.compute_ms = json.number_or("compute_ms", 0.0);
  if (const Json* result = json.find("result"); result != nullptr) {
    response.result_json = result->serialize();
  }
  return response;
}

std::string canonical_cache_key(const Request& request) {
  switch (request.kind) {
    case RequestKind::kPing:
    case RequestKind::kStats:
    case RequestKind::kShutdown:
      return {};
    case RequestKind::kBer:
    case RequestKind::kMttf:
    case RequestKind::kSweep:
      break;
  }
  std::string key;
  key.reserve(160);
  key += to_string(request.kind);
  key += "|a=";
  key += analysis::to_string(request.spec.arrangement);
  key += "|n=" + std::to_string(request.spec.code.n);
  key += "|k=" + std::to_string(request.spec.code.k);
  key += "|m=" + std::to_string(request.spec.code.m);
  key += "|seu=" + hex_double(request.spec.seu_rate_per_bit_day);
  key += "|perm=" + hex_double(request.spec.erasure_rate_per_symbol_day);
  key += "|tsc=" + hex_double(request.spec.scrub_period_seconds);
  if (request.kind == RequestKind::kBer) {
    key += request.periodic ? "|periodic=1" : "|periodic=0";
    key += "|t=";
    append_hex_doubles(key, request.times_hours);
  } else if (request.kind == RequestKind::kSweep) {
    key += "|param=" + request.sweep_param;
    key += "|h=" + hex_double(request.sweep_hours);
    key += "|v=";
    append_hex_doubles(key, request.sweep_values);
  }
  return key;
}

std::uint64_t cache_key_hash(std::string_view canonical_key) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : canonical_key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::uint32_t shard_of_key(std::string_view canonical_key,
                           std::uint32_t shard_count) {
  if (shard_count <= 1 || canonical_key.empty()) return 0;
  const std::uint64_t hash = cache_key_hash(canonical_key);
  const std::uint32_t folded =
      static_cast<std::uint32_t>(hash ^ (hash >> 32));
  return folded % shard_count;
}

// ---------------------------------------------------------------------------
// Frame transport.

namespace wire {

core::Status write_all(int fd, const void* data, std::size_t size) {
  const char* cursor = static_cast<const char*>(data);
  while (size > 0) {
    // MSG_NOSIGNAL: a peer that disconnected mid-exchange must surface
    // as an EPIPE Status, not a process-killing SIGPIPE.
    const ssize_t wrote = ::send(fd, cursor, size, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return core::Status::internal(std::string("socket write failed: ") +
                                    std::strerror(errno));
    }
    cursor += wrote;
    size -= static_cast<std::size_t>(wrote);
  }
  return core::Status::ok();
}

// Returns bytes read; 0 only on EOF before the first byte.
core::Result<std::size_t> read_all(int fd, void* data, std::size_t size) {
  char* cursor = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, cursor + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired. Distinct message: a bounded wait that ran
        // out means "the peer went quiet", not "the transport broke".
        return core::Status::internal("socket read timed out");
      }
      return core::Status::internal(std::string("socket read failed: ") +
                                    std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) return std::size_t{0};
      return core::Status::internal("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return got;
}

}  // namespace wire

using wire::read_all;
using wire::write_all;

core::Status write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return core::Status::internal("frame payload exceeds kMaxFrameBytes");
  }
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  const std::array<unsigned char, 4> header = {
      static_cast<unsigned char>(length >> 24),
      static_cast<unsigned char>(length >> 16),
      static_cast<unsigned char>(length >> 8),
      static_cast<unsigned char>(length)};
  core::Status status = write_all(fd, header.data(), header.size());
  if (!status.is_ok()) return status;
  return write_all(fd, payload.data(), payload.size());
}

core::Result<FrameRead> read_frame(int fd) {
  return read_frame(fd, kMaxFrameBytes);
}

core::Result<FrameRead> read_frame(int fd, std::uint32_t max_frame_bytes) {
  if (max_frame_bytes > kMaxFrameBytes) max_frame_bytes = kMaxFrameBytes;
  std::array<unsigned char, 4> header{};
  core::Result<std::size_t> got = read_all(fd, header.data(), header.size());
  if (!got.ok()) return got.status();
  FrameRead frame;
  if (got.value() == 0) {
    frame.eof = true;
    return frame;
  }
  const std::uint32_t length =
      (static_cast<std::uint32_t>(header[0]) << 24) |
      (static_cast<std::uint32_t>(header[1]) << 16) |
      (static_cast<std::uint32_t>(header[2]) << 8) |
      static_cast<std::uint32_t>(header[3]);
  if (length > max_frame_bytes) {
    // Checked BEFORE the allocation: a hostile 4-byte header must never
    // cost 4 GiB of resize(). InvalidConfig (not Internal) so the server
    // can answer a typed rejection before closing the desynced stream.
    return core::Status::invalid_config(
        "peer announced oversized frame (" + std::to_string(length) +
        " bytes > max " + std::to_string(max_frame_bytes) + ")");
  }
  frame.payload.resize(length);
  if (length > 0) {
    got = read_all(fd, frame.payload.data(), length);
    if (!got.ok()) return got.status();
    if (got.value() == 0) {
      return core::Status::internal("connection closed mid-frame");
    }
  }
  return frame;
}

}  // namespace rsmem::service
