// Bounded multi-producer/multi-consumer queues for the rsmem-serve
// dispatch hot path.
//
// Two interchangeable implementations share one API:
//
//   * LockFreeMpmcRing<T> — a Vyukov-style bounded ring. Every slot
//     carries a sequence number; producers claim slots by CAS on the head
//     counter and publish with a release store of the slot sequence,
//     consumers claim by CAS on the tail counter and observe the payload
//     through an acquire load of the same sequence. No operation ever
//     blocks: try_push on a full ring and try_pop on an empty ring return
//     false immediately (admission control turns that into a typed
//     kOverloaded rejection).
//   * MutexMpmcRing<T> — the same contract over a mutex + deque. This is
//     the A/B reference for ThreadSanitizer validation: the service can be
//     compiled against either backend (-DRSMEM_SERVICE_MUTEX_QUEUE=ON)
//     and must behave identically.
//
// MpmcQueue<T> aliases whichever backend the build selected;
// kQueueBackendName names it in stats output. Both classes are always
// compiled and unit-tested (tests/test_mpmc_queue.cpp) regardless of the
// backend the service itself uses.
//
// Ordering guarantees (pinned by the property tests):
//   * no item is lost or duplicated;
//   * items from one producer are dequeued in that producer's push order
//     (global queue order is the commit order of pushes), so within any
//     single consumer's stream a producer's items appear in order;
//   * capacity is a hard bound: the ring never allocates after
//     construction, and a full ring reports backpressure instead of
//     blocking the producer.
#ifndef RSMEM_SERVICE_MPMC_QUEUE_H
#define RSMEM_SERVICE_MPMC_QUEUE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>

namespace rsmem::service {

// Smallest power of two >= requested (and >= 2): ring indexing uses a
// bitmask, and a capacity of 1 would make head==tail ambiguous under
// concurrent claims.
inline std::size_t ring_capacity_for(std::size_t requested) {
  std::size_t capacity = 2;
  while (capacity < requested) capacity <<= 1;
  return capacity;
}

template <typename T>
class LockFreeMpmcRing {
 public:
  // Capacity is rounded up to a power of two; min_capacity is the bound
  // the caller needs, capacity() reports what the ring actually holds.
  explicit LockFreeMpmcRing(std::size_t min_capacity)
      : mask_(ring_capacity_for(min_capacity) - 1),
        cells_(std::make_unique<Cell[]>(mask_ + 1)) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }
  LockFreeMpmcRing(const LockFreeMpmcRing&) = delete;
  LockFreeMpmcRing& operator=(const LockFreeMpmcRing&) = delete;

  static constexpr bool kIsLockFree = true;

  std::size_t capacity() const { return mask_ + 1; }

  // Approximate occupancy (racy by nature; used for stats only).
  std::size_t size_approx() const {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    return head >= tail ? head - tail : 0;
  }

  // False when the ring is full (backpressure — never blocks). On success
  // the value is moved into the claimed slot and published.
  bool try_push(T&& value) {
    Cell* cell;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t sequence =
          cell->sequence.load(std::memory_order_acquire);
      const std::intptr_t lag = static_cast<std::intptr_t>(sequence) -
                                static_cast<std::intptr_t>(pos);
      if (lag == 0) {
        // The slot is free for generation `pos`: claim it. A weak CAS is
        // enough — failure just re-reads the head.
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (lag < 0) {
        // Slot still holds the previous generation's value: ring is full.
        return false;
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  // False when the ring is empty (never blocks). On success the value is
  // moved out and the slot is recycled for the next lap.
  bool try_pop(T& out) {
    Cell* cell;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t sequence =
          cell->sequence.load(std::memory_order_acquire);
      const std::intptr_t lag = static_cast<std::intptr_t>(sequence) -
                                static_cast<std::intptr_t>(pos + 1);
      if (lag == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (lag < 0) {
        return false;  // nothing published at this position yet
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    // Drop captured resources (closures, strings) now rather than one full
    // lap later, and advance the slot to the next generation.
    cell->value = T{};
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  // Head and tail live on their own cache lines so producers and
  // consumers do not false-share.
  alignas(64) std::atomic<std::size_t> head_{0};  // next push position
  alignas(64) std::atomic<std::size_t> tail_{0};  // next pop position
  const std::size_t mask_;
  const std::unique_ptr<Cell[]> cells_;
};

// Mutex-guarded reference implementation with the identical contract,
// selectable at compile time for TSan A/B validation of the lock-free
// ring's memory ordering.
template <typename T>
class MutexMpmcRing {
 public:
  explicit MutexMpmcRing(std::size_t min_capacity)
      : capacity_(ring_capacity_for(min_capacity)) {}
  MutexMpmcRing(const MutexMpmcRing&) = delete;
  MutexMpmcRing& operator=(const MutexMpmcRing&) = delete;

  static constexpr bool kIsLockFree = false;

  std::size_t capacity() const { return capacity_; }

  std::size_t size_approx() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool try_push(T&& value) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    return true;
  }

  bool try_pop(T& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<T> items_;
};

#if defined(RSMEM_SERVICE_MUTEX_QUEUE)
template <typename T>
using MpmcQueue = MutexMpmcRing<T>;
inline constexpr const char* kQueueBackendName = "mutex";
#else
template <typename T>
using MpmcQueue = LockFreeMpmcRing<T>;
inline constexpr const char* kQueueBackendName = "lockfree";
#endif

}  // namespace rsmem::service

#endif  // RSMEM_SERVICE_MPMC_QUEUE_H
