// Canonical-key result cache with single-flight deduplication.
//
// The service's analyses are pure functions of the canonical cache key
// (service/protocol.h), so results can be memoized aggressively:
//   * an LRU map of key -> serialized result, bounded by `capacity`;
//   * SINGLE-FLIGHT: when N identical requests arrive concurrently, the
//     first becomes the leader and computes; the other N-1 block on the
//     in-flight entry and share the leader's result (reported as kWait).
//     Failed computations are NOT cached — every waiter sees the leader's
//     Status, and the next request retries fresh.
// All values are immutable shared_ptr<const string>, so hits are handed
// out without copying under the lock.
#ifndef RSMEM_SERVICE_RESULT_CACHE_H
#define RSMEM_SERVICE_RESULT_CACHE_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/status.h"
#include "service/protocol.h"

namespace rsmem::service {

// One cached (canonical key, serialized result) pair as it crosses the
// snapshot boundary. Values stay shared_ptr so export/import never copy
// result bodies.
struct SnapshotEntry {
  std::string key;
  std::shared_ptr<const std::string> value;
};

class ResultCache {
 public:
  // capacity = max cached entries (>= 1). 0 disables storage but keeps
  // single-flight deduplication of concurrent identical requests.
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  struct Outcome {
    core::Status status;  // ok iff value is set
    std::shared_ptr<const std::string> value;
    CacheSource source = CacheSource::kMiss;
  };

  // Returns the cached value for `key`, or runs `compute` (outside the
  // lock) as the single-flight leader and publishes its result. Thread-safe.
  Outcome get_or_compute(
      const std::string& key,
      const std::function<core::Result<std::string>()>& compute);

  // Probe without computing: a hit bumps the hit counter and LRU recency
  // and returns the value; a miss returns null WITHOUT counting (a
  // brown-out probe is not a computation). Thread-safe.
  std::shared_ptr<const std::string> lookup(const std::string& key);

  // Direct insert (warm start): replaces an existing entry's value,
  // evicts LRU-style at capacity, and counts one warm_load. Thread-safe.
  void insert(const std::string& key,
              std::shared_ptr<const std::string> value);

  // Every cached entry, least-recently-used FIRST — inserting them back
  // in file order rebuilds the same recency order (the last insert ends
  // up most recent). Thread-safe.
  std::vector<SnapshotEntry> export_entries() const;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;   // single-flight leaders (computations run)
    std::uint64_t waits = 0;    // deduplicated onto a leader
    std::uint64_t evictions = 0;
    std::uint64_t failures = 0;  // leader computations that returned non-ok
    std::uint64_t warm_loads = 0;  // entries inserted from a snapshot
    std::size_t size = 0;        // entries currently cached
    double hit_rate() const {
      const std::uint64_t served = hits + misses + waits;
      return served == 0 ? 0.0
                         : static_cast<double>(hits + waits) /
                               static_cast<double>(served);
    }

    // Counter-wise sum used by the shard router's stats merge.
    Stats& merge(const Stats& other) {
      hits += other.hits;
      misses += other.misses;
      waits += other.waits;
      evictions += other.evictions;
      failures += other.failures;
      warm_loads += other.warm_loads;
      size += other.size;
      return *this;
    }
  };
  Stats stats() const;
  void clear();

 private:
  struct Flight {
    std::mutex mutex;
    std::condition_variable done_cv;
    bool done = false;
    core::Status status;
    std::shared_ptr<const std::string> value;
  };
  struct Entry {
    std::shared_ptr<const std::string> value;
    std::list<std::string>::iterator lru_position;
  };

  void insert_locked(const std::string& key,
                     std::shared_ptr<const std::string> value);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
  Stats stats_;
};

// ---------------------------------------------------------------------------
// Crash-safe snapshot files.
//
// Binary format, version 1 (little-endian):
//   "RSMS" magic | u32 version | u64 entry count |
//   count x { u32 key_len, key bytes, u32 value_len, value bytes } |
//   u32 CRC32 of every preceding byte
// write_snapshot_file writes `path + ".tmp"`, fsyncs, then atomically
// renames over `path` — a crash mid-write leaves the previous snapshot
// (or none) intact, never a torn file. read_snapshot_file re-validates
// everything (magic, version, per-field bounds, trailing CRC) and returns
// a typed Status on any mismatch; callers treat every failure as a cold
// start. A missing file is reported with a message containing
// "no snapshot" so boot can distinguish first-run from corruption.
core::Status write_snapshot_file(const std::string& path,
                                 const std::vector<SnapshotEntry>& entries);
core::Result<std::vector<SnapshotEntry>> read_snapshot_file(
    const std::string& path);

// CRC32 (reflected, poly 0xEDB88320) over a byte range; exposed so tests
// can craft deliberately-corrupt snapshots with valid structure.
std::uint32_t snapshot_crc32(const void* data, std::size_t size);

}  // namespace rsmem::service

#endif  // RSMEM_SERVICE_RESULT_CACHE_H
