// Canonical-key result cache with single-flight deduplication.
//
// The service's analyses are pure functions of the canonical cache key
// (service/protocol.h), so results can be memoized aggressively:
//   * an LRU map of key -> serialized result, bounded by `capacity`;
//   * SINGLE-FLIGHT: when N identical requests arrive concurrently, the
//     first becomes the leader and computes; the other N-1 block on the
//     in-flight entry and share the leader's result (reported as kWait).
//     Failed computations are NOT cached — every waiter sees the leader's
//     Status, and the next request retries fresh.
// All values are immutable shared_ptr<const string>, so hits are handed
// out without copying under the lock.
#ifndef RSMEM_SERVICE_RESULT_CACHE_H
#define RSMEM_SERVICE_RESULT_CACHE_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/status.h"
#include "service/protocol.h"

namespace rsmem::service {

class ResultCache {
 public:
  // capacity = max cached entries (>= 1). 0 disables storage but keeps
  // single-flight deduplication of concurrent identical requests.
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  struct Outcome {
    core::Status status;  // ok iff value is set
    std::shared_ptr<const std::string> value;
    CacheSource source = CacheSource::kMiss;
  };

  // Returns the cached value for `key`, or runs `compute` (outside the
  // lock) as the single-flight leader and publishes its result. Thread-safe.
  Outcome get_or_compute(
      const std::string& key,
      const std::function<core::Result<std::string>()>& compute);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;   // single-flight leaders (computations run)
    std::uint64_t waits = 0;    // deduplicated onto a leader
    std::uint64_t evictions = 0;
    std::uint64_t failures = 0;  // leader computations that returned non-ok
    std::size_t size = 0;        // entries currently cached
    double hit_rate() const {
      const std::uint64_t served = hits + misses + waits;
      return served == 0 ? 0.0
                         : static_cast<double>(hits + waits) /
                               static_cast<double>(served);
    }

    // Counter-wise sum used by the shard router's stats merge.
    Stats& merge(const Stats& other) {
      hits += other.hits;
      misses += other.misses;
      waits += other.waits;
      evictions += other.evictions;
      failures += other.failures;
      size += other.size;
      return *this;
    }
  };
  Stats stats() const;
  void clear();

 private:
  struct Flight {
    std::mutex mutex;
    std::condition_variable done_cv;
    bool done = false;
    core::Status status;
    std::shared_ptr<const std::string> value;
  };
  struct Entry {
    std::shared_ptr<const std::string> value;
    std::list<std::string>::iterator lru_position;
  };

  void insert_locked(const std::string& key,
                     std::shared_ptr<const std::string> value);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
  Stats stats_;
};

}  // namespace rsmem::service

#endif  // RSMEM_SERVICE_RESULT_CACHE_H
