// Deterministic transport fault injection for rsmem-serve.
//
// The 2005 paper's core claim is that reliability is only as good as the
// fault model it was exercised against. The serving layer gets the same
// treatment as the analytic core (analysis/fault_campaign.cpp): a seeded
// shim wraps the socket I/O of server and client and injects the faults a
// real network produces — torn frames, corrupted length prefixes, flipped
// payload bits, dribbled partial writes, stalls, hard connection resets,
// and accept-time failures — under the library's split-stream RNG
// discipline, so a scenario replays bit-identically from one root seed.
//
// Wiring: a ChaosEngine is handed to ServerConfig::chaos and/or
// Client::connect. Both default to null — the clean build pays one
// pointer test per frame and nothing else. Sessions are numbered in
// connection-creation order and each session splits independent read and
// write RNG streams (the two directions of one connection run on
// different threads), so the fault plan of connection N is a pure
// function of (seed, N) no matter how the scheduler interleaves traffic.
#ifndef RSMEM_SERVICE_CHAOS_H
#define RSMEM_SERVICE_CHAOS_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "core/status.h"
#include "service/protocol.h"
#include "sim/rng.h"

namespace rsmem::service::chaos {

// One injected fault class per transport operation; at most one fires per
// frame (cumulative-probability draw, first match wins in declaration
// order).
enum class Fault : std::uint8_t {
  kNone = 0,
  kTornFrame,       // write a strict prefix of the frame, then hard-reset
  kCorruptLength,   // flip one bit in the 4-byte length prefix
  kCorruptPayload,  // flip one bit somewhere in the JSON payload
  kPartialWrite,    // dribble the frame in tiny chunks (stresses read_all)
  kStall,           // sleep before the operation (slow-loris)
  kReset,           // hard-reset instead of performing the read
  kAcceptFail,      // reset a just-accepted connection (server only)
};

const char* to_string(Fault fault);

// Per-operation fault probabilities, all 0 by default (= clean
// transport). Probabilities are independent per frame and drawn from the
// session's direction stream; the sum of the write-side classes should
// stay <= 1 (they share one cumulative draw).
struct ChaosPolicy {
  std::uint64_t seed = 2005;

  // Write-side classes (drawn once per write_frame, in this order).
  double torn_frame = 0.0;
  double corrupt_length = 0.0;
  double corrupt_payload = 0.0;
  double partial_write = 0.0;
  double stall_write = 0.0;

  // Read-side classes (drawn once per read_frame).
  double stall_read = 0.0;
  double reset_read = 0.0;

  // Accept-time failures (drawn once per accepted connection).
  double accept_fail = 0.0;

  double stall_ms = 5.0;            // length of an injected stall
  unsigned partial_chunk_bytes = 3;  // dribble size for kPartialWrite

  bool any() const {
    return torn_frame > 0 || corrupt_length > 0 || corrupt_payload > 0 ||
           partial_write > 0 || stall_write > 0 || stall_read > 0 ||
           reset_read > 0 || accept_fail > 0;
  }
};

// Cumulative injected-fault counts across every session of an engine.
// Deterministic for a fixed seed and operation sequence — the campaign
// report prints them.
struct ChaosCounters {
  std::uint64_t torn_frames = 0;
  std::uint64_t corrupt_lengths = 0;
  std::uint64_t corrupt_payloads = 0;
  std::uint64_t partial_writes = 0;
  std::uint64_t stalls = 0;
  std::uint64_t resets = 0;
  std::uint64_t accept_failures = 0;
  std::uint64_t total() const {
    return torn_frames + corrupt_lengths + corrupt_payloads + partial_writes +
           stalls + resets + accept_failures;
  }
};

class ChaosEngine;

// The per-connection fault stream. read_frame/write_frame are drop-in
// replacements for the protocol functions: byte-identical behavior when
// no fault fires, typed (never silent) failure when one does. A sabotaged
// write returns a non-ok Status immediately — the caller must NOT wait
// for a response to a frame that never fully left.
//
// Thread-safety matches the connection model: the write stream is only
// touched under the connection's write mutex, the read stream only by the
// single reader thread. The two streams never share engine state.
class ChaosSession {
 public:
  ChaosSession(const ChaosPolicy& policy, ChaosEngine* engine,
               std::uint64_t session_id);

  core::Status write_frame(int fd, std::string_view payload);
  core::Result<FrameRead> read_frame(int fd, std::uint32_t max_frame_bytes);

  std::uint64_t session_id() const { return session_id_; }

 private:
  Fault draw_write_fault();
  Fault draw_read_fault();

  ChaosPolicy policy_;
  ChaosEngine* engine_;  // counters; outlives the session
  std::uint64_t session_id_;
  sim::Rng write_rng_;
  sim::Rng read_rng_;
};

// Engine = policy + session factory + fault counters. One engine per
// Server (or per client fleet); share via shared_ptr so sessions embedded
// in connections never outlive it.
class ChaosEngine {
 public:
  explicit ChaosEngine(ChaosPolicy policy);

  const ChaosPolicy& policy() const { return policy_; }

  // Sessions are numbered in creation order — accept order on the server,
  // connect order on a client — which is what makes a fixed seed replay
  // the same per-connection fault plan.
  std::unique_ptr<ChaosSession> make_session();

  // Draws from a dedicated accept stream (server accept loop is single
  // threaded). True = reset the just-accepted connection.
  bool should_fail_accept();

  ChaosCounters counters() const;
  void count(Fault fault);

 private:
  ChaosPolicy policy_;
  std::atomic<std::uint64_t> next_session_{0};
  sim::Rng accept_rng_;
  std::atomic<std::uint64_t> torn_frames_{0};
  std::atomic<std::uint64_t> corrupt_lengths_{0};
  std::atomic<std::uint64_t> corrupt_payloads_{0};
  std::atomic<std::uint64_t> partial_writes_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> resets_{0};
  std::atomic<std::uint64_t> accept_failures_{0};
};

// Abruptly kills a connection: SO_LINGER{1, 0} so TCP sends RST instead
// of FIN, then shutdown(SHUT_RDWR). On unix sockets (no RST) the peer
// sees buffered data followed by EOF — the closest the transport offers.
// Never closes the fd; its owner still does that.
void hard_reset(int fd);

}  // namespace rsmem::service::chaos

#endif  // RSMEM_SERVICE_CHAOS_H
