#include "service/chaos.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <thread>

namespace rsmem::service::chaos {

namespace {

// RNG stream layout under the engine's root seed: stream 1 drives accept
// failures; session k owns streams 2k+2 (writes) and 2k+3 (reads). The
// two directions of one connection run on different threads, so they must
// never share a stream.
constexpr std::uint64_t kAcceptStream = 1;

std::uint64_t write_stream(std::uint64_t session_id) {
  return 2 * session_id + 2;
}
std::uint64_t read_stream(std::uint64_t session_id) {
  return 2 * session_id + 3;
}

void sleep_ms(double ms) {
  if (ms <= 0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(ms));
}

std::array<unsigned char, 4> frame_header(std::uint32_t length) {
  return {static_cast<unsigned char>(length >> 24),
          static_cast<unsigned char>(length >> 16),
          static_cast<unsigned char>(length >> 8),
          static_cast<unsigned char>(length)};
}

}  // namespace

const char* to_string(Fault fault) {
  switch (fault) {
    case Fault::kNone:
      return "none";
    case Fault::kTornFrame:
      return "torn-frame";
    case Fault::kCorruptLength:
      return "corrupt-length";
    case Fault::kCorruptPayload:
      return "corrupt-payload";
    case Fault::kPartialWrite:
      return "partial-write";
    case Fault::kStall:
      return "stall";
    case Fault::kReset:
      return "reset";
    case Fault::kAcceptFail:
      return "accept-fail";
  }
  return "unknown";
}

void hard_reset(int fd) {
  // SO_LINGER{on, 0s}: TCP aborts with RST instead of a graceful FIN; a
  // unix-socket peer sees buffered bytes then EOF. Either way the victim
  // observes an abrupt, mid-stream death — the fault being modeled.
  const linger abort_linger{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &abort_linger, sizeof abort_linger);
  ::shutdown(fd, SHUT_RDWR);
}

// ---------------------------------------------------------------------------
// ChaosEngine

ChaosEngine::ChaosEngine(ChaosPolicy policy)
    : policy_(policy),
      accept_rng_(sim::Rng(policy.seed).split(kAcceptStream)) {}

std::unique_ptr<ChaosSession> ChaosEngine::make_session() {
  const std::uint64_t id =
      next_session_.fetch_add(1, std::memory_order_relaxed);
  return std::make_unique<ChaosSession>(policy_, this, id);
}

bool ChaosEngine::should_fail_accept() {
  if (policy_.accept_fail <= 0) return false;
  if (!accept_rng_.bernoulli(policy_.accept_fail)) return false;
  count(Fault::kAcceptFail);
  return true;
}

ChaosCounters ChaosEngine::counters() const {
  ChaosCounters out;
  out.torn_frames = torn_frames_.load(std::memory_order_relaxed);
  out.corrupt_lengths = corrupt_lengths_.load(std::memory_order_relaxed);
  out.corrupt_payloads = corrupt_payloads_.load(std::memory_order_relaxed);
  out.partial_writes = partial_writes_.load(std::memory_order_relaxed);
  out.stalls = stalls_.load(std::memory_order_relaxed);
  out.resets = resets_.load(std::memory_order_relaxed);
  out.accept_failures = accept_failures_.load(std::memory_order_relaxed);
  return out;
}

void ChaosEngine::count(Fault fault) {
  switch (fault) {
    case Fault::kNone:
      break;
    case Fault::kTornFrame:
      torn_frames_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Fault::kCorruptLength:
      corrupt_lengths_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Fault::kCorruptPayload:
      corrupt_payloads_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Fault::kPartialWrite:
      partial_writes_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Fault::kStall:
      stalls_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Fault::kReset:
      resets_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Fault::kAcceptFail:
      accept_failures_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

// ---------------------------------------------------------------------------
// ChaosSession

ChaosSession::ChaosSession(const ChaosPolicy& policy, ChaosEngine* engine,
                           std::uint64_t session_id)
    : policy_(policy),
      engine_(engine),
      session_id_(session_id),
      write_rng_(sim::Rng(policy.seed).split(write_stream(session_id))),
      read_rng_(sim::Rng(policy.seed).split(read_stream(session_id))) {}

Fault ChaosSession::draw_write_fault() {
  const double u = write_rng_.uniform();
  double edge = policy_.torn_frame;
  if (u < edge) return Fault::kTornFrame;
  edge += policy_.corrupt_length;
  if (u < edge) return Fault::kCorruptLength;
  edge += policy_.corrupt_payload;
  if (u < edge) return Fault::kCorruptPayload;
  edge += policy_.partial_write;
  if (u < edge) return Fault::kPartialWrite;
  edge += policy_.stall_write;
  if (u < edge) return Fault::kStall;
  return Fault::kNone;
}

Fault ChaosSession::draw_read_fault() {
  const double u = read_rng_.uniform();
  double edge = policy_.stall_read;
  if (u < edge) return Fault::kStall;
  edge += policy_.reset_read;
  if (u < edge) return Fault::kReset;
  return Fault::kNone;
}

core::Status ChaosSession::write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return core::Status::internal("frame payload exceeds kMaxFrameBytes");
  }
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  std::array<unsigned char, 4> header = frame_header(length);
  const Fault fault = draw_write_fault();
  switch (fault) {
    case Fault::kTornFrame: {
      // Strict prefix, then abort: the peer sees mid-frame EOF/reset. The
      // frame never fully left, so the op FAILS typed — callers must not
      // wait for a response.
      engine_->count(fault);
      const std::size_t total = header.size() + payload.size();
      const std::size_t cut =
          1 + static_cast<std::size_t>(write_rng_.uniform_int(total - 1));
      const std::size_t head = std::min(cut, header.size());
      core::Status wrote = wire::write_all(fd, header.data(), head);
      if (wrote.is_ok() && cut > head) {
        wrote = wire::write_all(fd, payload.data(), cut - head);
      }
      hard_reset(fd);
      if (!wrote.is_ok()) return wrote;
      return core::Status::internal(
          "chaos: torn frame injected (wrote " + std::to_string(cut) + "/" +
          std::to_string(total) + " bytes)");
    }
    case Fault::kCorruptLength: {
      // One flipped header bit makes the announced length lie. Whatever
      // the peer does with it (oversize rejection, desynced parse), this
      // stream is unusable — abort it after the write.
      engine_->count(fault);
      const std::uint64_t bit = write_rng_.uniform_int(32);
      header[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
      core::Status wrote = wire::write_all(fd, header.data(), header.size());
      if (wrote.is_ok() && !payload.empty()) {
        wrote = wire::write_all(fd, payload.data(), payload.size());
      }
      hard_reset(fd);
      if (!wrote.is_ok()) return wrote;
      return core::Status::internal(
          "chaos: corrupted length prefix injected (bit " +
          std::to_string(bit) + ")");
    }
    case Fault::kCorruptPayload: {
      // The frame arrives intact but with one payload bit flipped — the
      // peer must answer with a typed parse error, never crash. The write
      // itself SUCCEEDS; the caller still awaits that answer.
      engine_->count(fault);
      std::string mutated(payload);
      if (!mutated.empty()) {
        const std::uint64_t bit = write_rng_.uniform_int(mutated.size() * 8);
        mutated[bit / 8] ^= static_cast<char>(1u << (bit % 8));
      }
      core::Status wrote = wire::write_all(fd, header.data(), header.size());
      if (!wrote.is_ok()) return wrote;
      return wire::write_all(fd, mutated.data(), mutated.size());
    }
    case Fault::kPartialWrite: {
      // Dribble the frame in tiny chunks with pauses between them: the
      // peer's read_all must reassemble short reads. Frame is delivered.
      engine_->count(fault);
      std::string buffer;
      buffer.reserve(header.size() + payload.size());
      buffer.append(reinterpret_cast<const char*>(header.data()),
                    header.size());
      buffer.append(payload);
      const std::size_t chunk =
          std::max<std::size_t>(1, policy_.partial_chunk_bytes);
      for (std::size_t offset = 0; offset < buffer.size(); offset += chunk) {
        const std::size_t n = std::min(chunk, buffer.size() - offset);
        const core::Status wrote =
            wire::write_all(fd, buffer.data() + offset, n);
        if (!wrote.is_ok()) return wrote;
        if (offset + n < buffer.size()) sleep_ms(0.2);
      }
      return core::Status::ok();
    }
    case Fault::kStall:
      engine_->count(fault);
      sleep_ms(policy_.stall_ms);
      break;  // then write cleanly
    case Fault::kNone:
    case Fault::kReset:
    case Fault::kAcceptFail:
      break;
  }
  core::Status wrote = wire::write_all(fd, header.data(), header.size());
  if (!wrote.is_ok()) return wrote;
  return wire::write_all(fd, payload.data(), payload.size());
}

core::Result<FrameRead> ChaosSession::read_frame(int fd,
                                                 std::uint32_t max_frame_bytes) {
  switch (draw_read_fault()) {
    case Fault::kStall:
      engine_->count(Fault::kStall);
      sleep_ms(policy_.stall_ms);
      break;
    case Fault::kReset:
      engine_->count(Fault::kReset);
      hard_reset(fd);
      return core::Status::internal(
          "chaos: connection reset injected before read");
    default:
      break;
  }
  return service::read_frame(fd, max_frame_bytes);
}

}  // namespace rsmem::service::chaos
