#include "service/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rsmem::service {

namespace {

core::StatusError type_error(const char* want, Json::Type got) {
  return core::StatusError(core::Status::internal(
      std::string("json: expected ") + want + ", holds type #" +
      std::to_string(static_cast<int>(got))));
}

}  // namespace

Json Json::from_doubles(const std::vector<double>& values) {
  JsonArray array;
  array.reserve(values.size());
  for (double v : values) array.emplace_back(v);
  return Json(std::move(array));
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) throw type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ == Type::kNull) return std::nan("");  // null <-> non-finite
  if (type_ != Type::kNumber) throw type_error("number", type_);
  return number_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) throw type_error("string", type_);
  return string_;
}

const JsonArray& Json::as_array() const {
  if (type_ != Type::kArray) throw type_error("array", type_);
  return array_;
}

const JsonObject& Json::as_object() const {
  if (type_ != Type::kObject) throw type_error("object", type_);
  return object_;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

double Json::number_or(std::string_view key, double fallback) const {
  const Json* field = find(key);
  return field != nullptr && field->is_number() ? field->number_ : fallback;
}

bool Json::bool_or(std::string_view key, bool fallback) const {
  const Json* field = find(key);
  return field != nullptr && field->is_bool() ? field->bool_ : fallback;
}

std::string Json::string_or(std::string_view key, std::string fallback) const {
  const Json* field = find(key);
  return field != nullptr && field->is_string() ? field->string_
                                                : std::move(fallback);
}

core::Result<std::vector<double>> Json::doubles_at(std::string_view key) const {
  const Json* field = find(key);
  if (field == nullptr || !field->is_array()) {
    return core::Status::invalid_config("json: missing numeric array field '" +
                                        std::string(key) + "'");
  }
  std::vector<double> out;
  out.reserve(field->array_.size());
  for (const Json& element : field->array_) {
    if (!element.is_number() && !element.is_null()) {
      return core::Status::invalid_config(
          "json: non-numeric element in array '" + std::string(key) + "'");
    }
    out.push_back(element.as_number());
  }
  return out;
}

std::string format_double(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void Json::serialize_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      out += format_double(number_);
      return;
    case Type::kString:
      append_escaped(out, string_);
      return;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const Json& element : array_) {
        if (!first) out += ',';
        first = false;
        element.serialize_to(out);
      }
      out += ']';
      return;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        append_escaped(out, key);
        out += ':';
        value.serialize_to(out);
      }
      out += '}';
      return;
    }
  }
}

std::string Json::serialize() const {
  std::string out;
  serialize_to(out);
  return out;
}

namespace {

// Recursive-descent parser over a string_view with explicit position.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  core::Result<Json> run() {
    skip_ws();
    Json value;
    core::Status status = parse_value(value, 0);
    if (!status.is_ok()) return status;
    skip_ws();
    if (pos_ != text_.size()) {
      return error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  core::Status error(const std::string& what) const {
    return core::Status::invalid_config("json: " + what + " at byte " +
                                        std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  core::Status parse_value(Json& out, int depth) {
    if (depth > kMaxDepth) return error("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return error("unexpected end of input");
    const char c = text_[pos_];
    if (c == 'n') {
      if (!consume_word("null")) return error("bad literal");
      out = Json();
      return core::Status::ok();
    }
    if (c == 't') {
      if (!consume_word("true")) return error("bad literal");
      out = Json(true);
      return core::Status::ok();
    }
    if (c == 'f') {
      if (!consume_word("false")) return error("bad literal");
      out = Json(false);
      return core::Status::ok();
    }
    if (c == '"') return parse_string_value(out);
    if (c == '[') return parse_array(out, depth);
    if (c == '{') return parse_object(out, depth);
    return parse_number(out);
  }

  static bool is_digit(char c) { return c >= '0' && c <= '9'; }

  // Scans the token against the JSON number grammar before converting.
  // strtod is never pointed at text_ directly: it requires a NUL-
  // terminated buffer (text_ is a string_view over arbitrary memory)
  // and accepts non-JSON spellings ("NaN", "Infinity", hex floats,
  // leading '+') that must not cross the protocol boundary.
  core::Status parse_number(Json& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const std::size_t int_start = pos_;
    while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    if (pos_ == int_start ||
        (text_[int_start] == '0' && pos_ - int_start > 1)) {
      pos_ = start;
      return error("invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      const std::size_t frac_start = pos_;
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
      if (pos_ == frac_start) {
        pos_ = start;
        return error("invalid number");
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const std::size_t exp_start = pos_;
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
      if (pos_ == exp_start) {
        pos_ = start;
        return error("invalid number");
      }
    }
    // Overflow to +-inf is accepted (serializes back as null); the
    // token is syntactically valid JSON either way.
    const std::string token(text_.substr(start, pos_ - start));
    out = Json(std::strtod(token.c_str(), nullptr));
    return core::Status::ok();
  }

  core::Status parse_string(std::string& out) {
    if (!consume('"')) return error("expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return core::Status::ok();
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return error("bad hex digit in \\u escape");
            }
          }
          // The protocol is ASCII; encode BMP code points as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return error("unknown escape");
      }
    }
    return error("unterminated string");
  }

  core::Status parse_string_value(Json& out) {
    std::string s;
    core::Status status = parse_string(s);
    if (!status.is_ok()) return status;
    out = Json(std::move(s));
    return core::Status::ok();
  }

  core::Status parse_array(Json& out, int depth) {
    consume('[');
    JsonArray array;
    skip_ws();
    if (consume(']')) {
      out = Json(std::move(array));
      return core::Status::ok();
    }
    while (true) {
      Json element;
      core::Status status = parse_value(element, depth + 1);
      if (!status.is_ok()) return status;
      array.push_back(std::move(element));
      skip_ws();
      if (consume(']')) break;
      if (!consume(',')) return error("expected ',' or ']'");
    }
    out = Json(std::move(array));
    return core::Status::ok();
  }

  core::Status parse_object(Json& out, int depth) {
    consume('{');
    JsonObject object;
    skip_ws();
    if (consume('}')) {
      out = Json(std::move(object));
      return core::Status::ok();
    }
    while (true) {
      skip_ws();
      std::string key;
      core::Status status = parse_string(key);
      if (!status.is_ok()) return status;
      skip_ws();
      if (!consume(':')) return error("expected ':'");
      Json value;
      status = parse_value(value, depth + 1);
      if (!status.is_ok()) return status;
      object.insert_or_assign(std::move(key), std::move(value));
      skip_ws();
      if (consume('}')) break;
      if (!consume(',')) return error("expected ',' or '}'");
    }
    out = Json(std::move(object));
    return core::Status::ok();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

core::Result<Json> Json::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace rsmem::service
