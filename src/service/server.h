// rsmem-serve: the long-running analysis daemon.
//
// One listening socket (Unix or TCP), one reader thread per connection,
// and the ShardRouter behind them (N independent scheduler/cache shards,
// service/shard_router.h). The server splits the protocol into two planes:
//   * CONTROL (ping / stats / shutdown): answered inline by the reader
//     thread — never queued, never subject to admission control, so a
//     saturated service still answers health checks. `stats` merges
//     per-shard counters and reports the per-shard breakdown too.
//   * ANALYSIS (ber / mttf / sweep): routed by canonical-cache-key hash to
//     one shard and submitted. A typed kOverloaded rejection (shard queue
//     full, or the router's global backstop) is written back immediately;
//     accepted requests are answered asynchronously by the shard's workers
//     (responses carry the request id, so one connection may pipeline
//     requests and receive completions out of order).
// Shutdown (kShutdown request, or Server::shutdown()) drains: the
// listener closes, connection read sides shut down, every admitted
// request still completes and its response is flushed, then the sockets
// close. See docs/SERVICE.md.
#ifndef RSMEM_SERVICE_SERVER_H
#define RSMEM_SERVICE_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/endpoint.h"
#include "service/shard_router.h"

namespace rsmem::service {

struct ServerConfig {
  Endpoint endpoint = Endpoint::unix_socket("/tmp/rsmem-serve.sock");
  ShardRouterConfig router;  // shard count + per-shard scheduler knobs
  int backlog = 64;
};

class Server {
 public:
  // Binds, listens, and starts the accept loop. On error (bad endpoint,
  // bind failure) nothing is left running.
  static core::Result<std::unique_ptr<Server>> start(const ServerConfig&);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // The endpoint actually bound (ephemeral TCP ports resolved).
  const Endpoint& endpoint() const { return endpoint_; }

  // True once a kShutdown request has been received (or shutdown()
  // called). wait_for blocks up to `poll` for that to happen, so a serve
  // loop can interleave signal checks.
  bool shutdown_requested() const { return shutdown_requested_.load(); }
  bool wait_for_shutdown(std::chrono::milliseconds poll);

  // Orderly teardown: stop accepting, drain the scheduler (every admitted
  // request is answered), flush and close connections. Idempotent; also
  // run by the destructor.
  void shutdown();

  // Merged (summed) across shards; ShardRouter::stats() has the breakdown.
  AnalysisScheduler::Stats scheduler_stats() const {
    return router_->scheduler_stats();
  }
  ResultCache::Stats cache_stats() const { return router_->cache_stats(); }
  ShardRouter::Stats router_stats() const { return router_->stats(); }
  unsigned shard_count() const { return router_->shard_count(); }

 private:
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    // Serialized frame writes: scheduler workers and the reader thread
    // may interleave responses on one socket.
    core::Status write_response(const Response& response);
    const int fd;
    std::mutex write_mutex;
  };

  Server(ServerConfig config, Endpoint bound, int listen_fd);
  void accept_loop();
  void serve_connection(std::shared_ptr<Connection> connection);
  void read_requests(const std::shared_ptr<Connection>& connection);
  void handle_request(const std::shared_ptr<Connection>& connection,
                      Request request);
  void join_finished_readers();
  std::string stats_result_json() const;

  const ServerConfig config_;
  const Endpoint endpoint_;
  int listen_fd_;
  std::unique_ptr<ShardRouter> router_;

  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> stopped_{false};
  mutable std::mutex mutex_;
  std::condition_variable shutdown_cv_;
  std::vector<std::shared_ptr<Connection>> connections_;
  // A live reader's thread handle sits in reader_threads_; when the
  // reader exits it moves its own handle to finished_readers_, where the
  // accept loop (or shutdown) joins it. Connections are reaped as they
  // close, not hoarded until shutdown — a churning daemon must not leak
  // one fd + one thread per disconnected client.
  std::unordered_map<const Connection*, std::thread> reader_threads_;
  std::vector<std::thread> finished_readers_;
  std::thread accept_thread_;
};

}  // namespace rsmem::service

#endif  // RSMEM_SERVICE_SERVER_H
