// rsmem-serve: the long-running analysis daemon.
//
// One listening socket (Unix or TCP), one reader thread per connection,
// and the ShardRouter behind them (N independent scheduler/cache shards,
// service/shard_router.h). The server splits the protocol into two planes:
//   * CONTROL (ping / stats / shutdown): answered inline by the reader
//     thread — never queued, never subject to admission control, so a
//     saturated service still answers health checks. `stats` merges
//     per-shard counters and reports the per-shard breakdown too.
//   * ANALYSIS (ber / mttf / sweep): routed by canonical-cache-key hash to
//     one shard and submitted. A typed kOverloaded rejection (shard queue
//     full, or the router's global backstop) is written back immediately;
//     accepted requests are answered asynchronously by the shard's workers
//     (responses carry the request id, so one connection may pipeline
//     requests and receive completions out of order).
// Shutdown (kShutdown request, or Server::shutdown()) drains: the
// listener closes, connection read sides shut down, every admitted
// request still completes and its response is flushed, then the sockets
// close. When a snapshot path is configured the drained caches are
// persisted after the drain and reloaded (warm start) on the next boot;
// a torn/corrupt snapshot falls back to a cold start, never a crash.
// See docs/SERVICE.md.
#ifndef RSMEM_SERVICE_SERVER_H
#define RSMEM_SERVICE_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/chaos.h"
#include "service/endpoint.h"
#include "service/shard_router.h"

namespace rsmem::service {

struct ServerConfig {
  Endpoint endpoint = Endpoint::unix_socket("/tmp/rsmem-serve.sock");
  ShardRouterConfig router;  // shard count + per-shard scheduler knobs
  int backlog = 64;

  // Frames whose announced length exceeds this are rejected with a typed
  // kInvalidConfig response BEFORE any allocation, then the connection
  // closes (the stream cannot resync past an unread oversized body).
  // Clamped to protocol.h's kMaxFrameBytes.
  std::uint32_t max_frame_bytes = kMaxFrameBytes;

  // Per-connection frame-rate ceiling (token bucket, burst = one second's
  // worth). Frames past the budget are answered with a typed kOverloaded
  // rejection echoing the request id; the connection stays open and in
  // sync. 0 = unlimited.
  double max_frames_per_second = 0.0;

  // Idle-connection reaper: a connection with no frame traffic in either
  // direction for this long has its read side shut down, which makes its
  // reader thread exit and release the fd. 0 = never reap.
  double idle_timeout_ms = 0.0;

  // Cache persistence: when non-empty, boot warm-loads this snapshot
  // (missing/corrupt file => cold start) and shutdown() writes the
  // drained caches back to it (tmp + fsync + atomic rename).
  std::string snapshot_path;

  // Transport fault injection (tests / chaos campaigns). Null = clean
  // transport at the cost of one pointer test per frame.
  std::shared_ptr<chaos::ChaosEngine> chaos;
};

class Server {
 public:
  // Binds, listens, and starts the accept loop. On error (bad endpoint,
  // bind failure) nothing is left running.
  static core::Result<std::unique_ptr<Server>> start(const ServerConfig&);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // The endpoint actually bound (ephemeral TCP ports resolved).
  const Endpoint& endpoint() const { return endpoint_; }

  // True once a kShutdown request has been received (or shutdown()
  // called). wait_for blocks up to `poll` for that to happen, so a serve
  // loop can interleave signal checks.
  bool shutdown_requested() const { return shutdown_requested_.load(); }
  bool wait_for_shutdown(std::chrono::milliseconds poll);

  // Orderly teardown: stop accepting, drain the scheduler (every admitted
  // request is answered), flush and close connections. Idempotent; also
  // run by the destructor.
  void shutdown();

  // Merged (summed) across shards; ShardRouter::stats() has the breakdown.
  AnalysisScheduler::Stats scheduler_stats() const {
    return router_->scheduler_stats();
  }
  ResultCache::Stats cache_stats() const { return router_->cache_stats(); }
  ShardRouter::Stats router_stats() const { return router_->stats(); }
  unsigned shard_count() const { return router_->shard_count(); }

 private:
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    // Serialized frame writes: scheduler workers and the reader thread
    // may interleave responses on one socket.
    core::Status write_response(const Response& response);
    void touch();  // records frame activity for the idle reaper
    const int fd;
    std::mutex write_mutex;
    // Fault-injection stream for this connection; null = clean transport.
    // The session's write stream is only used under write_mutex, its read
    // stream only by the single reader thread.
    std::unique_ptr<chaos::ChaosSession> chaos;
    std::atomic<std::int64_t> last_activity_ns{0};
    std::atomic<bool> reaped{false};
  };

  Server(ServerConfig config, Endpoint bound, int listen_fd);
  void accept_loop();
  void reaper_loop();
  void serve_connection(std::shared_ptr<Connection> connection);
  void read_requests(const std::shared_ptr<Connection>& connection);
  void handle_request(const std::shared_ptr<Connection>& connection,
                      Request request);
  void join_finished_readers();
  std::string stats_result_json() const;

  const ServerConfig config_;
  const Endpoint endpoint_;
  int listen_fd_;
  std::unique_ptr<ShardRouter> router_;

  // Hardening telemetry (stats response).
  std::atomic<std::uint64_t> rate_limited_{0};
  std::atomic<std::uint64_t> oversized_frames_{0};
  std::atomic<std::uint64_t> idle_reaped_{0};
  // Warm-start outcome; written in the constructor before any thread
  // starts, read-only afterwards.
  std::size_t warm_start_entries_ = 0;
  std::string warm_start_error_;

  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> stopped_{false};
  mutable std::mutex mutex_;
  std::condition_variable shutdown_cv_;
  std::vector<std::shared_ptr<Connection>> connections_;
  // A live reader's thread handle sits in reader_threads_; when the
  // reader exits it moves its own handle to finished_readers_, where the
  // accept loop (or shutdown) joins it. Connections are reaped as they
  // close, not hoarded until shutdown — a churning daemon must not leak
  // one fd + one thread per disconnected client.
  std::unordered_map<const Connection*, std::thread> reader_threads_;
  std::vector<std::thread> finished_readers_;
  std::thread accept_thread_;
  std::thread reaper_thread_;  // only started when idle_timeout_ms > 0
};

}  // namespace rsmem::service

#endif  // RSMEM_SERVICE_SERVER_H
