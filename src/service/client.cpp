#include "service/client.h"

#include <unistd.h>

namespace rsmem::service {

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    next_id_ = other.next_id_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

core::Result<Client> Client::connect(const Endpoint& endpoint) {
  core::Result<int> fd = connect_to(endpoint);
  if (!fd.ok()) {
    core::Status status = fd.status();
    return status.with_context("client connect");
  }
  return Client(fd.value());
}

core::Result<std::uint64_t> Client::send(Request request) {
  if (fd_ < 0) {
    return core::Status::internal("client is not connected");
  }
  if (request.id == 0) request.id = next_id_++;
  core::Status wrote = write_frame(fd_, request.to_json());
  if (!wrote.is_ok()) return wrote.with_context("client send");
  return request.id;
}

core::Result<Response> Client::receive() {
  if (fd_ < 0) {
    return core::Status::internal("client is not connected");
  }
  core::Result<FrameRead> frame = read_frame(fd_);
  if (!frame.ok()) {
    core::Status status = frame.status();
    return status.with_context("client receive");
  }
  if (frame.value().eof) {
    return core::Status::internal(
        "server closed the connection before responding");
  }
  core::Result<Response> response = Response::from_json(frame.value().payload);
  if (!response.ok()) {
    core::Status status = response.status();
    return status.with_context("client receive");
  }
  return response;
}

core::Result<Response> Client::call(Request request) {
  if (fd_ < 0) {
    return core::Status::internal("client is not connected");
  }
  if (request.id == 0) request.id = next_id_++;
  core::Status wrote = write_frame(fd_, request.to_json());
  if (!wrote.is_ok()) return wrote.with_context("client call");
  // Skip frames for other ids (stale pipelined completions after an
  // earlier caller gave up); bounded so a confused peer cannot wedge us.
  for (int skipped = 0; skipped < 1024; ++skipped) {
    core::Result<FrameRead> frame = read_frame(fd_);
    if (!frame.ok()) {
      core::Status status = frame.status();
      return status.with_context("client call");
    }
    if (frame.value().eof) {
      return core::Status::internal(
          "server closed the connection before responding");
    }
    core::Result<Response> response =
        Response::from_json(frame.value().payload);
    if (!response.ok()) {
      core::Status status = response.status();
      return status.with_context("client call");
    }
    if (response.value().id == request.id || response.value().id == 0) {
      return response;
    }
  }
  return core::Status::internal("no response for request id " +
                                std::to_string(request.id) +
                                " within 1024 frames");
}

}  // namespace rsmem::service
