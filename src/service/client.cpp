#include "service/client.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace rsmem::service {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string format_ms(double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.1f", ms);
  return buffer;
}

}  // namespace

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    next_id_ = other.next_id_;
    chaos_engine_ = std::move(other.chaos_engine_);
    chaos_ = std::move(other.chaos_);
    other.fd_ = -1;
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::cancel() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

core::Status Client::set_receive_timeout(double timeout_ms) {
  if (fd_ < 0) return core::Status::internal("client is not connected");
  if (timeout_ms < 0) timeout_ms = 0;  // 0 disarms
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>(
      std::fmod(timeout_ms, 1000.0) * 1000.0);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0) {
    return core::Status::internal("setsockopt(SO_RCVTIMEO) failed");
  }
  return core::Status::ok();
}

core::Result<Client> Client::connect(
    const Endpoint& endpoint,
    std::shared_ptr<chaos::ChaosEngine> chaos_engine) {
  core::Result<int> fd = connect_to(endpoint);
  if (!fd.ok()) {
    core::Status status = fd.status();
    return status.with_context("client connect");
  }
  Client client(fd.value());
  if (chaos_engine != nullptr) {
    client.chaos_ = chaos_engine->make_session();
    client.chaos_engine_ = std::move(chaos_engine);
  }
  return client;
}

core::Status Client::write_one(std::string_view payload) {
  return chaos_ ? chaos_->write_frame(fd_, payload)
                : write_frame(fd_, payload);
}

core::Result<FrameRead> Client::read_one() {
  return chaos_ ? chaos_->read_frame(fd_, kMaxFrameBytes)
                : read_frame(fd_);
}

core::Result<std::uint64_t> Client::send(Request request) {
  if (fd_ < 0) {
    return core::Status::internal("client is not connected");
  }
  if (request.id == 0) request.id = next_id_++;
  core::Status wrote = write_one(request.to_json());
  if (!wrote.is_ok()) return wrote.with_context("client send");
  return request.id;
}

core::Result<Response> Client::receive() {
  if (fd_ < 0) {
    return core::Status::internal("client is not connected");
  }
  core::Result<FrameRead> frame = read_one();
  if (!frame.ok()) {
    core::Status status = frame.status();
    return status.with_context("client receive");
  }
  if (frame.value().eof) {
    return core::Status::internal(
        "server closed the connection before responding");
  }
  core::Result<Response> response = Response::from_json(frame.value().payload);
  if (!response.ok()) {
    core::Status status = response.status();
    return status.with_context("client receive");
  }
  return response;
}

core::Result<Response> Client::call(Request request) {
  if (fd_ < 0) {
    return core::Status::internal("client is not connected");
  }
  if (request.id == 0) request.id = next_id_++;
  core::Status wrote = write_one(request.to_json());
  if (!wrote.is_ok()) return wrote.with_context("client call");
  // Skip frames for other ids (stale pipelined completions after an
  // earlier caller gave up); bounded so a confused peer cannot wedge us.
  for (int skipped = 0; skipped < 1024; ++skipped) {
    core::Result<FrameRead> frame = read_one();
    if (!frame.ok()) {
      core::Status status = frame.status();
      return status.with_context("client call");
    }
    if (frame.value().eof) {
      return core::Status::internal(
          "server closed the connection before responding");
    }
    core::Result<Response> response =
        Response::from_json(frame.value().payload);
    if (!response.ok()) {
      core::Status status = response.status();
      return status.with_context("client call");
    }
    if (response.value().id == request.id || response.value().id == 0) {
      return response;
    }
  }
  return core::Status::internal("no response for request id " +
                                std::to_string(request.id) +
                                " within 1024 frames");
}

// ---------------------------------------------------------------------------
// Retry / hedging layer.

Backoff::Backoff(const RetryPolicy& policy)
    : policy_(policy),
      rng_(sim::Rng(policy.seed).split(0xB0FF)),
      previous_ms_(std::max(0.0, policy.base_backoff_ms)) {}

double Backoff::next_ms() {
  const double base = std::max(0.0, policy_.base_backoff_ms);
  const double high =
      std::max(base, previous_ms_ * std::max(1.0, policy_.backoff_multiplier));
  double next = base + (high - base) * rng_.uniform();
  if (policy_.max_backoff_ms > 0) next = std::min(next, policy_.max_backoff_ms);
  previous_ms_ = next;
  return next;
}

bool status_is_retryable(const core::Status& status) {
  switch (status.code()) {
    case core::StatusCode::kInternal:    // transport breakage
    case core::StatusCode::kOverloaded:  // queue full; back off and retry
    case core::StatusCode::kBrownout:    // shedding; server said "come back"
      return true;
    default:
      return false;
  }
}

ResilientClient::ResilientClient(
    Endpoint endpoint, RetryPolicy policy,
    std::shared_ptr<chaos::ChaosEngine> chaos_engine)
    : endpoint_(std::move(endpoint)),
      policy_(policy),
      chaos_engine_(std::move(chaos_engine)) {}

core::Result<Client> ResilientClient::open_connection() {
  core::Result<Client> connected = Client::connect(endpoint_, chaos_engine_);
  if (!connected.ok()) return connected;
  if (receive_timeout_ms_ > 0) {
    const core::Status armed =
        connected.value().set_receive_timeout(receive_timeout_ms_);
    if (!armed.is_ok()) return armed;
  }
  if (ever_connected_) ++counters_.reconnects;
  ever_connected_ = true;
  return connected;
}

core::Result<Response> ResilientClient::plain_attempt(const Request& request) {
  if (!primary_.has_value() || !primary_->connected()) {
    core::Result<Client> connected = open_connection();
    if (!connected.ok()) {
      primary_.reset();
      return connected.status();
    }
    primary_ = std::move(connected).value();
  }
  core::Result<Response> result = primary_->call(request);
  // A failed exchange poisons the stream (a late response frame for this
  // id could otherwise be mis-matched to the NEXT call); reconnect.
  if (!result.ok()) primary_.reset();
  return result;
}

core::Result<Response> ResilientClient::hedged_attempt(
    const Request& request) {
  // Two lanes race the same idempotent request on separate connections;
  // the first to produce any result wins and the loser is cancelled via
  // Client::cancel() (shutdown(2) reliably unblocks its pending read).
  struct Lane {
    std::optional<Client> client;
    std::optional<core::Result<Response>> result;
    bool cancelled = false;
    std::thread thread;
  };
  struct Shared {
    std::mutex mutex;
    std::condition_variable cv;
    Lane lanes[2];
  };
  auto shared = std::make_shared<Shared>();

  // Lane threads run concurrently, so they must not touch counters_ or
  // ever_connected_ — they connect through this race-free helper instead
  // of open_connection().
  const auto connect_lane = [this]() -> core::Result<Client> {
    core::Result<Client> connected = Client::connect(endpoint_, chaos_engine_);
    if (!connected.ok()) return connected;
    if (receive_timeout_ms_ > 0) {
      const core::Status armed =
          connected.value().set_receive_timeout(receive_timeout_ms_);
      if (!armed.is_ok()) return armed;
    }
    return connected;
  };

  const auto launch = [this, shared, &request, &connect_lane](int index) {
    shared->lanes[index].thread =
        std::thread([shared, request, index, connect_lane] {
      Lane& lane = shared->lanes[index];
      core::Result<Client> connected = connect_lane();
      if (!connected.ok()) {
        std::lock_guard<std::mutex> lock(shared->mutex);
        lane.result = connected.status();
        shared->cv.notify_all();
        return;
      }
      {
        std::lock_guard<std::mutex> lock(shared->mutex);
        if (lane.cancelled) {
          lane.result = core::Status::internal("hedge lane cancelled");
          shared->cv.notify_all();
          return;
        }
        lane.client = std::move(connected).value();
      }
      core::Result<Response> result = lane.client->call(request);
      std::lock_guard<std::mutex> lock(shared->mutex);
      lane.result = std::move(result);
      shared->cv.notify_all();
    });
  };

  const auto deadline =
      Clock::now() + std::chrono::duration<double, std::milli>(
                         std::max(0.1, policy_.hedge_after_ms));
  launch(0);
  int winner = -1;
  {
    std::unique_lock<std::mutex> lock(shared->mutex);
    if (shared->cv.wait_until(lock, deadline, [&] {
          return shared->lanes[0].result.has_value();
        })) {
      winner = 0;
    }
  }
  if (winner < 0) {
    // Primary lane is slow: hedge.
    ++counters_.hedges;
    launch(1);
    std::unique_lock<std::mutex> lock(shared->mutex);
    // A lane that fails (connect refused, peer reset) must not preempt the
    // other lane's still-possible success: settle early only on an OK
    // result, otherwise wait until both lanes have reported.
    const auto lane_ok = [&](int index) {
      const std::optional<core::Result<Response>>& result =
          shared->lanes[index].result;
      return result.has_value() && result->ok();
    };
    shared->cv.wait(lock, [&] {
      return lane_ok(0) || lane_ok(1) ||
             (shared->lanes[0].result.has_value() &&
              shared->lanes[1].result.has_value());
    });
    winner = lane_ok(0) ? 0 : (lane_ok(1) ? 1 : 0);
    if (winner == 1) ++counters_.hedge_wins;
    // Cancel the loser so its blocked read unwinds; the thread records a
    // typed result and exits.
    Lane& loser = shared->lanes[1 - winner];
    loser.cancelled = true;
    if (loser.client.has_value()) loser.client->cancel();
  }
  for (Lane& lane : shared->lanes) {
    if (lane.thread.joinable()) lane.thread.join();
  }
  return std::move(*shared->lanes[winner].result);
}

core::Result<Response> ResilientClient::call(Request request) {
  // One id across every attempt: the idempotency key. Responses are
  // deterministic and cache-keyed, so re-submitting the same id is safe.
  if (request.id == 0) request.id = next_id_++;
  const auto start = Clock::now();
  const double budget =
      policy_.budget_ms > 0 ? policy_.budget_ms : request.deadline_ms;
  const unsigned max_attempts = std::max(1u, policy_.max_attempts);
  Backoff backoff(policy_);
  core::Status last = core::Status::ok();
  for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
    ++counters_.attempts;
    core::Result<Response> result =
        (attempt == 1 && policy_.hedge_after_ms > 0) ? hedged_attempt(request)
                                                     : plain_attempt(request);
    if (result.ok()) {
      const core::StatusCode code = result.value().status.code();
      if (code != core::StatusCode::kOverloaded &&
          code != core::StatusCode::kBrownout) {
        return result;  // the server's (possibly typed-failure) answer
      }
      last = result.value().status;  // server asked us to back off
    } else {
      last = result.status();
      if (!status_is_retryable(last)) return last;
    }
    if (attempt == max_attempts) break;
    const double delay = backoff.next_ms();
    const double spent = ms_since(start);
    if (budget > 0 && spent + delay >= budget) {
      ++counters_.budget_exhausted;
      return core::Status::deadline_exceeded(
          "retry budget exhausted after " + std::to_string(attempt) +
          " attempt(s) (" + format_ms(spent) + " of " + format_ms(budget) +
          " ms); last error: " + last.to_string());
    }
    ++counters_.retries;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay));
  }
  return core::Status::retry_exhausted(
      "gave up after " + std::to_string(max_attempts) +
      " attempt(s); last error: " + last.to_string());
}

}  // namespace rsmem::service
