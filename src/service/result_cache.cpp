#include "service/result_cache.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

namespace rsmem::service {

ResultCache::Outcome ResultCache::get_or_compute(
    const std::string& key,
    const std::function<core::Result<std::string>()>& compute) {
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (const auto it = entries_.find(key); it != entries_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_position);
      return {core::Status::ok(), it->second.value, CacheSource::kHit};
    }
    if (const auto it = flights_.find(key); it != flights_.end()) {
      ++stats_.waits;
      flight = it->second;
    } else {
      ++stats_.misses;
      flight = std::make_shared<Flight>();
      flights_.emplace(key, flight);
      leader = true;
    }
  }

  if (!leader) {
    std::unique_lock<std::mutex> flight_lock(flight->mutex);
    flight->done_cv.wait(flight_lock, [&] { return flight->done; });
    if (!flight->status.is_ok()) {
      return {flight->status, nullptr, CacheSource::kWait};
    }
    return {core::Status::ok(), flight->value, CacheSource::kWait};
  }

  // Leader: compute outside every lock, publish, then wake the waiters.
  core::Result<std::string> computed = compute();
  Outcome outcome;
  outcome.source = CacheSource::kMiss;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    flights_.erase(key);
    if (computed.ok()) {
      auto value =
          std::make_shared<const std::string>(std::move(computed).value());
      insert_locked(key, value);
      outcome.status = core::Status::ok();
      outcome.value = std::move(value);
    } else {
      ++stats_.failures;
      outcome.status = computed.status();
    }
  }
  {
    std::unique_lock<std::mutex> flight_lock(flight->mutex);
    flight->done = true;
    flight->status = outcome.status;
    flight->value = outcome.value;
  }
  flight->done_cv.notify_all();
  return outcome;
}

void ResultCache::insert_locked(const std::string& key,
                                std::shared_ptr<const std::string> value) {
  if (capacity_ == 0) return;
  while (entries_.size() >= capacity_) {
    const std::string& victim = lru_.back();
    entries_.erase(victim);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{std::move(value), lru_.begin()});
}

std::shared_ptr<const std::string> ResultCache::lookup(
    const std::string& key) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_position);
  return it->second.value;
}

void ResultCache::insert(const std::string& key,
                         std::shared_ptr<const std::string> value) {
  if (value == nullptr) return;
  std::unique_lock<std::mutex> lock(mutex_);
  if (capacity_ == 0) return;
  ++stats_.warm_loads;
  if (const auto it = entries_.find(key); it != entries_.end()) {
    it->second.value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second.lru_position);
    return;
  }
  insert_locked(key, std::move(value));
}

std::vector<SnapshotEntry> ResultCache::export_entries() const {
  std::unique_lock<std::mutex> lock(mutex_);
  std::vector<SnapshotEntry> out;
  out.reserve(entries_.size());
  // Least-recent first: replaying the file through insert() rebuilds the
  // same LRU order.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    const auto entry = entries_.find(*it);
    if (entry != entries_.end()) {
      out.push_back(SnapshotEntry{*it, entry->second.value});
    }
  }
  return out;
}

ResultCache::Stats ResultCache::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  Stats snapshot = stats_;
  snapshot.size = entries_.size();
  return snapshot;
}

void ResultCache::clear() {
  std::unique_lock<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
}

// ---------------------------------------------------------------------------
// Snapshot files.

namespace {

constexpr std::array<char, 4> kSnapshotMagic = {'R', 'S', 'M', 'S'};
constexpr std::uint32_t kSnapshotVersion = 1;
// Sanity bounds re-checked on read so a corrupt length field can never
// drive a hostile allocation: keys are canonical cache keys (short),
// values are result JSON (frame-sized).
constexpr std::uint32_t kMaxSnapshotKeyBytes = 1u << 20;
constexpr std::uint32_t kMaxSnapshotValueBytes = kMaxFrameBytes;
constexpr std::size_t kMaxSnapshotFileBytes = std::size_t{1} << 30;

void append_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v));
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v >> 16));
  out.push_back(static_cast<char>(v >> 24));
}

void append_u64(std::string& out, std::uint64_t v) {
  append_u32(out, static_cast<std::uint32_t>(v));
  append_u32(out, static_cast<std::uint32_t>(v >> 32));
}

// Bounds-checked little-endian reads off a cursor into the file buffer.
bool read_u32(const std::string& data, std::size_t& cursor,
              std::uint32_t& out) {
  if (data.size() - cursor < 4) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(data.data() + cursor);
  out = static_cast<std::uint32_t>(p[0]) |
        (static_cast<std::uint32_t>(p[1]) << 8) |
        (static_cast<std::uint32_t>(p[2]) << 16) |
        (static_cast<std::uint32_t>(p[3]) << 24);
  cursor += 4;
  return true;
}

bool read_u64(const std::string& data, std::size_t& cursor,
              std::uint64_t& out) {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  if (!read_u32(data, cursor, lo) || !read_u32(data, cursor, hi)) return false;
  out = static_cast<std::uint64_t>(lo) | (static_cast<std::uint64_t>(hi) << 32);
  return true;
}

core::Status snapshot_errno(const std::string& what, const std::string& path) {
  return core::Status::internal(what + " '" + path + "': " +
                                std::strerror(errno));
}

}  // namespace

std::uint32_t snapshot_crc32(const void* data, std::size_t size) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

core::Status write_snapshot_file(const std::string& path,
                                 const std::vector<SnapshotEntry>& entries) {
  std::string buffer;
  buffer.reserve(16 + entries.size() * 128);
  buffer.append(kSnapshotMagic.data(), kSnapshotMagic.size());
  append_u32(buffer, kSnapshotVersion);
  append_u64(buffer, entries.size());
  for (const SnapshotEntry& entry : entries) {
    if (entry.value == nullptr) continue;
    if (entry.key.size() > kMaxSnapshotKeyBytes ||
        entry.value->size() > kMaxSnapshotValueBytes) {
      return core::Status::invalid_config(
          "snapshot entry exceeds size bounds (key " +
          std::to_string(entry.key.size()) + " bytes, value " +
          std::to_string(entry.value->size()) + " bytes)");
    }
    append_u32(buffer, static_cast<std::uint32_t>(entry.key.size()));
    buffer.append(entry.key);
    append_u32(buffer, static_cast<std::uint32_t>(entry.value->size()));
    buffer.append(*entry.value);
  }
  append_u32(buffer, snapshot_crc32(buffer.data(), buffer.size()));

  // Write-to-temp + fsync + atomic rename: a crash at any point leaves
  // either the old snapshot or the complete new one, never a torn file.
  const std::string tmp_path = path + ".tmp";
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return snapshot_errno("cannot create snapshot temp", tmp_path);
  std::size_t offset = 0;
  while (offset < buffer.size()) {
    const ssize_t wrote =
        ::write(fd, buffer.data() + offset, buffer.size() - offset);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      const core::Status status =
          snapshot_errno("snapshot write failed", tmp_path);
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return status;
    }
    offset += static_cast<std::size_t>(wrote);
  }
  if (::fsync(fd) != 0) {
    const core::Status status = snapshot_errno("snapshot fsync failed",
                                               tmp_path);
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return status;
  }
  ::close(fd);
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const core::Status status = snapshot_errno("snapshot rename failed", path);
    ::unlink(tmp_path.c_str());
    return status;
  }
  return core::Status::ok();
}

core::Result<std::vector<SnapshotEntry>> read_snapshot_file(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return core::Status::internal("no snapshot at '" + path + "'");
    }
    return snapshot_errno("cannot open snapshot", path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const core::Status status = snapshot_errno("cannot stat snapshot", path);
    ::close(fd);
    return status;
  }
  if (st.st_size < 0 ||
      static_cast<std::size_t>(st.st_size) > kMaxSnapshotFileBytes) {
    ::close(fd);
    return core::Status::invalid_config(
        "snapshot file size out of bounds (" + std::to_string(st.st_size) +
        " bytes): " + path);
  }
  std::string data;
  data.resize(static_cast<std::size_t>(st.st_size));
  std::size_t got = 0;
  while (got < data.size()) {
    const ssize_t n = ::read(fd, data.data() + got, data.size() - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      const core::Status status = snapshot_errno("snapshot read failed", path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;  // shrank under us; caught by the size checks below
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  data.resize(got);

  // Layout floor: magic + version + count + trailing CRC.
  if (data.size() < kSnapshotMagic.size() + 4 + 8 + 4) {
    return core::Status::invalid_config("snapshot truncated (" +
                                        std::to_string(data.size()) +
                                        " bytes): " + path);
  }
  const std::size_t body_size = data.size() - 4;
  std::size_t crc_cursor = body_size;
  std::uint32_t stored_crc = 0;
  read_u32(data, crc_cursor, stored_crc);
  const std::uint32_t actual_crc = snapshot_crc32(data.data(), body_size);
  if (stored_crc != actual_crc) {
    return core::Status::invalid_config("snapshot CRC mismatch: " + path);
  }
  // Drop the CRC trailer so every bounds check below is against the body
  // alone — a corrupt length can then never walk the cursor past it.
  data.resize(body_size);
  std::size_t cursor = 0;
  if (std::memcmp(data.data(), kSnapshotMagic.data(),
                  kSnapshotMagic.size()) != 0) {
    return core::Status::invalid_config("snapshot has wrong magic: " + path);
  }
  cursor += kSnapshotMagic.size();
  std::uint32_t version = 0;
  read_u32(data, cursor, version);
  if (version != kSnapshotVersion) {
    return core::Status::invalid_config(
        "snapshot version mismatch (file v" + std::to_string(version) +
        ", supported v" + std::to_string(kSnapshotVersion) + "): " + path);
  }
  std::uint64_t count = 0;
  read_u64(data, cursor, count);
  std::vector<SnapshotEntry> entries;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t key_len = 0;
    if (!read_u32(data, cursor, key_len) || key_len > kMaxSnapshotKeyBytes ||
        body_size - cursor < key_len) {
      return core::Status::invalid_config(
          "snapshot entry " + std::to_string(i) + " has a corrupt key: " +
          path);
    }
    std::string key = data.substr(cursor, key_len);
    cursor += key_len;
    std::uint32_t value_len = 0;
    if (!read_u32(data, cursor, value_len) ||
        value_len > kMaxSnapshotValueBytes || body_size - cursor < value_len) {
      return core::Status::invalid_config(
          "snapshot entry " + std::to_string(i) + " has a corrupt value: " +
          path);
    }
    entries.push_back(SnapshotEntry{
        std::move(key),
        std::make_shared<const std::string>(data.substr(cursor, value_len))});
    cursor += value_len;
  }
  if (cursor != body_size) {
    return core::Status::invalid_config(
        "snapshot has trailing garbage after entry " + std::to_string(count) +
        ": " + path);
  }
  return entries;
}

}  // namespace rsmem::service
