#include "service/result_cache.h"

#include <utility>

namespace rsmem::service {

ResultCache::Outcome ResultCache::get_or_compute(
    const std::string& key,
    const std::function<core::Result<std::string>()>& compute) {
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (const auto it = entries_.find(key); it != entries_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_position);
      return {core::Status::ok(), it->second.value, CacheSource::kHit};
    }
    if (const auto it = flights_.find(key); it != flights_.end()) {
      ++stats_.waits;
      flight = it->second;
    } else {
      ++stats_.misses;
      flight = std::make_shared<Flight>();
      flights_.emplace(key, flight);
      leader = true;
    }
  }

  if (!leader) {
    std::unique_lock<std::mutex> flight_lock(flight->mutex);
    flight->done_cv.wait(flight_lock, [&] { return flight->done; });
    if (!flight->status.is_ok()) {
      return {flight->status, nullptr, CacheSource::kWait};
    }
    return {core::Status::ok(), flight->value, CacheSource::kWait};
  }

  // Leader: compute outside every lock, publish, then wake the waiters.
  core::Result<std::string> computed = compute();
  Outcome outcome;
  outcome.source = CacheSource::kMiss;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    flights_.erase(key);
    if (computed.ok()) {
      auto value =
          std::make_shared<const std::string>(std::move(computed).value());
      insert_locked(key, value);
      outcome.status = core::Status::ok();
      outcome.value = std::move(value);
    } else {
      ++stats_.failures;
      outcome.status = computed.status();
    }
  }
  {
    std::unique_lock<std::mutex> flight_lock(flight->mutex);
    flight->done = true;
    flight->status = outcome.status;
    flight->value = outcome.value;
  }
  flight->done_cv.notify_all();
  return outcome;
}

void ResultCache::insert_locked(const std::string& key,
                                std::shared_ptr<const std::string> value) {
  if (capacity_ == 0) return;
  while (entries_.size() >= capacity_) {
    const std::string& victim = lru_.back();
    entries_.erase(victim);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{std::move(value), lru_.begin()});
}

ResultCache::Stats ResultCache::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  Stats snapshot = stats_;
  snapshot.size = entries_.size();
  return snapshot;
}

void ResultCache::clear() {
  std::unique_lock<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
}

}  // namespace rsmem::service
