// N-shard front for the rsmem-serve analysis plane.
//
// A ShardRouter owns N independent AnalysisScheduler shards — each with
// its own lock-free pending ring, dispatcher thread, worker pool, and
// single-flight ResultCache — and routes every request to exactly one
// shard by shard_of_key(canonical_cache_key(request), N). Because the
// cache key IS the routing key, repeated identical queries always land on
// the shard that cached them: N per-shard caches serve hot traffic as
// effectively as one global cache, without a global mutex on the hot
// path.
//
// Admission control is two-level:
//   * per shard — each scheduler's bounded ring rejects kOverloaded when
//     ITS max_queue is full (an elephant-flow key cannot starve the other
//     shards);
//   * global backstop — an atomic in-flight counter across all shards
//     rejects kOverloaded before touching any shard once
//     global_max_pending requests are admitted-but-unanswered, so the
//     daemon's total memory/latency exposure stays bounded no matter how
//     traffic skews. Both rejections are typed; nothing is ever dropped
//     silently.
//
// stats() merges per-shard counters (sums; max_batch as a max) and also
// exposes the raw per-shard snapshots for the server's `stats` response.
// Responses remain bit-identical to direct core:: calls for EVERY shard
// count: routing only selects which cache/queue a request uses, never how
// it computes (tests/test_service.cpp pins shards=1 vs shards=4
// byte-for-byte).
#ifndef RSMEM_SERVICE_SHARD_ROUTER_H
#define RSMEM_SERVICE_SHARD_ROUTER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "service/scheduler.h"

namespace rsmem::service {

struct ShardRouterConfig {
  unsigned shards = 1;        // independent scheduler/cache shards (>= 1)
  // Per-shard knobs. `scheduler.threads` is the TOTAL worker budget: the
  // router gives each shard max(1, resolve(threads) / shards) workers.
  // max_queue / cache_capacity / batch_max apply per shard.
  SchedulerConfig scheduler;
  // Global admission backstop on requests in flight (admitted, not yet
  // answered) across all shards; 0 = shards * scheduler.max_queue.
  std::size_t global_max_pending = 0;
};

class ShardRouter {
 public:
  explicit ShardRouter(const ShardRouterConfig& config);
  ~ShardRouter();
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // Routes to the owning shard and submits. Ok => `done` fires exactly
  // once from a shard worker; kOverloaded (backstop or shard queue) =>
  // `done` will never be invoked.
  core::Status submit(Request request, std::function<void(Response)> done);

  // Synchronous execution on the owning shard's cache (tests, warm-up).
  Response execute(const Request& request);

  unsigned shard_count() const {
    return static_cast<unsigned>(shards_.size());
  }
  std::size_t shard_of(const Request& request) const;
  std::size_t global_max_pending() const { return global_max_; }

  struct Stats {
    AnalysisScheduler::Stats scheduler;  // merged across shards
    ResultCache::Stats cache;            // merged across shards
    std::uint64_t rejected_global = 0;   // backstop rejections
    std::size_t global_pending = 0;      // in flight right now
    std::vector<AnalysisScheduler::Stats> shard_scheduler;
    std::vector<ResultCache::Stats> shard_cache;
  };
  Stats stats() const;
  AnalysisScheduler::Stats scheduler_stats() const;  // merged only
  ResultCache::Stats cache_stats() const;            // merged only

  // Crash-safe cache persistence (result_cache.h has the file format).
  // save_snapshot gathers every shard's entries into ONE file; the server
  // calls it after the drain on shutdown, so the entries are final.
  // load_snapshot routes each entry to the shard that owns its key —
  // a snapshot taken at any shard count warms a server with any other —
  // and returns how many entries were loaded. Corrupt/torn/mismatched
  // snapshots come back as a typed Status; the caller treats every
  // failure as a cold start.
  core::Status save_snapshot(const std::string& path) const;
  core::Result<std::size_t> load_snapshot(const std::string& path);

  // Stops every shard (drain semantics per AnalysisScheduler::stop).
  // Idempotent; also run by the destructor.
  void stop();

 private:
  const unsigned shard_count_;
  const std::size_t global_max_;
  std::vector<std::unique_ptr<AnalysisScheduler>> shards_;
  std::atomic<std::size_t> global_pending_{0};
  std::atomic<std::uint64_t> rejected_global_{0};
};

}  // namespace rsmem::service

#endif  // RSMEM_SERVICE_SHARD_ROUTER_H
