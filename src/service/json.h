// Minimal dependency-free JSON for the rsmem service protocol.
//
// A Value is one of null / bool / double / string / array / object.
// Numbers are always doubles (the protocol carries ids and counts well
// below 2^53, and every analysis quantity is a double already). The writer
// emits doubles with 17 significant digits so that serialize -> parse is a
// BIT-EXACT round trip on IEEE-754 binary64 (non-finite values are emitted
// as null, which parses back to NaN); this is what lets service responses
// stay bit-identical to direct core:: calls across the wire.
#ifndef RSMEM_SERVICE_JSON_H
#define RSMEM_SERVICE_JSON_H

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

namespace rsmem::service {

class Json;
using JsonArray = std::vector<Json>;
// std::map keeps object keys sorted, so serialization is canonical: two
// semantically equal objects always serialize to the same bytes.
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}         // NOLINT
  Json(double d) : type_(Type::kNumber), number_(d) {}   // NOLINT
  Json(int i) : Json(static_cast<double>(i)) {}          // NOLINT
  Json(std::uint64_t u) : Json(static_cast<double>(u)) {}  // NOLINT
  Json(std::string s)                                    // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}
  Json(const char* s) : Json(std::string(s)) {}          // NOLINT
  Json(JsonArray a)                                      // NOLINT
      : type_(Type::kArray), array_(std::move(a)) {}
  Json(JsonObject o)                                     // NOLINT
      : type_(Type::kObject), object_(std::move(o)) {}

  static Json from_doubles(const std::vector<double>& values);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; throw core::StatusError(kInternal) on type mismatch
  // (protocol code validates shapes before unwrapping).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  // Object field lookup: null when absent (or when *this is not an object).
  const Json* find(std::string_view key) const;
  // Convenience typed field getters with defaults.
  double number_or(std::string_view key, double fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;
  // Array of numbers -> vector<double>; InvalidConfig when shapes differ.
  core::Result<std::vector<double>> doubles_at(std::string_view key) const;

  // Compact canonical serialization (sorted keys, no whitespace).
  std::string serialize() const;
  void serialize_to(std::string& out) const;

  // Strict parser for one JSON document (trailing garbage rejected).
  // Errors come back as InvalidConfig with byte offset + description.
  static core::Result<Json> parse(std::string_view text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

// 17-significant-digit formatting used for every double the service
// serializes: the shortest representation guaranteed to round-trip
// binary64 exactly through a correctly rounded strtod.
std::string format_double(double value);

}  // namespace rsmem::service

#endif  // RSMEM_SERVICE_JSON_H
