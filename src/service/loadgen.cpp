#include "service/loadgen.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>
#include <vector>

#include "analysis/table.h"

namespace rsmem::service {

namespace {

using Clock = std::chrono::steady_clock;

struct Sample {
  double latency_ms = 0.0;
  CacheSource source = CacheSource::kNone;
  bool ok = false;
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(sorted.size()) - 1.0,
                       std::ceil(q * static_cast<double>(sorted.size())) - 1));
  return sorted[index];
}

// The i-th variant of the template: a distinct horizon => a distinct
// canonical cache key, while staying the same chain structure so the
// variants batch together.
Request variant_of(const Request& base, std::size_t i) {
  Request request = base;
  request.id = 0;  // client assigns
  const double scale = 1.0 + 0.5 * static_cast<double>(i);
  if (request.kind == RequestKind::kSweep) {
    request.sweep_hours = base.sweep_hours * scale;
  } else if (request.kind == RequestKind::kBer) {
    request.times_hours = base.times_hours;
    for (double& t : request.times_hours) t *= scale;
  }
  // kMttf has no horizon: every variant shares one key, which still
  // exercises the hit path (distinct is effectively 1).
  return request;
}

}  // namespace

core::Result<LoadgenReport> run_loadgen(const LoadgenConfig& config) {
  if (config.clients == 0 || config.requests_per_client == 0) {
    return core::Status::invalid_config(
        "loadgen needs clients >= 1 and requests >= 1");
  }
  if (config.distinct == 0) {
    return core::Status::invalid_config("loadgen needs distinct >= 1");
  }
  if (config.request.kind != RequestKind::kBer &&
      config.request.kind != RequestKind::kMttf &&
      config.request.kind != RequestKind::kSweep) {
    return core::Status::invalid_config(
        "loadgen template must be an analysis request (ber|mttf|sweep)");
  }

  // Self-host: private Unix socket in /tmp, full wire protocol in-process.
  std::unique_ptr<Server> server;
  Endpoint endpoint = config.endpoint;
  if (config.self_host) {
    ServerConfig server_config;
    server_config.scheduler = config.scheduler;
    server_config.endpoint = Endpoint::unix_socket(
        "/tmp/rsmem-loadgen-" + std::to_string(::getpid()) + ".sock");
    core::Result<std::unique_ptr<Server>> started =
        Server::start(server_config);
    if (!started.ok()) {
      core::Status status = started.status();
      return status.with_context("loadgen self-host");
    }
    server = std::move(started).value();
    endpoint = server->endpoint();
  }

  std::vector<std::vector<Sample>> per_client(config.clients);
  std::atomic<int> connect_failures{0};
  const auto t0 = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(config.clients);
    for (unsigned c = 0; c < config.clients; ++c) {
      threads.emplace_back([&, c] {
        core::Result<Client> client = Client::connect(endpoint);
        if (!client.ok()) {
          connect_failures.fetch_add(1);
          return;
        }
        auto& samples = per_client[c];
        samples.reserve(config.requests_per_client);
        for (std::size_t i = 0; i < config.requests_per_client; ++i) {
          const Request request = variant_of(
              config.request,
              (static_cast<std::size_t>(c) + i) % config.distinct);
          const auto start = Clock::now();
          core::Result<Response> response = client.value().call(request);
          Sample sample;
          sample.latency_ms =
              std::chrono::duration<double, std::milli>(Clock::now() - start)
                  .count();
          if (response.ok() && response.value().status.is_ok()) {
            sample.ok = true;
            sample.source = response.value().cache;
          }
          samples.push_back(sample);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();

  LoadgenReport report;
  report.elapsed_seconds = elapsed;
  std::vector<double> latencies;
  double sum = 0.0, miss_sum = 0.0, hit_sum = 0.0;
  std::size_t miss_count = 0, hit_count = 0;
  for (const auto& samples : per_client) {
    for (const Sample& sample : samples) {
      if (!sample.ok) {
        ++report.errors;
        continue;
      }
      ++report.requests;
      latencies.push_back(sample.latency_ms);
      sum += sample.latency_ms;
      switch (sample.source) {
        case CacheSource::kMiss:
          ++report.misses;
          miss_sum += sample.latency_ms;
          ++miss_count;
          break;
        case CacheSource::kHit:
          ++report.hits;
          hit_sum += sample.latency_ms;
          ++hit_count;
          break;
        case CacheSource::kWait:
          ++report.waits;
          break;
        case CacheSource::kNone:
          break;
      }
    }
  }
  report.errors += static_cast<std::size_t>(connect_failures.load()) *
                   config.requests_per_client;
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    report.mean_ms = sum / static_cast<double>(latencies.size());
    report.p50_ms = percentile(latencies, 0.50);
    report.p90_ms = percentile(latencies, 0.90);
    report.p99_ms = percentile(latencies, 0.99);
    report.max_ms = latencies.back();
  }
  if (report.requests > 0) {
    report.hit_rate = static_cast<double>(report.hits + report.waits) /
                      static_cast<double>(report.requests);
    report.throughput_rps =
        elapsed > 0.0 ? static_cast<double>(report.requests) / elapsed : 0.0;
  }
  if (miss_count > 0) {
    report.miss_mean_ms = miss_sum / static_cast<double>(miss_count);
  }
  if (hit_count > 0) {
    report.hit_mean_ms = hit_sum / static_cast<double>(hit_count);
  }
  if (report.miss_mean_ms > 0.0 && report.hit_mean_ms > 0.0) {
    report.hot_speedup = report.miss_mean_ms / report.hit_mean_ms;
  }

  // Final server-side counters over a fresh connection.
  {
    core::Result<Client> client = Client::connect(endpoint);
    if (client.ok()) {
      Request stats;
      stats.kind = RequestKind::kStats;
      core::Result<Response> response = client.value().call(stats);
      if (response.ok() && response.value().status.is_ok()) {
        report.server_stats_json = response.value().result_json;
      }
    }
  }
  if (server) server->shutdown();
  return report;
}

std::string format_loadgen_report(const LoadgenConfig& config,
                                  const LoadgenReport& report) {
  analysis::Table table{{"metric", "value"}};
  table.add_row({"clients", std::to_string(config.clients)});
  table.add_row({"requests/client",
                 std::to_string(config.requests_per_client)});
  table.add_row({"distinct keys", std::to_string(config.distinct)});
  table.add_row({"completed", std::to_string(report.requests)});
  table.add_row({"errors", std::to_string(report.errors)});
  table.add_row({"elapsed [s]",
                 analysis::format_fixed(report.elapsed_seconds, 3)});
  table.add_row({"throughput [req/s]",
                 analysis::format_fixed(report.throughput_rps, 1)});
  table.add_row({"latency p50 [ms]", analysis::format_fixed(report.p50_ms, 3)});
  table.add_row({"latency p90 [ms]", analysis::format_fixed(report.p90_ms, 3)});
  table.add_row({"latency p99 [ms]", analysis::format_fixed(report.p99_ms, 3)});
  table.add_row({"latency max [ms]", analysis::format_fixed(report.max_ms, 3)});
  table.add_row({"cache hits", std::to_string(report.hits)});
  table.add_row({"cache misses", std::to_string(report.misses)});
  table.add_row({"single-flight waits", std::to_string(report.waits)});
  table.add_row({"hit rate", analysis::format_fixed(report.hit_rate, 3)});
  table.add_row({"miss mean [ms]",
                 analysis::format_fixed(report.miss_mean_ms, 3)});
  table.add_row({"hit mean [ms]",
                 analysis::format_fixed(report.hit_mean_ms, 3)});
  table.add_row({"hot-query speedup",
                 analysis::format_fixed(report.hot_speedup, 1)});
  return table.to_text();
}

std::string loadgen_report_json(const LoadgenConfig& config,
                                const LoadgenReport& report) {
  JsonObject config_json;
  config_json.emplace("clients", static_cast<double>(config.clients));
  config_json.emplace("requests_per_client",
                      static_cast<double>(config.requests_per_client));
  config_json.emplace("distinct", static_cast<double>(config.distinct));
  config_json.emplace("kind", to_string(config.request.kind));
  config_json.emplace("self_host", config.self_host);
  JsonObject latency;
  latency.emplace("mean_ms", report.mean_ms);
  latency.emplace("p50_ms", report.p50_ms);
  latency.emplace("p90_ms", report.p90_ms);
  latency.emplace("p99_ms", report.p99_ms);
  latency.emplace("max_ms", report.max_ms);
  JsonObject cache;
  cache.emplace("hits", report.hits);
  cache.emplace("misses", report.misses);
  cache.emplace("waits", report.waits);
  cache.emplace("hit_rate", report.hit_rate);
  JsonObject object;
  object.emplace("config", std::move(config_json));
  object.emplace("requests", static_cast<double>(report.requests));
  object.emplace("errors", static_cast<double>(report.errors));
  object.emplace("elapsed_seconds", report.elapsed_seconds);
  object.emplace("throughput_rps", report.throughput_rps);
  object.emplace("latency_ms", std::move(latency));
  object.emplace("cache", std::move(cache));
  object.emplace("miss_mean_ms", report.miss_mean_ms);
  object.emplace("hit_mean_ms", report.hit_mean_ms);
  object.emplace("hot_query_speedup", report.hot_speedup);
  if (!report.server_stats_json.empty()) {
    core::Result<Json> server = Json::parse(report.server_stats_json);
    if (server.ok()) object.emplace("server", std::move(server).value());
  }
  return Json(std::move(object)).serialize();
}

}  // namespace rsmem::service
