#include "service/loadgen.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "analysis/table.h"

namespace rsmem::service {

namespace {

using Clock = std::chrono::steady_clock;

struct Sample {
  double latency_ms = 0.0;
  CacheSource source = CacheSource::kNone;
  bool ok = false;
  bool rejected = false;  // typed kOverloaded admission rejection
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(sorted.size()) - 1.0,
                       std::ceil(q * static_cast<double>(sorted.size())) - 1));
  return sorted[index];
}

Sample classify(const Response& response, double latency_ms) {
  Sample sample;
  sample.latency_ms = latency_ms;
  if (response.status.is_ok()) {
    sample.ok = true;
    sample.source = response.cache;
  } else if (response.status.code() == core::StatusCode::kOverloaded) {
    sample.rejected = true;
  }
  return sample;
}

// The i-th variant of the template: a distinct horizon => a distinct
// canonical cache key, while staying the same chain structure so the
// variants batch together.
Request variant_of(const Request& base, std::size_t i) {
  Request request = base;
  request.id = 0;  // client assigns
  const double scale = 1.0 + 0.5 * static_cast<double>(i);
  if (request.kind == RequestKind::kSweep) {
    request.sweep_hours = base.sweep_hours * scale;
  } else if (request.kind == RequestKind::kBer) {
    request.times_hours = base.times_hours;
    for (double& t : request.times_hours) t *= scale;
  }
  // kMttf has no horizon: every variant shares one key, which still
  // exercises the hit path (distinct is effectively 1).
  return request;
}

void run_closed_loop_client(Client& client, const LoadgenConfig& config,
                            unsigned c, std::vector<Sample>& samples,
                            std::atomic<std::size_t>& sent_total) {
  samples.reserve(config.requests_per_client);
  for (std::size_t i = 0; i < config.requests_per_client; ++i) {
    const Request request = variant_of(
        config.request, (static_cast<std::size_t>(c) + i) % config.distinct);
    const auto start = Clock::now();
    core::Result<Response> response = client.call(request);
    sent_total.fetch_add(1);
    const double latency_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    if (response.ok()) {
      samples.push_back(classify(response.value(), latency_ms));
    } else {
      Sample failed;
      failed.latency_ms = latency_ms;
      samples.push_back(failed);
    }
  }
}

// One open-loop connection: a sender thread fires requests at their
// scheduled arrival times and never waits for responses; the receiver
// (the calling thread) drains completions, which a sharded server may
// deliver out of order. Send times are keyed by request id under a mutex
// and recorded BEFORE the frame goes out, so a response can never race
// its own bookkeeping. The sender finishes with a sentinel ping: once the
// receiver has seen it, `sent_final` is the exact number of data
// responses still owed, so the receiver never blocks on a frame that is
// not coming.
void run_open_loop_client(Client& client, const LoadgenConfig& config,
                          unsigned c, Clock::time_point t0,
                          std::vector<Sample>& samples,
                          std::atomic<std::size_t>& sent_total) {
  const std::uint64_t sentinel_id =
      static_cast<std::uint64_t>(config.requests_per_client) + 1;
  std::mutex mutex;
  std::unordered_map<std::uint64_t, Clock::time_point> in_flight;
  std::atomic<std::size_t> sent_final{0};

  std::thread sender([&] {
    std::size_t sent = 0;
    for (std::size_t i = 0; i < config.requests_per_client; ++i) {
      if (config.arrival_rate_rps > 0.0) {
        // Arrival j = i * clients + c of the aggregate stream is due at
        // t0 + j / rate: interleaving clients keeps the global rate.
        const double j =
            static_cast<double>(i) * config.clients + static_cast<double>(c);
        std::this_thread::sleep_until(
            t0 + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(j /
                                                   config.arrival_rate_rps)));
      }
      Request request = variant_of(
          config.request, (static_cast<std::size_t>(c) + i) % config.distinct);
      request.id = static_cast<std::uint64_t>(i) + 1;
      {
        std::unique_lock<std::mutex> lock(mutex);
        in_flight.emplace(request.id, Clock::now());
      }
      core::Result<std::uint64_t> sent_id = client.send(std::move(request));
      if (!sent_id.ok()) {
        std::unique_lock<std::mutex> lock(mutex);
        in_flight.erase(static_cast<std::uint64_t>(i) + 1);
        break;  // transport down; unsent requests become errors below
      }
      ++sent;
    }
    sent_total.fetch_add(sent);
    sent_final.store(sent, std::memory_order_release);
    Request ping;
    ping.kind = RequestKind::kPing;
    ping.id = sentinel_id;
    (void)client.send(std::move(ping));
  });

  samples.reserve(config.requests_per_client);
  std::size_t received = 0;
  bool sentinel_seen = false;
  while (true) {
    if (sentinel_seen &&
        received >= sent_final.load(std::memory_order_acquire)) {
      break;
    }
    core::Result<Response> response = client.receive();
    if (!response.ok()) break;  // transport down: outstanding become errors
    const auto now = Clock::now();
    if (response.value().id == sentinel_id) {
      sentinel_seen = true;
      continue;
    }
    Clock::time_point sent_at;
    {
      std::unique_lock<std::mutex> lock(mutex);
      const auto it = in_flight.find(response.value().id);
      if (it == in_flight.end()) continue;  // not one of ours: ignore
      sent_at = it->second;
      in_flight.erase(it);
    }
    ++received;
    samples.push_back(classify(
        response.value(),
        std::chrono::duration<double, std::milli>(now - sent_at).count()));
  }
  sender.join();
  // Sent-but-unanswered (transport failure) and never-sent requests are
  // both errors; default-constructed samples count as exactly that.
  for (std::size_t i = received; i < config.requests_per_client; ++i) {
    samples.push_back(Sample{});
  }
}

}  // namespace

core::Result<LoadgenReport> run_loadgen(const LoadgenConfig& config) {
  if (config.clients == 0 || config.requests_per_client == 0) {
    return core::Status::invalid_config(
        "loadgen needs clients >= 1 and requests >= 1");
  }
  if (config.distinct == 0) {
    return core::Status::invalid_config("loadgen needs distinct >= 1");
  }
  if (config.request.kind != RequestKind::kBer &&
      config.request.kind != RequestKind::kMttf &&
      config.request.kind != RequestKind::kSweep) {
    return core::Status::invalid_config(
        "loadgen template must be an analysis request (ber|mttf|sweep)");
  }
  if (config.shards == 0) {
    return core::Status::invalid_config("loadgen needs shards >= 1");
  }
  if (config.arrival_rate_rps < 0.0) {
    return core::Status::invalid_config("loadgen rate must be >= 0");
  }

  // Self-host: private Unix socket in /tmp, full wire protocol in-process.
  std::unique_ptr<Server> server;
  Endpoint endpoint = config.endpoint;
  if (config.self_host) {
    ServerConfig server_config;
    server_config.router.shards = config.shards;
    server_config.router.scheduler = config.scheduler;
    server_config.endpoint = Endpoint::unix_socket(
        "/tmp/rsmem-loadgen-" + std::to_string(::getpid()) + ".sock");
    core::Result<std::unique_ptr<Server>> started =
        Server::start(server_config);
    if (!started.ok()) {
      core::Status status = started.status();
      return status.with_context("loadgen self-host");
    }
    server = std::move(started).value();
    endpoint = server->endpoint();
  }

  std::vector<std::vector<Sample>> per_client(config.clients);
  std::atomic<int> connect_failures{0};
  std::atomic<std::size_t> sent_total{0};
  const auto t0 = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(config.clients);
    for (unsigned c = 0; c < config.clients; ++c) {
      threads.emplace_back([&, c] {
        core::Result<Client> client = Client::connect(endpoint);
        if (!client.ok()) {
          connect_failures.fetch_add(1);
          return;
        }
        if (config.open_loop) {
          run_open_loop_client(client.value(), config, c, t0, per_client[c],
                               sent_total);
        } else {
          run_closed_loop_client(client.value(), config, c, per_client[c],
                                 sent_total);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();

  LoadgenReport report;
  report.elapsed_seconds = elapsed;
  std::vector<double> latencies;
  double sum = 0.0, miss_sum = 0.0, hit_sum = 0.0;
  std::size_t miss_count = 0, hit_count = 0;
  for (const auto& samples : per_client) {
    for (const Sample& sample : samples) {
      if (sample.rejected) {
        ++report.rejected;
        continue;
      }
      if (!sample.ok) {
        ++report.errors;
        continue;
      }
      ++report.requests;
      latencies.push_back(sample.latency_ms);
      sum += sample.latency_ms;
      switch (sample.source) {
        case CacheSource::kMiss:
          ++report.misses;
          miss_sum += sample.latency_ms;
          ++miss_count;
          break;
        case CacheSource::kHit:
          ++report.hits;
          hit_sum += sample.latency_ms;
          ++hit_count;
          break;
        case CacheSource::kWait:
          ++report.waits;
          break;
        case CacheSource::kNone:
          break;
      }
    }
  }
  report.errors += static_cast<std::size_t>(connect_failures.load()) *
                   config.requests_per_client;
  report.offered_rps =
      elapsed > 0.0 ? static_cast<double>(sent_total.load()) / elapsed : 0.0;
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    report.mean_ms = sum / static_cast<double>(latencies.size());
    report.p50_ms = percentile(latencies, 0.50);
    report.p90_ms = percentile(latencies, 0.90);
    report.p99_ms = percentile(latencies, 0.99);
    report.max_ms = latencies.back();
  }
  if (report.requests > 0) {
    report.hit_rate = static_cast<double>(report.hits + report.waits) /
                      static_cast<double>(report.requests);
    report.throughput_rps =
        elapsed > 0.0 ? static_cast<double>(report.requests) / elapsed : 0.0;
  }
  if (miss_count > 0) {
    report.miss_mean_ms = miss_sum / static_cast<double>(miss_count);
  }
  if (hit_count > 0) {
    report.hit_mean_ms = hit_sum / static_cast<double>(hit_count);
  }
  if (report.miss_mean_ms > 0.0 && report.hit_mean_ms > 0.0) {
    report.hot_speedup = report.miss_mean_ms / report.hit_mean_ms;
  }

  // Final server-side counters over a fresh connection.
  {
    core::Result<Client> client = Client::connect(endpoint);
    if (client.ok()) {
      Request stats;
      stats.kind = RequestKind::kStats;
      core::Result<Response> response = client.value().call(stats);
      if (response.ok() && response.value().status.is_ok()) {
        report.server_stats_json = response.value().result_json;
      }
    }
  }
  if (server) server->shutdown();
  return report;
}

std::string format_loadgen_report(const LoadgenConfig& config,
                                  const LoadgenReport& report) {
  analysis::Table table{{"metric", "value"}};
  table.add_row({"mode", config.open_loop ? "open-loop" : "closed-loop"});
  table.add_row({"shards", std::to_string(config.shards)});
  table.add_row({"clients", std::to_string(config.clients)});
  table.add_row({"requests/client",
                 std::to_string(config.requests_per_client)});
  table.add_row({"distinct keys", std::to_string(config.distinct)});
  table.add_row({"completed", std::to_string(report.requests)});
  table.add_row({"rejected (overload)", std::to_string(report.rejected)});
  table.add_row({"errors", std::to_string(report.errors)});
  table.add_row({"elapsed [s]",
                 analysis::format_fixed(report.elapsed_seconds, 3)});
  table.add_row({"offered [req/s]",
                 analysis::format_fixed(report.offered_rps, 1)});
  table.add_row({"throughput [req/s]",
                 analysis::format_fixed(report.throughput_rps, 1)});
  table.add_row({"latency p50 [ms]", analysis::format_fixed(report.p50_ms, 3)});
  table.add_row({"latency p90 [ms]", analysis::format_fixed(report.p90_ms, 3)});
  table.add_row({"latency p99 [ms]", analysis::format_fixed(report.p99_ms, 3)});
  table.add_row({"latency max [ms]", analysis::format_fixed(report.max_ms, 3)});
  table.add_row({"cache hits", std::to_string(report.hits)});
  table.add_row({"cache misses", std::to_string(report.misses)});
  table.add_row({"single-flight waits", std::to_string(report.waits)});
  table.add_row({"hit rate", analysis::format_fixed(report.hit_rate, 3)});
  table.add_row({"miss mean [ms]",
                 analysis::format_fixed(report.miss_mean_ms, 3)});
  table.add_row({"hit mean [ms]",
                 analysis::format_fixed(report.hit_mean_ms, 3)});
  table.add_row({"hot-query speedup",
                 analysis::format_fixed(report.hot_speedup, 1)});
  return table.to_text();
}

std::string loadgen_report_json(const LoadgenConfig& config,
                                const LoadgenReport& report) {
  JsonObject config_json;
  config_json.emplace("clients", static_cast<double>(config.clients));
  config_json.emplace("requests_per_client",
                      static_cast<double>(config.requests_per_client));
  config_json.emplace("distinct", static_cast<double>(config.distinct));
  config_json.emplace("kind", to_string(config.request.kind));
  config_json.emplace("self_host", config.self_host);
  config_json.emplace("shards", static_cast<double>(config.shards));
  config_json.emplace("open_loop", config.open_loop);
  config_json.emplace("arrival_rate_rps", config.arrival_rate_rps);
  JsonObject latency;
  latency.emplace("mean_ms", report.mean_ms);
  latency.emplace("p50_ms", report.p50_ms);
  latency.emplace("p90_ms", report.p90_ms);
  latency.emplace("p99_ms", report.p99_ms);
  latency.emplace("max_ms", report.max_ms);
  JsonObject cache;
  cache.emplace("hits", report.hits);
  cache.emplace("misses", report.misses);
  cache.emplace("waits", report.waits);
  cache.emplace("hit_rate", report.hit_rate);
  JsonObject object;
  object.emplace("config", std::move(config_json));
  object.emplace("requests", static_cast<double>(report.requests));
  object.emplace("rejected", static_cast<double>(report.rejected));
  object.emplace("errors", static_cast<double>(report.errors));
  object.emplace("elapsed_seconds", report.elapsed_seconds);
  object.emplace("offered_rps", report.offered_rps);
  object.emplace("throughput_rps", report.throughput_rps);
  object.emplace("latency_ms", std::move(latency));
  object.emplace("cache", std::move(cache));
  object.emplace("miss_mean_ms", report.miss_mean_ms);
  object.emplace("hit_mean_ms", report.hit_mean_ms);
  object.emplace("hot_query_speedup", report.hot_speedup);
  if (!report.server_stats_json.empty()) {
    core::Result<Json> server = Json::parse(report.server_stats_json);
    if (server.ok()) object.emplace("server", std::move(server).value());
  }
  return Json(std::move(object)).serialize();
}

core::Result<std::vector<ShardScalingPoint>> run_shard_scaling(
    const LoadgenConfig& base, const std::vector<unsigned>& shard_counts) {
  if (shard_counts.empty()) {
    return core::Status::invalid_config(
        "shard scaling needs at least one shard count");
  }
  std::vector<ShardScalingPoint> points;
  points.reserve(shard_counts.size());
  for (unsigned shards : shard_counts) {
    if (shards == 0) {
      return core::Status::invalid_config("shard counts must be >= 1");
    }
    LoadgenConfig config = base;
    config.self_host = true;  // each point needs its own server
    config.open_loop = true;  // measure capacity, not client round-trips
    config.shards = shards;
    core::Result<LoadgenReport> report = run_loadgen(config);
    if (!report.ok()) {
      core::Status status = report.status();
      return status.with_context("shard scaling at " +
                                 std::to_string(shards) + " shards");
    }
    points.push_back(ShardScalingPoint{shards, std::move(report).value()});
  }
  return points;
}

std::string format_shard_scaling(
    const std::vector<ShardScalingPoint>& points) {
  analysis::Table table{{"shards", "throughput [req/s]", "p50 [ms]",
                         "p99 [ms]", "rejected", "errors", "speedup"}};
  const double base_rps =
      points.empty() ? 0.0 : points.front().report.throughput_rps;
  for (const ShardScalingPoint& point : points) {
    const double speedup =
        base_rps > 0.0 ? point.report.throughput_rps / base_rps : 0.0;
    table.add_row({std::to_string(point.shards),
                   analysis::format_fixed(point.report.throughput_rps, 1),
                   analysis::format_fixed(point.report.p50_ms, 3),
                   analysis::format_fixed(point.report.p99_ms, 3),
                   std::to_string(point.report.rejected),
                   std::to_string(point.report.errors),
                   analysis::format_fixed(speedup, 2)});
  }
  return table.to_text();
}

Json shard_scaling_json(const std::vector<ShardScalingPoint>& points) {
  const double base_rps =
      points.empty() ? 0.0 : points.front().report.throughput_rps;
  JsonArray entries;
  entries.reserve(points.size());
  for (const ShardScalingPoint& point : points) {
    JsonObject entry;
    entry.emplace("shards", static_cast<double>(point.shards));
    entry.emplace("requests", static_cast<double>(point.report.requests));
    entry.emplace("rejected", static_cast<double>(point.report.rejected));
    entry.emplace("errors", static_cast<double>(point.report.errors));
    entry.emplace("offered_rps", point.report.offered_rps);
    entry.emplace("throughput_rps", point.report.throughput_rps);
    entry.emplace("p50_ms", point.report.p50_ms);
    entry.emplace("p99_ms", point.report.p99_ms);
    entry.emplace("speedup_vs_1_shard",
                  base_rps > 0.0 ? point.report.throughput_rps / base_rps
                                 : 0.0);
    entries.push_back(Json(std::move(entry)));
  }
  JsonObject object;
  object.emplace("cores", static_cast<double>(
                              std::thread::hardware_concurrency()));
  object.emplace("queue_backend", std::string(kQueueBackendName));
  object.emplace("points", Json(std::move(entries)));
  return Json(std::move(object));
}

}  // namespace rsmem::service
