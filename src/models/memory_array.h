// Whole-memory (array-level) metrics.
//
// The paper's chains track ONE codeword and note that "the extension by
// considering the whole memory is straightforward". This module is that
// extension: an SSMM stores `words` independent codewords (fault processes
// are per-cell, hence independent across words), so array-level figures
// follow from the per-word fail probability p(t):
//     R_array(t)          = (1 - p)^W          (no word lost)
//     E[failed words](t)  = W * p
//     P(data loss)        = 1 - (1 - p)^W
// plus the array MTTDL obtained by integrating R_array over the word-level
// chain solution.
#ifndef RSMEM_MODELS_MEMORY_ARRAY_H
#define RSMEM_MODELS_MEMORY_ARRAY_H

#include <cstddef>
#include <span>
#include <vector>

#include "models/ber.h"

namespace rsmem::models {

// Probability that none of `words` i.i.d. codewords has failed, given the
// per-word fail probability. Computed in log space so W ~ 1e9 words with
// tiny p stay accurate. Throws std::invalid_argument for p outside [0,1].
double array_survival(double word_fail_probability, std::size_t words);

// 1 - array_survival, accurate for tiny p*W via expm1.
double array_loss_probability(double word_fail_probability,
                              std::size_t words);

double expected_failed_words(double word_fail_probability,
                             std::size_t words);

// Array survival curve from a per-word BER curve.
std::vector<double> array_survival_curve(const BerCurve& word_curve,
                                         std::size_t words);

// Mean time to first data loss of the array (hours): integrates the array
// survival over time by adaptive Simpson on the word-level chain solution.
// `horizon_hours` bounds the integration; the tail beyond it is estimated
// from the final hazard (and is negligible when survival(horizon) ~ 0).
double array_mttdl_hours(const SimplexParams& params, std::size_t words,
                         double horizon_hours);

}  // namespace rsmem::models

#endif  // RSMEM_MODELS_MEMORY_ARRAY_H
