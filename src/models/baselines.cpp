#include "models/baselines.h"

#include <cmath>
#include <stdexcept>

namespace rsmem::models {

namespace {

void validate(const BaselineParams& params, double t_hours) {
  if (params.word_symbols == 0 || params.m == 0 || params.m > 16) {
    throw std::invalid_argument("baselines: bad word geometry");
  }
  if (params.seu_rate_per_bit_hour < 0.0 ||
      params.erasure_rate_per_symbol_hour < 0.0 || t_hours < 0.0) {
    throw std::invalid_argument("baselines: negative rate or time");
  }
}

}  // namespace

double bit_wrong_probability(const BaselineParams& params, double t_hours) {
  validate(params, t_hours);
  const double lambda = params.seu_rate_per_bit_hour;
  const double le_bit =
      params.erasure_rate_per_symbol_hour / static_cast<double>(params.m);
  // Odd-flip probability of a Poisson flip process.
  const double p_flip = 0.5 * (1.0 - std::exp(-2.0 * lambda * t_hours));
  const double p_stuck = 1.0 - std::exp(-le_bit * t_hours);
  // A stuck bit reads wrong iff the stuck level differs from the data: 1/2.
  return 0.5 * p_stuck + (1.0 - p_stuck) * p_flip;
}

double unprotected_word_fail(const BaselineParams& params, double t_hours) {
  const double q = bit_wrong_probability(params, t_hours);
  const double bits =
      static_cast<double>(params.word_symbols) * params.m;
  return -std::expm1(bits * std::log1p(-q));
}

double tmr_word_fail(const BaselineParams& params, double t_hours) {
  const double q = bit_wrong_probability(params, t_hours);
  const double p_maj = 3.0 * q * q * (1.0 - q) + q * q * q;
  const double bits =
      static_cast<double>(params.word_symbols) * params.m;
  return -std::expm1(bits * std::log1p(-p_maj));
}

double secded_word_fail(const BaselineParams& params, double t_hours,
                        unsigned codeword_bits) {
  if (codeword_bits < 2) {
    throw std::invalid_argument("secded_word_fail: need >= 2 coded bits");
  }
  const double q = bit_wrong_probability(params, t_hours);
  const double n = static_cast<double>(codeword_bits);
  const double p0 = std::exp(n * std::log1p(-q));
  const double p1 = n * q * std::exp((n - 1.0) * std::log1p(-q));
  return std::max(0.0, 1.0 - p0 - p1);
}

}  // namespace rsmem::models
