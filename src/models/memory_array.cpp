#include "models/memory_array.h"

#include <cmath>
#include <stdexcept>

#include "markov/uniformization.h"

namespace rsmem::models {

namespace {

// Accepts tiny numerical overshoot from the chain solvers (probabilities
// like 1 + 1e-15) and clamps it; anything worse is a caller bug.
double check_probability(double p) {
  constexpr double kSlack = 1e-9;
  if (!(p >= -kSlack && p <= 1.0 + kSlack)) {
    throw std::invalid_argument("memory_array: probability outside [0,1]");
  }
  return std::min(std::max(p, 0.0), 1.0);
}

}  // namespace

double array_survival(double word_fail_probability, std::size_t words) {
  word_fail_probability = check_probability(word_fail_probability);
  if (word_fail_probability >= 1.0) return words == 0 ? 1.0 : 0.0;
  // (1-p)^W = exp(W * log1p(-p)): stable for tiny p and astronomical W.
  return std::exp(static_cast<double>(words) *
                  std::log1p(-word_fail_probability));
}

double array_loss_probability(double word_fail_probability,
                              std::size_t words) {
  word_fail_probability = check_probability(word_fail_probability);
  if (word_fail_probability >= 1.0) return words == 0 ? 0.0 : 1.0;
  return -std::expm1(static_cast<double>(words) *
                     std::log1p(-word_fail_probability));
}

double expected_failed_words(double word_fail_probability,
                             std::size_t words) {
  word_fail_probability = check_probability(word_fail_probability);
  return static_cast<double>(words) * word_fail_probability;
}

std::vector<double> array_survival_curve(const BerCurve& word_curve,
                                         std::size_t words) {
  std::vector<double> out;
  out.reserve(word_curve.fail_probability.size());
  for (const double p : word_curve.fail_probability) {
    out.push_back(array_survival(p, words));
  }
  return out;
}

double array_mttdl_hours(const SimplexParams& params, std::size_t words,
                         double horizon_hours) {
  if (horizon_hours <= 0.0) {
    throw std::invalid_argument("array_mttdl_hours: horizon must be > 0");
  }
  const markov::StateSpace space = SimplexModel{params}.build();
  if (!space.contains(SimplexModel::fail_state())) {
    throw std::domain_error("array_mttdl_hours: Fail unreachable");
  }
  const std::size_t fail = space.index_of(SimplexModel::fail_state());
  const markov::UniformizationSolver solver;

  // Composite-Simpson integration of R_array(t) on a fixed fine grid; the
  // survival curve is smooth and monotone, so 400 panels are ample.
  constexpr std::size_t kPanels = 400;  // even number of sub-intervals
  std::vector<double> times(kPanels + 1);
  for (std::size_t i = 0; i <= kPanels; ++i) {
    times[i] = horizon_hours * static_cast<double>(i) /
               static_cast<double>(kPanels);
  }
  const std::vector<double> p_fail =
      solver.occupancy_curve(space.chain, fail, times);

  const double h = horizon_hours / static_cast<double>(kPanels);
  double integral = 0.0;
  for (std::size_t i = 0; i + 2 <= kPanels; i += 2) {
    const double f0 = array_survival(p_fail[i], words);
    const double f1 = array_survival(p_fail[i + 1], words);
    const double f2 = array_survival(p_fail[i + 2], words);
    integral += h / 3.0 * (f0 + 4.0 * f1 + f2);
  }

  // Exponential-tail estimate beyond the horizon from the terminal hazard.
  const double s_end = array_survival(p_fail[kPanels], words);
  if (s_end > 0.0) {
    const double s_prev = array_survival(p_fail[kPanels - 1], words);
    if (s_prev > s_end) {
      const double hazard = std::log(s_prev / s_end) / h;
      integral += s_end / hazard;
    } else {
      // Survival flat at the horizon (e.g. all mass already absorbed or no
      // decay measurable): cannot estimate the tail reliably.
      throw std::domain_error(
          "array_mttdl_hours: survival not decaying at the horizon; "
          "increase horizon_hours");
    }
  }
  return integral;
}

}  // namespace rsmem::models
