#include "models/sparing_model.h"

#include <algorithm>
#include <stdexcept>

#include "markov/absorption.h"
#include "markov/uniformization.h"

namespace rsmem::models {

using markov::PackedState;

namespace {
constexpr PackedState kDown = ~PackedState{0};
}

SparingModel::SparingModel(const SparingParams& params) : params_(params) {
  if (params_.active_modules == 0) {
    throw std::invalid_argument("SparingModel: need at least one module");
  }
  if (params_.module_fail_rate_per_hour < 0.0) {
    throw std::invalid_argument("SparingModel: negative failure rate");
  }
  if (params_.coverage < 0.0 || params_.coverage > 1.0) {
    throw std::invalid_argument("SparingModel: coverage outside [0,1]");
  }
  if (params_.spare_ageing_fraction < 0.0 ||
      params_.spare_ageing_fraction > 1.0) {
    throw std::invalid_argument(
        "SparingModel: spare_ageing_fraction outside [0,1]");
  }
}

PackedState SparingModel::pack(unsigned spares_left) { return spares_left; }
unsigned SparingModel::spares_left_of(PackedState s) {
  return static_cast<unsigned>(s);
}
PackedState SparingModel::down_state() { return kDown; }
bool SparingModel::is_down(PackedState s) { return s == kDown; }

PackedState SparingModel::initial_state() const {
  return pack(params_.spares);
}

void SparingModel::for_each_transition(
    PackedState state, const markov::TransitionSink& emit) const {
  if (is_down(state)) return;
  const unsigned spares_left = spares_left_of(state);
  const double lambda = params_.module_fail_rate_per_hour;
  if (lambda <= 0.0) return;

  const double active_rate =
      static_cast<double>(params_.active_modules) * lambda;
  if (spares_left > 0) {
    // Active failure, covered: consume one spare.
    emit(active_rate * params_.coverage, pack(spares_left - 1));
    // Active failure, uncovered: system lost.
    if (params_.coverage < 1.0) {
      emit(active_rate * (1.0 - params_.coverage), kDown);
    }
    // Hot spare dies in the pool (always a covered, silent loss).
    const double pool_rate = static_cast<double>(spares_left) * lambda *
                             params_.spare_ageing_fraction;
    if (pool_rate > 0.0) emit(pool_rate, pack(spares_left - 1));
  } else {
    // No spare left: any further active failure is fatal.
    emit(active_rate, kDown);
  }
}

markov::StateSpace SparingModel::build() const {
  return markov::build_state_space(*this);
}

double SparingModel::reliability_at(double t_hours) const {
  const markov::StateSpace space = build();
  if (!space.contains(kDown)) return 1.0;  // zero failure rate
  const markov::UniformizationSolver solver;
  const std::vector<double> pi = solver.solve(space.chain, t_hours);
  // Clamp sub-epsilon round-off so fully-failed systems report exactly 0.
  return std::max(0.0, 1.0 - pi[space.index_of(kDown)]);
}

double SparingModel::mttf_hours() const {
  const markov::StateSpace space = build();
  if (!space.contains(kDown)) {
    throw std::domain_error("SparingModel::mttf_hours: system never fails");
  }
  return markov::analyze_absorption(space.chain).mttf;
}

}  // namespace rsmem::models
