#include "models/ber.h"

#include <stdexcept>

namespace rsmem::models {

double ber_scale(unsigned n, unsigned k, unsigned m) {
  if (k == 0 || k >= n) throw std::invalid_argument("ber_scale: 0 < k < n");
  return static_cast<double>(m) * static_cast<double>(n - k) /
         static_cast<double>(k);
}

BerCurve ber_curve(const markov::StateSpace& space,
                   markov::PackedState fail_packed, double scale,
                   std::span<const double> times_hours,
                   const markov::TransientSolver& solver) {
  BerCurve curve;
  curve.times_hours.assign(times_hours.begin(), times_hours.end());
  if (!space.contains(fail_packed)) {
    // Fail is unreachable (e.g. all rates zero): BER is identically 0.
    curve.fail_probability.assign(times_hours.size(), 0.0);
    curve.ber.assign(times_hours.size(), 0.0);
    return curve;
  }
  const std::size_t fail_index = space.index_of(fail_packed);
  curve.fail_probability =
      solver.occupancy_curve(space.chain, fail_index, times_hours);
  curve.ber.reserve(curve.fail_probability.size());
  for (const double p : curve.fail_probability) {
    curve.ber.push_back(scale * p);
  }
  return curve;
}

BerCurve simplex_ber_curve(const SimplexParams& params,
                           std::span<const double> times_hours,
                           const markov::TransientSolver& solver) {
  const SimplexModel model{params};
  const markov::StateSpace space = model.build();
  return ber_curve(space, SimplexModel::fail_state(),
                   ber_scale(params.n, params.k, params.m), times_hours,
                   solver);
}

BerCurve duplex_ber_curve(const DuplexParams& params,
                          std::span<const double> times_hours,
                          const markov::TransientSolver& solver) {
  const DuplexModel model{params};
  const markov::StateSpace space = model.build();
  return ber_curve(space, DuplexModel::fail_state(),
                   ber_scale(params.n, params.k, params.m), times_hours,
                   solver);
}

BerCurve ber_curve(const markov::StateSpace& space,
                   markov::PackedState fail_packed, double scale,
                   std::span<const double> times_hours,
                   const markov::TransientSolver& solver,
                   markov::SolverWorkspace& ws,
                   const markov::StepPolicy& policy) {
  BerCurve curve;
  curve.times_hours.assign(times_hours.begin(), times_hours.end());
  if (!space.contains(fail_packed)) {
    curve.fail_probability.assign(times_hours.size(), 0.0);
    curve.ber.assign(times_hours.size(), 0.0);
    return curve;
  }
  const std::size_t fail_index = space.index_of(fail_packed);
  curve.fail_probability =
      solver.occupancy_curve(space.chain, fail_index, times_hours, ws, policy);
  curve.ber.reserve(curve.fail_probability.size());
  for (const double p : curve.fail_probability) {
    curve.ber.push_back(scale * p);
  }
  return curve;
}

BerCurve simplex_ber_curve(const SimplexParams& params,
                           std::span<const double> times_hours,
                           const markov::TransientSolver& solver,
                           ChainCache& cache, markov::SolverWorkspace& ws,
                           const markov::StepPolicy& policy) {
  const std::shared_ptr<const markov::StateSpace> space =
      cache.simplex(params);
  return ber_curve(*space, SimplexModel::fail_state(),
                   ber_scale(params.n, params.k, params.m), times_hours,
                   solver, ws, policy);
}

BerCurve duplex_ber_curve(const DuplexParams& params,
                          std::span<const double> times_hours,
                          const markov::TransientSolver& solver,
                          ChainCache& cache, markov::SolverWorkspace& ws,
                          const markov::StepPolicy& policy) {
  const std::shared_ptr<const markov::StateSpace> space = cache.duplex(params);
  return ber_curve(*space, DuplexModel::fail_state(),
                   ber_scale(params.n, params.k, params.m), times_hours,
                   solver, ws, policy);
}

std::vector<double> time_grid_hours(double t_end_hours, std::size_t points) {
  if (points < 2 || t_end_hours <= 0.0) {
    throw std::invalid_argument("time_grid_hours: need >=2 points, t_end>0");
  }
  std::vector<double> grid(points);
  for (std::size_t i = 0; i < points; ++i) {
    grid[i] = t_end_hours * static_cast<double>(i) /
              static_cast<double>(points - 1);
  }
  return grid;
}

}  // namespace rsmem::models
