#include "models/duplex_model.h"

#include <stdexcept>

namespace rsmem::models {

using markov::PackedState;

namespace {
constexpr PackedState kFail = ~PackedState{0};
constexpr unsigned kFieldBits = 10;  // supports n up to 1023 per component
constexpr PackedState kFieldMask = (PackedState{1} << kFieldBits) - 1;
}  // namespace

DuplexModel::DuplexModel(const DuplexParams& params) : params_(params) {
  if (params_.k == 0 || params_.k >= params_.n) {
    throw std::invalid_argument("DuplexModel: require 0 < k < n");
  }
  if (params_.m < 2 || params_.m > 16 ||
      params_.n > (1u << params_.m) - 1u) {
    throw std::invalid_argument("DuplexModel: require n <= 2^m - 1");
  }
  if (params_.n > kFieldMask) {
    throw std::invalid_argument("DuplexModel: n too large for state packing");
  }
  if (params_.seu_rate_per_bit_hour < 0.0 ||
      params_.erasure_rate_per_symbol_hour < 0.0 ||
      params_.scrub_rate_per_hour < 0.0) {
    throw std::invalid_argument("DuplexModel: rates must be non-negative");
  }
}

PackedState DuplexModel::pack(const DuplexState& s) {
  return static_cast<PackedState>(s.x) |
         (static_cast<PackedState>(s.y) << kFieldBits) |
         (static_cast<PackedState>(s.b) << (2 * kFieldBits)) |
         (static_cast<PackedState>(s.e1) << (3 * kFieldBits)) |
         (static_cast<PackedState>(s.e2) << (4 * kFieldBits)) |
         (static_cast<PackedState>(s.ec) << (5 * kFieldBits));
}

DuplexState DuplexModel::unpack(PackedState p) {
  DuplexState s;
  s.x = static_cast<unsigned>(p & kFieldMask);
  s.y = static_cast<unsigned>((p >> kFieldBits) & kFieldMask);
  s.b = static_cast<unsigned>((p >> (2 * kFieldBits)) & kFieldMask);
  s.e1 = static_cast<unsigned>((p >> (3 * kFieldBits)) & kFieldMask);
  s.e2 = static_cast<unsigned>((p >> (4 * kFieldBits)) & kFieldMask);
  s.ec = static_cast<unsigned>((p >> (5 * kFieldBits)) & kFieldMask);
  return s;
}

PackedState DuplexModel::fail_state() { return kFail; }
bool DuplexModel::is_fail(PackedState s) { return s == kFail; }

bool DuplexModel::recoverable(const DuplexState& s) const {
  const unsigned budget = params_.n - params_.k;
  const unsigned word1 = s.x + 2 * (s.b + s.ec + s.e1);
  const unsigned word2 = s.x + 2 * (s.b + s.ec + s.e2);
  if (params_.fail_criterion == FailCriterion::kAnyWordUnrecoverable) {
    return word1 <= budget && word2 <= budget;
  }
  return word1 <= budget || word2 <= budget;
}

PackedState DuplexModel::initial_state() const { return pack(DuplexState{}); }

void DuplexModel::for_each_transition(
    PackedState state, const markov::TransitionSink& emit) const {
  if (is_fail(state)) return;  // absorbing

  const DuplexState s = unpack(state);
  const double lambda_bits =
      static_cast<double>(params_.m) * params_.seu_rate_per_bit_hour;
  const double lambda_e = params_.erasure_rate_per_symbol_hour;
  const double sigma = params_.scrub_rate_per_hour;
  const unsigned untouched = params_.n - s.total_pairs_touched();
  const bool per_symbol =
      params_.convention == RateConvention::kPerPhysicalSymbol;

  const auto target = [this](DuplexState next) -> PackedState {
    return recoverable(next) ? pack(next) : kFail;
  };
  const auto send = [&](double rate, DuplexState next) {
    if (rate > 0.0) emit(rate, target(next));
  };

  if (lambda_e > 0.0) {
    // A: erasure on the clean side of a Y pair -> double erasure.
    if (s.y > 0) {
      DuplexState t = s;
      --t.y;
      ++t.x;
      send(lambda_e * s.y, t);
    }
    // B: erasure on the random-error side of a b pair -> double erasure.
    // Fig. 4 rate lambda_e*b; the text misprints lambda_e*Y (DESIGN.md).
    if (s.b > 0) {
      DuplexState t = s;
      --t.b;
      ++t.x;
      const double count = params_.use_text_rate_for_b
                               ? static_cast<double>(s.y)
                               : static_cast<double>(s.b);
      send(lambda_e * count, t);
    }
    // C: erasure on an untouched pair -> single erasure.
    if (untouched > 0) {
      DuplexState t = s;
      ++t.y;
      const double scale = per_symbol ? 2.0 : 1.0;
      send(scale * lambda_e * untouched, t);
    }
    // D/E: erasure lands on the errored symbol of an e1/e2 pair; the random
    // error is subsumed -> single erasure.
    if (s.e1 > 0) {
      DuplexState t = s;
      --t.e1;
      ++t.y;
      send(lambda_e * s.e1, t);
    }
    if (s.e2 > 0) {
      DuplexState t = s;
      --t.e2;
      ++t.y;
      send(lambda_e * s.e2, t);
    }
    // F: erasure on either side of an ec pair -> erasure + error pair.
    if (s.ec > 0) {
      DuplexState t = s;
      --t.ec;
      ++t.b;
      const double scale = per_symbol ? 2.0 : 1.0;
      send(scale * lambda_e * s.ec, t);
    }
    // G/H: erasure on the clean counterpart of an e1/e2 pair
    // -> erasure + error pair.
    if (s.e1 > 0) {
      DuplexState t = s;
      --t.e1;
      ++t.b;
      send(lambda_e * s.e1, t);
    }
    if (s.e2 > 0) {
      DuplexState t = s;
      --t.e2;
      ++t.b;
      send(lambda_e * s.e2, t);
    }
  }

  if (lambda_bits > 0.0) {
    // I: bit flip on the clean counterpart of a Y pair -> b pair.
    if (s.y > 0) {
      DuplexState t = s;
      --t.y;
      ++t.b;
      send(lambda_bits * s.y, t);
    }
    // L/M: bit flip on word 1 / word 2 of an untouched pair.
    if (untouched > 0) {
      DuplexState t1 = s;
      ++t1.e1;
      send(lambda_bits * untouched, t1);
      DuplexState t2 = s;
      ++t2.e2;
      send(lambda_bits * untouched, t2);
    }
    // N/O: bit flip on the clean counterpart of an e1/e2 pair -> ec pair.
    if (s.e1 > 0) {
      DuplexState t = s;
      --t.e1;
      ++t.ec;
      send(lambda_bits * s.e1, t);
    }
    if (s.e2 > 0) {
      DuplexState t = s;
      --t.e2;
      ++t.ec;
      send(lambda_bits * s.e2, t);
    }
  }

  // Scrubbing: random errors cleaned, permanent faults survive. Each b pair
  // loses its random error and keeps its single-sided erasure (-> Y).
  if (sigma > 0.0 && (s.b + s.e1 + s.e2 + s.ec) > 0) {
    DuplexState t;
    t.x = s.x;
    t.y = s.y + s.b;
    emit(sigma, pack(t));  // scrub target of a recoverable state is recoverable
  }
}

markov::StateSpace DuplexModel::build() const {
  return markov::build_state_space(*this);
}

}  // namespace rsmem::models
