#include "models/chipkill.h"

#include <cmath>
#include <stdexcept>

namespace rsmem::models {

namespace {

void validate(unsigned n, unsigned k, double rate, double t) {
  if (k == 0 || k >= n) {
    throw std::invalid_argument("chipkill: require 0 < k < n");
  }
  if (rate < 0.0 || t < 0.0) {
    throw std::invalid_argument("chipkill: negative rate or time");
  }
}

// Binomial CDF P(X <= budget), X ~ Binom(n, p); stable iterative pmf.
double binom_cdf(unsigned budget, unsigned n, double p) {
  if (p <= 0.0) return 1.0;
  if (p >= 1.0) return budget >= n ? 1.0 : 0.0;
  // pmf(0) via logs to avoid underflow for large n.
  double log_pmf = static_cast<double>(n) * std::log1p(-p);
  double cdf = 0.0;
  double pmf = std::exp(log_pmf);
  for (unsigned j = 0; j <= budget; ++j) {
    cdf += pmf;
    pmf *= static_cast<double>(n - j) / static_cast<double>(j + 1) * p /
           (1.0 - p);
  }
  return std::min(cdf, 1.0);
}

}  // namespace

double chip_fail_probability(double chip_rate_per_hour, double t_hours) {
  if (chip_rate_per_hour < 0.0 || t_hours < 0.0) {
    throw std::invalid_argument("chipkill: negative rate or time");
  }
  return -std::expm1(-chip_rate_per_hour * t_hours);
}

double chipkill_array_survival(unsigned n, unsigned k,
                               double chip_rate_per_hour, double t_hours) {
  validate(n, k, chip_rate_per_hour, t_hours);
  const double p = chip_fail_probability(chip_rate_per_hour, t_hours);
  return binom_cdf(n - k, n, p);
}

double independent_word_array_survival(unsigned n, unsigned k,
                                       double chip_rate_per_hour,
                                       double t_hours, std::size_t words) {
  validate(n, k, chip_rate_per_hour, t_hours);
  const double word_survival =
      chipkill_array_survival(n, k, chip_rate_per_hour, t_hours);
  if (word_survival <= 0.0) return words == 0 ? 1.0 : 0.0;
  return std::exp(static_cast<double>(words) * std::log(word_survival));
}

}  // namespace rsmem::models
