#include "models/detection_model.h"

#include <stdexcept>

namespace rsmem::models {

using markov::PackedState;

namespace {
constexpr unsigned kFieldBits = 16;
constexpr PackedState kFieldMask = (PackedState{1} << kFieldBits) - 1;
}  // namespace

DetectionModel::DetectionModel(const DetectionParams& params)
    : params_(params) {
  if (params_.k == 0 || params_.k >= params_.n) {
    throw std::invalid_argument("DetectionModel: require 0 < k < n");
  }
  if (params_.m < 2 || params_.m > 16 ||
      params_.n > (1u << params_.m) - 1u) {
    throw std::invalid_argument("DetectionModel: require n <= 2^m - 1");
  }
  if (params_.seu_rate_per_bit_hour < 0.0 ||
      params_.erasure_rate_per_symbol_hour < 0.0 ||
      params_.detection_rate_per_hour < 0.0 ||
      params_.scrub_rate_per_hour < 0.0) {
    throw std::invalid_argument("DetectionModel: rates must be non-negative");
  }
}

PackedState DetectionModel::pack(const DetectionState& s) {
  return static_cast<PackedState>(s.eu) |
         (static_cast<PackedState>(s.ed) << kFieldBits) |
         (static_cast<PackedState>(s.re) << (2 * kFieldBits));
}

DetectionState DetectionModel::unpack(PackedState p) {
  DetectionState s;
  s.eu = static_cast<unsigned>(p & kFieldMask);
  s.ed = static_cast<unsigned>((p >> kFieldBits) & kFieldMask);
  s.re = static_cast<unsigned>((p >> (2 * kFieldBits)) & kFieldMask);
  return s;
}

PackedState DetectionModel::initial_state() const {
  return pack(DetectionState{});
}

void DetectionModel::for_each_transition(
    PackedState state, const markov::TransitionSink& emit) const {
  const DetectionState s = unpack(state);
  const double lambda_bits =
      static_cast<double>(params_.m) * params_.seu_rate_per_bit_hour;
  const double lambda_e = params_.erasure_rate_per_symbol_hour;
  const double delta = params_.detection_rate_per_hour;
  const double sigma = params_.scrub_rate_per_hour;
  const unsigned touched = s.eu + s.ed + s.re;
  const unsigned untouched = params_.n - touched;

  // SEU on an untouched symbol.
  if (lambda_bits > 0.0 && untouched > 0) {
    DetectionState t = s;
    ++t.re;
    emit(lambda_bits * untouched, pack(t));
  }
  // Permanent fault on an untouched symbol: arrives UNDETECTED.
  if (lambda_e > 0.0 && untouched > 0) {
    DetectionState t = s;
    ++t.eu;
    emit(lambda_e * untouched, pack(t));
  }
  // Permanent fault on an SEU-hit symbol: the transient damage is subsumed
  // by the (still unlocated) permanent fault.
  if (lambda_e > 0.0 && s.re > 0) {
    DetectionState t = s;
    --t.re;
    ++t.eu;
    emit(lambda_e * s.re, pack(t));
  }
  // Location/detection: an unlocated fault becomes an erasure. This can
  // bring an unrecoverable word BACK into the correctable region (nothing
  // was overwritten while it was unreadable).
  if (delta > 0.0 && s.eu > 0) {
    DetectionState t = s;
    --t.eu;
    ++t.ed;
    emit(delta * s.eu, pack(t));
  }
  // Scrubbing clears transient errors, but only if the scrub's own decode
  // succeeds; from an unrecoverable state it rewrites nothing.
  if (sigma > 0.0 && s.re > 0 && recoverable(s)) {
    DetectionState t = s;
    t.re = 0;
    emit(sigma, pack(t));
  }
}

markov::StateSpace DetectionModel::build() const {
  return markov::build_state_space(*this);
}

std::vector<double> DetectionModel::fail_probability(
    const markov::StateSpace& space, std::span<const double> times_hours,
    const markov::TransientSolver& solver) const {
  std::vector<double> result;
  result.reserve(times_hours.size());
  std::vector<double> pi = space.chain.initial_distribution();
  double t_prev = 0.0;
  for (const double t : times_hours) {
    if (t < t_prev) {
      throw std::invalid_argument(
          "DetectionModel::fail_probability: times must be sorted");
    }
    if (t > t_prev) {
      pi = solver.solve(space.chain, pi, t - t_prev);
      t_prev = t;
    }
    double unrecoverable_mass = 0.0;
    for (std::size_t i = 0; i < space.size(); ++i) {
      if (!recoverable_packed(space.states[i])) unrecoverable_mass += pi[i];
    }
    result.push_back(unrecoverable_mass);
  }
  return result;
}

}  // namespace rsmem::models
