#include "models/chain_cache.h"

#include <optional>
#include <stdexcept>

#include "linalg/csr_matrix.h"

namespace rsmem::models {

namespace {

bool same_params(const SimplexParams& a, const SimplexParams& b) {
  return a.n == b.n && a.k == b.k && a.m == b.m &&
         a.seu_rate_per_bit_hour == b.seu_rate_per_bit_hour &&
         a.erasure_rate_per_symbol_hour == b.erasure_rate_per_symbol_hour &&
         a.scrub_rate_per_hour == b.scrub_rate_per_hour &&
         a.mbu_probability == b.mbu_probability &&
         a.mbu_span_bits == b.mbu_span_bits;
}

bool same_params(const DuplexParams& a, const DuplexParams& b) {
  return a.n == b.n && a.k == b.k && a.m == b.m &&
         a.seu_rate_per_bit_hour == b.seu_rate_per_bit_hour &&
         a.erasure_rate_per_symbol_hour == b.erasure_rate_per_symbol_hour &&
         a.scrub_rate_per_hour == b.scrub_rate_per_hour &&
         a.convention == b.convention &&
         a.fail_criterion == b.fail_criterion &&
         a.use_text_rate_for_b == b.use_text_rate_for_b;
}

// Records the enumeration of a freshly built space: per state, the dense
// destination index of every emission the builder kept (nonzero rate, not
// a self-loop), in emission order.
void capture_structure(const markov::TransitionModel& model,
                       const markov::StateSpace& space,
                       std::vector<std::uint32_t>& dest_offsets,
                       std::vector<std::uint32_t>& dests) {
  dest_offsets.clear();
  dests.clear();
  dest_offsets.reserve(space.size() + 1);
  dest_offsets.push_back(0);
  for (std::size_t i = 0; i < space.size(); ++i) {
    const markov::PackedState from_state = space.states[i];
    model.for_each_transition(
        from_state, [&](double rate, markov::PackedState to) {
          if (rate == 0.0 || to == from_state) return;
          dests.push_back(
              static_cast<std::uint32_t>(space.index.at(to)));
        });
    dest_offsets.push_back(static_cast<std::uint32_t>(dests.size()));
  }
}

// Rebuilds the generator over a recorded enumeration. Returns nullopt when
// the model's emissions no longer line up with the recording (the caller
// then rebuilds from scratch). The triplet sequence -- and with it the
// CsrMatrix and Ctmc -- matches a direct build_state_space bit for bit.
template <typename Structure>
std::optional<markov::StateSpace> replay_structure(
    const markov::TransitionModel& model, const Structure& st) {
  if (st.states.empty() ||
      model.initial_state() != st.states[st.initial_index]) {
    return std::nullopt;
  }
  std::vector<linalg::Triplet> triplets;
  triplets.reserve(st.dests.size() + st.states.size());
  bool ok = true;
  for (std::size_t from = 0; from < st.states.size(); ++from) {
    const markov::PackedState from_state = st.states[from];
    std::size_t cursor = st.dest_offsets[from];
    const std::size_t end = st.dest_offsets[from + 1];
    double exit_rate = 0.0;
    model.for_each_transition(
        from_state, [&](double rate, markov::PackedState to) {
          if (rate < 0.0) {
            throw std::invalid_argument(
                "build_state_space: negative transition rate");
          }
          if (rate == 0.0 || to == from_state) return;
          if (!ok) return;
          if (cursor >= end || st.states[st.dests[cursor]] != to) {
            ok = false;
            return;
          }
          triplets.push_back({from, st.dests[cursor], rate});
          exit_rate += rate;
          ++cursor;
        });
    if (cursor != end) ok = false;
    if (!ok) return std::nullopt;
    if (exit_rate > 0.0) {
      triplets.push_back({from, from, -exit_rate});
    }
  }
  const std::size_t n = st.states.size();
  markov::Ctmc chain{linalg::CsrMatrix(n, n, std::move(triplets)),
                     st.initial_index};
  return markov::StateSpace{st.states, st.index, st.initial_index,
                            std::move(chain)};
}

}  // namespace

std::shared_ptr<const markov::StateSpace> ChainCache::simplex(
    const SimplexParams& params) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return simplex_locked(params);
}

std::shared_ptr<const markov::StateSpace> ChainCache::duplex(
    const DuplexParams& params) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return duplex_locked(params);
}

std::shared_ptr<const markov::StateSpace> ChainCache::simplex_locked(
    const SimplexParams& params) {
  for (const auto& [memo_params, space] : simplex_memo_) {
    if (same_params(memo_params, params)) {
      ++stats_.exact_hits;
      return space;
    }
  }
  const SimplexModel model{params};  // validates params before any caching
  const SimplexStructKey key{params.n,
                             params.k,
                             params.m,
                             params.seu_rate_per_bit_hour > 0.0,
                             params.erasure_rate_per_symbol_hour > 0.0,
                             params.scrub_rate_per_hour > 0.0,
                             params.mbu_probability,
                             params.mbu_span_bits};
  std::shared_ptr<const markov::StateSpace> space;
  for (const auto& [struct_key, st] : simplex_structs_) {
    if (struct_key == key) {
      if (auto replayed = replay_structure(model, st)) {
        ++stats_.replays;
        space = std::make_shared<const markov::StateSpace>(
            std::move(*replayed));
      } else {
        ++stats_.replay_fallbacks;
      }
      break;
    }
  }
  if (!space) {
    ++stats_.builds;
    auto built = std::make_shared<markov::StateSpace>(model.build());
    Structure st;
    st.states = built->states;
    st.index = built->index;
    st.initial_index = built->initial_index;
    capture_structure(model, *built, st.dest_offsets, st.dests);
    std::erase_if(simplex_structs_,
                  [&](const auto& entry) { return entry.first == key; });
    simplex_structs_.emplace_back(key, std::move(st));
    space = std::move(built);
  }
  if (simplex_memo_.size() >= kMaxMemo) {
    simplex_memo_.erase(simplex_memo_.begin());
  }
  simplex_memo_.emplace_back(params, space);
  return space;
}

std::shared_ptr<const markov::StateSpace> ChainCache::duplex_locked(
    const DuplexParams& params) {
  for (const auto& [memo_params, space] : duplex_memo_) {
    if (same_params(memo_params, params)) {
      ++stats_.exact_hits;
      return space;
    }
  }
  const DuplexModel model{params};
  const DuplexStructKey key{params.n,
                            params.k,
                            params.m,
                            params.seu_rate_per_bit_hour > 0.0,
                            params.erasure_rate_per_symbol_hour > 0.0,
                            params.scrub_rate_per_hour > 0.0,
                            params.convention,
                            params.fail_criterion,
                            params.use_text_rate_for_b};
  std::shared_ptr<const markov::StateSpace> space;
  for (const auto& [struct_key, st] : duplex_structs_) {
    if (struct_key == key) {
      if (auto replayed = replay_structure(model, st)) {
        ++stats_.replays;
        space = std::make_shared<const markov::StateSpace>(
            std::move(*replayed));
      } else {
        ++stats_.replay_fallbacks;
      }
      break;
    }
  }
  if (!space) {
    ++stats_.builds;
    auto built = std::make_shared<markov::StateSpace>(model.build());
    Structure st;
    st.states = built->states;
    st.index = built->index;
    st.initial_index = built->initial_index;
    capture_structure(model, *built, st.dest_offsets, st.dests);
    std::erase_if(duplex_structs_,
                  [&](const auto& entry) { return entry.first == key; });
    duplex_structs_.emplace_back(key, std::move(st));
    space = std::move(built);
  }
  if (duplex_memo_.size() >= kMaxMemo) {
    duplex_memo_.erase(duplex_memo_.begin());
  }
  duplex_memo_.emplace_back(params, space);
  return space;
}

ChainCache::Stats ChainCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ChainCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  simplex_memo_.clear();
  duplex_memo_.clear();
  simplex_structs_.clear();
  duplex_structs_.clear();
  stats_ = Stats{};
}

ChainCache& global_chain_cache() {
  static ChainCache cache;
  return cache;
}

}  // namespace rsmem::models
