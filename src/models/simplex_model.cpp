#include "models/simplex_model.h"

#include <stdexcept>

namespace rsmem::models {

using markov::PackedState;

namespace {
constexpr PackedState kFail = ~PackedState{0};
}

SimplexModel::SimplexModel(const SimplexParams& params) : params_(params) {
  if (params_.k == 0 || params_.k >= params_.n) {
    throw std::invalid_argument("SimplexModel: require 0 < k < n");
  }
  if (params_.m < 2 || params_.m > 16 ||
      params_.n > (1u << params_.m) - 1u) {
    throw std::invalid_argument("SimplexModel: require n <= 2^m - 1");
  }
  if (params_.seu_rate_per_bit_hour < 0.0 ||
      params_.erasure_rate_per_symbol_hour < 0.0 ||
      params_.scrub_rate_per_hour < 0.0) {
    throw std::invalid_argument("SimplexModel: rates must be non-negative");
  }
  if (params_.mbu_probability < 0.0 || params_.mbu_probability > 1.0) {
    throw std::invalid_argument("SimplexModel: mbu_probability outside [0,1]");
  }
  if (params_.mbu_probability > 0.0 &&
      (params_.mbu_span_bits < 2 || params_.mbu_span_bits > params_.m)) {
    throw std::invalid_argument(
        "SimplexModel: mbu_span_bits must be in [2, m]");
  }
}

PackedState SimplexModel::pack(unsigned er, unsigned re) {
  return static_cast<PackedState>(er) |
         (static_cast<PackedState>(re) << 16);
}

unsigned SimplexModel::erasures_of(PackedState s) {
  return static_cast<unsigned>(s & 0xFFFFu);
}

unsigned SimplexModel::random_errors_of(PackedState s) {
  return static_cast<unsigned>((s >> 16) & 0xFFFFu);
}

PackedState SimplexModel::fail_state() { return kFail; }

bool SimplexModel::is_fail(PackedState s) { return s == kFail; }

PackedState SimplexModel::initial_state() const { return pack(0, 0); }

void SimplexModel::for_each_transition(
    PackedState state, const markov::TransitionSink& emit) const {
  if (is_fail(state)) return;  // absorbing

  const unsigned er = erasures_of(state);
  const unsigned re = random_errors_of(state);
  const unsigned n = params_.n;
  const double lambda = params_.seu_rate_per_bit_hour;
  const double lambda_e = params_.erasure_rate_per_symbol_hour;
  const double sigma = params_.scrub_rate_per_hour;
  const unsigned untouched = n - er - re;

  const auto target = [this](unsigned er2, unsigned re2) -> PackedState {
    return recoverable(er2, re2) ? pack(er2, re2) : kFail;
  };

  // SEU arrivals, total rate n*m*lambda over the word. A fraction
  // mbu_probability are bursts; of those, q cross a symbol boundary and
  // corrupt two ADJACENT symbols (q = crossing starts / possible starts).
  if (lambda > 0.0) {
    const double n_d = static_cast<double>(n);
    const double total_bits = n_d * static_cast<double>(params_.m);
    const double arrivals = total_bits * lambda;
    const double p_mbu = params_.mbu_probability;
    double q_cross = 0.0;
    if (p_mbu > 0.0) {
      const double span = static_cast<double>(params_.mbu_span_bits);
      q_cross = (n_d - 1.0) * (span - 1.0) / (total_bits - span + 1.0);
    }
    // Single-symbol-corrupting arrivals (plain flips + in-symbol bursts):
    // a uniformly chosen symbol is untouched with probability u/n.
    const double single_rate = arrivals * (1.0 - p_mbu * q_cross);
    if (untouched > 0 && single_rate > 0.0) {
      emit(single_rate * untouched / n_d, target(er, re + 1));
    }
    // Boundary-crossing bursts hit an adjacent symbol pair; mean-field
    // placement over the u untouched symbols.
    const double pair_rate = arrivals * p_mbu * q_cross;
    if (pair_rate > 0.0 && untouched > 0) {
      const double both_clean = static_cast<double>(untouched) *
                                (static_cast<double>(untouched) - 1.0) /
                                (n_d * (n_d - 1.0));
      const double one_clean = 2.0 * static_cast<double>(untouched) *
                               (n_d - static_cast<double>(untouched)) /
                               (n_d * (n_d - 1.0));
      if (both_clean > 0.0) {
        emit(pair_rate * both_clean, target(er, re + 2));
      }
      if (one_clean > 0.0) {
        emit(pair_rate * one_clean, target(er, re + 1));
      }
    }
  }
  // Erasure (located permanent fault) on an untouched symbol.
  if (lambda_e > 0.0 && untouched > 0) {
    emit(lambda_e * untouched, target(er + 1, re));
  }
  // Erasure on a symbol already hit by a random error: the random error is
  // subsumed by the (located) erasure.
  if (lambda_e > 0.0 && re > 0) {
    emit(lambda_e * re, target(er + 1, re - 1));
  }
  // Scrubbing rewrites a corrected word: clears random errors, keeps
  // permanent faults. From any recoverable state scrubbing succeeds.
  if (sigma > 0.0 && re > 0) {
    emit(sigma, pack(er, 0));
  }
}

markov::StateSpace SimplexModel::build() const {
  return markov::build_state_space(*this);
}

}  // namespace rsmem::models
