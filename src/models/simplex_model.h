// CTMC model of the RS-coded SIMPLEX memory system (paper Section 5, Fig. 2;
// originally introduced in reference [7] of the paper).
//
// One codeword of an RS(n,k) code over GF(2^m) is tracked. A state S(er,re)
// counts er erased symbols (located permanent faults) and re symbols hit by
// random errors (SEU bit flips). The word is recoverable while
//     er + 2*re <= n - k;
// any event that would violate the bound moves the chain to the absorbing
// Fail state.
//
// Events and rates (all rates per hour):
//  * SEU on an untouched symbol:    m * lambda * (n - er - re) -> (er, re+1)
//  * erasure on an untouched symbol:      lambda_e * (n - er - re) -> (er+1, re)
//  * erasure on an SEU-hit symbol:        lambda_e * re -> (er+1, re-1)
//  * scrubbing (rate 1/Tsc):              (er, re) -> (er, 0)
// SEUs on already-erased or already-hit symbols do not change the state
// (paper assumptions, Section 4).
#ifndef RSMEM_MODELS_SIMPLEX_MODEL_H
#define RSMEM_MODELS_SIMPLEX_MODEL_H

#include "markov/state_space.h"

namespace rsmem::models {

struct SimplexParams {
  unsigned n = 18;  // codeword symbols
  unsigned k = 16;  // data symbols
  unsigned m = 8;   // bits per symbol

  double seu_rate_per_bit_hour = 0.0;        // lambda
  double erasure_rate_per_symbol_hour = 0.0;  // lambda_e
  double scrub_rate_per_hour = 0.0;           // 1/Tsc; 0 = no scrubbing

  // Multi-bit upset extension (the paper assumes single-bit SEUs): fraction
  // of SEU arrivals that flip a burst of `mbu_span_bits` adjacent bits.
  // Bursts that stay inside one symbol are absorbed exactly like a
  // single-bit flip (RS corrects symbols, not bits); bursts crossing a
  // symbol boundary corrupt TWO adjacent symbols. Symbol adjacency is not
  // part of the state, so pair placement uses the mean-field approximation
  // P(both clean) = u(u-1)/(n(n-1)); the functional injector realizes the
  // exact geometry and bench_mbu compares the two. Requires
  // 2 <= mbu_span_bits <= m when mbu_probability > 0.
  double mbu_probability = 0.0;
  unsigned mbu_span_bits = 2;
};

class SimplexModel final : public markov::TransitionModel {
 public:
  // Throws std::invalid_argument on inconsistent code parameters or
  // negative rates.
  explicit SimplexModel(const SimplexParams& params);

  const SimplexParams& params() const { return params_; }

  // State packing: er in bits [0,16), re in bits [16,32); the Fail state is
  // a dedicated sentinel.
  static markov::PackedState pack(unsigned er, unsigned re);
  static unsigned erasures_of(markov::PackedState s);
  static unsigned random_errors_of(markov::PackedState s);
  static markov::PackedState fail_state();
  static bool is_fail(markov::PackedState s);

  bool recoverable(unsigned er, unsigned re) const {
    return er + 2 * re <= params_.n - params_.k;
  }

  markov::PackedState initial_state() const override;
  void for_each_transition(markov::PackedState state,
                           const markov::TransitionSink& emit) const override;

  // Builds the reachable chain.
  markov::StateSpace build() const;

 private:
  SimplexParams params_;
};

}  // namespace rsmem::models

#endif  // RSMEM_MODELS_SIMPLEX_MODEL_H
