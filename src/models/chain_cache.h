// Memoization of enumerated CTMC state spaces across sweep points.
//
// A rate sweep solves the same model shape at dozens of (lambda, lambda_e,
// sigma) points; the reachable state set depends only on the code geometry
// and on WHICH rates are nonzero, not on their magnitudes. The cache keeps
// one enumeration per such structural key and replays the model's
// transitions over it for each new rate point, skipping BFS discovery and
// hash interning. Exactly repeated parameters short-circuit to a memoized
// StateSpace.
#ifndef RSMEM_MODELS_CHAIN_CACHE_H
#define RSMEM_MODELS_CHAIN_CACHE_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "markov/state_space.h"
#include "models/duplex_model.h"
#include "models/simplex_model.h"

namespace rsmem::models {

class ChainCache {
 public:
  ChainCache() = default;
  ChainCache(const ChainCache&) = delete;
  ChainCache& operator=(const ChainCache&) = delete;

  // Returns the chain for `params`, rebuilding as little as possible:
  //  1. bitwise-equal params: the memoized StateSpace is shared directly;
  //  2. equal structural key (geometry + rate zero-pattern): the cached
  //     enumeration is replayed with the new rates. The replay verifies
  //     every emitted destination against the recorded one and falls back
  //     to a direct build on any mismatch, so a replayed generator is
  //     always bitwise identical to a freshly built one (same triplet
  //     sequence, same accumulation order);
  //  3. otherwise: direct build, capturing the structure for later points.
  // Thread-safe; the returned chain is immutable and may be solved
  // concurrently.
  std::shared_ptr<const markov::StateSpace> simplex(
      const SimplexParams& params);
  std::shared_ptr<const markov::StateSpace> duplex(const DuplexParams& params);

  struct Stats {
    std::uint64_t exact_hits = 0;
    std::uint64_t replays = 0;
    std::uint64_t builds = 0;
    std::uint64_t replay_fallbacks = 0;
  };
  Stats stats() const;
  void clear();

 private:
  // Recorded enumeration: states in BFS discovery order plus, per state,
  // the dense indices of its nonzero non-self transitions in emission
  // order. Replaying for_each_transition over `states` in index order
  // reproduces the builder's exact triplet sequence.
  struct Structure {
    std::vector<markov::PackedState> states;
    std::unordered_map<markov::PackedState, std::size_t> index;
    std::size_t initial_index = 0;
    std::vector<std::uint32_t> dest_offsets;  // per-state [begin, end)
    std::vector<std::uint32_t> dests;
  };
  struct SimplexStructKey {
    unsigned n, k, m;
    bool seu, erasure, scrub;
    double mbu_probability;
    unsigned mbu_span_bits;
    friend bool operator==(const SimplexStructKey&,
                           const SimplexStructKey&) = default;
  };
  struct DuplexStructKey {
    unsigned n, k, m;
    bool seu, erasure, scrub;
    RateConvention convention;
    FailCriterion fail_criterion;
    bool use_text_rate_for_b;
    friend bool operator==(const DuplexStructKey&,
                           const DuplexStructKey&) = default;
  };
  // Exact-parameter memo plus per-structural-key enumerations. Linear
  // scans: the paper's design spaces touch at most a few dozen keys, far
  // below the cost of one transient solve.
  static constexpr std::size_t kMaxMemo = 256;

  std::shared_ptr<const markov::StateSpace> simplex_locked(
      const SimplexParams& params);
  std::shared_ptr<const markov::StateSpace> duplex_locked(
      const DuplexParams& params);

  mutable std::mutex mutex_;
  std::vector<std::pair<SimplexParams, std::shared_ptr<const markov::StateSpace>>>
      simplex_memo_;
  std::vector<std::pair<DuplexParams, std::shared_ptr<const markov::StateSpace>>>
      duplex_memo_;
  std::vector<std::pair<SimplexStructKey, Structure>> simplex_structs_;
  std::vector<std::pair<DuplexStructKey, Structure>> duplex_structs_;
  Stats stats_;
};

// Process-wide cache shared by core::analyze_ber and the sweep engine.
ChainCache& global_chain_cache();

}  // namespace rsmem::models

#endif  // RSMEM_MODELS_CHAIN_CACHE_H
