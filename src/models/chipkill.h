// Chip-granular (correlated) permanent faults in the bit-sliced SSMM.
//
// The paper's reference [6] organizes the SSMM so that chip i supplies
// symbol i of EVERY codeword. A chip failure therefore erases the same
// symbol position array-wide -- the erasure processes of different words
// are perfectly correlated, not independent. Consequences, all closed-form:
//
//   * every word sees the same erasure count, so the ARRAY fails exactly
//     when the (n-k+1)-th chip fails:
//         R_array(t) = P(chips failed <= n-k) = Binom CDF(n-k; n, p(t)),
//     independent of the number of words W;
//   * the independent-word approximation ("the extension by considering
//     the whole memory is straightforward") predicts
//         P_loss ~ 1 - (1 - p_word)^W ~ W * p_word
//     and therefore OVER-predicts the chip-kill array loss by ~W.
//
// Word-level transient (SEU) failures remain independent across words and
// can be combined multiplicatively.
#ifndef RSMEM_MODELS_CHIPKILL_H
#define RSMEM_MODELS_CHIPKILL_H

#include <cstddef>

namespace rsmem::models {

// P(a given chip has failed by t): 1 - exp(-rate * t).
double chip_fail_probability(double chip_rate_per_hour, double t_hours);

// P(array still decodable at t) under chip-granular erasures only:
// Binomial CDF of <= n-k failures among the n symbol chips.
// Throws std::invalid_argument for k >= n or negative rate/time.
double chipkill_array_survival(unsigned n, unsigned k,
                               double chip_rate_per_hour, double t_hours);

// The same quantity under the INDEPENDENT-word approximation with W words
// (each word drawing its own erasures at the same per-symbol rate):
// (1 - p_word)^W with p_word = 1 - Binom CDF(n-k; n, p). Provided for the
// comparison bench; it is exact when faults really are word-local and
// wrong (pessimistic by ~W) when they are chip-granular.
double independent_word_array_survival(unsigned n, unsigned k,
                                       double chip_rate_per_hour,
                                       double t_hours, std::size_t words);

}  // namespace rsmem::models

#endif  // RSMEM_MODELS_CHIPKILL_H
