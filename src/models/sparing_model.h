// CTMC model of MODULAR SPARING (the paper's "dynamic redundancy").
//
// Paper introduction: "Modular sparing has been shown to improve the
// reliability of a memory system by replacing faulty modules or units
// (mostly affected by permanent faults)", and the index terms list Dynamic
// Redundancy. This module provides that system-level substrate: an SSMM
// bank of M active memory modules backed by S spares.
//
// Classic sparing chain. State (failed_spares_used, down):
//  * each ACTIVE module fails at rate lambda_module (use
//    reliability::MilHdbk217Model to derive it from chip physics);
//  * hot spares also age: they fail in the pool at rate
//    spare_ageing_fraction * lambda_module (1.0 = hot, 0.0 = cold);
//  * a failed active module is replaced by a spare with COVERAGE c: with
//    probability 1-c the reconfiguration fails and the system dies
//    (switch/detection escapes);
//  * when no spare is left, the next active-module failure is fatal.
//
// The absorbing Down state gives system reliability R(t) = 1 - P_Down(t)
// and the MTTF via absorption analysis.
#ifndef RSMEM_MODELS_SPARING_MODEL_H
#define RSMEM_MODELS_SPARING_MODEL_H

#include "markov/state_space.h"

namespace rsmem::models {

struct SparingParams {
  unsigned active_modules = 8;   // M
  unsigned spares = 2;           // S
  double module_fail_rate_per_hour = 0.0;  // lambda_module
  double coverage = 1.0;                   // c in [0,1]
  double spare_ageing_fraction = 0.0;      // 0 = cold spares, 1 = hot
};

class SparingModel final : public markov::TransitionModel {
 public:
  explicit SparingModel(const SparingParams& params);

  const SparingParams& params() const { return params_; }

  // State packs the number of spares REMAINING; Down is the fail sentinel.
  static markov::PackedState pack(unsigned spares_left);
  static unsigned spares_left_of(markov::PackedState s);
  static markov::PackedState down_state();
  static bool is_down(markov::PackedState s);

  markov::PackedState initial_state() const override;
  void for_each_transition(markov::PackedState state,
                           const markov::TransitionSink& emit) const override;

  markov::StateSpace build() const;

  // Convenience: R(t) = P(not Down at t) and the system MTTF.
  double reliability_at(double t_hours) const;
  double mttf_hours() const;

 private:
  SparingParams params_;
};

}  // namespace rsmem::models

#endif  // RSMEM_MODELS_SPARING_MODEL_H
