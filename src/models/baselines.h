// Closed-form reliability baselines: the unprotected word and bitwise TMR.
//
// The paper motivates RS coding against "modular redundancy"; these
// baselines make the comparison quantitative. Without scrubbing, every bit
// evolves independently, so exact closed forms exist:
//
//   p_flip(t)   = (1 - exp(-2 lambda t)) / 2     (odd number of SEU flips)
//   p_stuck(t)  = 1 - exp(-(lambda_e / m) t)     (a specific bit got stuck;
//                 permanent faults arrive per SYMBOL and pick one of m bits)
//   q(t)        = p_stuck/2 + (1 - p_stuck) * p_flip
//                 (a stuck bit reads wrong half the time)
//
//   unprotected word of B bits:  P_fail = 1 - (1 - q)^B
//   bitwise TMR of B bits:       per-bit wrong iff >= 2 of 3 copies wrong,
//                                p_maj = 3 q^2 (1-q) + q^3,
//                                P_fail = 1 - (1 - p_maj)^B.
//
// Cross-validated against the functional TmrSystem by Monte-Carlo.
#ifndef RSMEM_MODELS_BASELINES_H
#define RSMEM_MODELS_BASELINES_H

namespace rsmem::models {

struct BaselineParams {
  unsigned word_symbols = 16;  // k
  unsigned m = 8;              // bits per symbol
  double seu_rate_per_bit_hour = 0.0;         // lambda
  double erasure_rate_per_symbol_hour = 0.0;  // lambda_e (per symbol)
};

// Probability that one specific bit of one module reads wrong at time t.
double bit_wrong_probability(const BaselineParams& params, double t_hours);

// P(any of the k*m data bits is wrong) for a single unprotected module.
double unprotected_word_fail(const BaselineParams& params, double t_hours);

// P(bitwise 2-of-3 majority is wrong anywhere in the word).
double tmr_word_fail(const BaselineParams& params, double t_hours);

// SEC-DED word of `codeword_bits` total bits: survives zero or one wrong
// bit, fails (detected or mis-corrected) at >= 2:
//   P_fail = 1 - (1-q)^N - N q (1-q)^(N-1).
// `params.word_symbols * params.m` is ignored here; pass the total coded
// word size explicitly (e.g. 72 for SEC-DED(72,64)).
double secded_word_fail(const BaselineParams& params, double t_hours,
                        unsigned codeword_bits);

}  // namespace rsmem::models

#endif  // RSMEM_MODELS_BASELINES_H
