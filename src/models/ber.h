// Bit Error Rate evaluation of the memory-system Markov chains.
//
// Paper eq. (1):   BER(t) = m * (n-k)/k * P_Fail(t)
// where P_Fail(t) is the transient probability of the absorbing Fail state.
// The same scaling is applied to the simplex and the duplex chain (the
// duplex tracks one codeword pair, whose unrecoverable-state probability
// plays the role of P_S(n) in the paper's formula).
#ifndef RSMEM_MODELS_BER_H
#define RSMEM_MODELS_BER_H

#include <span>
#include <vector>

#include "markov/ctmc.h"
#include "markov/state_space.h"
#include "models/chain_cache.h"
#include "models/duplex_model.h"
#include "models/simplex_model.h"

namespace rsmem::models {

// The paper's BER scale factor m*(n-k)/k. For RS(18,16) over GF(2^8) this is
// exactly 1, so the reported BER equals the word-failure probability.
double ber_scale(unsigned n, unsigned k, unsigned m);

struct BerCurve {
  std::vector<double> times_hours;
  std::vector<double> fail_probability;  // P_Fail(t)
  std::vector<double> ber;               // scaled per eq. (1)
};

// Evaluates P_Fail over `times_hours` (must be sorted ascending) on an
// already-built chain whose fail state is `fail_packed`. If the fail state
// is unreachable the probabilities are identically zero.
BerCurve ber_curve(const markov::StateSpace& space,
                   markov::PackedState fail_packed, double scale,
                   std::span<const double> times_hours,
                   const markov::TransientSolver& solver);

// Convenience wrappers that build the chain from the model parameters.
BerCurve simplex_ber_curve(const SimplexParams& params,
                           std::span<const double> times_hours,
                           const markov::TransientSolver& solver);
BerCurve duplex_ber_curve(const DuplexParams& params,
                          std::span<const double> times_hours,
                          const markov::TransientSolver& solver);

// Engine variants: the occupancy curve runs through the workspace (cached
// Poisson windows, reused buffers) and the chain comes from `cache`
// instead of a per-call build. With the default StepPolicy the curves are
// bitwise identical to the overloads above; a nonzero
// policy.max_dense_states enables dense step operators (~1e-13 relative).
BerCurve ber_curve(const markov::StateSpace& space,
                   markov::PackedState fail_packed, double scale,
                   std::span<const double> times_hours,
                   const markov::TransientSolver& solver,
                   markov::SolverWorkspace& ws,
                   const markov::StepPolicy& policy = {});
BerCurve simplex_ber_curve(const SimplexParams& params,
                           std::span<const double> times_hours,
                           const markov::TransientSolver& solver,
                           ChainCache& cache, markov::SolverWorkspace& ws,
                           const markov::StepPolicy& policy = {});
BerCurve duplex_ber_curve(const DuplexParams& params,
                          std::span<const double> times_hours,
                          const markov::TransientSolver& solver,
                          ChainCache& cache, markov::SolverWorkspace& ws,
                          const markov::StepPolicy& policy = {});

// Evenly spaced time grid helper: `points` samples in [0, t_end_hours].
std::vector<double> time_grid_hours(double t_end_hours, std::size_t points);

}  // namespace rsmem::models

#endif  // RSMEM_MODELS_BER_H
