// CTMC model of the RS-coded DUPLEX memory system (paper Section 5,
// Figs. 3 and 4).
//
// The two replicated modules hold the same RS(n,k) codeword; each state is
// the 6-tuple (X, Y, b, e1, e2, ec) classifying the n symbol PAIRS:
//   X  - both copies of the symbol erased,
//   Y  - exactly one copy erased, the other error-free (the arbiter masks
//        these during its erasure-recovery step),
//   b  - one copy erased, the other hit by a random error,
//   e1 - random error in word 1 only,
//   e2 - random error in word 2 only,
//   ec - random errors in both copies of the symbol.
//
// After the arbiter's erasure recovery, each word w must satisfy
//   X + 2*(b + ec + e_w) <= n - k          (paper Section 5)
// or the system is in the absorbing Fail state.
//
// Transitions A..O follow Fig. 4 of the paper; scrubbing jumps to
// (X, Y+b, 0, 0, 0, 0) at rate 1/Tsc (permanent faults survive, the random
// error of each b pair is cleaned leaving a single-sided erasure).
//
// Two documented deviations are selectable (DESIGN.md section 2):
//  * The text of the paper gives transition B's rate as lambda_e*Y while
//    Fig. 4 and dimensional analysis give lambda_e*b. Fig. 4 is the default;
//    `use_text_rate_for_b` reproduces the text variant for the ablation.
//  * The paper counts a symbol pair as ONE erasure-exposure unit in
//    transitions C and F although two physical symbols are exposed.
//    RateConvention::kPerPhysicalSymbol doubles those two rates.
#ifndef RSMEM_MODELS_DUPLEX_MODEL_H
#define RSMEM_MODELS_DUPLEX_MODEL_H

#include "markov/state_space.h"

namespace rsmem::models {

enum class RateConvention {
  kPaper,             // rates exactly as printed in Fig. 4
  kPerPhysicalSymbol  // every physical symbol is an exposure unit
};

// When is the duplex unrecoverable? The paper's Section 5 wording ("either
// of the following conditions must be satisfied") is ambiguous, but its
// Fig. 6 -- duplex BER in the same range as the simplex under SEU-only
// loads -- matches the conservative reading: the chain fails as soon as
// EITHER word exceeds its budget. The physical arbiter usually survives a
// single lost word by selecting the other one, so kBothWordsUnrecoverable
// brackets the real system from below (see the Monte-Carlo cross-validation
// tests and EXPERIMENTS.md).
enum class FailCriterion {
  kAnyWordUnrecoverable,   // paper default (conservative)
  kBothWordsUnrecoverable  // arbiter-optimistic lower bound
};

struct DuplexParams {
  unsigned n = 18;
  unsigned k = 16;
  unsigned m = 8;

  double seu_rate_per_bit_hour = 0.0;         // lambda
  double erasure_rate_per_symbol_hour = 0.0;  // lambda_e
  double scrub_rate_per_hour = 0.0;           // 1/Tsc; 0 = no scrubbing

  RateConvention convention = RateConvention::kPaper;
  FailCriterion fail_criterion = FailCriterion::kAnyWordUnrecoverable;
  bool use_text_rate_for_b = false;  // erratum ablation (see header comment)
};

struct DuplexState {
  unsigned x = 0;   // double erasures
  unsigned y = 0;   // single erasures (maskable)
  unsigned b = 0;   // erasure + random error pairs
  unsigned e1 = 0;  // random errors in word 1 only
  unsigned e2 = 0;  // random errors in word 2 only
  unsigned ec = 0;  // random errors in both words

  unsigned total_pairs_touched() const { return x + y + b + e1 + e2 + ec; }
  friend bool operator==(const DuplexState&, const DuplexState&) = default;
};

class DuplexModel final : public markov::TransitionModel {
 public:
  explicit DuplexModel(const DuplexParams& params);

  const DuplexParams& params() const { return params_; }

  static markov::PackedState pack(const DuplexState& s);
  static DuplexState unpack(markov::PackedState s);
  static markov::PackedState fail_state();
  static bool is_fail(markov::PackedState s);

  // Both words decodable after erasure recovery (Y masked)?
  bool recoverable(const DuplexState& s) const;

  markov::PackedState initial_state() const override;
  void for_each_transition(markov::PackedState state,
                           const markov::TransitionSink& emit) const override;

  markov::StateSpace build() const;

 private:
  DuplexParams params_;
};

}  // namespace rsmem::models

#endif  // RSMEM_MODELS_DUPLEX_MODEL_H
