// CTMC model of a simplex memory whose permanent faults take TIME to locate.
//
// Paper Section 2: "Until the permanent fault is located, the error
// correction algorithm assumes the erroneous behavior to be caused by a
// random error, thus degrading the overall error correction capability...
// When the permanent fault is located, the capability of the RS code can be
// fully exploited." The base models assume instant location (Iddq / on-line
// test with zero latency). This model makes location a first-class event:
//
// state (eu, ed, re):
//   eu - permanent faults not yet located: consume RANDOM-ERROR budget (2x),
//   ed - located permanent faults: erasures (1x),
//   re - transient random errors.
// A read succeeds iff ed + 2*(eu + re) <= n - k.
//
// Unlike the base chains, an unrecoverable state here is NOT absorbing:
// nothing has been overwritten, so locating the offending faults (weight
// 2 -> 1) can make the word readable again before the next access. Failure
// is therefore a READ-TIME property -- the probability of sitting in an
// unrecoverable state at the stopping time -- exactly the paper's read
// semantics ("a read operation corresponds to the so-called stopping time").
// With an instant detector (delta -> infinity) the model reduces to the
// paper's base simplex chain.
//
// Events: SEU (rate m*lambda per clean symbol), permanent fault (lambda_e
// per symbol, arrives UNDETECTED; on an SEU-hit symbol it subsumes the
// transient), detection (delta per undetected fault; mean location latency
// 1/delta), scrubbing (clears re, only possible from recoverable states --
// the scrub's own decode fails otherwise and rewrites nothing).
#ifndef RSMEM_MODELS_DETECTION_MODEL_H
#define RSMEM_MODELS_DETECTION_MODEL_H

#include <span>
#include <vector>

#include "markov/state_space.h"

namespace rsmem::models {

struct DetectionParams {
  unsigned n = 18;
  unsigned k = 16;
  unsigned m = 8;

  double seu_rate_per_bit_hour = 0.0;         // lambda
  double erasure_rate_per_symbol_hour = 0.0;  // lambda_e
  double detection_rate_per_hour = 0.0;       // delta; 0 = never located
  double scrub_rate_per_hour = 0.0;           // 1/Tsc; 0 = no scrubbing
};

struct DetectionState {
  unsigned eu = 0;  // unlocated permanent faults
  unsigned ed = 0;  // located permanent faults (erasures)
  unsigned re = 0;  // transient random errors
  friend bool operator==(const DetectionState&, const DetectionState&) =
      default;
};

class DetectionModel final : public markov::TransitionModel {
 public:
  explicit DetectionModel(const DetectionParams& params);

  const DetectionParams& params() const { return params_; }

  static markov::PackedState pack(const DetectionState& s);
  static DetectionState unpack(markov::PackedState s);

  bool recoverable(const DetectionState& s) const {
    return s.ed + 2 * (s.eu + s.re) <= params_.n - params_.k;
  }
  bool recoverable_packed(markov::PackedState s) const {
    return recoverable(unpack(s));
  }

  markov::PackedState initial_state() const override;
  void for_each_transition(markov::PackedState state,
                           const markov::TransitionSink& emit) const override;

  markov::StateSpace build() const;

  // P(read fails at t) = total probability of unrecoverable states, for
  // each (sorted ascending) time.
  std::vector<double> fail_probability(const markov::StateSpace& space,
                                       std::span<const double> times_hours,
                                       const markov::TransientSolver& solver)
      const;

 private:
  DetectionParams params_;
};

}  // namespace rsmem::models

#endif  // RSMEM_MODELS_DETECTION_MODEL_H
