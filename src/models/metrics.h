// Derived reliability metrics on the paper's chains, beyond the BER curves:
//
//  * MTTF (mean time to data loss) of a stored word, from exact absorption
//    analysis of the chain -- the figure of merit mission planners quote.
//  * BER under DETERMINISTIC periodic scrubbing, the policy real hardware
//    implements, versus the exponential approximation the paper solves.
//    Both simplex and duplex scrub maps follow Section 5: transient damage
//    is cleared, permanent damage survives (duplex: (X,Y,b,e1,e2,ec) ->
//    (X, Y+b, 0,0,0,0)); an unrecoverable word cannot be scrubbed.
#ifndef RSMEM_MODELS_METRICS_H
#define RSMEM_MODELS_METRICS_H

#include <span>

#include "models/ber.h"

namespace rsmem::models {

// Mean time to data loss (hours) of the configured word. Scrubbing, when
// enabled in the params, is the exponential policy of the chain.
// Throws std::domain_error if Fail is unreachable (zero fault rates).
double simplex_mttf_hours(const SimplexParams& params);
double duplex_mttf_hours(const DuplexParams& params);

// BER(t) under deterministic scrubbing every `tsc_hours`. The params'
// scrub_rate_per_hour field is ignored (the chain carries only the fault
// transitions; scrubbing happens as a periodic jump).
BerCurve simplex_periodic_scrub_ber(const SimplexParams& params,
                                    double tsc_hours,
                                    std::span<const double> times_hours,
                                    const markov::TransientSolver& solver);
BerCurve duplex_periodic_scrub_ber(const DuplexParams& params,
                                   double tsc_hours,
                                   std::span<const double> times_hours,
                                   const markov::TransientSolver& solver);

}  // namespace rsmem::models

#endif  // RSMEM_MODELS_METRICS_H
