#include "models/metrics.h"

#include <stdexcept>

#include "markov/absorption.h"
#include "markov/periodic.h"

namespace rsmem::models {

namespace {

// Builds the post-scrub jump map over a chain's states.
template <typename ScrubTarget>
std::vector<std::size_t> make_jump_map(const markov::StateSpace& space,
                                       const ScrubTarget& target_of) {
  std::vector<std::size_t> map(space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    const markov::PackedState target = target_of(space.states[i]);
    const auto it = space.index.find(target);
    if (it == space.index.end()) {
      // By construction every scrub target is reachable in the fault-only
      // chain (permanent damage accumulates through C/A transitions); a
      // missing target indicates model breakage.
      throw std::logic_error("metrics: scrub target not in state space");
    }
    map[i] = it->second;
  }
  return map;
}

}  // namespace

double simplex_mttf_hours(const SimplexParams& params) {
  const markov::StateSpace space = SimplexModel{params}.build();
  if (!space.contains(SimplexModel::fail_state())) {
    throw std::domain_error(
        "simplex_mttf_hours: Fail unreachable (all fault rates zero?)");
  }
  return markov::analyze_absorption(space.chain).mttf;
}

double duplex_mttf_hours(const DuplexParams& params) {
  const markov::StateSpace space = DuplexModel{params}.build();
  if (!space.contains(DuplexModel::fail_state())) {
    throw std::domain_error(
        "duplex_mttf_hours: Fail unreachable (all fault rates zero?)");
  }
  return markov::analyze_absorption(space.chain).mttf;
}

BerCurve simplex_periodic_scrub_ber(const SimplexParams& params,
                                    double tsc_hours,
                                    std::span<const double> times_hours,
                                    const markov::TransientSolver& solver) {
  SimplexParams fault_only = params;
  fault_only.scrub_rate_per_hour = 0.0;
  const SimplexModel model{fault_only};
  const markov::StateSpace space = model.build();

  BerCurve curve;
  curve.times_hours.assign(times_hours.begin(), times_hours.end());
  const double scale = ber_scale(params.n, params.k, params.m);
  if (!space.contains(SimplexModel::fail_state())) {
    curve.fail_probability.assign(times_hours.size(), 0.0);
    curve.ber.assign(times_hours.size(), 0.0);
    return curve;
  }

  const std::vector<std::size_t> jump_map =
      make_jump_map(space, [](markov::PackedState s) -> markov::PackedState {
        if (SimplexModel::is_fail(s)) return s;
        return SimplexModel::pack(SimplexModel::erasures_of(s), 0);
      });
  curve.fail_probability = markov::occupancy_with_periodic_jump(
      space.chain, space.index_of(SimplexModel::fail_state()), jump_map,
      tsc_hours, times_hours, solver);
  curve.ber.reserve(curve.fail_probability.size());
  for (const double p : curve.fail_probability) curve.ber.push_back(scale * p);
  return curve;
}

BerCurve duplex_periodic_scrub_ber(const DuplexParams& params,
                                   double tsc_hours,
                                   std::span<const double> times_hours,
                                   const markov::TransientSolver& solver) {
  DuplexParams fault_only = params;
  fault_only.scrub_rate_per_hour = 0.0;
  const DuplexModel model{fault_only};
  const markov::StateSpace space = model.build();

  BerCurve curve;
  curve.times_hours.assign(times_hours.begin(), times_hours.end());
  const double scale = ber_scale(params.n, params.k, params.m);
  if (!space.contains(DuplexModel::fail_state())) {
    curve.fail_probability.assign(times_hours.size(), 0.0);
    curve.ber.assign(times_hours.size(), 0.0);
    return curve;
  }

  const std::vector<std::size_t> jump_map =
      make_jump_map(space, [](markov::PackedState s) -> markov::PackedState {
        if (DuplexModel::is_fail(s)) return s;
        const DuplexState d = DuplexModel::unpack(s);
        DuplexState scrubbed;
        scrubbed.x = d.x;
        scrubbed.y = d.y + d.b;
        return DuplexModel::pack(scrubbed);
      });
  curve.fail_probability = markov::occupancy_with_periodic_jump(
      space.chain, space.index_of(DuplexModel::fail_state()), jump_map,
      tsc_hours, times_hours, solver);
  curve.ber.reserve(curve.fail_probability.size());
  for (const double p : curve.fail_probability) curve.ber.push_back(scale * p);
  return curve;
}

}  // namespace rsmem::models
