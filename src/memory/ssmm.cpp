#include "memory/ssmm.h"

#include <bit>
#include <stdexcept>

#include "sim/rng.h"

namespace rsmem::memory {

namespace {

std::vector<Element> random_data(sim::Rng& rng, unsigned k, unsigned m) {
  std::vector<Element> data(k);
  for (auto& d : data) {
    d = static_cast<Element>(rng.uniform_int(1u << m));
  }
  return data;
}

std::uint64_t bit_difference(std::span<const Element> a,
                             std::span<const Element> b) {
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    bits += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
  }
  return bits;
}

// Accounts one word's read at one checkpoint.
void account(SsmmCheckpoint& cp, const ReadResult& read,
             std::span<const Element> truth, unsigned k, unsigned m) {
  ++cp.words_read;
  cp.bits_read += static_cast<std::uint64_t>(k) * m;
  if (!read.success) {
    ++cp.reads_failed;
    cp.bits_in_error += static_cast<std::uint64_t>(k) * m;
  } else if (!read.data_correct) {
    ++cp.reads_wrong_data;
    cp.bits_in_error += bit_difference(read.data, truth);
  }
}

}  // namespace

std::vector<SsmmCheckpoint> run_ssmm_mission(
    const SsmmConfig& config, std::span<const double> read_times_hours) {
  if (config.words == 0) {
    throw std::invalid_argument("run_ssmm_mission: need at least one word");
  }
  for (std::size_t i = 1; i < read_times_hours.size(); ++i) {
    if (read_times_hours[i] < read_times_hours[i - 1]) {
      throw std::invalid_argument("run_ssmm_mission: times must be sorted");
    }
  }

  std::vector<SsmmCheckpoint> checkpoints(read_times_hours.size());
  for (std::size_t c = 0; c < read_times_hours.size(); ++c) {
    checkpoints[c].time_hours = read_times_hours[c];
  }

  const sim::Rng root{config.seed};
  // Words are independent: simulate each through all checkpoints in turn.
  for (std::size_t w = 0; w < config.words; ++w) {
    sim::Rng data_rng = root.split(2 * w);
    const std::uint64_t word_seed = root.split(2 * w + 1).next_u64();
    const std::vector<Element> data =
        random_data(data_rng, config.code.k, config.code.m);

    if (config.duplex) {
      DuplexSystemConfig cfg;
      cfg.code = config.code;
      cfg.rates = config.rates;
      cfg.scrub_policy = config.scrub_policy;
      cfg.scrub_period_hours = config.scrub_period_hours;
      cfg.seed = word_seed;
      DuplexSystem sys{cfg};
      sys.store(data);
      for (std::size_t c = 0; c < read_times_hours.size(); ++c) {
        sys.advance_to(read_times_hours[c]);
        account(checkpoints[c], sys.read().read, data, config.code.k,
                config.code.m);
      }
    } else {
      SimplexSystemConfig cfg;
      cfg.code = config.code;
      cfg.rates = config.rates;
      cfg.scrub_policy = config.scrub_policy;
      cfg.scrub_period_hours = config.scrub_period_hours;
      cfg.seed = word_seed;
      SimplexSystem sys{cfg};
      sys.store(data);
      for (std::size_t c = 0; c < read_times_hours.size(); ++c) {
        sys.advance_to(read_times_hours[c]);
        account(checkpoints[c], sys.read(), data, config.code.k,
                config.code.m);
      }
    }
  }
  return checkpoints;
}

}  // namespace rsmem::memory
