#include "memory/memory_module.h"

#include <stdexcept>

namespace rsmem::memory {

MemoryModule::MemoryModule(unsigned n, unsigned m)
    : n_(n),
      m_(m),
      value_(n, 0),
      stuck_mask_(n, 0),
      stuck_level_(n, 0),
      detected_mask_(n, 0) {
  if (n == 0 || m == 0 || m > 16) {
    throw std::invalid_argument("MemoryModule: require n > 0, 0 < m <= 16");
  }
}

void MemoryModule::check_position(unsigned symbol, unsigned bit) const {
  if (symbol >= n_ || bit >= m_) {
    throw std::invalid_argument("MemoryModule: position out of range");
  }
}

void MemoryModule::write(std::span<const Element> symbols) {
  if (symbols.size() != n_) {
    throw std::invalid_argument("MemoryModule::write: size mismatch");
  }
  for (unsigned i = 0; i < n_; ++i) write_symbol(i, symbols[i]);
}

void MemoryModule::write_symbol(unsigned symbol, Element value) {
  check_position(symbol, 0);
  if (value >> m_) {
    throw std::invalid_argument("MemoryModule::write_symbol: value too wide");
  }
  value_[symbol] = value;
}

std::vector<Element> MemoryModule::read() const {
  std::vector<Element> out(n_);
  read_into(out);
  return out;
}

void MemoryModule::read_into(std::span<Element> out) const {
  if (out.size() != n_) {
    throw std::invalid_argument("MemoryModule::read_into: size mismatch");
  }
  for (unsigned i = 0; i < n_; ++i) {
    out[i] = (value_[i] & ~stuck_mask_[i]) | (stuck_level_[i] & stuck_mask_[i]);
  }
}

void MemoryModule::read_into_plane(std::span<Element> word,
                                   std::span<std::uint8_t> erasure_flags) const {
  if (word.size() != n_ || erasure_flags.size() != n_) {
    throw std::invalid_argument("MemoryModule::read_into_plane: size mismatch");
  }
  for (unsigned i = 0; i < n_; ++i) {
    word[i] =
        (value_[i] & ~stuck_mask_[i]) | (stuck_level_[i] & stuck_mask_[i]);
    erasure_flags[i] = detected_mask_[i] != 0 ? 1 : 0;
  }
}

Element MemoryModule::read_symbol(unsigned symbol) const {
  check_position(symbol, 0);
  return (value_[symbol] & ~stuck_mask_[symbol]) |
         (stuck_level_[symbol] & stuck_mask_[symbol]);
}

void MemoryModule::flip_bit(unsigned symbol, unsigned bit) {
  check_position(symbol, bit);
  value_[symbol] ^= (Element{1} << bit);
}

void MemoryModule::stick_bit(unsigned symbol, unsigned bit, bool level,
                             bool detected) {
  check_position(symbol, bit);
  const Element mask = Element{1} << bit;
  stuck_mask_[symbol] |= mask;
  if (level) {
    stuck_level_[symbol] |= mask;
  } else {
    stuck_level_[symbol] &= ~mask;
  }
  if (detected) detected_mask_[symbol] |= mask;
}

void MemoryModule::detect_all_faults() {
  for (unsigned i = 0; i < n_; ++i) detected_mask_[i] = stuck_mask_[i];
}

bool MemoryModule::symbol_has_stuck_bit(unsigned symbol) const {
  check_position(symbol, 0);
  return stuck_mask_[symbol] != 0;
}

bool MemoryModule::symbol_has_detected_fault(unsigned symbol) const {
  check_position(symbol, 0);
  return detected_mask_[symbol] != 0;
}

std::vector<unsigned> MemoryModule::detected_erasures() const {
  std::vector<unsigned> out;
  detected_erasures_into(out);
  return out;
}

void MemoryModule::detected_erasures_into(std::vector<unsigned>& out) const {
  out.clear();
  for (unsigned i = 0; i < n_; ++i) {
    if (detected_mask_[i] != 0) out.push_back(i);
  }
}

std::vector<unsigned> MemoryModule::stuck_symbols() const {
  std::vector<unsigned> out;
  for (unsigned i = 0; i < n_; ++i) {
    if (stuck_mask_[i] != 0) out.push_back(i);
  }
  return out;
}

unsigned MemoryModule::stuck_bit_count() const {
  unsigned count = 0;
  for (unsigned i = 0; i < n_; ++i) {
    count += static_cast<unsigned>(__builtin_popcount(stuck_mask_[i]));
  }
  return count;
}

}  // namespace rsmem::memory
