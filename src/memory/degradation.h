// Graceful-degradation policies for the functional memory systems.
//
// The paper's systems degrade by design: the arbiter masks one-sided
// erasures, the duplex pair outvotes a mis-correcting decoder, scrubbing
// purges accumulated transients. This header adds the CONTROLLER-side
// escalation chain that real storage systems layer on top of the code:
//
//   rung 1  retry with on-line detection: after a failed decode/arbitration
//           the controller triggers the module self-test (locating every
//           stuck bit) and retries -- undetected stuck bits cost 2x as
//           random errors, located ones cost 1x as erasures;
//   rung 2  erasure-only bank fallback: a bank reporting >= threshold stuck
//           symbols is condemned and ALL its symbols are handed to the
//           decoder as erasures, covering latent faults the per-symbol
//           detection has not reported yet;
//   rung 3  duplex -> simplex demotion: a module whose detected-erasure
//           count passes the dead-module threshold (default n-k+1: it can
//           never again produce a decodable word alone) is declared dead
//           and the pair continues simplex on the survivor;
//   rung 4  retirement: after K consecutive unrecovered failures the word
//           is retired -- reads report DegradedMode instead of risking a
//           mis-correction being consumed downstream.
//
// Every feature defaults OFF, and every rung engages only after the normal
// path has already failed, so a default policy leaves system behaviour and
// outputs bit-identical to a build without this layer.
#ifndef RSMEM_MEMORY_DEGRADATION_H
#define RSMEM_MEMORY_DEGRADATION_H

#include <cstdint>
#include <vector>

namespace rsmem::memory {

class MemoryModule;

struct DegradationPolicy {
  // Rung 1: on a failed decode (simplex) or arbitration (duplex), run the
  // module self-test (MemoryModule::detect_all_faults) and retry, up to
  // max_retries times. Models the controller-triggered on-line test; the
  // "backoff" between attempts is the test latency, instantaneous in the
  // discrete-event clock.
  bool retry_with_detection = false;
  unsigned max_retries = 1;

  // Rung 2: treat any bank with >= bank_stuck_threshold detected-stuck
  // symbols as wholly erased before retrying the decode. Banks are
  // bank_symbols adjacent codeword symbols (symbol p lives in bank
  // p / bank_symbols); 0 disables the fallback even if the flag is set.
  bool erasure_only_fallback = false;
  unsigned bank_symbols = 0;
  unsigned bank_stuck_threshold = 1;

  // Rung 3 (duplex): demote the pair to simplex when one module reports
  // at least dead_module_erasure_threshold erased symbols (0 selects
  // n - k + 1, the point where the module alone is beyond any decode).
  bool demote_on_dead_module = false;
  unsigned dead_module_erasure_threshold = 0;

  // Rung 4: retire the word after this many CONSECUTIVE unrecovered
  // failures (0 = never retire). A retired system stops decoding and
  // reports degraded-mode reads instead.
  unsigned retire_after_failures = 0;

  // True when any rung is enabled.
  bool any_enabled() const {
    return retry_with_detection || (erasure_only_fallback && bank_symbols > 0) ||
           demote_on_dead_module || retire_after_failures > 0;
  }

  // Effective dead-module threshold for an RS(n,k) system.
  unsigned dead_threshold(unsigned n, unsigned k) const {
    return dead_module_erasure_threshold > 0 ? dead_module_erasure_threshold
                                             : (n - k + 1);
  }
};

// Per-system counters, one increment per policy action. The fault-injection
// campaign cross-checks these against its scripted fault counts.
struct DegradationCounters {
  std::uint64_t retries_attempted = 0;    // rung-1 decode retries
  std::uint64_t retry_recoveries = 0;     // ... that produced an output
  std::uint64_t banks_condemned = 0;      // rung-2 banks widened to erasures
  std::uint64_t erasure_only_decodes = 0; // rung-2 widened decode attempts
  std::uint64_t erasure_only_recoveries = 0;
  std::uint64_t demotions = 0;            // rung-3 duplex -> simplex
  std::uint64_t words_retired = 0;        // rung-4 transitions to retired
  std::uint64_t reads_in_degraded_mode = 0;  // reads while demoted/retired
  std::uint64_t unrecovered_failures = 0; // failures no rung could absorb

  bool any_engaged() const {
    return retries_attempted > 0 || banks_condemned > 0 ||
           erasure_only_decodes > 0 || demotions > 0 || words_retired > 0 ||
           reads_in_degraded_mode > 0;
  }

  void merge_from(const DegradationCounters& other) {
    retries_attempted += other.retries_attempted;
    retry_recoveries += other.retry_recoveries;
    banks_condemned += other.banks_condemned;
    erasure_only_decodes += other.erasure_only_decodes;
    erasure_only_recoveries += other.erasure_only_recoveries;
    demotions += other.demotions;
    words_retired += other.words_retired;
    reads_in_degraded_mode += other.reads_in_degraded_mode;
    unrecovered_failures += other.unrecovered_failures;
  }
};

// Rung-2 helper shared by the simplex and duplex recovery paths: widens
// `erasures` (the module's detected-erasure positions) with EVERY symbol of
// each bank containing >= policy.bank_stuck_threshold detected-stuck
// symbols. Returns the number of banks actually widened; `erasures` stays
// sorted and duplicate-free. No-op when the fallback is disabled.
unsigned condemn_banks(const MemoryModule& module,
                       const DegradationPolicy& policy,
                       std::vector<unsigned>& erasures);

}  // namespace rsmem::memory

#endif  // RSMEM_MEMORY_DEGRADATION_H
