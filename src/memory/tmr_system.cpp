#include "memory/tmr_system.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace rsmem::memory {

TmrSystem::TmrSystem(const TmrSystemConfig& config) : config_(config) {
  if (config.word_symbols == 0 || config.m == 0 || config.m > 16) {
    throw std::invalid_argument("TmrSystem: bad word geometry");
  }
  const sim::Rng root{config.seed};
  for (unsigned i = 0; i < 3; ++i) {
    modules_[i] =
        std::make_unique<MemoryModule>(config.word_symbols, config.m);
    injectors_[i] = std::make_unique<FaultInjector>(
        config.rates, root.split(i + 1), queue_, *modules_[i]);
  }
  if (config.scrub_policy != ScrubPolicy::kNone) {
    scrubber_.emplace(config.scrub_policy, config.scrub_period_hours,
                      root.split(7));
  }
}

void TmrSystem::store(std::span<const Element> data) {
  if (stored_) throw std::logic_error("TmrSystem::store: already stored");
  if (data.size() != config_.word_symbols) {
    throw std::invalid_argument("TmrSystem::store: size mismatch");
  }
  stored_data_.assign(data.begin(), data.end());
  for (auto& module : modules_) module->write(stored_data_);
  stored_ = true;
  for (auto& injector : injectors_) injector->start();
  schedule_next_scrub();
}

std::vector<Element> TmrSystem::vote() const {
  const std::vector<Element> a = modules_[0]->read();
  const std::vector<Element> b = modules_[1]->read();
  const std::vector<Element> c = modules_[2]->read();
  std::vector<Element> out(config_.word_symbols);
  for (unsigned i = 0; i < config_.word_symbols; ++i) {
    // Bitwise majority: maj(a,b,c) = ab | bc | ca.
    out[i] = (a[i] & b[i]) | (b[i] & c[i]) | (c[i] & a[i]);
  }
  return out;
}

void TmrSystem::schedule_next_scrub() {
  if (!scrubber_) return;
  const double when = scrubber_->next_after(queue_.now());
  if (!std::isfinite(when)) return;
  queue_.schedule_at(when, [this] {
    scrub();
    schedule_next_scrub();
  });
}

void TmrSystem::inject_bit_flip(unsigned module_index, unsigned symbol,
                                unsigned bit) {
  if (module_index > 2) {
    throw std::invalid_argument(
        "TmrSystem::inject_bit_flip: module must be 0..2");
  }
  modules_[module_index]->flip_bit(symbol, bit);
}

void TmrSystem::inject_stuck_bit(unsigned module_index, unsigned symbol,
                                 unsigned bit, bool level, bool detected) {
  if (module_index > 2) {
    throw std::invalid_argument(
        "TmrSystem::inject_stuck_bit: module must be 0..2");
  }
  modules_[module_index]->stick_bit(symbol, bit, level, detected);
}

void TmrSystem::scrub() {
  if (scrub_suspended_) {
    ++stats_.scrubs_skipped;
    return;
  }
  ++stats_.scrubs_attempted;
  const std::vector<Element> voted = vote();
  for (auto& module : modules_) module->write(voted);
  if (!std::equal(voted.begin(), voted.end(), stored_data_.begin())) {
    // The voter itself was wrong: the scrub latched corrupted data into all
    // three copies (TMR's equivalent of a mis-correction).
    ++stats_.scrub_miscorrections;
  }
}

void TmrSystem::advance_to(double t_hours) {
  if (!stored_) throw std::logic_error("TmrSystem::advance_to: no data");
  queue_.run_until(t_hours);
  stats_.seu_injected = 0;
  stats_.permanent_injected = 0;
  for (const auto& injector : injectors_) {
    stats_.seu_injected += injector->seu_injected();
    stats_.permanent_injected += injector->permanent_injected();
  }
}

ReadResult TmrSystem::read() const {
  if (!stored_) throw std::logic_error("TmrSystem::read: no data");
  ReadResult result;
  result.success = true;  // the voter always produces an output
  result.data = vote();
  result.data_correct = std::equal(result.data.begin(), result.data.end(),
                                   stored_data_.begin());
  return result;
}

unsigned TmrSystem::corrupted_voted_bits() const {
  const std::vector<Element> voted = vote();
  unsigned bits = 0;
  for (unsigned i = 0; i < config_.word_symbols; ++i) {
    bits += static_cast<unsigned>(
        std::popcount(voted[i] ^ stored_data_[i]));
  }
  return bits;
}

}  // namespace rsmem::memory
