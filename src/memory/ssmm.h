// Whole-array SSMM functional simulation.
//
// The paper's BER is defined operationally: "the number of bits with errors
// divided by the total number of bits that have been read over a given time
// period". The word-level systems (SimplexSystem/DuplexSystem) expose
// success/failure of one word; this module simulates a whole solid-state
// mass memory -- `words` independent codewords under the same environment
// and scrub policy -- performing full-array reads at chosen checkpoints and
// counting erroneous bits the way the definition says:
//   * a read with NO output contributes all k*m word bits as erroneous
//     (the data is unavailable),
//   * a read returning WRONG data contributes the actual flipped bit count
//     (undetected corruption),
//   * a correct read contributes zero.
// Fault processes are per-cell, so words evolve independently; each word
// gets decorrelated RNG streams from the root seed.
#ifndef RSMEM_MEMORY_SSMM_H
#define RSMEM_MEMORY_SSMM_H

#include <cstdint>
#include <span>
#include <vector>

#include "memory/duplex_system.h"
#include "memory/simplex_system.h"

namespace rsmem::memory {

struct SsmmConfig {
  rs::CodeParams code{18, 16, 8, 1};
  bool duplex = false;
  std::size_t words = 256;
  FaultRates rates;
  ScrubPolicy scrub_policy = ScrubPolicy::kNone;
  double scrub_period_hours = 0.0;
  std::uint64_t seed = 1;
};

struct SsmmCheckpoint {
  double time_hours = 0.0;
  std::uint64_t words_read = 0;
  std::uint64_t reads_failed = 0;        // no output
  std::uint64_t reads_wrong_data = 0;    // undetected corruption
  std::uint64_t bits_read = 0;
  std::uint64_t bits_in_error = 0;

  // The paper's operational BER at this checkpoint.
  double measured_ber() const {
    return bits_read == 0
               ? 0.0
               : static_cast<double>(bits_in_error) /
                     static_cast<double>(bits_read);
  }
  double word_fail_fraction() const {
    return words_read == 0
               ? 0.0
               : static_cast<double>(reads_failed + reads_wrong_data) /
                     static_cast<double>(words_read);
  }
};

// Runs the array mission once: random data stored at t=0 in every word, a
// full-array (non-destructive) read at each checkpoint time (sorted,
// ascending, in hours). Returns one aggregate record per checkpoint.
// Throws std::invalid_argument on zero words or unsorted times.
std::vector<SsmmCheckpoint> run_ssmm_mission(
    const SsmmConfig& config, std::span<const double> read_times_hours);

}  // namespace rsmem::memory

#endif  // RSMEM_MEMORY_SSMM_H
