// Symbol-interleaved codeword layout under burst upsets.
//
// The standard mitigation when multi-bit upsets span more than one symbol:
// interleave I codewords bit-wise, so physical bit j belongs to codeword
// j mod I at logical bit j / I. A physical burst of s adjacent bits then
// deposits at most ceil(s / I) bits into any one codeword -- with I >= s it
// degenerates to single-bit (hence single-symbol) errors everywhere, which
// the RS code absorbs. Depth 1 is the plain layout of the rest of the
// library.
//
// This module runs fixed-horizon trials (no scrubbing, direct Poisson
// sampling): store I codewords, inject SEU/burst arrivals over the shared
// physical bit space for t hours, decode every codeword.
#ifndef RSMEM_MEMORY_INTERLEAVED_ARRAY_H
#define RSMEM_MEMORY_INTERLEAVED_ARRAY_H

#include <cstdint>

#include "memory/fault_injector.h"  // FaultRates
#include "rs/reed_solomon.h"

namespace rsmem::memory {

struct InterleavedArrayConfig {
  rs::CodeParams code{18, 16, 8, 1};
  unsigned depth = 1;  // interleaving factor I (codewords sharing the row)
  // Only the SEU / MBU fields of FaultRates apply (no permanent faults and
  // no detection in this fixed-horizon experiment).
  FaultRates rates;
  std::uint64_t seed = 1;
};

struct InterleavedTrialResult {
  unsigned words = 0;
  unsigned decode_failures = 0;   // detected uncorrectable
  unsigned wrong_data = 0;        // silent mis-correction
  unsigned seu_arrivals = 0;

  unsigned failed_words() const { return decode_failures + wrong_data; }
  double fail_fraction() const {
    return words == 0 ? 0.0
                      : static_cast<double>(failed_words()) / words;
  }
};

// One array life of `t_hours`. Throws std::invalid_argument on a zero
// depth or invalid MBU span.
InterleavedTrialResult run_interleaved_trial(
    const InterleavedArrayConfig& config, double t_hours);

// Convenience: averages fail_fraction over `trials` independent lives.
double interleaved_fail_fraction(const InterleavedArrayConfig& config,
                                 double t_hours, unsigned trials);

}  // namespace rsmem::memory

#endif  // RSMEM_MEMORY_INTERLEAVED_ARRAY_H
