// The duplex arbiter (paper Section 3, Fig. 1).
//
// Decision procedure, applied to the two words read from the replicated
// modules together with each module's detected-erasure information:
//  1. Erasure recovery: a symbol erased in exactly ONE module is masked by
//     copying the homologous symbol from the other module. Symbols erased
//     in BOTH modules remain erasures for the decoders.
//  2. Both masked words are decoded independently (errors + the common
//     erasures). A per-word flag is set when the decoder performed a
//     correction.
//  3. Comparison:
//       - no flag set                          -> output word 1
//       - words equal, >= 1 flag               -> output word 1
//       - words differ, exactly one flag set   -> output the unflagged word
//       - words differ, both flags set         -> NO OUTPUT (the arbiter
//         cannot tell a correction from a mis-correction)
//     A word whose decode FAILS (detected uncorrectable) is never selected;
//     if both fail there is no output.
// The arbiter itself is assumed fault-free (hard core), as in the paper.
#ifndef RSMEM_MEMORY_ARBITER_H
#define RSMEM_MEMORY_ARBITER_H

#include <span>
#include <vector>

#include "rs/reed_solomon.h"

namespace rsmem::memory {

using gf::Element;

enum class ArbiterDecision : std::uint8_t {
  kWord1,     // word 1 (possibly corrected) is the output
  kWord2,     // word 2 (possibly corrected) is the output
  kNoOutput,  // unrecoverable: discrimination impossible
};

// The paper's rule 1 reads "If no flag is set, then one of the two words is
// provided as output (no error/fault present)" -- i.e. the comparison is
// skipped when neither decoder corrected anything. Should the two words
// have silently diverged into two DIFFERENT valid codewords (e.g. after a
// mis-scrub), the verbatim rule outputs one of them blind. kCompareFirst
// compares unconditionally and declares no-output on an unflagged
// mismatch -- strictly safer at the cost of availability.
enum class ArbiterPolicy : std::uint8_t {
  kPaperVerbatim,
  kCompareFirst,
};

struct ArbiterResult {
  ArbiterDecision decision = ArbiterDecision::kNoOutput;
  std::vector<Element> output;  // selected codeword; empty when kNoOutput

  rs::DecodeOutcome outcome1;
  rs::DecodeOutcome outcome2;
  bool flag1 = false;  // correction performed on word 1
  bool flag2 = false;

  std::vector<unsigned> common_erasures;  // erased in both modules (X)
  unsigned masked_erasures = 0;           // recovered by masking (|Y|+|b|)

  bool has_output() const { return decision != ArbiterDecision::kNoOutput; }
};

class Arbiter {
 public:
  // Keeps a reference to the codec; the owner must keep it alive.
  explicit Arbiter(const rs::ReedSolomon& code,
                   ArbiterPolicy policy = ArbiterPolicy::kPaperVerbatim)
      : code_(&code), policy_(policy) {}

  // `word1`/`word2` are the raw module reads (length n);
  // `erasures1`/`erasures2` the modules' detected-fault symbol positions.
  // When `ws` is non-null the decodes route through the allocation-free
  // workspace fast path; when null they use the legacy reference decoder.
  // Outcomes are bit-identical either way.
  ArbiterResult arbitrate(std::span<const Element> word1,
                          std::span<const Element> word2,
                          std::span<const unsigned> erasures1,
                          std::span<const unsigned> erasures2,
                          rs::DecoderWorkspace* ws = nullptr) const;

  // Split surface for batched campaigns: the decision procedure with step 2
  // (the two decodes) lifted out, so a caller can gather many masked word
  // pairs into one rs::decode_batch plane. arbitrate() itself is built on
  // these; `mask_erasures` then external decodes then `select` is
  // bit-identical to one arbitrate() call.
  //
  // Step 1 on erasure-flag planes (the layout MemoryModule::read_into_plane
  // emits): masks single-sided erasures in place, rewrites BOTH flag spans
  // to the common-erasure indicator (erased in both modules — exactly the
  // erasure_flags decode_batch must see for each word of the pair), and
  // fills result.common_erasures / result.masked_erasures.
  void mask_erasures(std::span<Element> word1, std::span<Element> word2,
                     std::span<std::uint8_t> flags1,
                     std::span<std::uint8_t> flags2,
                     ArbiterResult& result) const;

  // Step 3: flag-based selection. Requires result.outcome1/outcome2 already
  // set (by arbitrate's own decodes or by decode_batch) and `word1`/`word2`
  // to hold the post-decode words; fills flags, decision and output.
  void select(std::span<const Element> word1, std::span<const Element> word2,
              ArbiterResult& result) const;

 private:
  const rs::ReedSolomon* code_;
  ArbiterPolicy policy_;
};

}  // namespace rsmem::memory

#endif  // RSMEM_MEMORY_ARBITER_H
