// Functional simulation of the SIMPLEX RS-coded memory system.
//
// One module stores one RS(n,k) codeword of real bits; faults arrive by
// Poisson injection; scrubbing periodically read-corrects-rewrites the word.
// Reads run the actual decoder, so every behaviour the Markov chain
// abstracts (including decoder mis-correction) happens for real here.
#ifndef RSMEM_MEMORY_SIMPLEX_SYSTEM_H
#define RSMEM_MEMORY_SIMPLEX_SYSTEM_H

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "memory/degradation.h"
#include "memory/fault_injector.h"
#include "memory/memory_module.h"
#include "memory/scrubber.h"
#include "rs/reed_solomon.h"
#include "sim/event_queue.h"

namespace rsmem::memory {

struct ReadResult {
  bool success = false;       // the system produced an output word
  bool data_correct = false;  // ... and it matches the stored data
  std::vector<Element> data;  // decoded data symbols (k), empty on failure
  rs::DecodeOutcome outcome;  // decoder detail (simplex) / word-1 detail
};

// Ground-truth damage of one module at the current instant, classified
// against the stored codeword: `erased` counts symbols the module reports
// as erasures (detected permanent faults); `corrupted` counts the OTHER
// symbols whose read value differs from the stored codeword (SEU damage
// plus undetected stuck bits). The word is guaranteed recoverable while
// erased + 2*corrupted <= n - k.
struct DamageSummary {
  unsigned erased = 0;
  unsigned corrupted = 0;
};

struct SystemStats {
  unsigned seu_injected = 0;
  unsigned permanent_injected = 0;
  unsigned scrubs_attempted = 0;
  unsigned scrub_failures = 0;        // scrub found an unrecoverable word
  unsigned scrub_miscorrections = 0;  // scrub silently rewrote wrong data
  unsigned scrubs_skipped = 0;        // suspended (stall window) or retired
};

struct SimplexSystemConfig {
  rs::CodeParams code{18, 16, 8, 1};
  FaultRates rates;
  ScrubPolicy scrub_policy = ScrubPolicy::kNone;
  double scrub_period_hours = 0.0;
  std::uint64_t seed = 1;
  // Optional codec sharing for campaign workers: when set, the system uses
  // this codec instead of constructing its own (parameters must match
  // `code`; mismatch throws). Saves the per-trial field/generator build.
  std::shared_ptr<const rs::ReedSolomon> shared_code;
  // Optional decoder scratch arena: non-null routes every encode/decode
  // through the allocation-free fast path; null keeps the legacy reference
  // codec. Results are bit-identical either way. The workspace must outlive
  // the system and must not be shared across threads.
  rs::DecoderWorkspace* workspace = nullptr;
  // Graceful-degradation escalation chain (memory/degradation.h). All
  // features default off; rungs only engage after a decode has failed, so
  // the default policy leaves every output bit-identical.
  DegradationPolicy degradation;
};

class SimplexSystem {
 public:
  explicit SimplexSystem(const SimplexSystemConfig& config);

  const rs::ReedSolomon& code() const { return *code_; }
  double now_hours() const { return queue_.now(); }
  const SystemStats& stats() const { return stats_; }

  // Encodes and stores `data` (k symbols). Must be called before advancing.
  void store(std::span<const Element> data);

  // Batched-store half: stores `data` (k symbols) whose `codeword` (n
  // symbols) was already encoded externally — the campaign batch path
  // encodes whole trial planes with rs::encode_batch (bit-identical per
  // word to encode()) and hands each system its slot. The caller guarantees
  // codeword == encode(data); observable behaviour is identical to
  // store(data).
  void store_encoded(std::span<const Element> data,
                     std::span<const Element> codeword);

  // Advances simulated time, processing fault arrivals and scrub passes.
  void advance_to(double t_hours);

  // Decodes the current memory content (non-destructive).
  ReadResult read() const;

  // --- Batched read surface (campaign gather/scatter) ----------------------
  // A campaign can gather many systems' raw reads into one word/flag plane,
  // run a single rs::decode_batch over it, and hand each word's outcome
  // back to its system. The split read is bit-identical to read() whenever
  // supports_batched_read() holds: the fast-path decode is external but
  // identical, and finish_batched_read replays read()'s bookkeeping.
  //
  // True when the per-word read() reduces to exactly {gather, one workspace
  // decode, finish}: data stored, not retired, workspace fast path
  // configured, and every degradation rung disabled (the rungs re-read the
  // module mid-decode, which cannot be batched).
  bool supports_batched_read() const;
  // Raw module gather: word values + per-symbol detected-erasure flags
  // (both spans of size n), in decode_batch's erasure_flags layout.
  void read_into_plane(std::span<Element> word,
                       std::span<std::uint8_t> erasure_flags) const;
  // Scatter: consumes the externally-decoded word (post-decode content of
  // the gathered plane slot) and its outcome; performs read()'s
  // failure-counting and data-extraction tail. Requires
  // supports_batched_read().
  ReadResult finish_batched_read(std::span<const Element> word,
                                 const rs::DecodeOutcome& outcome) const;

  // Ground-truth damage versus the stored codeword (instrumentation).
  DamageSummary damage() const;

  // --- Robustness / fault-injection surface --------------------------------
  // Scripted fault injection for adversarial campaigns (analysis/
  // fault_campaign.h): bypasses the Poisson streams and damages the module
  // directly, deterministically.
  void inject_bit_flip(unsigned symbol, unsigned bit);
  void inject_stuck_bit(unsigned symbol, unsigned bit, bool level,
                        bool detected);
  // Scrub stall window: while suspended, due scrub passes are skipped
  // (counted in stats().scrubs_skipped) but stay scheduled.
  void suspend_scrubbing() { scrub_suspended_ = true; }
  void resume_scrubbing() { scrub_suspended_ = false; }
  bool scrub_suspended() const { return scrub_suspended_; }
  // Degradation state (memory/degradation.h). A retired word no longer
  // decodes: read() reports failure and counts a degraded-mode read.
  const DegradationCounters& degradation() const { return degradation_; }
  bool retired() const { return retired_; }

 private:
  // Shared tail of store()/store_encoded(): write the codeword to the
  // module and start the fault/scrub processes.
  void commit_store();
  void scrub();
  void schedule_next_scrub();
  // Routes through the workspace fast path when configured, else legacy.
  rs::DecodeOutcome run_decode(std::span<Element> word,
                               std::span<const unsigned> erasures) const;
  // run_decode plus the degradation escalation chain (retry-with-detection,
  // bank-wide erasure fallback) and the consecutive-failure/retire
  // bookkeeping. With the default policy this is exactly run_decode.
  rs::DecodeOutcome decode_with_recovery(std::span<Element> word,
                                         std::vector<unsigned>& erasures) const;
  void note_decode_result(bool ok) const;

  SimplexSystemConfig config_;
  std::shared_ptr<const rs::ReedSolomon> code_;
  sim::EventQueue queue_;
  // Mutable: rung-1 recovery during a logically-const read() triggers the
  // module's self-test (detect_all_faults), which is controller-visible
  // device state, not simulation output.
  mutable MemoryModule module_;
  std::unique_ptr<FaultInjector> injector_;
  std::optional<Scrubber> scrubber_;
  std::vector<Element> stored_data_;      // ground truth dataword
  std::vector<Element> stored_codeword_;  // ground truth codeword
  bool stored_ = false;
  SystemStats stats_;
  // Reused read/erasure buffers so scrub passes (the hot loop of scrubbed
  // campaigns) do not allocate. Mutable: read() is logically const.
  mutable std::vector<Element> word_scratch_;
  mutable std::vector<unsigned> erasure_scratch_;
  bool scrub_suspended_ = false;
  mutable DegradationCounters degradation_;
  mutable unsigned consecutive_failures_ = 0;
  mutable bool retired_ = false;
};

}  // namespace rsmem::memory

#endif  // RSMEM_MEMORY_SIMPLEX_SYSTEM_H
