#include "memory/fault_injector.h"

#include <cmath>
#include <stdexcept>

namespace rsmem::memory {

FaultInjector::FaultInjector(const FaultRates& rates, sim::Rng rng,
                             sim::EventQueue& queue, MemoryModule& module)
    : rates_(rates), rng_(rng), queue_(queue), module_(module) {
  if (rates.seu_rate_per_bit_hour < 0.0 ||
      rates.perm_rate_per_symbol_hour < 0.0 ||
      rates.detection_latency_hours < 0.0) {
    throw std::invalid_argument("FaultInjector: rates must be non-negative");
  }
  if (rates.mbu_probability < 0.0 || rates.mbu_probability > 1.0) {
    throw std::invalid_argument(
        "FaultInjector: mbu_probability outside [0,1]");
  }
  if (rates.mbu_probability > 0.0 &&
      (rates.mbu_span_bits < 2 ||
       rates.mbu_span_bits > module.n() * module.m())) {
    throw std::invalid_argument(
        "FaultInjector: mbu_span_bits must be in [2, n*m]");
  }
  if (rates.perm_weibull_shape <= 0.0) {
    throw std::invalid_argument(
        "FaultInjector: perm_weibull_shape must be positive");
  }
  if (rates.perm_weibull_shape != 1.0 &&
      rates.perm_rate_per_symbol_hour > 0.0) {
    // Module-total wearout process: n symbols, each with per-symbol
    // cumulative hazard (rate*t)^beta; the superposition is Weibull with
    // scale eta' = (1/rate) * n^(-1/beta).
    const double beta = rates.perm_weibull_shape;
    const double eta = 1.0 / rates.perm_rate_per_symbol_hour *
                       std::pow(static_cast<double>(module.n()), -1.0 / beta);
    wearout_.emplace(beta, eta, rng_.split(0x57EA));
  }
}

void FaultInjector::start() {
  if (started_) return;
  started_ = true;
  schedule_next_seu();
  schedule_next_permanent();
}

void FaultInjector::schedule_next_seu() {
  const double total_rate = rates_.seu_rate_per_bit_hour *
                            static_cast<double>(module_.n()) *
                            static_cast<double>(module_.m());
  if (total_rate <= 0.0) return;
  const double delay = rng_.exponential(total_rate);
  queue_.schedule_in(delay, [this] {
    if (rates_.mbu_probability > 0.0 &&
        rng_.bernoulli(rates_.mbu_probability)) {
      // Burst upset: flip `span` adjacent bits in linear bit order; the
      // burst may straddle a symbol boundary.
      const unsigned total_bits = module_.n() * module_.m();
      const unsigned span = rates_.mbu_span_bits;
      const unsigned start =
          static_cast<unsigned>(rng_.uniform_int(total_bits - span + 1));
      for (unsigned i = 0; i < span; ++i) {
        const unsigned pos = start + i;
        module_.flip_bit(pos / module_.m(), pos % module_.m());
      }
    } else {
      const unsigned symbol =
          static_cast<unsigned>(rng_.uniform_int(module_.n()));
      const unsigned bit =
          static_cast<unsigned>(rng_.uniform_int(module_.m()));
      module_.flip_bit(symbol, bit);
    }
    ++seu_injected_;
    schedule_next_seu();
  });
}

void FaultInjector::schedule_next_permanent() {
  const double total_rate = rates_.perm_rate_per_symbol_hour *
                            static_cast<double>(module_.n());
  if (total_rate <= 0.0) return;
  const double delay =
      wearout_ ? wearout_->next_after(queue_.now()) - queue_.now()
               : rng_.exponential(total_rate);
  queue_.schedule_in(delay, [this] {
    const unsigned symbol =
        static_cast<unsigned>(rng_.uniform_int(module_.n()));
    const unsigned bit = static_cast<unsigned>(rng_.uniform_int(module_.m()));
    const bool level = rng_.bernoulli(0.5);
    if (rates_.detection_latency_hours == 0.0) {
      module_.stick_bit(symbol, bit, level, /*detected=*/true);
    } else {
      module_.stick_bit(symbol, bit, level, /*detected=*/false);
      queue_.schedule_in(rates_.detection_latency_hours, [this, symbol, bit] {
        // Re-assert the stuck bit as detected (level unchanged by passing
        // the currently observed value through stick_bit would be wrong, so
        // mark the whole module: by this time the tester has scanned it).
        (void)symbol;
        (void)bit;
        module_.detect_all_faults();
      });
    }
    ++permanent_injected_;
    schedule_next_permanent();
  });
}

}  // namespace rsmem::memory
