#include "memory/arbiter.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace rsmem::memory {

void Arbiter::mask_erasures(std::span<Element> word1, std::span<Element> word2,
                            std::span<std::uint8_t> flags1,
                            std::span<std::uint8_t> flags2,
                            ArbiterResult& result) const {
  const unsigned n = code_->n();
  if (word1.size() != n || word2.size() != n || flags1.size() != n ||
      flags2.size() != n) {
    throw std::invalid_argument("Arbiter::mask_erasures: span size != n");
  }
  // Step 1: erasure recovery. Single-sided erasures are masked from the
  // healthy module; double-sided ones stay erasures (for both decoders).
  for (unsigned p = 0; p < n; ++p) {
    const bool in1 = flags1[p] != 0;
    const bool in2 = flags2[p] != 0;
    if (in1 && in2) {
      result.common_erasures.push_back(p);
    } else if (in1) {
      word1[p] = word2[p];
      flags1[p] = 0;
      ++result.masked_erasures;
    } else if (in2) {
      word2[p] = word1[p];
      flags2[p] = 0;
      ++result.masked_erasures;
    }
  }
}

void Arbiter::select(std::span<const Element> word1,
                     std::span<const Element> word2,
                     ArbiterResult& result) const {
  result.flag1 = result.outcome1.correction_flag();
  result.flag2 = result.outcome2.correction_flag();
  const bool ok1 = result.outcome1.ok();
  const bool ok2 = result.outcome2.ok();

  // Step 3: comparison / selection.
  if (!ok1 && !ok2) {
    result.decision = ArbiterDecision::kNoOutput;
    return;
  }
  if (ok1 != ok2) {
    // A detected decode failure disqualifies that word.
    result.decision = ok1 ? ArbiterDecision::kWord1 : ArbiterDecision::kWord2;
    const auto& w = ok1 ? word1 : word2;
    result.output.assign(w.begin(), w.end());
    return;
  }

  const bool equal = std::equal(word1.begin(), word1.end(), word2.begin());
  if (!result.flag1 && !result.flag2) {
    // No correction anywhere: no error/fault present (paper rule 1). The
    // kCompareFirst policy still insists the copies agree.
    if (policy_ == ArbiterPolicy::kCompareFirst && !equal) {
      result.decision = ArbiterDecision::kNoOutput;
      return;
    }
    result.decision = ArbiterDecision::kWord1;
    result.output.assign(word1.begin(), word1.end());
    return;
  }
  if (equal) {
    // Equal words, at least one flag: the correction was right (rule 2).
    result.decision = ArbiterDecision::kWord1;
    result.output.assign(word1.begin(), word1.end());
    return;
  }
  if (result.flag1 != result.flag2) {
    // Different words, one flag: the flagged module mis-corrected (rule 3).
    if (result.flag1) {
      result.decision = ArbiterDecision::kWord2;
      result.output.assign(word2.begin(), word2.end());
    } else {
      result.decision = ArbiterDecision::kWord1;
      result.output.assign(word1.begin(), word1.end());
    }
    return;
  }
  // Different words, both flags set: indistinguishable (rule 4).
  result.decision = ArbiterDecision::kNoOutput;
}

ArbiterResult Arbiter::arbitrate(std::span<const Element> word1,
                                 std::span<const Element> word2,
                                 std::span<const unsigned> erasures1,
                                 std::span<const unsigned> erasures2,
                                 rs::DecoderWorkspace* ws) const {
  const unsigned n = code_->n();
  if (word1.size() != n || word2.size() != n) {
    throw std::invalid_argument("Arbiter::arbitrate: word size != n");
  }
  const std::set<unsigned> set1(erasures1.begin(), erasures1.end());
  const std::set<unsigned> set2(erasures2.begin(), erasures2.end());
  if (!set1.empty() && *set1.rbegin() >= n) {
    throw std::invalid_argument("Arbiter::arbitrate: erasure1 out of range");
  }
  if (!set2.empty() && *set2.rbegin() >= n) {
    throw std::invalid_argument("Arbiter::arbitrate: erasure2 out of range");
  }

  ArbiterResult result;
  std::vector<Element> w1(word1.begin(), word1.end());
  std::vector<Element> w2(word2.begin(), word2.end());
  std::vector<std::uint8_t> f1(n, 0);
  std::vector<std::uint8_t> f2(n, 0);
  for (const unsigned p : set1) f1[p] = 1;
  for (const unsigned p : set2) f2[p] = 1;

  mask_erasures(w1, w2, f1, f2, result);

  // Step 2: independent decoding with the common erasures.
  if (ws != nullptr) {
    result.outcome1 = code_->decode(*ws, w1, result.common_erasures);
    result.outcome2 = code_->decode(*ws, w2, result.common_erasures);
  } else {
    result.outcome1 = code_->decode_legacy(w1, result.common_erasures);
    result.outcome2 = code_->decode_legacy(w2, result.common_erasures);
  }

  select(w1, w2, result);
  return result;
}

}  // namespace rsmem::memory
