// Poisson fault injection for a memory module.
//
// Realizes the paper's fault environment on real bits:
//  * SEUs: Poisson with total rate n*m*lambda (lambda per bit), each arrival
//    flips one uniformly random bit;
//  * permanent faults: Poisson with total rate n*lambda_e (lambda_e per
//    symbol), each arrival sticks one uniformly random bit at a random
//    level.
// Permanent faults are reported (as erasure information) immediately by
// default -- the paper's ideal self-checking assumption -- or after a
// configurable detection latency.
//
// The injector is attached to an EventQueue and perpetuates its own arrival
// events, so fault streams interleave deterministically with scrubbing and
// read events.
#ifndef RSMEM_MEMORY_FAULT_INJECTOR_H
#define RSMEM_MEMORY_FAULT_INJECTOR_H

#include <optional>

#include "memory/memory_module.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/weibull.h"

namespace rsmem::memory {

struct FaultRates {
  double seu_rate_per_bit_hour = 0.0;          // lambda
  double perm_rate_per_symbol_hour = 0.0;      // lambda_e
  double detection_latency_hours = 0.0;        // 0 = ideal location (paper)

  // Multi-bit upsets: fraction of SEU arrivals that flip a BURST of
  // `mbu_span_bits` adjacent bits (linear bit order across the word). A
  // burst crossing a symbol boundary corrupts two adjacent symbols -- the
  // case RS symbol organization cannot absorb. The paper assumes
  // single-bit SEUs (mbu_probability = 0).
  double mbu_probability = 0.0;
  unsigned mbu_span_bits = 2;

  // Wearout: Weibull shape of the permanent-fault process. 1.0 (default)
  // is the constant-rate process the paper's chains assume; beta > 1 makes
  // the per-symbol hazard grow as (beta * rate) * (rate * t)^(beta-1) with
  // the SAME characteristic rate, so over one characteristic life the
  // expected fault count matches the constant-rate process.
  double perm_weibull_shape = 1.0;
};

class FaultInjector {
 public:
  // The injector keeps references to the queue and module; both must
  // outlive it (the owning system guarantees this).
  FaultInjector(const FaultRates& rates, sim::Rng rng,
                sim::EventQueue& queue, MemoryModule& module);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Starts the arrival streams (idempotent).
  void start();

  unsigned seu_injected() const { return seu_injected_; }
  unsigned permanent_injected() const { return permanent_injected_; }

 private:
  void schedule_next_seu();
  void schedule_next_permanent();

  FaultRates rates_;
  sim::Rng rng_;
  sim::EventQueue& queue_;
  MemoryModule& module_;
  // Module-total wearout process (present iff perm_weibull_shape != 1).
  std::optional<sim::WeibullProcess> wearout_;
  bool started_ = false;
  unsigned seu_injected_ = 0;
  unsigned permanent_injected_ = 0;
};

}  // namespace rsmem::memory

#endif  // RSMEM_MEMORY_FAULT_INJECTOR_H
