#include "memory/duplex_system.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rsmem::memory {

namespace {

std::shared_ptr<const rs::ReedSolomon> resolve_code(
    const std::shared_ptr<const rs::ReedSolomon>& shared,
    const rs::CodeParams& params) {
  if (!shared) return std::make_shared<const rs::ReedSolomon>(params);
  if (shared->n() != params.n || shared->k() != params.k ||
      shared->m() != params.m || shared->fcr() != params.fcr) {
    throw std::invalid_argument(
        "DuplexSystem: shared_code parameters do not match code");
  }
  return shared;
}

}  // namespace

DuplexSystem::DuplexSystem(const DuplexSystemConfig& config)
    : config_(config),
      code_(resolve_code(config.shared_code, config.code)),
      arbiter_(*code_),
      module1_(config.code.n, config.code.m),
      module2_(config.code.n, config.code.m),
      word1_scratch_(config.code.n, 0),
      word2_scratch_(config.code.n, 0) {
  erasures1_scratch_.reserve(config.code.n);
  erasures2_scratch_.reserve(config.code.n);
  const sim::Rng root{config.seed};
  injector1_ = std::make_unique<FaultInjector>(config.rates, root.split(1),
                                               queue_, module1_);
  injector2_ = std::make_unique<FaultInjector>(config.rates, root.split(2),
                                               queue_, module2_);
  if (config.scrub_policy != ScrubPolicy::kNone) {
    scrubber_.emplace(config.scrub_policy, config.scrub_period_hours,
                      root.split(3));
  }
}

void DuplexSystem::store(std::span<const Element> data) {
  if (stored_) {
    throw std::logic_error("DuplexSystem::store: already stored");
  }
  stored_data_.assign(data.begin(), data.end());
  stored_codeword_.assign(code_->n(), 0);
  if (config_.workspace != nullptr) {
    code_->encode(*config_.workspace, stored_data_, stored_codeword_);
  } else {
    code_->encode_legacy(stored_data_, stored_codeword_);
  }
  commit_store();
}

void DuplexSystem::store_encoded(std::span<const Element> data,
                                 std::span<const Element> codeword) {
  if (stored_) {
    throw std::logic_error("DuplexSystem::store_encoded: already stored");
  }
  if (data.size() != code_->k() || codeword.size() != code_->n()) {
    throw std::invalid_argument(
        "DuplexSystem::store_encoded: data/codeword size mismatch");
  }
  stored_data_.assign(data.begin(), data.end());
  stored_codeword_.assign(codeword.begin(), codeword.end());
  commit_store();
}

void DuplexSystem::commit_store() {
  module1_.write(stored_codeword_);
  module2_.write(stored_codeword_);
  stored_ = true;
  injector1_->start();
  injector2_->start();
  schedule_next_scrub();
}

void DuplexSystem::schedule_next_scrub() {
  if (!scrubber_) return;
  const double when = scrubber_->next_after(queue_.now());
  if (!std::isfinite(when)) return;
  queue_.schedule_at(when, [this] {
    scrub();
    schedule_next_scrub();
  });
}

void DuplexSystem::scrub() {
  if (scrub_suspended_ || retired_) {
    ++stats_.scrubs_skipped;
    return;
  }
  ++stats_.scrubs_attempted;
  const ArbiterResult result = arbitrate_with_recovery();
  if (!result.has_output()) {
    ++stats_.scrub_failures;
    return;
  }
  // Rewrite the agreed codeword into both modules. Stuck bits survive, so
  // permanent faults (X/Y pairs) persist while transient damage is cleared:
  // exactly the chain's scrub target (X, Y+b, 0, 0, 0, 0). A dead module is
  // no longer written: it is out of the configuration.
  if (dead_module_ != 0) module1_.write(result.output);
  if (dead_module_ != 1) module2_.write(result.output);
  if (!std::equal(result.output.begin(), result.output.end(),
                  stored_codeword_.begin())) {
    ++stats_.scrub_miscorrections;
  }
}

void DuplexSystem::inject_bit_flip(unsigned module_index, unsigned symbol,
                                   unsigned bit) {
  if (module_index > 1) {
    throw std::invalid_argument(
        "DuplexSystem::inject_bit_flip: module must be 0 or 1");
  }
  (module_index == 0 ? module1_ : module2_).flip_bit(symbol, bit);
}

void DuplexSystem::inject_stuck_bit(unsigned module_index, unsigned symbol,
                                    unsigned bit, bool level, bool detected) {
  if (module_index > 1) {
    throw std::invalid_argument(
        "DuplexSystem::inject_stuck_bit: module must be 0 or 1");
  }
  (module_index == 0 ? module1_ : module2_)
      .stick_bit(symbol, bit, level, detected);
}

ArbiterResult DuplexSystem::survivor_arbiter_result() const {
  const MemoryModule& survivor = dead_module_ == 0 ? module2_ : module1_;
  survivor.read_into(word1_scratch_);
  survivor.detected_erasures_into(erasures1_scratch_);
  ArbiterResult result;
  const rs::DecodeOutcome outcome =
      config_.workspace != nullptr
          ? code_->decode(*config_.workspace, word1_scratch_,
                          erasures1_scratch_)
          : code_->decode_legacy(word1_scratch_, erasures1_scratch_);
  result.outcome1 = outcome;
  result.flag1 = outcome.correction_flag();
  if (outcome.ok()) {
    result.decision = ArbiterDecision::kWord1;
    result.output.assign(word1_scratch_.begin(), word1_scratch_.end());
  }
  return result;
}

ArbiterResult DuplexSystem::arbitrate_current() const {
  if (dead_module_ >= 0) return survivor_arbiter_result();
  module1_.read_into(word1_scratch_);
  module2_.read_into(word2_scratch_);
  module1_.detected_erasures_into(erasures1_scratch_);
  module2_.detected_erasures_into(erasures2_scratch_);
  return arbiter_.arbitrate(word1_scratch_, word2_scratch_, erasures1_scratch_,
                            erasures2_scratch_, config_.workspace);
}

bool DuplexSystem::probe_decode(const MemoryModule& module,
                                std::vector<Element>& word,
                                std::vector<unsigned>& erasures) const {
  module.read_into(word);
  module.detected_erasures_into(erasures);
  const rs::DecodeOutcome outcome =
      config_.workspace != nullptr
          ? code_->decode(*config_.workspace, word, erasures)
          : code_->decode_legacy(word, erasures);
  return outcome.ok();
}

void DuplexSystem::maybe_demote() const {
  module1_.detected_erasures_into(erasures1_scratch_);
  module2_.detected_erasures_into(erasures2_scratch_);
  const unsigned threshold =
      config_.degradation.dead_threshold(code_->n(), code_->k());
  const bool dead1 = erasures1_scratch_.size() >= threshold;
  const bool dead2 = erasures2_scratch_.size() >= threshold;
  if (dead1 && dead2) return;  // both beyond hope: a survivor cannot help
  if (dead1 != dead2) {
    dead_module_ = dead1 ? 0 : 1;
    ++degradation_.demotions;
    return;
  }
  // Neither side is past the erasure threshold, yet the pair fails: one
  // copy's (possibly transient, unlocatable) damage is poisoning the
  // arbitration through erasure masking. Probe each module alone with its
  // own erasure info; if exactly one decodes, the other is the dead copy.
  const bool ok1 = probe_decode(module1_, word1_scratch_, erasures1_scratch_);
  const bool ok2 = probe_decode(module2_, word2_scratch_, erasures2_scratch_);
  if (ok1 == ok2) return;
  dead_module_ = ok1 ? 1 : 0;
  ++degradation_.demotions;
}

ArbiterResult DuplexSystem::arbitrate_with_recovery() const {
  ArbiterResult result = arbitrate_current();
  const DegradationPolicy& policy = config_.degradation;
  if (!result.has_output() && policy.retry_with_detection) {
    // Rung 1: run both modules' self-tests (locating every stuck bit) and
    // re-arbitrate -- located stuck bits cost 1x as erasures.
    for (unsigned attempt = 0;
         attempt < policy.max_retries && !result.has_output(); ++attempt) {
      ++degradation_.retries_attempted;
      module1_.detect_all_faults();
      module2_.detect_all_faults();
      result = arbitrate_current();
      if (result.has_output()) ++degradation_.retry_recoveries;
    }
  }
  if (!result.has_output() && policy.erasure_only_fallback &&
      policy.bank_symbols > 0 && dead_module_ < 0) {
    // Rung 2: condemn heavily-stuck banks on both sides, then re-arbitrate
    // with the widened erasure sets.
    module1_.detected_erasures_into(erasures1_scratch_);
    module2_.detected_erasures_into(erasures2_scratch_);
    const unsigned c1 = condemn_banks(module1_, policy, erasures1_scratch_);
    const unsigned c2 = condemn_banks(module2_, policy, erasures2_scratch_);
    if (c1 + c2 > 0) {
      degradation_.banks_condemned += c1 + c2;
      ++degradation_.erasure_only_decodes;
      module1_.read_into(word1_scratch_);
      module2_.read_into(word2_scratch_);
      result = arbiter_.arbitrate(word1_scratch_, word2_scratch_,
                                  erasures1_scratch_, erasures2_scratch_,
                                  config_.workspace);
      if (result.has_output()) ++degradation_.erasure_only_recoveries;
    }
  }
  if (!result.has_output() && policy.demote_on_dead_module &&
      dead_module_ < 0) {
    // Rung 3: cut away a module whose erasure count makes it undecodable on
    // its own and continue simplex on the survivor.
    maybe_demote();
    if (dead_module_ >= 0) result = survivor_arbiter_result();
  }
  note_decode_result(result.has_output());
  return result;
}

void DuplexSystem::note_decode_result(bool ok) const {
  if (ok) {
    consecutive_failures_ = 0;
    return;
  }
  ++consecutive_failures_;
  ++degradation_.unrecovered_failures;
  const unsigned retire_after = config_.degradation.retire_after_failures;
  if (retire_after > 0 && !retired_ && consecutive_failures_ >= retire_after) {
    retired_ = true;
    ++degradation_.words_retired;
  }
}

void DuplexSystem::advance_to(double t_hours) {
  if (!stored_) {
    throw std::logic_error("DuplexSystem::advance_to: nothing stored");
  }
  queue_.run_until(t_hours);
  stats_.seu_injected =
      injector1_->seu_injected() + injector2_->seu_injected();
  stats_.permanent_injected =
      injector1_->permanent_injected() + injector2_->permanent_injected();
}

DuplexReadResult DuplexSystem::read() const {
  if (!stored_) {
    throw std::logic_error("DuplexSystem::read: nothing stored");
  }
  DuplexReadResult result;
  if (retired_) {
    ++degradation_.reads_in_degraded_mode;
    result.degraded = true;
    return result;  // success=false: the word was retired (DegradedMode)
  }
  result.arbitration = arbitrate_with_recovery();
  result.degraded = demoted();
  if (result.degraded) ++degradation_.reads_in_degraded_mode;
  result.read.outcome = result.arbitration.outcome1;
  result.read.success = result.arbitration.has_output();
  if (result.read.success) {
    result.read.data = code_->extract_data(result.arbitration.output);
    result.read.data_correct =
        std::equal(result.read.data.begin(), result.read.data.end(),
                   stored_data_.begin(), stored_data_.end());
  }
  return result;
}

bool DuplexSystem::supports_batched_read() const {
  return stored_ && !retired_ && dead_module_ < 0 &&
         config_.workspace != nullptr && !config_.degradation.any_enabled();
}

void DuplexSystem::read_into_masked_pair(std::span<Element> word1,
                                         std::span<Element> word2,
                                         std::span<std::uint8_t> flags1,
                                         std::span<std::uint8_t> flags2,
                                         ArbiterResult& partial) const {
  if (!supports_batched_read()) {
    throw std::logic_error(
        "DuplexSystem::read_into_masked_pair: batched read unsupported "
        "(need stored data, workspace fast path, inert degradation policy)");
  }
  module1_.read_into_plane(word1, flags1);
  module2_.read_into_plane(word2, flags2);
  arbiter_.mask_erasures(word1, word2, flags1, flags2, partial);
}

DuplexReadResult DuplexSystem::finish_batched_read(
    std::span<const Element> word1, std::span<const Element> word2,
    const rs::DecodeOutcome& outcome1, const rs::DecodeOutcome& outcome2,
    ArbiterResult&& partial) const {
  if (!supports_batched_read()) {
    throw std::logic_error(
        "DuplexSystem::finish_batched_read: batched read unsupported");
  }
  // Replays read()'s tail: with an inert degradation policy
  // arbitrate_with_recovery is exactly {arbitrate, note_decode_result}, and
  // steps 1-2 of the arbitration already happened externally.
  partial.outcome1 = outcome1;
  partial.outcome2 = outcome2;
  arbiter_.select(word1, word2, partial);
  note_decode_result(partial.has_output());
  DuplexReadResult result;
  result.arbitration = std::move(partial);
  result.degraded = false;  // gated on !demoted() && !retired_
  result.read.outcome = result.arbitration.outcome1;
  result.read.success = result.arbitration.has_output();
  if (result.read.success) {
    result.read.data = code_->extract_data(result.arbitration.output);
    result.read.data_correct =
        std::equal(result.read.data.begin(), result.read.data.end(),
                   stored_data_.begin(), stored_data_.end());
  }
  return result;
}

DamageSummary DuplexSystem::damage(unsigned module_index) const {
  if (!stored_) {
    throw std::logic_error("DuplexSystem::damage: nothing stored");
  }
  if (module_index > 1) {
    throw std::invalid_argument("DuplexSystem::damage: module must be 0 or 1");
  }
  const MemoryModule& module = module_index == 0 ? module1_ : module2_;
  DamageSummary summary;
  const std::vector<Element> word = module.read();
  for (unsigned p = 0; p < code_->n(); ++p) {
    if (module.symbol_has_detected_fault(p)) {
      ++summary.erased;
    } else if (word[p] != stored_codeword_[p]) {
      ++summary.corrupted;
    }
  }
  return summary;
}

DuplexSystem::PairClassification DuplexSystem::classify_pairs() const {
  PairClassification c;
  const std::vector<Element> w1 = module1_.read();
  const std::vector<Element> w2 = module2_.read();
  for (unsigned p = 0; p < code_->n(); ++p) {
    const bool er1 = module1_.symbol_has_stuck_bit(p);
    const bool er2 = module2_.symbol_has_stuck_bit(p);
    const bool err1 = !er1 && w1[p] != stored_codeword_[p];
    const bool err2 = !er2 && w2[p] != stored_codeword_[p];
    if (er1 && er2) {
      ++c.x;
    } else if (er1 || er2) {
      // One side erased; does the OTHER side carry a random error?
      const bool other_err = er1 ? err2 : err1;
      if (other_err) {
        ++c.b;
      } else {
        ++c.y;
      }
    } else if (err1 && err2) {
      ++c.ec;
    } else if (err1) {
      ++c.e1;
    } else if (err2) {
      ++c.e2;
    }
  }
  return c;
}

}  // namespace rsmem::memory
