#include "memory/duplex_system.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rsmem::memory {

namespace {

std::shared_ptr<const rs::ReedSolomon> resolve_code(
    const std::shared_ptr<const rs::ReedSolomon>& shared,
    const rs::CodeParams& params) {
  if (!shared) return std::make_shared<const rs::ReedSolomon>(params);
  if (shared->n() != params.n || shared->k() != params.k ||
      shared->m() != params.m || shared->fcr() != params.fcr) {
    throw std::invalid_argument(
        "DuplexSystem: shared_code parameters do not match code");
  }
  return shared;
}

}  // namespace

DuplexSystem::DuplexSystem(const DuplexSystemConfig& config)
    : config_(config),
      code_(resolve_code(config.shared_code, config.code)),
      arbiter_(*code_),
      module1_(config.code.n, config.code.m),
      module2_(config.code.n, config.code.m),
      word1_scratch_(config.code.n, 0),
      word2_scratch_(config.code.n, 0) {
  erasures1_scratch_.reserve(config.code.n);
  erasures2_scratch_.reserve(config.code.n);
  const sim::Rng root{config.seed};
  injector1_ = std::make_unique<FaultInjector>(config.rates, root.split(1),
                                               queue_, module1_);
  injector2_ = std::make_unique<FaultInjector>(config.rates, root.split(2),
                                               queue_, module2_);
  if (config.scrub_policy != ScrubPolicy::kNone) {
    scrubber_.emplace(config.scrub_policy, config.scrub_period_hours,
                      root.split(3));
  }
}

void DuplexSystem::store(std::span<const Element> data) {
  if (stored_) {
    throw std::logic_error("DuplexSystem::store: already stored");
  }
  stored_data_.assign(data.begin(), data.end());
  stored_codeword_.assign(code_->n(), 0);
  if (config_.workspace != nullptr) {
    code_->encode(*config_.workspace, stored_data_, stored_codeword_);
  } else {
    code_->encode_legacy(stored_data_, stored_codeword_);
  }
  module1_.write(stored_codeword_);
  module2_.write(stored_codeword_);
  stored_ = true;
  injector1_->start();
  injector2_->start();
  schedule_next_scrub();
}

void DuplexSystem::schedule_next_scrub() {
  if (!scrubber_) return;
  const double when = scrubber_->next_after(queue_.now());
  if (!std::isfinite(when)) return;
  queue_.schedule_at(when, [this] {
    scrub();
    schedule_next_scrub();
  });
}

void DuplexSystem::scrub() {
  ++stats_.scrubs_attempted;
  module1_.read_into(word1_scratch_);
  module2_.read_into(word2_scratch_);
  module1_.detected_erasures_into(erasures1_scratch_);
  module2_.detected_erasures_into(erasures2_scratch_);
  const ArbiterResult result =
      arbiter_.arbitrate(word1_scratch_, word2_scratch_, erasures1_scratch_,
                         erasures2_scratch_, config_.workspace);
  if (!result.has_output()) {
    ++stats_.scrub_failures;
    return;
  }
  // Rewrite the agreed codeword into both modules. Stuck bits survive, so
  // permanent faults (X/Y pairs) persist while transient damage is cleared:
  // exactly the chain's scrub target (X, Y+b, 0, 0, 0, 0).
  module1_.write(result.output);
  module2_.write(result.output);
  if (!std::equal(result.output.begin(), result.output.end(),
                  stored_codeword_.begin())) {
    ++stats_.scrub_miscorrections;
  }
}

void DuplexSystem::advance_to(double t_hours) {
  if (!stored_) {
    throw std::logic_error("DuplexSystem::advance_to: nothing stored");
  }
  queue_.run_until(t_hours);
  stats_.seu_injected =
      injector1_->seu_injected() + injector2_->seu_injected();
  stats_.permanent_injected =
      injector1_->permanent_injected() + injector2_->permanent_injected();
}

DuplexReadResult DuplexSystem::read() const {
  if (!stored_) {
    throw std::logic_error("DuplexSystem::read: nothing stored");
  }
  DuplexReadResult result;
  module1_.read_into(word1_scratch_);
  module2_.read_into(word2_scratch_);
  module1_.detected_erasures_into(erasures1_scratch_);
  module2_.detected_erasures_into(erasures2_scratch_);
  result.arbitration =
      arbiter_.arbitrate(word1_scratch_, word2_scratch_, erasures1_scratch_,
                         erasures2_scratch_, config_.workspace);
  result.read.outcome = result.arbitration.outcome1;
  result.read.success = result.arbitration.has_output();
  if (result.read.success) {
    result.read.data = code_->extract_data(result.arbitration.output);
    result.read.data_correct =
        std::equal(result.read.data.begin(), result.read.data.end(),
                   stored_data_.begin(), stored_data_.end());
  }
  return result;
}

DamageSummary DuplexSystem::damage(unsigned module_index) const {
  if (!stored_) {
    throw std::logic_error("DuplexSystem::damage: nothing stored");
  }
  if (module_index > 1) {
    throw std::invalid_argument("DuplexSystem::damage: module must be 0 or 1");
  }
  const MemoryModule& module = module_index == 0 ? module1_ : module2_;
  DamageSummary summary;
  const std::vector<Element> word = module.read();
  for (unsigned p = 0; p < code_->n(); ++p) {
    if (module.symbol_has_detected_fault(p)) {
      ++summary.erased;
    } else if (word[p] != stored_codeword_[p]) {
      ++summary.corrupted;
    }
  }
  return summary;
}

DuplexSystem::PairClassification DuplexSystem::classify_pairs() const {
  PairClassification c;
  const std::vector<Element> w1 = module1_.read();
  const std::vector<Element> w2 = module2_.read();
  for (unsigned p = 0; p < code_->n(); ++p) {
    const bool er1 = module1_.symbol_has_stuck_bit(p);
    const bool er2 = module2_.symbol_has_stuck_bit(p);
    const bool err1 = !er1 && w1[p] != stored_codeword_[p];
    const bool err2 = !er2 && w2[p] != stored_codeword_[p];
    if (er1 && er2) {
      ++c.x;
    } else if (er1 || er2) {
      // One side erased; does the OTHER side carry a random error?
      const bool other_err = er1 ? err2 : err1;
      if (other_err) {
        ++c.b;
      } else {
        ++c.y;
      }
    } else if (err1 && err2) {
      ++c.ec;
    } else if (err1) {
      ++c.e1;
    } else if (err2) {
      ++c.e2;
    }
  }
  return c;
}

}  // namespace rsmem::memory
