// A physical memory module holding one RS codeword as real bits.
//
// Models the storage cells of one word of a COTS memory device:
//  * SEUs flip the stored value of a single bit (transient fault),
//  * permanent faults stick a bit at 0 or 1 (stuck-at fault).
// Reads return the stored value with stuck bits forced to their stuck
// level. Per the paper's assumption, permanent faults are located by
// self-checking hardware: symbols containing at least one *detected* stuck
// bit are reported as erasures to the decoder. Detection can be delayed
// (detection_latency knob on the fault injector) to ablate that assumption.
#ifndef RSMEM_MEMORY_MEMORY_MODULE_H
#define RSMEM_MEMORY_MEMORY_MODULE_H

#include <cstdint>
#include <span>
#include <vector>

#include "gf/galois_field.h"

namespace rsmem::memory {

using gf::Element;

class MemoryModule {
 public:
  // A module of n symbols of m bits each (one codeword slice).
  MemoryModule(unsigned n, unsigned m);

  unsigned n() const { return n_; }
  unsigned m() const { return m_; }

  // Writes symbol values. Stuck bits keep their stuck level regardless of
  // the written value. Throws std::invalid_argument on size/value mismatch.
  void write(std::span<const Element> symbols);
  void write_symbol(unsigned symbol, Element value);

  // Reads all symbols, with stuck bits masked in.
  std::vector<Element> read() const;
  // Allocation-free variant for hot simulation loops: out.size() must be n.
  void read_into(std::span<Element> out) const;
  // Batched-read gather: one pass filling the symbol values (as read_into)
  // and a per-symbol erasure indicator (1 where the symbol has a *detected*
  // permanent fault — the positions detected_erasures_into would list).
  // Both spans must have size n. The flag layout is exactly what
  // rs::ReedSolomon::decode_batch takes as erasure_flags, so a campaign can
  // gather many modules into one word/flag plane pair.
  void read_into_plane(std::span<Element> word,
                       std::span<std::uint8_t> erasure_flags) const;
  Element read_symbol(unsigned symbol) const;

  // Transient fault: inverts the stored value of one bit. A flip on a stuck
  // bit has no observable effect (the cell output is forced).
  void flip_bit(unsigned symbol, unsigned bit);

  // Permanent fault: bit becomes stuck at `level` from now on.
  // `detected` marks whether the self-checking hardware has located it.
  void stick_bit(unsigned symbol, unsigned bit, bool level, bool detected);
  // Marks every stuck bit of the module as detected (used by deferred
  // detection: on-line test pass).
  void detect_all_faults();

  bool symbol_has_stuck_bit(unsigned symbol) const;
  bool symbol_has_detected_fault(unsigned symbol) const;

  // Positions of symbols with at least one *detected* permanent fault --
  // exactly the erasure information available to the decoder/arbiter.
  std::vector<unsigned> detected_erasures() const;
  // Allocation-free variant: clears `out` and refills it (capacity reused).
  void detected_erasures_into(std::vector<unsigned>& out) const;
  // Ground-truth stuck symbols (detected or not), for instrumentation.
  std::vector<unsigned> stuck_symbols() const;

  unsigned stuck_bit_count() const;

 private:
  void check_position(unsigned symbol, unsigned bit) const;

  unsigned n_;
  unsigned m_;
  std::vector<Element> value_;           // written bits
  std::vector<Element> stuck_mask_;      // 1 = cell is stuck
  std::vector<Element> stuck_level_;     // stuck-at level where mask is 1
  std::vector<Element> detected_mask_;   // subset of stuck_mask_ located
};

}  // namespace rsmem::memory

#endif  // RSMEM_MEMORY_MEMORY_MODULE_H
