#include "memory/scrubber.h"

#include <stdexcept>

namespace rsmem::memory {

Scrubber::Scrubber(ScrubPolicy policy, double period_hours, sim::Rng rng)
    : policy_(policy), period_hours_(period_hours), rng_(rng) {
  if (policy != ScrubPolicy::kNone && period_hours <= 0.0) {
    throw std::invalid_argument("Scrubber: period must be positive");
  }
}

double Scrubber::next_after(double now) {
  switch (policy_) {
    case ScrubPolicy::kNone:
      return std::numeric_limits<double>::infinity();
    case ScrubPolicy::kPeriodic:
      return now + period_hours_;
    case ScrubPolicy::kExponential:
      return now + rng_.exponential(1.0 / period_hours_);
  }
  throw std::logic_error("Scrubber: unknown policy");
}

}  // namespace rsmem::memory
