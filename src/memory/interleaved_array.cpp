#include "memory/interleaved_array.h"

#include <stdexcept>
#include <vector>

#include "sim/rng.h"

namespace rsmem::memory {

InterleavedTrialResult run_interleaved_trial(
    const InterleavedArrayConfig& config, double t_hours) {
  if (config.depth == 0) {
    throw std::invalid_argument("interleaved_array: depth must be >= 1");
  }
  if (config.rates.seu_rate_per_bit_hour < 0.0 || t_hours < 0.0) {
    throw std::invalid_argument("interleaved_array: negative rate or time");
  }
  const rs::ReedSolomon code{config.code};
  const unsigned word_bits = config.code.n * config.code.m;
  const unsigned total_bits = word_bits * config.depth;
  const unsigned span = config.rates.mbu_span_bits;
  if (config.rates.mbu_probability > 0.0 &&
      (span < 2 || span > total_bits)) {
    throw std::invalid_argument("interleaved_array: bad mbu span");
  }

  sim::Rng rng{config.seed};

  // Store `depth` random codewords; track damage as flat bit flips.
  std::vector<std::vector<gf::Element>> truth(config.depth);
  std::vector<std::vector<gf::Element>> stored(config.depth);
  for (unsigned w = 0; w < config.depth; ++w) {
    std::vector<gf::Element> data(config.code.k);
    for (auto& d : data) {
      d = static_cast<gf::Element>(rng.uniform_int(1u << config.code.m));
    }
    truth[w] = code.encode(data);
    stored[w] = truth[w];
  }

  const auto flip_physical = [&](unsigned physical_bit) {
    // Interleaving map: codeword = bit mod I, logical bit = bit / I.
    const unsigned word = physical_bit % config.depth;
    const unsigned logical = physical_bit / config.depth;
    const unsigned symbol = logical / config.code.m;
    const unsigned bit = logical % config.code.m;
    stored[word][symbol] ^= (gf::Element{1} << bit);
  };

  InterleavedTrialResult result;
  result.words = config.depth;

  // Poisson arrival count over the whole horizon (no scrubbing: order of
  // arrivals does not matter, only the final XOR pattern).
  const double mean_arrivals =
      config.rates.seu_rate_per_bit_hour * total_bits * t_hours;
  const std::uint64_t arrivals = rng.poisson(mean_arrivals);
  result.seu_arrivals = static_cast<unsigned>(arrivals);
  for (std::uint64_t a = 0; a < arrivals; ++a) {
    if (config.rates.mbu_probability > 0.0 &&
        rng.bernoulli(config.rates.mbu_probability)) {
      const unsigned start =
          static_cast<unsigned>(rng.uniform_int(total_bits - span + 1));
      for (unsigned i = 0; i < span; ++i) flip_physical(start + i);
    } else {
      flip_physical(static_cast<unsigned>(rng.uniform_int(total_bits)));
    }
  }

  for (unsigned w = 0; w < config.depth; ++w) {
    std::vector<gf::Element> word = stored[w];
    const rs::DecodeOutcome outcome = code.decode(word);
    if (!outcome.ok()) {
      ++result.decode_failures;
    } else if (word != truth[w]) {
      ++result.wrong_data;
    }
  }
  return result;
}

double interleaved_fail_fraction(const InterleavedArrayConfig& config,
                                 double t_hours, unsigned trials) {
  if (trials == 0) {
    throw std::invalid_argument("interleaved_fail_fraction: trials == 0");
  }
  sim::Rng root{config.seed};
  unsigned failed = 0;
  unsigned words = 0;
  for (unsigned trial = 0; trial < trials; ++trial) {
    InterleavedArrayConfig cfg = config;
    cfg.seed = root.split(trial).next_u64();
    const InterleavedTrialResult r = run_interleaved_trial(cfg, t_hours);
    failed += r.failed_words();
    words += r.words;
  }
  return static_cast<double>(failed) / static_cast<double>(words);
}

}  // namespace rsmem::memory
