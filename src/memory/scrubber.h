// Scrubbing schedule policies.
//
// The physical system scrubs PERIODICALLY every Tsc (paper Section 2); the
// Markov models approximate that by an exponential transition of rate 1/Tsc
// (Section 5). Both policies are provided so the Monte-Carlo simulator can
// (a) mirror the real system and (b) exactly match the chains' assumption
// when cross-validating them.
#ifndef RSMEM_MEMORY_SCRUBBER_H
#define RSMEM_MEMORY_SCRUBBER_H

#include <limits>

#include "sim/rng.h"

namespace rsmem::memory {

enum class ScrubPolicy : std::uint8_t {
  kNone,         // never scrub
  kPeriodic,     // deterministic period Tsc (the real hardware behaviour)
  kExponential,  // exponential inter-scrub times, rate 1/Tsc (Markov match)
};

class Scrubber {
 public:
  // `period_hours` is Tsc; ignored for kNone. Throws std::invalid_argument
  // if a scrubbing policy is requested with a non-positive period.
  Scrubber(ScrubPolicy policy, double period_hours, sim::Rng rng);

  ScrubPolicy policy() const { return policy_; }
  double period_hours() const { return period_hours_; }

  // Time of the first scrub after `now`; +infinity when disabled.
  double next_after(double now);

 private:
  ScrubPolicy policy_;
  double period_hours_;
  sim::Rng rng_;
};

}  // namespace rsmem::memory

#endif  // RSMEM_MEMORY_SCRUBBER_H
