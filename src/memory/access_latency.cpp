#include "memory/access_latency.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sim/rng.h"

namespace rsmem::memory {

AccessLatencyReport simulate_access_latency(const AccessLatencyConfig& cfg) {
  if (cfg.read_rate_per_second <= 0.0 || cfg.decode_seconds <= 0.0 ||
      cfg.horizon_seconds <= 0.0) {
    throw std::invalid_argument(
        "simulate_access_latency: rates and times must be positive");
  }
  double scrub_duty = 0.0;
  if (cfg.scrub_period_seconds > 0.0 && cfg.words_per_scrub > 0) {
    const double batch =
        static_cast<double>(cfg.words_per_scrub) * cfg.decode_seconds;
    if (batch >= cfg.scrub_period_seconds) {
      throw std::invalid_argument(
          "simulate_access_latency: scrub batch exceeds its period");
    }
    scrub_duty = batch / cfg.scrub_period_seconds;
  }
  const double rho_reads = cfg.read_rate_per_second * cfg.decode_seconds;
  if (rho_reads + scrub_duty >= 1.0) {
    throw std::invalid_argument(
        "simulate_access_latency: offered load >= 1, queue diverges");
  }

  sim::Rng rng{cfg.seed};
  // FIFO single server over the merged stream of read arrivals and scrub
  // batch jobs (scrubs are long background jobs in arrival order).
  double server_free_at = 0.0;
  double busy_seconds = 0.0;
  double next_read = rng.exponential(cfg.read_rate_per_second);
  // Spread scrubbing issues one word every period/words; batch scrubbing
  // issues all words at the period boundary.
  const bool scrubbing =
      cfg.scrub_period_seconds > 0.0 && cfg.words_per_scrub > 0;
  const double scrub_interval =
      scrubbing && cfg.spread_scrub
          ? cfg.scrub_period_seconds /
                static_cast<double>(cfg.words_per_scrub)
          : cfg.scrub_period_seconds;
  const double scrub_job_seconds =
      scrubbing && cfg.spread_scrub
          ? cfg.decode_seconds
          : static_cast<double>(cfg.words_per_scrub) * cfg.decode_seconds;
  double next_scrub = scrubbing ? scrub_interval : -1.0;
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(
      cfg.read_rate_per_second * cfg.horizon_seconds * 1.2 + 16));

  while (true) {
    const bool scrub_next =
        next_scrub >= 0.0 && next_scrub < next_read;
    const double arrival = scrub_next ? next_scrub : next_read;
    if (arrival > cfg.horizon_seconds) break;
    const double start = std::max(server_free_at, arrival);
    if (scrub_next) {
      server_free_at = start + scrub_job_seconds;
      busy_seconds += scrub_job_seconds;
      next_scrub += scrub_interval;
    } else {
      server_free_at = start + cfg.decode_seconds;
      busy_seconds += cfg.decode_seconds;
      latencies.push_back(server_free_at - arrival);
      next_read += rng.exponential(cfg.read_rate_per_second);
    }
  }

  AccessLatencyReport report;
  report.reads_served = latencies.size();
  report.utilization = busy_seconds / cfg.horizon_seconds;
  if (latencies.empty()) return report;
  double total = 0.0;
  for (const double l : latencies) total += l;
  report.mean_latency_seconds = total / static_cast<double>(latencies.size());
  report.mean_wait_seconds = report.mean_latency_seconds - cfg.decode_seconds;
  std::sort(latencies.begin(), latencies.end());
  report.p99_latency_seconds =
      latencies[static_cast<std::size_t>(0.99 * (latencies.size() - 1))];
  report.max_latency_seconds = latencies.back();
  return report;
}

}  // namespace rsmem::memory
