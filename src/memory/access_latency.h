// Access-latency queueing simulation for the codec front end.
//
// The paper's Section 6 argues the duplex RS(18,16) beats the simplex
// RS(36,16) on the DECODE path (74 vs 308 cycles). Under real read traffic
// the gap is larger than the ratio of service times: reads queue behind
// each other and behind scrub passes, and queueing delay grows like
// rho/(1-rho). This module is a deterministic-service single-server queue
// (the codec) fed by Poisson reads, with optional periodic scrub BATCHES
// that occupy the server for words_per_scrub service times.
//
// With no scrubbing this is the textbook M/D/1 queue; the test suite pins
// the simulated mean waiting time against Pollaczek-Khinchine,
//     W_q = rho * s / (2 (1 - rho)),
// so the simulator is exact where theory exists and trustworthy where it
// does not (scrub bursts).
#ifndef RSMEM_MEMORY_ACCESS_LATENCY_H
#define RSMEM_MEMORY_ACCESS_LATENCY_H

#include <cstdint>

namespace rsmem::memory {

struct AccessLatencyConfig {
  double read_rate_per_second = 1e5;   // Poisson read arrivals
  double decode_seconds = 74.0 / 50e6;  // service time per read (Td / f_clk)
  // Scrubbing: every scrub_period_seconds the codec runs words_per_scrub
  // word services (0 disables). With spread_scrub = false they run as one
  // back-to-back batch (simple controllers); with true the words are
  // spread evenly across the period (one short job every
  // period/words_per_scrub), which removes the batch's tail-latency spike
  // at identical total duty.
  double scrub_period_seconds = 0.0;
  std::uint64_t words_per_scrub = 0;
  bool spread_scrub = false;
  double horizon_seconds = 1.0;
  std::uint64_t seed = 1;
};

struct AccessLatencyReport {
  std::uint64_t reads_served = 0;
  double utilization = 0.0;          // busy fraction of the codec
  double mean_wait_seconds = 0.0;    // queueing delay (excl. own service)
  double mean_latency_seconds = 0.0; // wait + service
  double p99_latency_seconds = 0.0;
  double max_latency_seconds = 0.0;
};

// Runs the queue for `horizon_seconds` of simulated time.
// Throws std::invalid_argument for non-positive rates/times, a scrub
// configuration that cannot fit in its period, or offered load >= 1.
AccessLatencyReport simulate_access_latency(const AccessLatencyConfig& cfg);

}  // namespace rsmem::memory

#endif  // RSMEM_MEMORY_ACCESS_LATENCY_H
